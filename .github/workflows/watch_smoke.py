"""CI smoke test: `vn2 watch` tails a trace while a writer appends it.

Trains a small testbed model, saves it, then starts a background thread
that appends the trace's JSONL rows one by one while `vn2 watch` follows
the file with the saved model.  The watcher must exit cleanly on idle
timeout, having seen every packet, and append its incident events to
``$VN2_WATCH_LOG`` (uploaded as the job's artifact).
"""

import subprocess
import sys
import threading
import time
from pathlib import Path

from repro.core.pipeline import VN2, VN2Config
from repro.traces.frame import as_frame
from repro.traces.io import save_frame
from repro.traces.testbed import TestbedScenario, generate_testbed_trace

N_ROWS = 400

work = Path("watch-smoke")
work.mkdir(exist_ok=True)

trace = generate_testbed_trace(TestbedScenario.EXPANSIVE, seed=7)
VN2(VN2Config(rank=10, filter_exceptions=False)).fit(trace).save(work / "model")
save_frame(as_frame(trace), work / "full.jsonl")
lines = (work / "full.jsonl").read_text().splitlines()

live = work / "live.jsonl"


def writer():
    with live.open("a", encoding="utf-8") as fh:
        fh.write(lines[0] + "\n")  # header
        for row in lines[1 : N_ROWS + 1]:
            fh.write(row + "\n")
            fh.flush()
            time.sleep(0.002)


thread = threading.Thread(target=writer)
thread.start()
rc = subprocess.call(
    [
        sys.executable,
        "-m",
        "repro.cli",
        "watch",
        str(live),
        "--model",
        str(work / "model"),
        "--poll",
        "0.1",
        "--idle-timeout",
        "5",
    ]
)
thread.join()
sys.exit(rc)
