"""CI smoke test: `vn2 serve` end-to-end, differentialed against `vn2 watch`.

Trains a small testbed model, writes its trace as JSONL in canonical
arrival order, then:

1. runs ``vn2 watch --no-follow`` over the file — the reference
   incident-event stream (flush-closes included);
2. starts ``vn2 serve`` as a subprocess (ephemeral ports, ``--ready-file``
   handshake), subscribes with the client SDK, and replays the same file
   through the load generator (``python -m repro.service.loadgen``);
3. snapshots ``/metrics`` (kept as the job's artifact with the loadgen
   report) and SIGTERMs the server — the graceful drain flush-closes
   open incidents and ends the subscription;
4. asserts the served events are identical to the watch log.

The trace file is pre-sorted because ``vn2 watch`` consumes file order
while the loadgen replays ``iter_packets`` (arrival) order; with the
file already in arrival order both engines see the same sequence, so
their event streams must match bit for bit.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

from repro.core.pipeline import VN2, VN2Config
from repro.service.client import ServiceClient, http_get_json
from repro.traces.frame import as_frame
from repro.traces.io import save_frame_jsonl
from repro.traces.testbed import TestbedScenario, generate_testbed_trace

work = Path(os.environ.get("VN2_SERVICE_DIR", "service-smoke"))
work.mkdir(parents=True, exist_ok=True)

trace = generate_testbed_trace(TestbedScenario.EXPANSIVE, seed=7)
frame = as_frame(trace)
VN2(VN2Config(rank=10, filter_exceptions=False)).fit(trace).save(work / "model")

save_frame_jsonl(frame, work / "node-major.jsonl")
header, *rows = (work / "node-major.jsonl").read_text().splitlines()


def _arrival_key(line):
    obj = json.loads(line)
    return (obj["generated_at"], obj["node_id"], obj["epoch"])


trace_path = work / "trace.jsonl"
trace_path.write_text(
    "\n".join([header] + sorted(rows, key=_arrival_key)) + "\n"
)

# --- 1. Reference: vn2 watch over the complete, arrival-ordered file.
watch_log = work / "watch-events.jsonl"
rc = subprocess.call([
    sys.executable, "-m", "repro.cli", "watch", str(trace_path),
    "--model", str(work / "model"), "--no-follow",
    "--output", str(watch_log),
])
assert rc == 0, f"vn2 watch exited {rc}"
reference = [json.loads(line) for line in watch_log.read_text().splitlines()]
assert reference, "watch produced no incident events"

# --- 2. vn2 serve + SDK subscription + loadgen replay.
ready = work / "ports.json"
server = subprocess.Popen([
    sys.executable, "-m", "repro.cli", "serve", str(work / "model"),
    "--port", "0", "--http-port", "0",
    "--positions-from", str(trace_path),
    "--ready-file", str(ready),
])
try:
    deadline = time.monotonic() + 60.0
    while not ready.exists():
        assert server.poll() is None, "server exited before binding"
        assert time.monotonic() < deadline, "no ready file within 60s"
        time.sleep(0.05)
    ports = json.loads(ready.read_text())

    served = []

    def subscribe():
        client = ServiceClient(port=ports["port"])
        for event in client.events("smoke"):
            served.append(event)
        client.close()

    subscriber = threading.Thread(target=subscribe, daemon=True)
    subscriber.start()
    # The subscription creates the shard; wait until the server shows it
    # so no early event can be published before we listen.
    deadline = time.monotonic() + 30.0
    while True:
        metrics = http_get_json("127.0.0.1", ports["http_port"], "/metrics")
        shard = metrics["deployments"].get("smoke")
        if shard and shard["subscribers"] >= 1:
            break
        assert time.monotonic() < deadline, "subscription never registered"
        time.sleep(0.05)

    rc = subprocess.call([
        sys.executable, "-m", "repro.service.loadgen", str(trace_path),
        "--port", str(ports["port"]), "--deployment", "smoke",
        "--batch", "256", "--report", str(work / "loadgen-report.json"),
    ])
    assert rc == 0, f"loadgen exited {rc}"
    report = json.loads((work / "loadgen-report.json").read_text())
    assert report["packets_sent"] == len(frame), report

    # Let the shard drain, then keep the /metrics snapshot as an artifact.
    deadline = time.monotonic() + 60.0
    while True:
        metrics = http_get_json("127.0.0.1", ports["http_port"], "/metrics")
        if metrics["totals"]["queue_depth_packets"] == 0:
            break
        assert time.monotonic() < deadline, "shard never drained"
        time.sleep(0.05)
    (work / "metrics.json").write_text(json.dumps(metrics, indent=2))
    assert metrics["totals"]["packets"] == len(frame)

    # --- 3. Graceful shutdown: drain flushes open incidents to the
    # subscriber, then the connection closes and the thread exits.
    server.send_signal(signal.SIGTERM)
    assert server.wait(timeout=60.0) == 0, "serve did not drain cleanly"
    subscriber.join(timeout=30.0)
    assert not subscriber.is_alive(), "subscriber never saw the close"
finally:
    if server.poll() is None:
        server.kill()

# --- 4. The differential.
assert len(served) == len(reference), (
    f"served {len(served)} events, watch logged {len(reference)}"
)
assert served == reference, "served events differ from the watch log"
print(
    f"served {len(served)} incident events over {len(frame)} packets "
    f"at {report['throughput_pps']:,.0f} pkt/s -- identical to vn2 watch"
)
