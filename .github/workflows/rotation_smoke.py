"""CI smoke test: zero-downtime model rotation on a live sink cluster.

The scenario the model-lifecycle layer exists for, end to end:

1. Two saved artifacts that *diagnose identically* but carry different
   ``model_version`` hashes (same fit, one config field nudged before the
   second save).  ``vn2 model info`` reads both, ``vn2 model diff``
   exits 1 and names the differing config key — the operator surface.
2. ``vn2 serve --workers 3`` on model A; half the testbed trace is
   replayed into a subscribed deployment and drained.
3. Chaos: a worker that does **not** own the deployment is SIGKILLed and
   ``vn2 model rotate`` fires immediately after — the rotation barrier
   must resolve against the dead worker (pruned, not timed out) and the
   surviving workers must all adopt model B.
4. The second half is replayed, the server drains on SIGTERM, and the
   served incident-event stream is asserted **bit-identical** to a
   single-model ``vn2 watch`` over the full file: because the two models
   share their arrays, a correct mid-stream rotation is invisible in the
   event stream.  Any dropped, duplicated or reordered packet at the
   rotation boundary (or during the worker kill) breaks the equality.

The ``/model`` doc and final ``/metrics`` snapshot are kept as the job's
artifact, so the rotation counters are visible per build.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
from dataclasses import replace
from pathlib import Path

from repro.core.pipeline import VN2, VN2Config
from repro.core.streaming import iter_packets
from repro.service.backends import HashRing
from repro.service.client import ServiceClient, http_get_json
from repro.traces.frame import as_frame
from repro.traces.io import save_frame_jsonl
from repro.traces.testbed import TestbedScenario, generate_testbed_trace

N_WORKERS = 3

work = Path(os.environ.get("VN2_ROTATION_DIR", "rotation-smoke"))
work.mkdir(parents=True, exist_ok=True)

# --- 1. Two versions of the same model: identical arrays, distinct hash.
trace = generate_testbed_trace(TestbedScenario.EXPANSIVE, seed=7)
frame = as_frame(trace)
tool = VN2(VN2Config(rank=10, filter_exceptions=False)).fit(trace)
tool.save(work / "model-a")
version_a = tool.model_version
tool.config = replace(
    tool.config, nmf_iterations=tool.config.nmf_iterations + 1
)
tool._model_version = None  # config is part of the fingerprint
tool.save(work / "model-b")
version_b = tool.model_version
assert version_a != version_b, "config nudge did not change the version"

rc = subprocess.call([
    sys.executable, "-m", "repro.cli", "model", "info", str(work / "model-b"),
])
assert rc == 0, f"vn2 model info exited {rc}"
rc = subprocess.call([
    sys.executable, "-m", "repro.cli", "model", "diff",
    str(work / "model-a"), str(work / "model-b"),
])
assert rc == 1, f"vn2 model diff exited {rc}, expected 1 (models differ)"

save_frame_jsonl(frame, work / "node-major.jsonl")
header, *rows = (work / "node-major.jsonl").read_text().splitlines()


def _arrival_key(line):
    obj = json.loads(line)
    return (obj["generated_at"], obj["node_id"], obj["epoch"])


trace_path = work / "trace.jsonl"
trace_path.write_text(
    "\n".join([header] + sorted(rows, key=_arrival_key)) + "\n"
)
# Replay what the file says, not the in-memory frame: the JSONL trace
# codec rounds metric values to 6 decimals, and the differential against
# `vn2 watch` (which reads the file) must feed both sides identical bits.
from repro.traces.io import load_frame_jsonl  # noqa: E402

frame = load_frame_jsonl(trace_path)

# Routing: the kill must hit a worker that does not own the deployment,
# so the differential only exercises the rotation barrier, not handoff.
ring = HashRing([f"w{i}" for i in range(N_WORKERS)])
owner = ring.lookup("smoke")
victim = next(f"w{i}" for i in range(N_WORKERS) if f"w{i}" != owner)
print(f"routing: smoke -> {owner}, chaos victim -> {victim}")

# --- Reference: vn2 watch over the full file with model A only.
watch_log = work / "watch-events.jsonl"
rc = subprocess.call([
    sys.executable, "-m", "repro.cli", "watch", str(trace_path),
    "--model", str(work / "model-a"), "--no-follow",
    "--output", str(watch_log),
])
assert rc == 0, f"vn2 watch exited {rc}"
reference = [json.loads(line) for line in watch_log.read_text().splitlines()]
assert reference, "watch produced no incident events"

# --- 2. Serve model A with three workers.
ready = work / "ports.json"
server = subprocess.Popen([
    sys.executable, "-m", "repro.cli", "serve", str(work / "model-a"),
    "--port", "0", "--http-port", "0", "--workers", str(N_WORKERS),
    "--positions-from", str(trace_path),
    "--ready-file", str(ready),
])
try:
    deadline = time.monotonic() + 120.0
    while not ready.exists():
        assert server.poll() is None, "server exited before becoming ready"
        assert time.monotonic() < deadline, "no ready file within 120s"
        time.sleep(0.05)
    ports = json.loads(ready.read_text())
    assert ports["backend"] == "pool", ports

    health = http_get_json("127.0.0.1", ports["http_port"], "/health")
    assert health["model_version"] == version_a, health
    pids = {w["id"]: w["pid"] for w in health["workers"]}

    served = []

    def subscribe():
        client = ServiceClient(port=ports["port"])
        for event in client.events("smoke"):
            served.append(event)
        client.close()

    subscriber = threading.Thread(target=subscribe, daemon=True)
    subscriber.start()
    deadline = time.monotonic() + 30.0
    while True:
        metrics = http_get_json("127.0.0.1", ports["http_port"], "/metrics")
        shard = metrics["deployments"].get("smoke")
        if shard and shard["subscribers"] >= 1:
            break
        assert time.monotonic() < deadline, "subscription never registered"
        time.sleep(0.05)

    def drain(minimum):
        stop_at = time.monotonic() + 60.0
        while True:
            doc = http_get_json("127.0.0.1", ports["http_port"], "/metrics")
            if (doc["totals"]["queue_depth_packets"] == 0
                    and doc["deployments"]["smoke"]["packets"] >= minimum):
                return doc
            assert time.monotonic() < stop_at, f"queue never drained: {doc}"
            time.sleep(0.05)

    packets = list(iter_packets(frame))
    half = len(packets) // 2
    with ServiceClient(port=ports["port"]) as client:
        for start in range(0, half, 128):
            client.submit("smoke", packets[start:min(start + 128, half)])
        drain(half)

        # --- 3. Kill a non-owner worker, then rotate through the CLI.
        # The model_update broadcast includes the corpse; the barrier
        # must resolve by pruning it, not by timing out.
        print(f"chaos: SIGKILL {victim} (pid {pids[victim]})")
        os.kill(pids[victim], signal.SIGKILL)
        rc = subprocess.call([
            sys.executable, "-m", "repro.cli", "model", "rotate",
            str(work / "model-b"),
            "--http-port", str(ports["http_port"]), "--timeout", "90",
        ])
        assert rc == 0, f"vn2 model rotate exited {rc}"

        doc = http_get_json("127.0.0.1", ports["http_port"], "/model")
        (work / "model-doc.json").write_text(json.dumps(doc, indent=2))
        assert doc["model_version"] == version_b, doc
        assert doc["rotations"] >= 1, doc

        # --- 4. Second half through the rotated model.
        for start in range(half, len(packets), 128):
            client.submit("smoke", packets[start:start + 128])
        metrics = drain(len(packets))

    (work / "metrics.json").write_text(json.dumps(metrics, indent=2))
    alive = {w["id"]: w["alive"] for w in
             http_get_json("127.0.0.1", ports["http_port"], "/health")["workers"]}
    assert not alive[victim] and sum(alive.values()) == N_WORKERS - 1, alive

    server.send_signal(signal.SIGTERM)
    assert server.wait(timeout=120.0) == 0, "serve did not drain cleanly"
    subscriber.join(timeout=30.0)
    assert not subscriber.is_alive(), "subscriber never saw the close"
finally:
    if server.poll() is None:
        server.kill()

# --- The differential: rotation + worker kill are invisible in events.
(work / "served-events.jsonl").write_text(
    "".join(json.dumps(event) + "\n" for event in served)
)
assert len(served) == len(reference), (
    f"served {len(served)} events, watch logged {len(reference)}"
)
assert served == reference, "served events differ from the watch log"
print(
    f"rotated {version_a} -> {version_b} mid-stream with {victim} dead: "
    f"{len(served)} incident events over {len(frame)} packets, "
    f"bit-identical to vn2 watch"
)
