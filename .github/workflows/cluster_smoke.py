"""CI smoke test: the sink *cluster* — `vn2 serve --workers 3` end to end.

Everything the single-process service smoke proves, plus the cluster
guarantees:

1. ``vn2 serve --workers 3`` starts a process-pool backend; the
   ``--ready-file`` appears only after every worker heartbeats (its JSON
   records ``backend: pool, workers: 3``);
2. the testbed trace replayed through the load generator into one
   deployment produces an event stream identical to ``vn2 watch`` over
   the same file — the worker boundary must be bit-invisible;
3. a chaos step: a second deployment (routed to a *different* worker)
   is mid-replay when its owner is SIGKILLed.  The front door hands the
   deployment to a survivor, replays unacked batches (at-least-once),
   and the replay completes with nothing stuck in the queue;
4. the merged ``/metrics?format=prometheus`` scrape — front door plus
   per-worker registry dumps — validates as one exposition and records
   the handoff.  It is kept as the job's artifact.

Worker routing is consistent hashing over ``w0..w2``, so the script
precomputes placement with the same :class:`HashRing` and *chooses* a
chaos deployment owned by a different worker than the differential one.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

from repro.core.pipeline import VN2, VN2Config
from repro.core.streaming import iter_packets
from repro.obs import validate_exposition
from repro.service.backends import HashRing
from repro.service.client import ServiceClient, http_get_json
from repro.traces.frame import as_frame
from repro.traces.io import save_frame_jsonl
from repro.traces.testbed import TestbedScenario, generate_testbed_trace

N_WORKERS = 3

work = Path(os.environ.get("VN2_CLUSTER_DIR", "cluster-smoke"))
work.mkdir(parents=True, exist_ok=True)

trace = generate_testbed_trace(TestbedScenario.EXPANSIVE, seed=7)
frame = as_frame(trace)
VN2(VN2Config(rank=10, filter_exceptions=False)).fit(trace).save(work / "model")

save_frame_jsonl(frame, work / "node-major.jsonl")
header, *rows = (work / "node-major.jsonl").read_text().splitlines()


def _arrival_key(line):
    obj = json.loads(line)
    return (obj["generated_at"], obj["node_id"], obj["epoch"])


trace_path = work / "trace.jsonl"
trace_path.write_text(
    "\n".join([header] + sorted(rows, key=_arrival_key)) + "\n"
)

# Precompute routing: the chaos deployment must live on a different
# worker than the differential one, so killing it cannot perturb the
# bit-identity assertion.
ring = HashRing([f"w{i}" for i in range(N_WORKERS)])
smoke_owner = ring.lookup("smoke")
chaos_dep = next(
    name for name in (f"chaos-{i}" for i in range(64))
    if ring.lookup(name) != smoke_owner
)
chaos_owner = ring.lookup(chaos_dep)
print(f"routing: smoke -> {smoke_owner}, {chaos_dep} -> {chaos_owner}")

# --- 1. Reference: vn2 watch over the complete, arrival-ordered file.
watch_log = work / "watch-events.jsonl"
rc = subprocess.call([
    sys.executable, "-m", "repro.cli", "watch", str(trace_path),
    "--model", str(work / "model"), "--no-follow",
    "--output", str(watch_log),
])
assert rc == 0, f"vn2 watch exited {rc}"
reference = [json.loads(line) for line in watch_log.read_text().splitlines()]
assert reference, "watch produced no incident events"

# --- 2. vn2 serve --workers 3; ready file gates on worker heartbeats.
ready = work / "ports.json"
server = subprocess.Popen([
    sys.executable, "-m", "repro.cli", "serve", str(work / "model"),
    "--port", "0", "--http-port", "0", "--workers", str(N_WORKERS),
    "--positions-from", str(trace_path),
    "--ready-file", str(ready),
])
try:
    deadline = time.monotonic() + 120.0
    while not ready.exists():
        assert server.poll() is None, "server exited before becoming ready"
        assert time.monotonic() < deadline, "no ready file within 120s"
        time.sleep(0.05)
    ports = json.loads(ready.read_text())
    assert ports["backend"] == "pool", ports
    # The ready file lists the workers it waited for — all heartbeating.
    assert len(ports["workers"]) == N_WORKERS, ports
    assert all(w["alive"] for w in ports["workers"]), ports

    health = http_get_json("127.0.0.1", ports["http_port"], "/health")
    assert len(health["workers"]) == N_WORKERS, health
    pids = {w["id"]: w["pid"] for w in health["workers"]}

    served = []

    def subscribe():
        client = ServiceClient(port=ports["port"])
        for event in client.events("smoke"):
            served.append(event)
        client.close()

    subscriber = threading.Thread(target=subscribe, daemon=True)
    subscriber.start()
    deadline = time.monotonic() + 30.0
    while True:
        metrics = http_get_json("127.0.0.1", ports["http_port"], "/metrics")
        shard = metrics["deployments"].get("smoke")
        if shard and shard["subscribers"] >= 1:
            break
        assert time.monotonic() < deadline, "subscription never registered"
        time.sleep(0.05)
    assert shard["worker"] == smoke_owner, shard

    # --- 3. Differential replay through the loadgen CLI.
    rc = subprocess.call([
        sys.executable, "-m", "repro.service.loadgen", str(trace_path),
        "--port", str(ports["port"]), "--deployment", "smoke",
        "--batch", "256", "--report", str(work / "loadgen-report.json"),
    ])
    assert rc == 0, f"loadgen exited {rc}"
    report = json.loads((work / "loadgen-report.json").read_text())
    assert report["packets_sent"] == len(frame), report

    # --- 4. Chaos: SIGKILL the chaos deployment's worker mid-replay.
    packets = list(iter_packets(frame))
    starts = list(range(0, len(packets), 128))
    with ServiceClient(port=ports["port"]) as chaos_client:
        for i, start in enumerate(starts):
            if i == len(starts) // 3:
                print(f"chaos: SIGKILL {chaos_owner} (pid {pids[chaos_owner]})")
                os.kill(pids[chaos_owner], signal.SIGKILL)
            chaos_client.submit(chaos_dep, packets[start:start + 128])

    deadline = time.monotonic() + 60.0
    while True:
        health = http_get_json("127.0.0.1", ports["http_port"], "/health")
        alive = {w["id"]: w["alive"] for w in health["workers"]}
        metrics = http_get_json("127.0.0.1", ports["http_port"], "/metrics")
        chaos_shard = metrics["deployments"][chaos_dep]
        if (not alive[chaos_owner]
                and chaos_shard["worker"] != chaos_owner
                and metrics["totals"]["queue_depth_packets"] == 0):
            break
        assert time.monotonic() < deadline, (
            f"handoff never completed: alive={alive}, shard={chaos_shard}"
        )
        time.sleep(0.05)
    assert sum(alive.values()) == N_WORKERS - 1, alive
    # At-least-once: the adopting worker's fresh session saw at least the
    # unacked + post-kill batches (duplicates allowed, loss is not).
    assert chaos_shard["packets"] > 0, chaos_shard
    (work / "metrics.json").write_text(json.dumps(metrics, indent=2))
    assert metrics["totals"]["packets"] >= len(frame)

    # --- 5. Merged cluster scrape: one valid exposition, handoff visible.
    from urllib.request import urlopen

    url = (f"http://127.0.0.1:{ports['http_port']}"
           "/metrics?format=prometheus")
    with urlopen(url, timeout=10.0) as response:
        scrape = response.read().decode("utf-8")
    (work / "cluster-metrics.prom").write_text(scrape)
    samples = validate_exposition(scrape)
    assert samples > 0
    assert f'worker="{smoke_owner}"' in scrape, "per-worker series missing"
    handoffs = [
        float(line.rsplit(" ", 1)[1])
        for line in scrape.splitlines()
        if line.startswith("repro_service_worker_handoffs_total")
    ]
    assert handoffs and handoffs[0] >= 1.0, "handoff not recorded"

    # --- 6. Graceful shutdown: drain_all flushes, workers say w_bye.
    server.send_signal(signal.SIGTERM)
    assert server.wait(timeout=120.0) == 0, "serve did not drain cleanly"
    subscriber.join(timeout=30.0)
    assert not subscriber.is_alive(), "subscriber never saw the close"
finally:
    if server.poll() is None:
        server.kill()

# --- 7. The differential: the cluster's stream is the watch stream.
assert len(served) == len(reference), (
    f"served {len(served)} events, watch logged {len(reference)}"
)
assert served == reference, "served events differ from the watch log"
print(
    f"cluster served {len(served)} incident events over {len(frame)} packets "
    f"at {report['throughput_pps']:,.0f} pkt/s with {N_WORKERS} workers, "
    f"survived SIGKILL of {chaos_owner} ({samples} merged metric samples) "
    f"-- identical to vn2 watch"
)
