"""CI smoke test: the observability surfaces, end to end.

1. ``vn2 profile`` wraps a small CitySee training run: the exported span
   JSONL (the job's artifact) must contain every ``fit.*`` stage of the
   pipeline, parent-linked to one root.
2. ``vn2 serve`` hosts the trained model; a few hundred packets go in
   through the client SDK, then ``/metrics?format=prometheus`` is pulled
   and checked with :func:`repro.obs.validate_exposition` — the scrape a
   real Prometheus would take, kept as the second artifact.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path
from urllib.request import urlopen

from repro.obs import validate_exposition

work = Path(os.environ.get("VN2_OBS_DIR", "obs-smoke"))
work.mkdir(parents=True, exist_ok=True)

# --- 1. vn2 profile around a real training run.
spans_path = work / "train-spans.jsonl"
model = work / "model"
rc = subprocess.call([
    sys.executable, "-m", "repro.cli",
    "profile", "--top", "10", "--output", str(spans_path),
    "train", "citysee:tiny", "--rank", "8", "--output", str(model),
])
assert rc == 0, f"vn2 profile train exited {rc}"
records = [
    json.loads(line) for line in spans_path.read_text().splitlines()
]
names = {r["name"] for r in records}
required = {
    "vn2 train", "fit", "fit.states", "fit.exceptions", "fit.normalize",
    "fit.nmf", "fit.sparsify", "fit.interpret",
}
assert required <= names, f"span coverage missing {required - names}"
roots = [r for r in records if r["parent_id"] is None]
assert [r["name"] for r in roots] == ["vn2 train"], roots
assert all(r["status"] == "ok" for r in records)
print(f"profile: {len(records)} spans exported, all fit stages covered")

# --- 2. vn2 serve + a real Prometheus-style scrape.
ready = work / "ports.json"
server = subprocess.Popen([
    sys.executable, "-m", "repro.cli", "serve", str(model),
    "--port", "0", "--http-port", "0", "--ready-file", str(ready),
])
try:
    deadline = time.monotonic() + 60.0
    while not ready.exists():
        assert server.poll() is None, "server exited before binding"
        assert time.monotonic() < deadline, "no ready file within 60s"
        time.sleep(0.05)
    ports = json.loads(ready.read_text())

    from repro.core.streaming import iter_packets
    from repro.service.client import ServiceClient
    from repro.traces.citysee import CitySeeProfile, generate_citysee_frame

    # cache hit: the profile run above already generated this frame
    frame = generate_citysee_frame(CitySeeProfile.tiny())
    packets = []
    for i, (node, epoch, at, values) in enumerate(iter_packets(frame)):
        if i >= 500:
            break
        packets.append((node, epoch, at, values.tolist()))
    with ServiceClient(port=ports["port"]) as client:
        client.submit("smoke", packets)

    # wait for the shard to drain so the scrape shows settled counters
    deadline = time.monotonic() + 60.0
    while True:
        with urlopen(
            f"http://127.0.0.1:{ports['http_port']}/metrics", timeout=10.0
        ) as response:
            doc = json.loads(response.read().decode("utf-8"))
        if doc["totals"]["queue_depth_packets"] == 0:
            break
        assert time.monotonic() < deadline, "shard never drained"
        time.sleep(0.05)

    url = f"http://127.0.0.1:{ports['http_port']}/metrics?format=prometheus"
    with urlopen(url, timeout=10.0) as response:
        content_type = response.headers.get("Content-Type", "")
        body = response.read().decode("utf-8")
    (work / "metrics.prom").write_text(body)

    assert "version=0.0.4" in content_type, content_type
    n_samples = validate_exposition(body)
    expected = (
        'repro_streaming_packets_total{deployment="smoke"} 500',
        '# TYPE repro_service_ingest_seconds histogram',
        'repro_incidents_opened_total{deployment="smoke"}',
    )
    for needle in expected:
        assert needle in body, f"missing from exposition: {needle!r}"
    print(f"prometheus: {n_samples} samples, exposition syntax valid")
finally:
    if server.poll() is None:
        server.send_signal(signal.SIGTERM)
        try:
            server.wait(timeout=60.0)
        except subprocess.TimeoutExpired:
            server.kill()

assert server.returncode == 0, f"serve exited {server.returncode}"
print("obs smoke: profile tree + prometheus scrape OK")
