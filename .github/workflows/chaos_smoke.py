"""CI smoke test: the chaos engine end to end through the CLI.

Runs one small preset through ``vn2 chaos run`` (parallel, trace saved to
the work directory), then scores the full preset library with
``vn2 chaos score --gate --json`` — the gated scorecard JSON is uploaded
as the job's artifact and the job fails if any preset's family detection
rate lands below its floor.  Finally replays the single-preset score from
the warm cache and asserts the two JSON documents agree, the CLI-level
determinism check.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

work = Path(os.environ.get("VN2_CHAOS_DIR", "chaos-smoke"))
work.mkdir(parents=True, exist_ok=True)

SMOKE_PRESET = "correlated-bursts"


def vn2(*args: str) -> int:
    command = [sys.executable, "-m", "repro.cli", *args]
    print("+", " ".join(command), flush=True)
    return subprocess.call(command)


rc = vn2(
    "chaos", "run", "--preset", SMOKE_PRESET, "--scale", "tiny",
    "--jobs", "2", "--output", str(work / f"{SMOKE_PRESET}.npz"),
)
assert rc == 0, f"vn2 chaos run failed with {rc}"
assert (work / f"{SMOKE_PRESET}.npz").stat().st_size > 0

rc = vn2(
    "chaos", "score", "--preset", "all", "--scale", "tiny", "--jobs", "2",
    "--gate", "--json", str(work / "scorecard.json"),
)
assert rc == 0, f"vn2 chaos score --gate failed with {rc}"

doc = json.loads((work / "scorecard.json").read_text())
assert doc["ok"], doc["gate_failures"]
names = {card["scenario"] for card in doc["presets"]}
print(f"scored presets: {sorted(names)}")
assert SMOKE_PRESET in names
for card in doc["presets"]:
    assert card["families"], card["scenario"]

# Determinism at the CLI boundary: scoring the smoke preset again (warm
# cache) must reproduce its scorecard rows exactly.
rc = vn2(
    "chaos", "score", "--preset", SMOKE_PRESET, "--scale", "tiny",
    "--json", str(work / "rescore.json"),
)
assert rc == 0
first = next(c for c in doc["presets"] if c["scenario"] == SMOKE_PRESET)
again = json.loads((work / "rescore.json").read_text())["presets"][0]
assert first == again, "re-scored preset diverged from the suite run"

print("chaos smoke OK")
