"""CI smoke test: the live dashboard on a 2-worker sink, end to end.

What it proves, in order:

1. ``vn2 serve --workers 2 --dashboard`` starts a process-pool backend
   with the dashboard routes live (``/health`` reports
   ``dashboard: true`` plus ``uptime_s``/``model_version``);
2. an SSE client attached *before* the replay receives the complete
   incident feed while the testbed trace streams through the load
   generator — every captured data payload validates against the
   documented stream contract (``validate_stream_event``), and the
   event objects match ``vn2 watch`` over the same file byte for byte;
3. ``GET /api/topology`` — the *merged* cluster view, nodes summarized
   inside worker processes and assembled by the front door — validates
   against the documented topology contract (``validate_topology_doc``)
   and covers every node the trace contains;
4. the Prometheus scrape carries a ``# HELP`` line for every metric
   (``validate_exposition(require_help=True)``) including the
   ``repro_dashboard_*`` family, and ``/dashboard`` serves the page.

The topology document, the captured SSE stream, the scrape and the
loadgen report are kept as the job's artifacts.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path
from urllib.request import urlopen

from repro.core.pipeline import VN2, VN2Config
from repro.dashboard import validate_stream_event, validate_topology_doc
from repro.obs import validate_exposition
from repro.service.client import http_get_json
from repro.traces.frame import as_frame
from repro.traces.io import save_frame_jsonl
from repro.traces.testbed import TestbedScenario, generate_testbed_trace

N_WORKERS = 2
CAPTURE_IDLE_S = 5.0

work = Path(os.environ.get("VN2_DASHBOARD_DIR", "dashboard-smoke"))
work.mkdir(parents=True, exist_ok=True)

trace = generate_testbed_trace(TestbedScenario.EXPANSIVE, seed=7)
frame = as_frame(trace)
VN2(VN2Config(rank=10, filter_exceptions=False)).fit(trace).save(work / "model")

save_frame_jsonl(frame, work / "node-major.jsonl")
header, *rows = (work / "node-major.jsonl").read_text().splitlines()


def _arrival_key(line):
    obj = json.loads(line)
    return (obj["generated_at"], obj["node_id"], obj["epoch"])


trace_path = work / "trace.jsonl"
trace_path.write_text(
    "\n".join([header] + sorted(rows, key=_arrival_key)) + "\n"
)

# --- 1. Reference: vn2 watch over the complete, arrival-ordered file.
watch_log = work / "watch-events.jsonl"
rc = subprocess.call([
    sys.executable, "-m", "repro.cli", "watch", str(trace_path),
    "--model", str(work / "model"), "--no-follow",
    "--output", str(watch_log),
])
assert rc == 0, f"vn2 watch exited {rc}"
reference = [json.loads(line) for line in watch_log.read_text().splitlines()]
assert reference, "watch produced no incident events"

# --- 2. vn2 serve --workers 2 --dashboard.
ready = work / "ports.json"
server = subprocess.Popen([
    sys.executable, "-m", "repro.cli", "serve", str(work / "model"),
    "--port", "0", "--http-port", "0", "--workers", str(N_WORKERS),
    "--dashboard", "--positions-from", str(trace_path),
    "--ready-file", str(ready),
])
try:
    deadline = time.monotonic() + 120.0
    while not ready.exists():
        assert server.poll() is None, "server exited before becoming ready"
        assert time.monotonic() < deadline, "no ready file within 120s"
        time.sleep(0.05)
    ports = json.loads(ready.read_text())
    assert ports["backend"] == "pool", ports

    health = http_get_json("127.0.0.1", ports["http_port"], "/health")
    assert health["dashboard"] is True, health
    assert health["uptime_s"] >= 0.0 and health["model_version"], health

    # --- 3. Attach the SSE client before any packet flows.
    sse = socket.create_connection(("127.0.0.1", ports["http_port"]),
                                   timeout=10.0)
    sse.sendall(b"GET /api/incidents/stream HTTP/1.1\r\nHost: ci\r\n\r\n")
    chunks = []

    def _read_stream():
        try:
            while True:
                data = sse.recv(65536)
                if not data:
                    return
                chunks.append(data)
        except OSError:
            return

    reader = threading.Thread(target=_read_stream, daemon=True)
    reader.start()
    deadline = time.monotonic() + 10.0
    while b"event: hello" not in b"".join(chunks):
        assert time.monotonic() < deadline, "no hello frame within 10s"
        time.sleep(0.05)

    # --- 4. Replay the trace through the loadgen CLI.
    rc = subprocess.call([
        sys.executable, "-m", "repro.service.loadgen", str(trace_path),
        "--port", str(ports["port"]), "--deployment", "smoke",
        "--batch", "256", "--report", str(work / "loadgen-report.json"),
    ])
    assert rc == 0, f"loadgen exited {rc}"
    report = json.loads((work / "loadgen-report.json").read_text())
    assert report["packets_sent"] == len(frame), report

    # --- 5. Capture the stream until it idles (>= CAPTURE_IDLE_S quiet).
    quiet_since = time.monotonic()
    seen = len(b"".join(chunks))
    while time.monotonic() - quiet_since < CAPTURE_IDLE_S:
        time.sleep(0.25)
        size = len(b"".join(chunks))
        if size != seen:
            seen, quiet_since = size, time.monotonic()
    sse.close()
    reader.join(timeout=10.0)

    raw = b"".join(chunks)
    (work / "incidents-stream.sse").write_bytes(raw)
    payloads = [
        json.loads(line[6:])
        for block in raw.partition(b"\r\n\r\n")[2].split(b"\n\n")
        for line in block.split(b"\n")
        if line.startswith(b"data: ")
    ]
    kinds = [validate_stream_event(p) for p in payloads]
    assert kinds.count("hello") == 1, kinds
    served = [p["event"] for p in payloads if p["type"] == "event"]
    # Bit-identity: the SSE feed is the watch stream.  The watch log may
    # additionally end with flush-close events — watch emits those at
    # EOF, the sink only at SIGTERM drain (after this capture ended) —
    # so the served stream must be a prefix and the remainder all closes.
    assert served, "SSE served no incident events"
    assert served == reference[:len(served)], (
        f"SSE stream diverges from the watch log "
        f"(served {len(served)}, watch {len(reference)})"
    )
    tail = reference[len(served):]
    assert all(e["kind"] == "close" for e in tail), (
        f"watch log tail beyond the SSE capture is not all flush-closes: "
        f"{[e['kind'] for e in tail]}"
    )

    # --- 6. The merged topology document.
    topology = http_get_json("127.0.0.1", ports["http_port"], "/api/topology")
    (work / "topology.json").write_text(json.dumps(topology, indent=2))
    n_nodes = validate_topology_doc(topology)
    trace_nodes = {json.loads(line)["node_id"] for line in rows}
    assert n_nodes == len(trace_nodes), (n_nodes, len(trace_nodes))
    smoke = topology["deployments"]["smoke"]
    assert smoke["edges"], "no collection-tree edges inferred"
    assert topology["server"]["backend"] == "pool", topology["server"]

    series = http_get_json("127.0.0.1", ports["http_port"], "/api/series")
    (work / "series.json").write_text(json.dumps(series, indent=2))
    assert "repro_dashboard_events_total" in series["metrics"], (
        sorted(series["metrics"])
    )

    # --- 7. Every scraped metric documents itself with # HELP.
    url = (f"http://127.0.0.1:{ports['http_port']}"
           "/metrics?format=prometheus")
    with urlopen(url, timeout=10.0) as response:
        scrape = response.read().decode("utf-8")
    (work / "metrics.prom").write_text(scrape)
    samples = validate_exposition(scrape, require_help=True)
    assert samples > 0
    assert "# HELP repro_dashboard_clients_total" in scrape

    with urlopen(f"http://127.0.0.1:{ports['http_port']}/dashboard",
                 timeout=10.0) as response:
        page = response.read()
    assert b"/api/incidents/stream" in page and len(page) > 4096

    # --- 8. Graceful shutdown.
    server.send_signal(signal.SIGTERM)
    assert server.wait(timeout=120.0) == 0, "serve did not drain cleanly"
finally:
    if server.poll() is None:
        server.kill()

print(
    f"dashboard served {len(served)} SSE incident events over "
    f"{len(frame)} packets ({N_WORKERS} workers), topology covers "
    f"{n_nodes} nodes / {len(smoke['edges'])} edges, {samples} metric "
    "samples all documented -- identical to vn2 watch"
)
