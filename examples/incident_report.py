"""Post-mortem incident report: combination diagnosis + PRR impact.

Run:  python examples/incident_report.py

Implements the paper's two future-work items on top of the core tool:

* **combination diagnosis** — per-state NNLS diagnoses are clustered
  spatio-temporally into network-level *incidents* ("a routing loop over
  nodes {21, 22} from t=2400 to t=4800");
* **protocol performance estimation** — each root cause gets a fitted
  *PRR cost*, so the report says not just what happened but what it cost.

The trace under investigation carries three simultaneous hazards (routing
loop + interference + traffic burst) in its middle window — the exact
situation single-cause diagnosers garble.
"""

from repro.analysis.baseline_comparison import build_multicause_trace
from repro.analysis.performance import estimate_cause_costs
from repro.core.incidents import incidents_from_trace
from repro.core.pipeline import VN2, VN2Config


def main() -> None:
    print("simulating the incident (loop + jamming + burst) ...")
    trace = build_multicause_trace(seed=21)
    window = trace.metadata["window"]
    print(
        f"trace: {len(trace)} snapshots, delivery {trace.delivery_ratio():.3f}; "
        f"fault window [{window[0]:.0f}, {window[1]:.0f})s\n"
    )

    print("training VN2 on the full history (unsupervised) ...")
    tool = VN2(VN2Config(rank=12)).fit(trace)

    print("\n=== Incident report ===")
    incidents = incidents_from_trace(tool, trace, min_observations=3)
    if not incidents:
        print("no incidents found")
    for rank, incident in enumerate(incidents[:8], start=1):
        marker = (
            " <- fault window"
            if incident.overlaps(window[0], window[1] + 600.0)
            else ""
        )
        print(f"{rank}. {incident.describe()}{marker}")

    print("\n=== Estimated PRR cost per root cause ===")
    model = estimate_cause_costs(tool, trace, bin_seconds=600.0)
    print(model.to_text())

    print(
        "\nreading: 'mean impact' is how many PRR points each cause "
        "typically costs;\nthe top rows should be the loop/contention "
        "signatures active in the fault window."
    )


if __name__ == "__main__":
    main()
