"""Online monitoring: diagnose states as they arrive at the sink.

Run:  python examples/live_monitoring.py

VN2's deployment mode: the network runs clean for two hours, a model is
trained on that history, and then monitoring continues *on the same
network* while an operator watches.  Every simulated half-hour the script
pulls newly completed snapshots from the sink, keeps only the states that
score as exceptions against the training statistics (the paper's ε rule,
applied online), and prints one aggregated alert per node.  Midway
through, a battery-drain fault and an interference burst are injected —
the alerts should pick both up without being told anything.
"""

from collections import Counter, defaultdict

from repro import VN2, VN2Config
from repro.core.states import build_states
from repro.simnet import FaultInjector, Network, NetworkConfig, grid_topology
from repro.simnet.faults import BatteryDrain, Interference
from repro.simnet.radio import RadioParams
from repro.traces.records import trace_from_network

TRAIN_HOURS = 2.0
MONITOR_HOURS = 3.0
WINDOW_S = 1800.0


def main() -> None:
    topology = grid_topology(rows=7, cols=5, spacing=8.0)
    network = Network(topology, NetworkConfig(
        report_period_s=120.0,
        seed=4,
        radio=RadioParams(tx_power_dbm=-10.0),
        max_range_m=40.0,
    ))

    # --- Phase 1: clean history to learn from.
    print(f"running {TRAIN_HOURS:.0f} clean hours to train on ...")
    train_end = TRAIN_HOURS * 3600.0
    network.run(train_end)
    model = VN2(VN2Config(rank=8, filter_exceptions=False)).fit(
        trace_from_network(network)
    )
    print(f"model ready: r={model.rank_}\n")

    # --- Phase 2: live monitoring with faults injected mid-run.
    drain_start = train_end + 1800.0
    interference_window = (train_end + 4500.0, train_end + 7500.0)
    FaultInjector(
        [
            BatteryDrain(17, start=drain_start, end=train_end + 10800.0,
                         multiplier=25000.0),
            Interference(
                center=(16.0, 24.0), radius=18.0,
                start=interference_window[0], end=interference_window[1],
                delta_db=18.0,
            ),
        ]
    ).install(network)

    seen: set = set()
    n_windows = int(MONITOR_HOURS * 3600.0 / WINDOW_S)
    for _ in range(n_windows):
        network.run(WINDOW_S)
        now = network.sim.now()
        trace = trace_from_network(network)
        states = build_states(trace).in_window(now - WINDOW_S, now + 1.0)

        node_causes: dict = defaultdict(Counter)
        for i in range(len(states)):
            p = states.provenance[i]
            key = (p.node_id, p.epoch_to)
            if key in seen:
                continue
            seen.add(key)
            if not model.is_exception(states.values[i], threshold_ratio=0.05):
                continue
            report = model.diagnose(states.values[i])
            for cause in report.ranked[:2]:
                if not cause.label.is_baseline and cause.strength > 0.3:
                    hazard = cause.label.primary_hazard or cause.label.family
                    node_causes[p.node_id][hazard] += 1

        # Liveness: a node whose reports stopped arriving is itself an
        # alarm (state-delta diagnosis cannot see a silent node).
        last_report: dict = {}
        for row in trace.rows:
            last_report[row.node_id] = max(
                last_report.get(row.node_id, 0.0), row.generated_at
            )
        silent = sorted(
            node_id
            for node_id, seen_at in last_report.items()
            if now - seen_at > 4 * 120.0
        )

        minutes = (now - train_end) / 60.0
        quiet = True
        for node_id in sorted(node_causes):
            top = ", ".join(
                f"{hazard} x{count}"
                for hazard, count in node_causes[node_id].most_common(2)
            )
            print(f"[t=+{minutes:4.0f}min] ALERT node {node_id}: {top}")
            quiet = False
        if silent:
            listed = ", ".join(str(n) for n in silent)
            print(
                f"[t=+{minutes:4.0f}min] SILENT ({len(silent)} nodes, no "
                f"complete reports): {listed}"
            )
            quiet = False
        if quiet:
            print(f"[t=+{minutes:4.0f}min] all quiet")

    print(
        "\n(ground truth: battery drain on node 17 from +30min; "
        "interference near the grid center +75..+125min)"
    )


if __name__ == "__main__":
    main()
