"""Online monitoring through the diagnosis sink server.

Run:  python examples/live_monitoring.py

VN2's deployment mode, end to end: the network runs clean for two hours,
a model is trained on that history, and monitoring continues *on the
same network* while an operator watches.  Unlike the in-process variant
this example used to be, the diagnosis now runs behind the real service
boundary — the trained model is hosted by a ``repro.service`` sink
(``vn2 serve`` in-process), every simulated half-hour's new snapshots
are submitted over TCP with the client SDK, and the alerts printed below
are the server's own incident-event subscription stream.  Midway
through, a battery-drain fault and an interference burst are injected —
the incidents should pick both up without being told anything.
"""

import threading
import time

from repro import VN2, VN2Config
from repro.service import (
    ServiceClient,
    ServiceConfig,
    http_get_json,
    start_service_thread,
)
from repro.simnet import FaultInjector, Network, NetworkConfig, grid_topology
from repro.simnet.faults import BatteryDrain, Interference
from repro.simnet.radio import RadioParams
from repro.traces.records import trace_from_network

TRAIN_HOURS = 2.0
MONITOR_HOURS = 3.0
WINDOW_S = 1800.0
DEPLOYMENT = "field"


def _fmt_nodes(node_ids, limit=6):
    listed = ", ".join(str(n) for n in node_ids[:limit])
    extra = len(node_ids) - limit
    return f"[{listed}]" + (f" (+{extra})" if extra > 0 else "")


def main() -> None:
    topology = grid_topology(rows=7, cols=5, spacing=8.0)
    network = Network(topology, NetworkConfig(
        report_period_s=120.0,
        seed=4,
        radio=RadioParams(tx_power_dbm=-10.0),
        max_range_m=40.0,
    ))

    # --- Phase 1: clean history to learn from.
    print(f"running {TRAIN_HOURS:.0f} clean hours to train on ...")
    train_end = TRAIN_HOURS * 3600.0
    network.run(train_end)
    model = VN2(VN2Config(rank=8, filter_exceptions=False)).fit(
        trace_from_network(network)
    )
    print(f"model ready: r={model.rank_}")

    # --- Phase 2: the model goes behind the service boundary.  The sink
    # gets the grid positions so incidents merge spatially, and the
    # screen/strength knobs this scenario needs.
    config = ServiceConfig(
        port=0, http_port=0,
        threshold_ratio=0.05,
        min_strength=0.3,
        time_gap_s=1800.0,
        radius_m=20.0,
        positions=dict(topology.positions),
    )
    with start_service_thread(model, config) as handle:
        # The sink reports which model it is serving — the content-hash
        # version every session's metrics are labelled with.
        health = http_get_json("127.0.0.1", handle.http_port, "/health")
        print(f"sink listening on 127.0.0.1:{handle.port} "
              f"(operator http :{handle.http_port}, "
              f"serving model_version {health['model_version']})\n")

        events: list = []

        def subscribe() -> None:
            subscriber = ServiceClient(port=handle.port)
            for event in subscriber.events(DEPLOYMENT):
                events.append(event)
            subscriber.close()

        listener = threading.Thread(target=subscribe, daemon=True)
        listener.start()
        while not handle.run_sync(
            lambda: handle.service.shard(DEPLOYMENT).subscribers
        ):
            time.sleep(0.01)

        # --- Phase 3: live monitoring with faults injected mid-run.
        drain_start = train_end + 1800.0
        interference_window = (train_end + 4500.0, train_end + 7500.0)
        FaultInjector(
            [
                BatteryDrain(17, start=drain_start, end=train_end + 10800.0,
                             multiplier=25000.0),
                Interference(
                    center=(16.0, 24.0), radius=18.0,
                    start=interference_window[0],
                    end=interference_window[1],
                    delta_db=18.0,
                ),
            ]
        ).install(network)

        client = ServiceClient(port=handle.port)
        submitted: set = set()
        cursor = 0
        n_windows = int(MONITOR_HOURS * 3600.0 / WINDOW_S)
        for _ in range(n_windows):
            network.run(WINDOW_S)
            now = network.sim.now()
            trace = trace_from_network(network)

            # Ship this window's new snapshots, oldest first — the same
            # packets a real collector would forward to the sink.
            fresh = [
                row for row in trace.rows
                if (row.node_id, row.epoch) not in submitted
            ]
            fresh.sort(key=lambda r: (r.generated_at, r.node_id, r.epoch))
            submitted.update((r.node_id, r.epoch) for r in fresh)
            if fresh:
                client.submit(DEPLOYMENT, fresh)

            # Wait for the shard to diagnose the batch before reporting.
            while client.metrics(handle.http_port)["totals"][
                "queue_depth_packets"
            ]:
                time.sleep(0.02)

            # Liveness: a node whose reports stopped arriving is itself
            # an alarm (state-delta diagnosis cannot see a silent node).
            last_report: dict = {}
            for row in trace.rows:
                last_report[row.node_id] = max(
                    last_report.get(row.node_id, 0.0), row.generated_at
                )
            silent = sorted(
                node_id
                for node_id, seen_at in last_report.items()
                if now - seen_at > 4 * 120.0
            )

            minutes = (now - train_end) / 60.0
            quiet = True
            for event in events[cursor:]:
                if event["kind"] == "update":
                    continue
                print(f"[t=+{minutes:4.0f}min] "
                      f"{event['kind'].upper():5s} incident "
                      f"#{event['incident_id']} {event['hazard']}: "
                      f"nodes {_fmt_nodes(event['node_ids'])}, "
                      f"peak {event['peak_strength']:.2f}")
                quiet = False
            cursor = len(events)
            if silent:
                print(f"[t=+{minutes:4.0f}min] SILENT ({len(silent)} nodes, "
                      f"no complete reports): "
                      f"{', '.join(str(n) for n in silent)}")
                quiet = False
            if quiet:
                print(f"[t=+{minutes:4.0f}min] all quiet")

        client.close()
        # Graceful drain: open incidents flush as close events to the
        # subscription before the server hangs up.
        handle.stop(drain=True)
        listener.join(timeout=10.0)

    for event in events[cursor:]:
        if event["kind"] == "close":
            print(f"[drain ] CLOSE incident #{event['incident_id']} "
                  f"{event['hazard']}: nodes {_fmt_nodes(event['node_ids'])}, "
                  f"{event['n_observations']} observations")

    print(
        "\n(ground truth: battery drain on node 17 from +30min; "
        "interference near the grid center +75..+125min)"
    )


if __name__ == "__main__":
    main()
