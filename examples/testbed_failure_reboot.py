"""The paper's testbed experiment (Section V-A), end to end.

Run:  python examples/testbed_failure_reboot.py [--scenario local|expansive]

45 TelosB-like nodes in a 9x5 grid report every 3 minutes for ~2 hours
while 5-7 nodes are removed (and some put back) every 10 minutes.  The
first hour trains Ψ with r = 10 and no exception filter — exactly the
paper's choices — and the second hour tests that the same root causes
explain the new states (Fig 5 h/i), that failure and reboot events light
up different rows (Fig 5 g), and that the four discussed signature vectors
exist in Ψ (Fig 5 c-f).
"""

import argparse

from repro.analysis.testbed_experiments import (
    exp_fig5b,
    exp_fig5cf,
    exp_fig5g,
    exp_fig5hi,
)
from repro.traces.testbed import TestbedScenario, generate_testbed_trace


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scenario", choices=["local", "expansive"], default="expansive"
    )
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()
    scenario = TestbedScenario(args.scenario)

    print(f"simulating testbed ({scenario.value} removal, seed {args.seed})...")
    trace = generate_testbed_trace(scenario, seed=args.seed)
    print(
        f"  {len(trace)} snapshots, {len(trace.ground_truth)} injected events, "
        f"delivery {trace.delivery_ratio():.3f}\n"
    )

    print("=== Fig 5(b): training states vs Ψ rows ===")
    fig5b = exp_fig5b(trace)
    print(fig5b.to_text(), "\n")

    print("=== Fig 5(c-f): signature vectors ===")
    print(exp_fig5cf(fig5b.tool).to_text(), "\n")

    print("=== Fig 5(g): failure vs reboot strength profiles ===")
    print(exp_fig5g(fig5b.tool, trace).to_text(), "\n")

    print("=== Fig 5(h)/(i): train-vs-test profile agreement ===")
    result = exp_fig5hi(scenario, seed=args.seed, trace=trace)
    print(result.to_text())


if __name__ == "__main__":
    main()
