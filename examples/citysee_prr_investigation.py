"""The paper's CitySee field study (Section V-B), end to end.

Run:  python examples/citysee_prr_investigation.py [--profile tiny|small|medium]

A CitySee-like deployment is simulated twice: a clean run trains the
representative matrix Ψ, and a 14-day run containing a concentrated
degradation episode (days 6-8: routing loops + interference + node
failures) plays the paper's Sep 14-27 trace.  The investigation then
follows the paper exactly:

1. plot the sink PRR and spot the degradation window (Fig 6a),
2. correlate that window's states against Ψ (Fig 6b),
3. decode the top rows into root causes (Fig 6c) — expecting the loop,
   contention and node-failure families the paper found.
"""

import argparse

from repro.analysis.citysee_experiments import run_citysee_study
from repro.traces.citysee import CitySeeProfile


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--profile", choices=["tiny", "small", "medium"], default="small"
    )
    parser.add_argument("--rank", type=int, default=20)
    args = parser.parse_args()
    profile = {
        "tiny": CitySeeProfile.tiny,
        "small": CitySeeProfile.small,
        "medium": CitySeeProfile.medium,
    }[args.profile]()

    print(f"running CitySee study ({args.profile} profile) ...")
    _tool, trace, fig6a, fig6b, fig6c = run_citysee_study(profile, rank=args.rank)
    print(
        f"episode trace: {len(trace)} snapshots, "
        f"delivery {trace.delivery_ratio():.3f}\n"
    )

    print("=== Fig 6(a): sink PRR ===")
    print(fig6a.to_text())
    print(f"degradation episode detected: {fig6a.episode_detected()}\n")

    print("=== Fig 6(b): root-cause strengths over the degraded window ===")
    print(fig6b.to_text(), "\n")

    print("=== Fig 6(c): what happened? ===")
    print(fig6c.to_text())


if __name__ == "__main__":
    main()
