"""Why multi-cause attribution matters: VN2 vs classic diagnosers.

Run:  python examples/compare_baselines.py

Reproduces the paper's motivating argument as a live comparison.  A
routing loop, an interference region and a traffic burst act
*simultaneously* on one window of a 36-node network.  Four diagnosers
look at the same states:

* VN2 — NNLS against the learned Ψ: names several causes per state;
* Sympathy-style decision tree — stops at its first matching check;
* Agnostic Diagnosis — correlation-graph drift: flags nodes, explains
  nothing;
* PCA — subspace residual: flags states, explains nothing.
"""

from repro.analysis.baseline_comparison import (
    build_multicause_trace,
    exp_baselines,
)
from repro.baselines.sympathy import SympathyDiagnoser
from repro.core.pipeline import VN2, VN2Config
from repro.core.states import build_states


def main() -> None:
    print("simulating simultaneous loop + jamming + burst ...")
    trace = build_multicause_trace(seed=21)
    window = trace.metadata["window"]
    print(
        f"trace: {len(trace)} snapshots; fault window "
        f"[{window[0]:.0f}, {window[1]:.0f})s\n"
    )

    print("=== scoreboard ===")
    result = exp_baselines(trace)
    print(result.to_text())

    # Show one concrete state both tools disagree about.
    states = build_states(trace)
    tool = VN2(VN2Config(rank=12)).fit_states(states)
    sympathy = SympathyDiagnoser().fit(states.in_window(0.0, float(window[0])))

    in_window = [
        i for i, p in enumerate(states.provenance)
        if p.node_id in (21, 22) and p.time_from >= window[0]
        and p.time_to <= window[1] + 600.0
    ]
    if in_window:
        # pick the most exceptional of the loop nodes' window states
        idx = max(
            in_window, key=lambda i: tool.exception_score(states.values[i])
        )
        state = states.values[idx]
        p = states.provenance[idx]
        print(f"\n=== one state, two stories (node {p.node_id}, "
              f"t=[{p.time_from:.0f},{p.time_to:.0f})s) ===")
        report = tool.diagnose(state)
        print("VN2:     ", report.summary())
        verdict = sympathy.diagnose(state)
        print("Sympathy:", verdict.cause or "looks fine",
              f"(checked {verdict.metric})" if verdict.metric else "")


if __name__ == "__main__":
    main()
