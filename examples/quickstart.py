"""Quickstart: simulate a sensor network, train VN2, diagnose a fault.

Run:  python examples/quickstart.py

The script builds a 45-node grid, injects a routing loop, trains the
representative matrix Ψ on the collected trace, and then asks VN2 to
explain the state of one of the looped nodes — expecting the loop
signature (transmit/duplicate/loop counters inflating together) among the
top-ranked root causes.
"""

from repro import VN2, VN2Config
from repro.core.states import build_states
from repro.simnet import (
    ForcedLoop,
    FaultInjector,
    Network,
    NetworkConfig,
    grid_topology,
)
from repro.simnet.radio import RadioParams
from repro.traces.records import trace_from_network


def main() -> None:
    # 1. Simulate: a 9x5 grid reporting every 2 minutes for 1.5 hours,
    #    with a 10-minute routing loop injected in the middle.
    topology = grid_topology(rows=9, cols=5, spacing=8.0)
    config = NetworkConfig(
        report_period_s=120.0,
        seed=7,
        radio=RadioParams(tx_power_dbm=-10.0),
        max_range_m=40.0,
    )
    network = Network(topology, config)
    FaultInjector(
        [
            # Three loop pulses give the factorization enough loop states
            # to dedicate a representative vector to the signature.
            ForcedLoop(22, 27, start=2400.0, end=2700.0),
            ForcedLoop(22, 27, start=3000.0, end=3300.0),
            ForcedLoop(22, 27, start=3600.0, end=3900.0),
        ]
    ).install(network)
    network.run(5400.0)
    trace = trace_from_network(network)
    print(
        f"trace: {len(trace)} snapshots from {len(trace.node_ids)} nodes, "
        f"delivery ratio {trace.delivery_ratio():.3f}"
    )

    # 2. Train: compress the trace's exception states into Ψ (r = 8).
    tool = VN2(VN2Config(rank=8)).fit(trace)
    print(f"\nrepresentative matrix Ψ: {tool.psi.shape[0]} root-cause vectors")
    for label in tool.labels:
        marker = " (baseline)" if label.is_baseline else ""
        print(f"  Ψ{label.index + 1}: {label.primary_hazard or label.family}{marker}")

    # 3. Diagnose: pick the looped node's state covering the fault window
    #    and ask which root causes explain it.
    states = build_states(trace).for_node(22)
    in_fault = [
        i
        for i, p in enumerate(states.provenance)
        if p.time_from <= 2550.0 <= p.time_to
    ]
    state = states.values[in_fault[0]] if in_fault else states.values[-1]
    report = tool.diagnose(state)
    print(f"\ndiagnosis of node 22 during the loop:\n  {report.summary()}")
    if report.primary is not None:
        print(f"\nexplanation of the top cause:\n  {report.primary.label.explanation}")


if __name__ == "__main__":
    main()
