"""F4 — Fig 4: six representative vectors in three families.

Paper shape: Ψ rows fall into three interpretable families — physical/
environmental metrics (C1), link quality (C2 RSSI/ETX), and protocol
counters (C3) — with two examples shown per family.
"""

from repro.analysis.figures34 import exp_fig4


def test_bench_fig4(benchmark, citysee_tool):
    result = benchmark.pedantic(
        lambda: exp_fig4(citysee_tool, per_family=2), rounds=1, iterations=1
    )
    print("\n=== Fig 4: representative-vector families ===")
    print(result.to_text())

    # at least two of the paper's three families appear among the rows
    # (environment faults are rarer in scaled traces)
    assert len(result.families_covered) >= 2
    assert "link" in result.families_covered or "protocol" in result.families_covered
    for row in result.rows:
        # every displayed profile is in the paper's [-1, 1] convention
        assert abs(row.profile).max() <= 1.0 + 1e-9
        assert row.label.top_metrics, "each vector has dominant metrics"
