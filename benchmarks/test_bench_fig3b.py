"""F3b — Fig 3(b): approximation accuracy vs r, dense W vs sparse W-bar.

Paper shape: error rises steeply once r is small; the sparse curve sits
above the dense curve, and their gap widens at large r; the knee lands at
an intermediate rank (25 for the paper's 43-metric CitySee data).
"""

import numpy as np

from repro.analysis.figures34 import exp_fig3b


def test_bench_fig3b(benchmark, citysee_trace):
    result = benchmark.pedantic(
        lambda: exp_fig3b(citysee_trace, ranks=range(5, 41, 5)),
        rounds=1,
        iterations=1,
    )
    print("\n=== Fig 3(b): accuracy vs compression factor r ===")
    print(result.to_text())

    dense = result.accuracy_dense
    sparse = result.accuracy_sparse
    # dense error decreases monotonically (NMF capacity grows with r)
    assert np.all(np.diff(dense) <= 1e-6)
    # sparse curve dominates dense everywhere
    assert np.all(sparse >= dense - 1e-9)
    # steep region at small r: the first step improves more than the last
    first_gain = dense[0] - dense[1]
    last_gain = dense[-2] - dense[-1]
    assert first_gain > last_gain
    # sparse-dense gap is wider at the large-r end than at the knee
    gaps = sparse - dense
    assert gaps[-1] > gaps.min()
    # the knee is an interior rank, as in the paper (r=25 of [5..40])
    assert result.ranks[0] < result.chosen_rank <= result.ranks[-1]
