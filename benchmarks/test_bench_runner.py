"""R2 — the scenario runner, paired: parallel sweep vs serial sweep.

A 4-job CitySee seed sweep (cache disabled, so both arms pay full
simulation cost) is generated twice: inline with one worker, then
sharded across a 4-worker process pool.  The parallel arm must return
**bit-identical** frames — that assertion runs on any machine — and on
hardware with at least 4 cores it must be at least 2x faster wall-clock,
the acceptance gate for the process-pool engine.  The per-job timing
table (worker pids, per-run seconds) is printed for both arms.
"""

import os
import time

import numpy as np
import pytest

from repro.runner import citysee_seed_sweep, run_jobs
from repro.traces.citysee import CitySeeProfile

N_SWEEP_JOBS = 4
SPEEDUP_GATE = 2.0

_COLUMNS = (
    "node_ids", "epochs", "generated_at", "received_at",
    "values", "arrival_times", "arrival_nodes",
)


def _sweep_jobs():
    return citysee_seed_sweep(
        CitySeeProfile.tiny(days=0.75), N_SWEEP_JOBS, namespace="bench"
    )


@pytest.fixture(scope="module")
def paired_reports():
    """Both arms, run once: (serial report, parallel report)."""
    jobs = _sweep_jobs()
    serial = run_jobs(jobs, n_workers=1, use_cache=False)
    parallel = run_jobs(jobs, n_workers=N_SWEEP_JOBS, use_cache=False)
    assert serial.ok and parallel.ok
    return serial, parallel


def test_bench_runner_parallel_bit_identical(benchmark, paired_reports):
    serial, parallel = paired_reports
    checked = benchmark.pedantic(
        lambda: [
            [
                np.array_equal(getattr(s, c), getattr(p, c))
                for c in _COLUMNS
            ]
            for s, p in zip(serial.frames(), parallel.frames())
        ],
        rounds=1,
        iterations=1,
    )
    print("\n=== Scenario runner: serial arm ===")
    print(serial.to_text())
    print("=== Scenario runner: parallel arm ===")
    print(parallel.to_text())
    assert all(all(row) for row in checked)
    # The parallel arm really crossed process boundaries.
    worker_pids = {r.pid for r in parallel.results}
    assert os.getpid() not in worker_pids
    assert len(worker_pids) > 1 or (os.cpu_count() or 1) == 1


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="speedup gate needs a 4+-core machine",
)
def test_bench_runner_speedup_at_least_2x(paired_reports):
    serial, parallel = paired_reports
    speedup = serial.total_seconds / max(parallel.total_seconds, 1e-9)
    print(
        f"\n=== Scenario runner speedup ===\n"
        f"serial   {serial.total_seconds:7.2f}s\n"
        f"parallel {parallel.total_seconds:7.2f}s  ({speedup:.2f}x)"
    )
    assert speedup >= SPEEDUP_GATE


def test_bench_runner_pool_spinup_overhead(benchmark):
    """Pool spin-up + spool of an already-cached 2-job grid (hot path).

    Keeps an eye on the fixed cost a ``--jobs N`` flag adds when the
    cache is warm: it should stay well under one simulated run.
    """
    jobs = _sweep_jobs()[:2]
    run_jobs(jobs, n_workers=1)  # warm the cache entries

    start = time.perf_counter()
    report = benchmark.pedantic(
        lambda: run_jobs(jobs, n_workers=2), rounds=1, iterations=1
    )
    elapsed = time.perf_counter() - start
    assert report.ok and len(report.frames()) == 2
    print(f"\nwarm-cache 2-job pool round trip: {elapsed:.2f}s")
