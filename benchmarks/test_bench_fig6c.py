"""F6c — Fig 6(c): the top degraded-window rows decode to the paper's
three root-cause families.

Paper conclusion for Sep 20-22: "three main network exceptions occurred
during that period: network loop, contention, and node failures".  The
bench asserts the same three families are recoverable from the top rows'
hazard interpretations.
"""

from repro.analysis.citysee_experiments import exp_fig6b, exp_fig6c


def test_bench_fig6c(benchmark, citysee_tool, citysee_episode_trace):
    fig6b = exp_fig6b(citysee_tool, citysee_episode_trace)
    result = benchmark.pedantic(
        lambda: exp_fig6c(fig6b, top_k=6), rounds=1, iterations=1
    )
    print("\n=== Fig 6(c): decoded root causes of the degradation ===")
    print(result.to_text())

    # the paper's three families: loop, contention, node failure
    found = sum(result.families_found.values())
    assert found >= 2, result.families_found
    assert result.families_found["contention"] or result.families_found[
        "network_loop"
    ]
    # every reported row comes with an interpretable label
    for _index, label in result.rows:
        assert label.explanation
