"""A3 (ablation) — Frobenius vs KL objectives on real exception data.

Lee-Seung give two NMF objectives; the paper's Algorithm 1 uses the
Euclidean one.  This ablation checks the choice: on the CitySee exception
matrix, each objective must win under its own loss (sanity), and the
Frobenius factorization is the one whose Ψ the rest of the pipeline
(NNLS, Definition 1's α) is built around.
"""

import numpy as np

from repro.core.exceptions import detect_exceptions
from repro.core.nmf import frobenius_loss, kl_divergence, nmf
from repro.core.normalization import MinMaxNormalizer
from repro.core.states import build_states


def test_bench_nmf_objectives(benchmark, citysee_trace):
    states = build_states(citysee_trace)
    exceptions = detect_exceptions(states)
    E = MinMaxNormalizer.fit(exceptions.states.values).transform(
        exceptions.states.values
    )

    def run():
        frob = nmf(E, 20, n_iter=300, init="nndsvd", objective="frobenius")
        kl = nmf(E, 20, n_iter=300, init="nndsvd", objective="kl")
        return frob, kl

    frob, kl = benchmark.pedantic(run, rounds=1, iterations=1)

    frob_by_frob = frobenius_loss(E, frob.W, frob.Psi)
    kl_by_frob = frobenius_loss(E, kl.W, kl.Psi)
    frob_by_kl = kl_divergence(E, frob.W, frob.Psi)
    kl_by_kl = kl_divergence(E, kl.W, kl.Psi)

    print("\n=== NMF objective ablation (r=20, CitySee exceptions) ===")
    print(f"frobenius-loss:  frobenius-fit={frob_by_frob:.3f}  kl-fit={kl_by_frob:.3f}")
    print(f"kl-divergence:   frobenius-fit={frob_by_kl:.3f}  kl-fit={kl_by_kl:.3f}")

    # each objective wins under its own metric (with small numerical slack)
    assert frob_by_frob <= kl_by_frob * 1.02
    assert kl_by_kl <= frob_by_kl * 1.02
    # both produce usable non-negative factorizations
    for result in (frob, kl):
        assert np.all(result.W >= 0) and np.all(result.Psi >= 0)
