"""Model-lifecycle acceptance benches: cheap absorbs, fast warm solves.

Two paired gates, both on the default CitySee model, both written to
``BENCH_pr8.json`` (``VN2_BENCH_DIR``) so CI keeps the numbers as an
artifact:

* **Absorb speedup**: absorbing a new batch of states with
  :func:`~repro.core.lifecycle.incremental_refit` (warm-started NMF +
  early stop) is >= 5x faster than the cold ``VN2.fit`` it replaces.
* **Warm-start p99**: per-packet streaming diagnosis through the
  warm-started solver pipeline (normal-equations Cholesky solves +
  cross-packet factorization cache + support seeding) has a p99 >=
  1.3x better than the per-packet diagnosis it replaced — cold block
  pivoting that starts every solve from zero and refactorizes every
  passive set with ``lstsq`` per call (the seed's solve path, kept
  verbatim in this module as the baseline).  Run at
  ``threshold_ratio=0.0`` so every completed state takes the solver
  path (the warm start's whole surface).

The same-solver cold-vs-warm ratio is *recorded* in the artifact too,
but deliberately not gated: on the default CitySee model NNLS supports
are dense (~19 of 20 causes active), so block pivoting's first pivot
already lands on a near-correct support and seeding alone is worth only
a few percent — the measured latency win comes from the factorization
reuse the warm session carries across packets.

Both gates are wall-clock ratios of *paired* runs in the same process,
so machine speed divides out; a tiny runner skips rather than flakes.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro.core.lifecycle import incremental_refit
from repro.core.pipeline import VN2, VN2Config
from repro.core.streaming import StreamingDiagnosisSession, iter_packets
from repro.obs import MetricsRegistry

ABSORB_SPEEDUP_FLOOR = 5.0
WARM_P99_FLOOR = 1.3

_TINY_RUNNER = (
    (os.cpu_count() or 1) < 2
    and not os.environ.get("VN2_BENCH_FORCE")
)


def _record(key: str, payload: dict) -> None:
    """Merge one bench's results into the PR's benchmark artifact."""
    path = os.path.join(
        os.environ.get("VN2_BENCH_DIR", "."), "BENCH_pr8.json"
    )
    doc = {}
    if os.path.exists(path):
        try:
            with open(path) as fh:
                doc = json.load(fh)
        except (OSError, ValueError):
            doc = {}
    doc[key] = payload
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2)


@pytest.mark.skipif(_TINY_RUNNER, reason="paired timing gate needs >1 core")
def test_bench_incremental_absorb_speedup(benchmark, citysee_default_trace):
    """incremental_refit vs the cold fit it replaces, same final data."""
    from repro.core.states import build_states

    frame = citysee_default_trace
    mid = float(np.quantile(np.asarray(frame.generated_at), 0.8))
    history = frame.window(0.0, mid)
    fresh = frame.window(mid, float(np.max(frame.generated_at)) + 1.0)
    # filter_exceptions=False is the shape where the refit's row-aligned
    # warm seed applies (old rows keep their previous weights) — and
    # also the shape where the cold fit actually pays for NMF over the
    # full state set, i.e. the cost the incremental path exists to dodge.
    config = VN2Config(rank=20, filter_exceptions=False)

    base = VN2(config).fit(history)
    new_states = build_states(fresh)

    def cold_fit():
        t0 = time.perf_counter()
        VN2(config).fit(frame)
        return time.perf_counter() - t0

    def absorb():
        import copy

        tool = copy.deepcopy(base)
        t0 = time.perf_counter()
        incremental_refit(tool, new_states, warm_iterations=60, tol=1e-3)
        return time.perf_counter() - t0, tool

    cold_s = cold_fit()
    warm_s, updated = benchmark.pedantic(absorb, rounds=1, iterations=1)
    speedup = cold_s / warm_s

    print("\n=== Incremental absorb vs cold fit (default CitySee) ===")
    print(f"cold VN2.fit      : {cold_s:.2f} s ({len(frame)} packets)")
    print(f"incremental_refit : {warm_s:.2f} s "
          f"({len(new_states)} new states absorbed)")
    print(f"speedup {speedup:.1f}x (floor {ABSORB_SPEEDUP_FLOOR:.0f}x)")

    _record("absorb_speedup", {
        "cold_fit_s": cold_s,
        "incremental_refit_s": warm_s,
        "speedup": speedup,
        "floor": ABSORB_SPEEDUP_FLOOR,
        "n_new_states": len(new_states),
        "warm_sweeps_used": updated.nmf_.n_iter,
    })

    # The absorb still produces a usable model of the same shape.
    assert updated.rank_ == 20
    assert updated.model_version != base.model_version
    assert speedup >= ABSORB_SPEEDUP_FLOOR, (
        f"absorb only {speedup:.1f}x faster than a cold fit "
        f"(floor {ABSORB_SPEEDUP_FLOOR:.0f}x)"
    )


def _baseline_solve_passive_sets(A, B, F, AtA, AtB, cache=None):
    """The seed's per-call solve path, verbatim: ``lstsq`` on the design
    matrix for every passive-set pattern, refactorized on every call.

    This is what per-packet diagnosis paid before the warm-started solver
    pipeline (no normal equations, no cross-packet factor reuse); the p99
    gate measures the streaming ingest improvement against it.  ``AtA`` /
    ``AtB`` / ``cache`` are accepted only to match the current signature.
    """
    r, k = F.shape
    X = np.zeros((r, k))
    if k == 0 or not F.any():
        return X
    patterns, inverse = np.unique(F.T, axis=0, return_inverse=True)
    for g in range(patterns.shape[0]):
        passive = np.flatnonzero(patterns[g])
        if passive.size == 0:
            continue
        cols = np.flatnonzero(inverse == g)
        solution = np.linalg.lstsq(A[:, passive], B[:, cols], rcond=None)[0]
        X[np.ix_(passive, cols)] = solution
    return X


@pytest.mark.skipif(_TINY_RUNNER, reason="paired timing gate needs >1 core")
def test_bench_warm_start_streaming_p99(benchmark, citysee_default_trace):
    """Paired per-packet latency: warm-started pipeline vs the seed path."""
    from repro.core import inference

    frame = citysee_default_trace
    tool = VN2(VN2Config(rank=20)).fit(frame)
    packets = list(iter_packets(frame))

    def replay(warm: bool) -> np.ndarray:
        session = StreamingDiagnosisSession(
            tool,
            registry=MetricsRegistry(enabled=False),
            threshold_ratio=0.0,  # every state through the solver
            warm_start=warm,
        )
        times = []
        for packet in packets:
            t0 = time.perf_counter()
            update = session.push_packet(*packet)
            if update is not None:
                times.append(time.perf_counter() - t0)
        session.finish()
        return np.asarray(times)

    replay(True)  # one warmup pass so allocator/cache effects divide out
    current = inference._solve_passive_sets
    inference._solve_passive_sets = _baseline_solve_passive_sets
    try:
        baseline = replay(False)
    finally:
        inference._solve_passive_sets = current
    cold = replay(False)  # current solver, no cross-packet caches
    warm = benchmark.pedantic(lambda: replay(True), rounds=1, iterations=1)
    assert len(warm) == len(cold) == len(baseline)

    baseline_p99 = float(np.percentile(baseline, 99))
    cold_p99 = float(np.percentile(cold, 99))
    warm_p99 = float(np.percentile(warm, 99))
    ratio = baseline_p99 / warm_p99

    print("\n=== Warm-started NNLS streaming p99 (default CitySee) ===")
    print(f"baseline p99 (seed lstsq path): {baseline_p99 * 1e3:.3f} ms "
          f"over {len(baseline)} state solves")
    print(f"cold p99 (current solver, no caches): {cold_p99 * 1e3:.3f} ms")
    print(f"warm p99 (seeded + factor cache): {warm_p99 * 1e3:.3f} ms")
    print(f"improvement {ratio:.2f}x (floor {WARM_P99_FLOOR:.1f}x); "
          f"same-solver cold/warm {cold_p99 / warm_p99:.2f}x (recorded)")

    _record("warm_start_p99", {
        "baseline_p99_ms": baseline_p99 * 1e3,
        "cold_p99_ms": cold_p99 * 1e3,
        "warm_p99_ms": warm_p99 * 1e3,
        "improvement": ratio,
        "same_solver_cold_over_warm": cold_p99 / warm_p99,
        "floor": WARM_P99_FLOOR,
        "n_solves": int(len(cold)),
    })

    assert ratio >= WARM_P99_FLOOR, (
        f"warm-started ingest p99 only {ratio:.2f}x better than the "
        f"seed's per-packet solve path (floor {WARM_P99_FLOOR:.1f}x)"
    )
