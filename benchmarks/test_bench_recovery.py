"""E4 (extension) — planted-root-cause recovery: does NMF find the truth?

The simulator validates the pipeline end-to-end but cannot say how close
the learned Ψ is to the "true" causes.  Planted data can: exception
matrices are built as sparse mixtures of known signature vectors, and the
bench measures the matched (rest-centered) cosine similarity between the
learned and planted rows across noise levels.
"""

import numpy as np

from repro.core.nmf import nmf_best_of
from repro.traces.synthetic import generate_planted_dataset, recovery_score


def test_bench_recovery(benchmark):
    noise_levels = (0.02, 0.1, 0.3, 1.0)

    def run():
        scores = []
        for sigma in noise_levels:
            data = generate_planted_dataset(
                n_states=400, n_causes=4, noise_sigma=sigma,
                rng=np.random.default_rng(1),
            )
            result = nmf_best_of(data.E, 4, restarts=3, n_iter=400)
            scores.append(recovery_score(result.Psi, data.Psi_true))
        return scores

    scores = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== Planted-cause recovery vs noise ===")
    for sigma, score in zip(noise_levels, scores):
        print(f"  noise sigma={sigma:.2f}: matched cosine={score:.3f}")

    # near-perfect at low noise; graceful degradation; never catastrophic
    assert scores[0] > 0.9
    assert scores[-1] < scores[0]
    assert scores[-1] > 0.5
