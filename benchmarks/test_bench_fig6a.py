"""F6a — Fig 6(a): the sink PRR shows an obvious degradation window.

Paper shape: PRR fluctuates near its baseline for most of the 14 days and
dips clearly during the episode (the paper's Sep 20-22), where the
degradation detector locates a window overlapping the injected episode.
"""

import numpy as np

from repro.analysis.citysee_experiments import exp_fig6a


def test_bench_fig6a(benchmark, citysee_episode_trace):
    result = benchmark.pedantic(
        lambda: exp_fig6a(citysee_episode_trace), rounds=1, iterations=1
    )
    print("\n=== Fig 6(a): sink PRR over 14 days ===")
    print(result.to_text())

    assert len(result.prr) > 20
    # the injected episode produces a clear dip ...
    assert result.dip_depth > 0.3
    # ... that the degradation detector localizes
    assert result.episode_detected()
    # outside the episode the network is mostly healthy
    s, e = result.episode_window
    outside = result.prr[
        (result.bin_centers < s) | (result.bin_centers >= e)
    ]
    assert float(np.median(outside)) > 0.6
