"""F3c — Fig 3(c): correlation between exceptions and root-cause vectors.

Paper shape: each exception correlates with a small subset of the Ψ rows
(points scattered over few rows per exception), often more than one —
the multi-cause premise.
"""

from repro.analysis.figures34 import exp_fig3c


def test_bench_fig3c(benchmark, citysee_trace):
    result = benchmark.pedantic(
        lambda: exp_fig3c(citysee_trace, rank=20), rounds=1, iterations=1
    )
    print("\n=== Fig 3(c): exception x root-cause correlation ===")
    print(result.to_text())

    rank = result.weights.shape[1]
    # every exception is explained by a strict subset of the causes (the
    # synthetic exception states are noisier than CitySee's, so the subset
    # is larger here than in the paper's scatter — see EXPERIMENTS.md)
    assert result.mean_causes_per_exception < 0.8 * rank
    # ... and multi-cause attribution is common (the paper's premise)
    assert result.max_causes_per_exception >= 3
    assert result.mean_causes_per_exception > 1.0
    # points exist and reference valid rows
    assert result.points
    assert all(0 <= j < rank for _i, j in result.points)
