"""Streaming ingestion: chunked trace reads bound memory, not wall-clock.

The acceptance claim of the streaming refactor, measured: ingesting the
default CitySee trace from disk through ``iter_frame_chunks`` +
``StreamingStateBuilder.push_frame`` + a ``keep_states=False`` exception
detector must allocate a small fraction of the full-frame path's peak
(tracemalloc) while staying within 1.2x of its wall-clock — and both
paths must agree on every derived number (state count, running exception
statistics).
"""

from __future__ import annotations

import time
import tracemalloc

import numpy as np

from repro.core.exceptions import StreamingExceptionDetector
from repro.core.states import StreamingStateBuilder, build_states
from repro.traces.io import iter_frame_chunks, load_frame, save_frame

CHUNK_ROWS = 2048


def _full_path(path):
    """Load everything, difference everything, one-chunk statistics."""
    frame = load_frame(path)
    states = build_states(frame)
    detector = StreamingExceptionDetector(keep_states=False)
    detector.update(states.values)
    return len(states), detector


def _chunked_path(path):
    """Bounded-memory replay: fixed-size chunks through the same engine."""
    builder = StreamingStateBuilder()
    detector = StreamingExceptionDetector(keep_states=False)
    n_states = 0
    for chunk in iter_frame_chunks(path, chunk_rows=CHUNK_ROWS):
        states = builder.push_frame(chunk)
        if len(states):
            detector.update(states.values)
        n_states += len(states)
    return n_states, detector


def _measure(fn, path):
    tracemalloc.start()
    tracemalloc.reset_peak()
    result = fn(path)
    _current, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    t0 = time.perf_counter()
    fn(path)  # untraced timing run (tracemalloc skews wall-clock)
    seconds = time.perf_counter() - t0
    return result, peak, seconds


def test_bench_streaming_ingestion(benchmark, citysee_default_trace,
                                   tmp_path_factory):
    path = tmp_path_factory.mktemp("stream-bench") / "citysee.npz"
    save_frame(citysee_default_trace, path, fmt="npz")

    (full_states, full_det), full_peak, full_s = _measure(_full_path, path)
    (chunk_states, chunk_det), chunk_peak, chunk_s = benchmark.pedantic(
        lambda: _measure(_chunked_path, path), rounds=1, iterations=1
    )

    print("\n=== Streaming ingestion vs full-frame load ===")
    print(f"rows: {len(citysee_default_trace)}  chunk_rows: {CHUNK_ROWS}")
    print(f"full:    peak {full_peak / 1e6:8.1f} MB   {full_s:6.2f} s")
    print(f"chunked: peak {chunk_peak / 1e6:8.1f} MB   {chunk_s:6.2f} s")
    print(f"peak ratio {chunk_peak / full_peak:.3f}, "
          f"time ratio {chunk_s / full_s:.2f}")

    # Same numbers out of both paths.
    assert chunk_states == full_states > 0
    assert chunk_det.count == full_det.count == full_states
    assert np.allclose(chunk_det.mean, full_det.mean)
    assert np.allclose(chunk_det.std, full_det.std)

    # The point of the refactor: a fraction of the memory ...
    assert chunk_peak <= 0.5 * full_peak, (
        f"chunked peak {chunk_peak} not below half of full {full_peak}"
    )
    # ... without giving up wall-clock (generous bound: same order).
    assert chunk_s <= 1.2 * full_s, (
        f"chunked {chunk_s:.2f}s vs full {full_s:.2f}s exceeds 1.2x"
    )
