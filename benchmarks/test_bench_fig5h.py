"""F5h — Fig 5(h): scenario 1 (local removal), train vs test profiles.

Paper shape: the correlation-strength profile of the test hour is
positively related to the training hour's — the learned root causes
transfer.
"""

from repro.analysis.testbed_experiments import exp_fig5hi
from repro.traces.testbed import TestbedScenario


def test_bench_fig5h(benchmark, testbed_trace_local):
    result = benchmark.pedantic(
        lambda: exp_fig5hi(TestbedScenario.LOCAL, trace=testbed_trace_local),
        rounds=1,
        iterations=1,
    )
    print("\n=== Fig 5(h): local-removal scenario, train vs test ===")
    print(result.to_text())
    assert result.profile_correlation > 0.9
    assert result.train_profile.shape == result.test_profile.shape == (10,)
