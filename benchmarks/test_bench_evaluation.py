"""E3 (extension) — diagnosis quality vs ground truth.

Per-fault-kind precision/recall of VN2's per-state diagnoses against the
injected fault schedule, plus the threshold operating curve an operator
would tune.
"""

from repro.analysis.evaluation import evaluate_diagnoses, threshold_sweep
from repro.core.pipeline import VN2, VN2Config


def test_bench_evaluation(benchmark, multicause_trace):
    tool = VN2(VN2Config(rank=12)).fit(multicause_trace)
    result = benchmark.pedantic(
        lambda: evaluate_diagnoses(tool, multicause_trace, min_strength=0.2),
        rounds=1,
        iterations=1,
    )
    print("\n=== Diagnosis quality vs ground truth ===")
    print(result.to_text())

    sweep = threshold_sweep(tool, multicause_trace,
                            thresholds=(0.05, 0.1, 0.2, 0.4))
    print("\nthreshold sweep (threshold, precision, recall):")
    for threshold, precision, recall in sweep:
        print(f"  {threshold:.2f}  P={precision:.2f}  R={recall:.2f}")

    assert result.micro_recall > 0.3
    assert result.n_states_scored > 10
    # recall is monotone non-increasing in the threshold
    recalls = [r for _t, _p, r in sweep]
    assert all(a >= b - 1e-9 for a, b in zip(recalls, recalls[1:]))
