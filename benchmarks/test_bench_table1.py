"""T1 — Table I: every cataloged hazard moves its trigger metrics.

Paper artifact: Table I (metric -> hazard -> network-performance catalog).
Reproduction: clean-vs-faulty simulation pairs per hazard; the trigger
metric must move by far more under the injected hazard.
"""

from repro.analysis.table1 import exp_table1


def test_bench_table1(benchmark):
    result = benchmark.pedantic(
        lambda: exp_table1(seed=11, quick=False), rounds=1, iterations=1
    )
    print("\n=== Table I validation ===")
    print(result.to_text())
    assert result.all_passed, "a Table I hazard failed to move its metric"
    hazards = {c.hazard for c in result.checks}
    assert {
        "routing_loop",
        "contention",
        "queue_overflow",
        "link_degradation",
        "node_failure",
        "link_disconnection",
        "energy_drain",
        "clock_instability",
    } <= hazards
