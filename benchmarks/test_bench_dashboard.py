"""Dashboard overhead: ingest with a live SSE client, paired, under 5%.

The observability-dashboard acceptance gate: with the dashboard enabled
and one SSE client consuming ``/api/incidents/stream`` during a loadgen
replay, socket-to-diagnosis ingest throughput must regress less than 5%
against the identical replay with ``--dashboard`` off.  Rounds alternate
off/on and the best round per mode is compared (the
``test_bench_obs_overhead`` idiom), with a small absolute slack so timer
jitter cannot flip the verdict on fast machines.

The same runs double as the fidelity gate: the event objects served over
SSE must be bit-identical to what a plain TCP subscriber (``vn2 watch``)
receives from a dashboard-off sink — the dashboard observes the stream,
it never alters it.
"""

from __future__ import annotations

import json
import socket
import threading
import time

import pytest

from repro.core.pipeline import VN2, VN2Config
from repro.service.client import ServiceClient
from repro.service.loadgen import replay_trace
from repro.service.server import ServiceConfig, start_service_thread

ROUNDS = 3
MAX_REGRESSION = 0.05
ABS_SLACK_PPS = 200.0  # jitter floor: ~2ms of a 5k pkt/s replay


@pytest.fixture(scope="module")
def dashboard_tool(citysee_default_trace):
    return VN2(VN2Config(rank=20)).fit(citysee_default_trace)


def _read_all(sock, chunks):
    try:
        while True:
            data = sock.recv(65536)
            if not data:
                return
            chunks.append(data)
    except (OSError, ConnectionError):
        return


def _sse_events(chunks):
    body = b"".join(chunks).partition(b"\r\n\r\n")[2]
    events = []
    for block in body.split(b"\n\n"):
        for line in block.split(b"\n"):
            if line.startswith(b"data: "):
                payload = json.loads(line[6:])
                if payload.get("type") == "event":
                    events.append(payload["event"])
    return events


def _replay_round(tool, frame, dashboard: bool):
    """One full replay; returns (throughput_pps, subscriber_events,
    sse_events or None)."""
    config = ServiceConfig(port=0, http_port=0, dashboard=dashboard)
    with start_service_thread(tool, config) as handle:
        sse_sock = None
        sse_chunks: list = []
        sse_thread = None
        if dashboard:
            sse_sock = socket.create_connection(
                ("127.0.0.1", handle.http_port), timeout=10
            )
            sse_sock.sendall(
                b"GET /api/incidents/stream HTTP/1.1\r\nHost: b\r\n\r\n"
            )
            sse_thread = threading.Thread(
                target=_read_all, args=(sse_sock, sse_chunks), daemon=True
            )
            sse_thread.start()
            time.sleep(0.2)

        subscriber = ServiceClient("127.0.0.1", handle.port)
        subscriber.connect()
        sub_events: list = []

        def _collect():
            for event in subscriber.events("bench", timeout=2.0):
                sub_events.append(event)

        collector = threading.Thread(target=_collect, daemon=True)
        collector.start()
        time.sleep(0.2)

        with ServiceClient("127.0.0.1", handle.port) as client:
            report = replay_trace(client, "bench", frame, batch_size=512)
        collector.join(timeout=60.0)
        subscriber.close()

        sse_events = None
        if dashboard:
            time.sleep(0.5)  # let the hub flush the tail of the feed
            sse_sock.shutdown(socket.SHUT_RD)
            sse_sock.close()
            sse_thread.join(timeout=10.0)
            sse_events = _sse_events(sse_chunks)
    assert report.packets_sent == len(frame)
    return report.throughput_pps, sub_events, sse_events


def test_bench_dashboard_ingest_overhead(dashboard_tool,
                                         citysee_default_trace):
    frame = citysee_default_trace
    off_pps, on_pps = [], []
    reference_events = None
    sse_served = None
    for _ in range(ROUNDS):
        pps, events, _none = _replay_round(
            dashboard_tool, frame, dashboard=False
        )
        off_pps.append(pps)
        if reference_events is None:
            reference_events = events
        pps, _events, sse_events = _replay_round(
            dashboard_tool, frame, dashboard=True
        )
        on_pps.append(pps)
        if sse_served is None:
            sse_served = sse_events

    best_off, best_on = max(off_pps), max(on_pps)
    ratio = best_on / best_off
    floor = (1.0 - MAX_REGRESSION) * best_off - ABS_SLACK_PPS

    print("\n=== Dashboard ingest overhead (one live SSE client) ===")
    print(f"dashboard off: {best_off:,.0f} pkt/s  (rounds "
          f"{[f'{v:,.0f}' for v in off_pps]})")
    print(f"dashboard on : {best_on:,.0f} pkt/s  (rounds "
          f"{[f'{v:,.0f}' for v in on_pps]})")
    print(f"ratio {ratio:.3f} (floor {floor:,.0f} pkt/s); "
          f"{len(sse_served)} events served over SSE")

    # Fidelity: SSE serves the exact event objects a dashboard-off
    # subscriber receives — same JSON, same order.
    assert reference_events, "replay must emit incident events"
    assert (
        [json.dumps(e, sort_keys=True) for e in sse_served]
        == [json.dumps(e, sort_keys=True) for e in reference_events]
    )

    # The gate: < 5% ingest regression with the dashboard live.
    assert best_on >= floor, (
        f"dashboard-on ingest {best_on:,.0f} pkt/s regresses more than "
        f"{MAX_REGRESSION:.0%} vs off {best_off:,.0f} pkt/s"
    )
