"""Telemetry overhead: instrumentation-on vs off, paired, under 5%.

The observability PR's acceptance gate: with the metrics registry
enabled (the default — ``VN2_OBS=1``) a CitySee fit and a streaming
ingest replay must cost at most 5% more wall-clock than the same work
against :data:`~repro.obs.NULL_REGISTRY`.  Rounds alternate off/on and
the minimum per mode is compared, so scheduler noise has to hit every
round of one mode to flip the verdict; a small absolute slack keeps the
gate meaningful on fast machines where 5% of the runtime approaches
timer jitter.
"""

from __future__ import annotations

import time

from repro.core.pipeline import VN2, VN2Config
from repro.core.streaming import StreamingDiagnosisSession, iter_packets
from repro.obs import NULL_REGISTRY, MetricsRegistry, set_registry

ROUNDS = 3
MAX_OVERHEAD = 0.05
ABS_SLACK_S = 0.02  # timer jitter floor for the paired comparison


def _timed_fit(frame, registry) -> float:
    previous = set_registry(registry)
    try:
        t0 = time.perf_counter()
        VN2(VN2Config(rank=20)).fit(frame)
        return time.perf_counter() - t0
    finally:
        set_registry(previous)


def _timed_ingest(tool, packets, registry) -> float:
    session = StreamingDiagnosisSession(tool, registry=registry)
    t0 = time.perf_counter()
    for packet in packets:
        session.push_packet(*packet)
    return time.perf_counter() - t0


def _paired(run) -> tuple:
    """Alternating off/on rounds; the per-mode minimum is the estimate."""
    off, on = [], []
    for _ in range(ROUNDS):
        off.append(run(NULL_REGISTRY))
        on.append(run(MetricsRegistry(enabled=True)))
    return min(off), min(on)


def _assert_overhead(label: str, off_s: float, on_s: float) -> None:
    bound = (1.0 + MAX_OVERHEAD) * off_s + ABS_SLACK_S
    print(f"{label}: off {off_s:.3f}s  on {on_s:.3f}s  "
          f"ratio {on_s / off_s:.3f}  (bound {bound:.3f}s)")
    assert on_s <= bound, (
        f"{label}: instrumentation-on {on_s:.3f}s exceeds "
        f"{MAX_OVERHEAD:.0%} over off {off_s:.3f}s"
    )


def test_bench_obs_overhead_fit(benchmark, citysee_default_trace):
    off_s, on_s = benchmark.pedantic(
        lambda: _paired(lambda reg: _timed_fit(citysee_default_trace, reg)),
        rounds=1, iterations=1,
    )
    print("\n=== Telemetry overhead: default CitySee fit ===")
    _assert_overhead("fit", off_s, on_s)


def test_bench_obs_overhead_streaming(benchmark, citysee_tool,
                                      citysee_default_trace):
    packets = list(iter_packets(citysee_default_trace))[:20_000]

    # sanity: the enabled mode really records (this is not a no-op pair)
    check = MetricsRegistry(enabled=True)
    _timed_ingest(citysee_tool, packets[:100], check)
    assert check.counter("repro_streaming_packets_total").value == 100

    off_s, on_s = benchmark.pedantic(
        lambda: _paired(
            lambda reg: _timed_ingest(citysee_tool, packets, reg)
        ),
        rounds=1, iterations=1,
    )
    print("\n=== Telemetry overhead: streaming ingest ===")
    print(f"packets: {len(packets)}")
    _assert_overhead("ingest", off_s, on_s)
