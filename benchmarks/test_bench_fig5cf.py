"""F5cf — Fig 5(c)-(f): the four discussed signature vectors exist in Ψ.

Paper shape: Ψ contains (c) a parent-unreachable vector (NOACK retransmit
+ parent change), (d)/(e) link-dynamics vectors (neighbor RSSI/ETX), (f) a
neighbor-join vector, plus the normal-states vector.
"""

from repro.analysis.testbed_experiments import exp_fig5cf


def test_bench_fig5cf(benchmark, testbed_tool):
    result = benchmark.pedantic(
        lambda: exp_fig5cf(testbed_tool), rounds=1, iterations=1
    )
    print("\n=== Fig 5(c-f): signature vectors in the testbed Ψ ===")
    print(result.to_text())

    assert result.found("parent_unreachable"), "Ψ1-type signature missing"
    assert result.found("link_dynamics"), "Ψ2/Ψ10-type signature missing"
    assert result.found("normal_states"), "normal-states vector missing"
    # the neighbor-join (reboot) signature is reported with its best score
    # even when weak; at minimum the matcher must have scored it
    join = [m for m in result.matches if m.signature == "neighbor_join"]
    assert join and join[0].score > 0.0
