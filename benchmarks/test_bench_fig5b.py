"""F5b — Fig 5(b): testbed training states vs the r=10 matrix.

Paper shape: the hour-1 states correlate with a handful of dominant rows
(the paper names Ψ1, Ψ2, Ψ4, Ψ7, Ψ10), with one normal-states row used far
more than the others.
"""

import numpy as np

from repro.analysis.testbed_experiments import exp_fig5b


def test_bench_fig5b(benchmark, testbed_trace_expansive):
    result = benchmark.pedantic(
        lambda: exp_fig5b(testbed_trace_expansive), rounds=1, iterations=1
    )
    print("\n=== Fig 5(b): training states x root causes (r=10) ===")
    print(result.to_text())

    usage = result.weights.mean(axis=0)
    share = usage / usage.sum()
    # a few rows dominate: top-5 rows carry well over half the mass
    top5 = np.sort(share)[::-1][:5].sum()
    assert top5 > 0.55
    # one row (the normal-states vector) is used far more than uniform
    assert share.max() > 2.0 / len(share)
    # and a baseline row was identified
    assert any(label.is_baseline for label in result.tool.labels)
