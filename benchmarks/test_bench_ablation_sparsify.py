"""A2 — Ablation: Algorithm 2's retained-mass target.

Claim under test: retention trades approximation accuracy against
explanation sparsity; the paper's 0.9 keeps most accuracy while pruning
most entries (each exception explained by few causes — Occam's razor).
"""

from repro.analysis.ablations import exp_ablation_sparsify


def test_bench_ablation_sparsify(benchmark, citysee_trace):
    result = benchmark.pedantic(
        lambda: exp_ablation_sparsify(citysee_trace, rank=20),
        rounds=1,
        iterations=1,
    )
    print("\n=== Ablation: sparsification retention sweep ===")
    print(result.to_text())

    points = {p.retention: p for p in result.points}
    # monotone trade-off
    accuracies = [p.accuracy for p in result.points]
    assert accuracies == sorted(accuracies, reverse=True)
    # at the paper's 0.9: a large share of entries pruned, accuracy within
    # a factor of 2 of dense
    at_paper = points[0.9]
    assert at_paper.kept_fraction <= 0.65
    assert at_paper.accuracy < 2.0 * result.dense_accuracy
    # explanations are sparser than the dense factorization's
    dense_causes = points[1.0].mean_active_causes
    assert at_paper.mean_active_causes < 0.75 * dense_causes
