"""E1 (extension) — combination diagnosis: incidents from a fault window.

The paper's future work, made concrete: thousands of per-state diagnoses
compress into a handful of network-level incidents that overlap the
injected fault window and involve the injected nodes.
"""

from repro.core.incidents import IncidentAggregator, incidents_from_trace
from repro.core.pipeline import VN2, VN2Config
from repro.core.states import build_states


def test_bench_incidents(benchmark, multicause_trace):
    tool = VN2(VN2Config(rank=12)).fit(multicause_trace)

    incidents = benchmark.pedantic(
        lambda: incidents_from_trace(tool, multicause_trace, min_observations=3),
        rounds=1,
        iterations=1,
    )
    print("\n=== Incidents (combination diagnosis) ===")
    for incident in incidents[:8]:
        print(" ", incident.describe())

    window = multicause_trace.metadata["window"]
    assert incidents
    # compression: far fewer incidents than raw observations
    n_obs = len(
        IncidentAggregator(tool).observations(build_states(multicause_trace))
    )
    print(f"{n_obs} observations -> {len(incidents)} incidents")
    assert len(incidents) <= n_obs / 3
    # the strongest incidents cover the injected window and nodes
    top = incidents[:3]
    assert any(i.overlaps(window[0], window[1] + 600.0) for i in top)
    involved = set()
    for incident in top:
        involved.update(incident.node_ids)
    assert involved & {21, 22, 28, 29, 34}
