"""E2 (extension) — protocol performance estimation.

Per-root-cause PRR costs fitted by NNLS over time bins: the model must
explain a nontrivial share of the fault window's PRR deficit, and the
highest-impact causes must be fault signatures, not the baseline row.
"""

from repro.analysis.performance import estimate_cause_costs
from repro.core.pipeline import VN2, VN2Config


def test_bench_performance(benchmark, multicause_trace):
    tool = VN2(VN2Config(rank=12)).fit(multicause_trace)
    model = benchmark.pedantic(
        lambda: estimate_cause_costs(tool, multicause_trace, bin_seconds=600.0),
        rounds=1,
        iterations=1,
    )
    print("\n=== Per-cause PRR cost model ===")
    print(model.to_text())

    assert model.r_squared > 0.2
    assert 0.7 <= model.baseline_prr <= 1.0
    # the top-impact cause is a fault signature with positive cost
    top = model.impacts[0]
    assert top.cost > 0
    assert top.hazard != "(baseline)"
