"""C1 (extension) — the chaos preset suite and its per-family scorecard.

Runs the whole preset library at the tiny scale through the process pool
(warm NPZ cache after the first session), fits VN2 on each frame and
benchmarks the scorecard pass.  Prints every preset's per-family table —
the same rows ``vn2 chaos score`` and the CI chaos job report — and
asserts the suite's detection-rate gates, so a diagnosis regression that
blinds a fault family fails the bench even before CI's gated run.
"""

import os

import pytest

from repro.analysis.scorecard import run_chaos_suite
from repro.chaos import PRESET_NAMES


@pytest.fixture(scope="module")
def chaos_suite():
    jobs = int(os.environ.get("VN2_BENCH_JOBS", "1"))
    return run_chaos_suite(seed=2011, scale="tiny", jobs=jobs, gate=True)


def test_bench_chaos_suite_scorecard(benchmark, chaos_suite):
    doc = benchmark.pedantic(chaos_suite.to_json_dict, rounds=1, iterations=1)
    print("\n=== Chaos preset suite: per-family scorecards ===")
    if chaos_suite.run_report is not None:
        print(chaos_suite.run_report.to_text())
    print(chaos_suite.to_text())

    assert {card["scenario"] for card in doc["presets"]} == set(PRESET_NAMES)
    # every preset's stressed families were exercised: each scorecard has
    # at least one family with ground-truth episodes
    for card in chaos_suite.scorecards:
        assert any(s.episodes > 0 for s in card.per_family), card.scenario_name
    # the detection-rate gates the CI chaos job enforces
    assert chaos_suite.ok, "\n".join(chaos_suite.gate_failures)
