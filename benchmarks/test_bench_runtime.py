"""R1 — runtime micro-benchmarks of the core operations.

Unlike the figure benches (one-shot experiment harnesses), these measure
wall-clock cost of the hot paths with proper repetition, so performance
regressions show up in ``--benchmark-compare`` runs:

* one NMF fit at the paper's dimensions (exceptions x 43, r = 25),
* batch NNLS inference, paired against the per-state scipy loop,
* state construction, paired: vectorized frame diff vs the seed loop,
* the full CitySee fit, paired end-to-end: codec load + VN2.fit on the
  legacy object path vs the columnar frame path (the frame side must be
  at least 5x faster),
* one simulated network-minute of the 45-node testbed.
"""

import time

import numpy as np
import pytest

from repro.core.inference import infer_single, infer_weights_batch
from repro.core.nmf import nmf
from repro.core.pipeline import VN2, VN2Config
from repro.core.states import build_states, build_states_python
from repro.simnet.network import Network, NetworkConfig
from repro.simnet.radio import RadioParams
from repro.simnet.topology import grid_topology
from repro.traces.io import (
    load_frame_npz,
    save_frame_jsonl,
    save_frame_npz,
)

from _seed_baseline import fit_seed, load_trace_jsonl_seed


@pytest.fixture(scope="module")
def exception_matrix():
    rng = np.random.default_rng(0)
    W = rng.uniform(0, 1, size=(1000, 25))
    Psi = rng.uniform(0, 1, size=(25, 43))
    return np.clip(W @ Psi + rng.normal(0, 0.05, (1000, 43)), 0, None)


@pytest.fixture(scope="module")
def citysee_paths(citysee_default_trace, tmp_path_factory):
    """The default CitySee trace saved once in both codecs."""
    root = tmp_path_factory.mktemp("bench-frames")
    jsonl = root / "citysee.jsonl"
    npz = root / "citysee.npz"
    save_frame_jsonl(citysee_default_trace, jsonl)
    save_frame_npz(citysee_default_trace, npz)
    return jsonl, npz


# ----------------------------------------------------------------------
# NMF + NNLS
# ----------------------------------------------------------------------


def test_bench_runtime_nmf(benchmark, exception_matrix):
    result = benchmark(
        lambda: nmf(exception_matrix, 25, n_iter=100, tol=0.0, init="nndsvd")
    )
    assert result.loss < np.linalg.norm(exception_matrix)


def test_bench_runtime_nnls_batch(benchmark, exception_matrix):
    Psi = nmf(exception_matrix, 25, n_iter=60, init="nndsvd").Psi
    states = exception_matrix[:100]
    weights, _res = benchmark(lambda: infer_weights_batch(Psi, states))
    assert weights.shape == (100, 25)


def test_bench_runtime_nnls_single_loop(benchmark, exception_matrix):
    """Legacy pairing of the batch bench: one scipy NNLS call per state."""
    Psi = nmf(exception_matrix, 25, n_iter=60, init="nndsvd").Psi
    states = exception_matrix[:100]

    def per_state():
        return np.vstack([infer_single(Psi, s)[0] for s in states])

    weights = benchmark(per_state)
    batch_w, _res = infer_weights_batch(Psi, states)
    np.testing.assert_allclose(weights, batch_w, atol=1e-8)


# ----------------------------------------------------------------------
# state construction: vectorized frame diff vs the seed loop
# ----------------------------------------------------------------------


def test_bench_runtime_build_states_frame(benchmark, citysee_trace):
    states = benchmark(lambda: build_states(citysee_trace))
    assert len(states) > 0


def test_bench_runtime_build_states_legacy(benchmark, citysee_trace):
    trace = citysee_trace.to_trace()
    states = benchmark(lambda: build_states_python(trace))
    assert np.array_equal(states.values, build_states(citysee_trace).values)


# ----------------------------------------------------------------------
# full CitySee fit: codec load + VN2.fit, legacy vs frame
# ----------------------------------------------------------------------

_FIT_CONFIG = dict(rank=20, filter_exceptions=True)


def _fit_legacy(jsonl_path):
    """The seed object path, pinned in ``_seed_baseline``: JSONL row
    objects -> Python diff loop -> per-sweep-reconstruction NMF ->
    per-row interpreter.  Returns Ψ."""
    trace = load_trace_jsonl_seed(jsonl_path)
    return fit_seed(trace, **_FIT_CONFIG)


def _fit_frame(npz_path):
    """The columnar path: NPZ -> frame -> vectorized fit."""
    return VN2(VN2Config(**_FIT_CONFIG)).fit(load_frame_npz(npz_path))


def test_bench_runtime_citysee_fit_legacy(benchmark, citysee_paths):
    jsonl, _npz = citysee_paths
    psi = benchmark.pedantic(_fit_legacy, args=(jsonl,), rounds=3, iterations=1)
    assert psi.shape[0] == 20


def test_bench_runtime_citysee_fit_frame(benchmark, citysee_paths):
    _jsonl, npz = citysee_paths
    tool = benchmark.pedantic(_fit_frame, args=(npz,), rounds=3, iterations=1)
    assert tool.rank_ == 20


def test_frame_fit_speedup_vs_legacy(citysee_paths):
    """Acceptance gate: the frame path is at least 5x faster end-to-end."""
    jsonl, npz = citysee_paths

    def best_of(fn, arg, rounds=3):
        times = []
        for _ in range(rounds):
            start = time.perf_counter()
            fn(arg)
            times.append(time.perf_counter() - start)
        return min(times)

    legacy = best_of(_fit_legacy, jsonl)
    frame = best_of(_fit_frame, npz)
    speedup = legacy / frame
    print(f"\ncitysee fit: legacy {legacy * 1000:.0f} ms, "
          f"frame {frame * 1000:.0f} ms, speedup {speedup:.1f}x")
    # Both arms must converge to the same model — this is a data-path
    # comparison, not an accuracy trade-off.  The frame path evaluates the
    # NMF early-stop loss in expanded Gram form, whose cancellation-level
    # noise can shift the stopping sweep by a few iterations relative to
    # the seed's explicit reconstruction, so agreement is ~1e-3 rather
    # than bitwise (it is 1e-10 at any fixed iteration count).
    np.testing.assert_allclose(
        _fit_legacy(jsonl), _fit_frame(npz).psi, atol=2e-3
    )
    assert speedup >= 5.0, (
        f"frame fit path only {speedup:.1f}x faster than the legacy path"
    )


# ----------------------------------------------------------------------
# simulator
# ----------------------------------------------------------------------


def test_bench_runtime_simulated_minute(benchmark):
    def run_minute():
        topology = grid_topology(rows=9, cols=5, spacing=8.0)
        network = Network(topology, NetworkConfig(
            report_period_s=180.0, seed=3,
            radio=RadioParams(tx_power_dbm=-10.0), max_range_m=40.0,
        ))
        network.run(60.0)
        return network

    network = benchmark.pedantic(run_minute, rounds=3, iterations=1)
    assert network.sim.events_processed > 100
