"""R1 — runtime micro-benchmarks of the core operations.

Unlike the figure benches (one-shot experiment harnesses), these measure
wall-clock cost of the hot paths with proper repetition, so performance
regressions show up in ``--benchmark-compare`` runs:

* one NMF fit at the paper's dimensions (exceptions x 43, r = 25),
* batch NNLS inference (the per-state diagnosis cost),
* one simulated network-minute of the 45-node testbed.
"""

import numpy as np
import pytest

from repro.core.inference import infer_weights
from repro.core.nmf import nmf
from repro.simnet.network import Network, NetworkConfig
from repro.simnet.radio import RadioParams
from repro.simnet.topology import grid_topology


@pytest.fixture(scope="module")
def exception_matrix():
    rng = np.random.default_rng(0)
    W = rng.uniform(0, 1, size=(1000, 25))
    Psi = rng.uniform(0, 1, size=(25, 43))
    return np.clip(W @ Psi + rng.normal(0, 0.05, (1000, 43)), 0, None)


def test_bench_runtime_nmf(benchmark, exception_matrix):
    result = benchmark(
        lambda: nmf(exception_matrix, 25, n_iter=100, tol=0.0, init="nndsvd")
    )
    assert result.loss < np.linalg.norm(exception_matrix)


def test_bench_runtime_nnls_batch(benchmark, exception_matrix):
    Psi = nmf(exception_matrix, 25, n_iter=60, init="nndsvd").Psi
    states = exception_matrix[:100]
    weights, _res = benchmark(lambda: infer_weights(Psi, states))
    assert weights.shape == (100, 25)


def test_bench_runtime_simulated_minute(benchmark):
    def run_minute():
        topology = grid_topology(rows=9, cols=5, spacing=8.0)
        network = Network(topology, NetworkConfig(
            report_period_s=180.0, seed=3,
            radio=RadioParams(tx_power_dbm=-10.0), max_range_m=40.0,
        ))
        network.run(60.0)
        return network

    network = benchmark.pedantic(run_minute, rounds=3, iterations=1)
    assert network.sim.events_processed > 100
