"""B1 — Baseline comparison on a multi-cause episode.

Claim under test (the paper's motivation): evidence-driven single-cause
diagnosis cannot attribute a failure that is "a combination manifestation
of several root causes"; VN2's NNLS attribution can.  Detectors (Agnostic
Diagnosis, PCA) flag trouble but explain nothing.
"""

from repro.analysis.baseline_comparison import exp_baselines


def test_bench_baselines(benchmark, multicause_trace):
    result = benchmark.pedantic(
        lambda: exp_baselines(multicause_trace), rounds=1, iterations=1
    )
    print("\n=== Baselines on simultaneous loop+interference+burst ===")
    print(result.to_text())

    vn2 = result.score_of("VN2")
    sympathy = result.score_of("Sympathy")
    # who wins and by what factor: VN2's multi-cause recall is well above
    # the single-cause tree's (the paper's qualitative claim)
    assert vn2.attribution_recall > 1.5 * sympathy.attribution_recall
    assert vn2.attribution_recall > 0.4
    # the tree structurally cannot name more than one cause per state
    assert sympathy.mean_causes_named <= 1.0
    # detectors attribute nothing
    assert result.score_of("PCA").attribution_recall == 0.0
    assert result.score_of("AgnosticDiagnosis").attribution_recall == 0.0
