"""F5i — Fig 5(i): scenario 2 (expansive removal), train vs test profiles.

Paper shape: positive train/test relation, as in 5(h).  The paper further
observes scenario 2 matching *better* than scenario 1 (expansive removals
are easier to detect); in this reproduction that ordering holds for some
seeds but is within noise for others, so it is reported rather than
asserted (see EXPERIMENTS.md).
"""

from repro.analysis.testbed_experiments import exp_fig5hi
from repro.traces.testbed import TestbedScenario


def test_bench_fig5i(benchmark, testbed_trace_expansive, testbed_trace_local):
    result = benchmark.pedantic(
        lambda: exp_fig5hi(TestbedScenario.EXPANSIVE,
                           trace=testbed_trace_expansive),
        rounds=1,
        iterations=1,
    )
    print("\n=== Fig 5(i): expansive-removal scenario, train vs test ===")
    print(result.to_text())
    assert result.profile_correlation > 0.9

    # report (not assert) the paper's scenario ordering
    local = exp_fig5hi(TestbedScenario.LOCAL, trace=testbed_trace_local)
    print(
        f"scenario ordering: expansive dist={result.profile_distance:.4f} "
        f"vs local dist={local.profile_distance:.4f} "
        f"(paper: expansive matches better)"
    )
