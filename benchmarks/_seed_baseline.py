"""Pinned replica of the seed revision's object-path fit, for pairing.

The library's JSONL loader, NMF loop and Ψ-row interpreter have since
been vectorized; a paired "legacy vs frame" benchmark that called the
*current* code on both arms would silently stop measuring the data-path
rewrite the moment the shared stages got faster.  This module freezes
the seed implementations the comparison is defined against:

* the row-object JSONL loader (one ``SnapshotRow`` and one numpy vector
  per line),
* the multiplicative-update NMF with a full ``‖V - WΨ‖`` reconstruction
  every sweep,
* the per-row hazard interpreter (index maps rebuilt per call).

Stages whose implementation is unchanged since the seed — the Python
state-diff loop, exception detection, min-max normalization and weight
sparsification — are imported from the library.  ``fit_seed`` mirrors
the seed's ``VN2.fit_states`` stage order exactly, so its Ψ must match
the frame path's bit-for-bit (the benchmark asserts this).
"""

from __future__ import annotations

import json
from typing import List, Tuple

import numpy as np

from repro.core.exceptions import detect_exceptions
from repro.core.interpretation import RootCauseInterpreter
from repro.core.nmf import _init_nndsvd, frobenius_loss
from repro.core.normalization import MinMaxNormalizer
from repro.core.sparsify import sparsify_weights
from repro.core.states import build_states_python
from repro.metrics.catalog import HAZARDS, METRIC_NAMES
from repro.traces.records import GroundTruth, SnapshotRow, Trace

_EPS = 1e-10


def load_trace_jsonl_seed(path) -> Trace:
    """The seed's JSONL loader: one row object per line."""
    with open(path, "r", encoding="utf-8") as fh:
        header = json.loads(fh.readline())
        assert list(header["metric_names"]) == list(METRIC_NAMES)
        rows: List[SnapshotRow] = []
        for line in fh:
            obj = json.loads(line)
            rows.append(
                SnapshotRow(
                    node_id=obj["node_id"],
                    epoch=obj["epoch"],
                    generated_at=obj["generated_at"],
                    received_at=obj["received_at"],
                    values=np.asarray(obj["values"], dtype=float),
                )
            )
    return Trace(
        rows=rows,
        metadata=header.get("metadata", {}),
        ground_truth=[
            GroundTruth(
                kind=g["kind"],
                node_ids=tuple(g["node_ids"]),
                start=g["start"],
                end=g["end"],
            )
            for g in header.get("ground_truth", [])
        ],
        packets_generated=header.get("packets_generated", 0),
        packets_received=header.get("packets_received", 0),
        arrivals=[(t, n) for t, n in header.get("arrivals", [])],
    )


def nmf_seed(
    V: np.ndarray, r: int, n_iter: int = 300, tol: float = 1e-5
) -> Tuple[np.ndarray, np.ndarray]:
    """The seed's Algorithm 1 loop: fresh arrays and a full
    reconstruction-based loss every sweep (NNDSVD init)."""
    W, Psi = _init_nndsvd(V, r)
    previous_loss = frobenius_loss(V, W, Psi)
    for _ in range(n_iter):
        numerator = W.T @ V
        denominator = W.T @ W @ Psi + _EPS
        Psi *= numerator / denominator
        numerator = V @ Psi.T
        denominator = W @ (Psi @ Psi.T) + _EPS
        W *= numerator / denominator
        loss = frobenius_loss(V, W, Psi)
        if previous_loss > 0 and (
            (previous_loss - loss) / max(previous_loss, _EPS) < tol
        ):
            break
        previous_loss = loss
    return W, Psi


class SeedInterpreter(RootCauseInterpreter):
    """The seed's per-row scorers: index maps rebuilt on every call."""

    def family_of(self, display_row: np.ndarray) -> str:
        sums = {"environment": 0.0, "link": 0.0, "protocol": 0.0}
        for name, value in zip(self.metric_names, display_row):
            sums[self._family_of_metric[name]] += abs(float(value))
        return max(sums, key=sums.get)

    def counter_reset_score(self, display_row: np.ndarray) -> float:
        counter_idx = [
            i
            for i, name in enumerate(self.metric_names)
            if self._family_of_metric[name] == "protocol"
        ]
        gauge_idx = [
            i
            for i, name in enumerate(self.metric_names)
            if self._family_of_metric[name] != "protocol"
        ]
        if not counter_idx or not gauge_idx:
            return 0.0
        counter_mean = float(np.mean(display_row[counter_idx]))
        gauge_mean = float(np.mean(display_row[gauge_idx]))
        if counter_mean < -0.5 and counter_mean < gauge_mean - 0.25:
            return -counter_mean
        return 0.0

    def hazard_scores(self, display_row: np.ndarray):
        index_of = {name: i for i, name in enumerate(self.metric_names)}
        scored = []
        for hazard in HAZARDS:
            contributions = []
            for position, trigger in enumerate(hazard.triggers):
                idx = index_of.get(trigger)
                if idx is None:
                    continue
                value = float(display_row[idx])
                direction = hazard.direction_of(position)
                if direction == 0:
                    contributions.append(abs(value))
                else:
                    contributions.append(max(0.0, value * direction))
            if not contributions:
                continue
            score = float(np.mean(contributions))
            specificity = np.sqrt(min(len(contributions), 5) / 5.0)
            score *= float(specificity)
            if score > 0:
                scored.append((hazard.name, score))
        reset = self.counter_reset_score(display_row)
        if reset > 0.0:
            scored = [(n, s) for n, s in scored if n != "node_reboot"]
            scored.append(("node_reboot", 1.0 + reset))
        scored.sort(key=lambda pair: pair[1], reverse=True)
        return scored

    def _hazard_scores_batch(self, rows: np.ndarray):
        return [self.hazard_scores(row) for row in rows]


def fit_seed(
    trace: Trace,
    rank: int = 20,
    filter_exceptions: bool = True,
) -> np.ndarray:
    """The seed's ``VN2.fit(trace)``, stage for stage; returns Ψ."""
    states = build_states_python(trace)
    # Online exception-scoring statistics (a separate pass in the seed).
    values = states.values
    mean = values.mean(axis=0)
    std = values.std(axis=0)
    std = np.where(std < 1e-12, 1.0, std)
    z = (values - mean) / std
    _max_eps = float(np.max((z * z).sum(axis=1)))

    if filter_exceptions:
        training = detect_exceptions(states, threshold_ratio=0.01).states
    else:
        training = states
    normalizer = MinMaxNormalizer.fit(training.values, pad_fraction=0.05)
    E = normalizer.transform(training.values)
    W, Psi = nmf_seed(E, rank, n_iter=300)
    sparsify_weights(W, retention=0.9)
    interpreter = SeedInterpreter()
    energies = np.linalg.norm(Psi - normalizer.rest_point(), axis=1)
    interpreter.interpret(
        normalizer.display(Psi), energies=energies, usage=None
    )
    return Psi
