"""Service throughput and backpressure acceptance benches.

Three gates, stacked across two PRs:

* the load generator sustains >= 5,000 packets/s against a local
  ``repro.service`` sink running the default CitySee model, with the
  shard queue depth bounded the whole way,
* a deliberately full queue produces explicit backpressure acks — the
  SDK retries until the worker catches up and not one packet is lost,
* and the cluster PR's scaling gate: the same fanout load against
  ``--workers 4`` sustains >= 3x the single-worker aggregate throughput
  across 8 deployments (>= 100k pkt/s on target hardware), with the
  merged cluster ``/metrics`` scrape validating mid-run.

All of them run the real stack: TCP sockets, NDJSON framing, shard
routing, the streaming diagnosis session — and for the scaling gate,
real forked worker processes.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core.pipeline import VN2, VN2Config
from repro.core.streaming import iter_packets
from repro.service import protocol
from repro.service.client import ServiceClient, http_get_json
from repro.service.loadgen import replay_trace, replay_trace_fanout
from repro.service.server import ServiceConfig, start_service_thread

THROUGHPUT_FLOOR_PPS = 5_000

CLUSTER_WORKERS = 4
CLUSTER_DEPLOYMENTS = 8
CLUSTER_SCALING_FLOOR = 3.0  #: 4-worker / 1-worker aggregate pps
CLUSTER_TARGET_PPS = 100_000


@pytest.fixture(scope="module")
def citysee_service_tool(citysee_default_trace):
    """VN2 fitted on the default (medium) CitySee trace — the model the
    throughput gate is stated against."""
    return VN2(VN2Config(rank=20)).fit(citysee_default_trace)


def test_bench_service_throughput(benchmark, citysee_service_tool,
                                  citysee_default_trace):
    frame = citysee_default_trace
    config = ServiceConfig(port=0, http_port=0)
    with start_service_thread(citysee_service_tool, config) as handle:

        def replay():
            with ServiceClient(port=handle.port) as client:
                return replay_trace(client, "bench", frame, batch_size=512)

        report = benchmark.pedantic(replay, rounds=1, iterations=1)
        handle.call(handle.service.shards["bench"].drain)
        metrics = handle.run_sync(handle.service.metrics_snapshot)
        shard = metrics["deployments"]["bench"]

    print("\n=== Service ingest throughput (default CitySee model) ===")
    print(report.to_text())
    print(f"shard: {shard['packets']} packets -> {shard['states']} states, "
          f"{shard['exceptions']} exceptions, "
          f"{shard['incidents_closed']} incidents closed")
    latency = shard["ingest_latency"]
    print(f"ingest latency: p50 {latency['p50_ms']:.2f} ms, "
          f"p99 {latency['p99_ms']:.2f} ms over {latency['count']} batches")
    print(f"peak queue depth {report.peak_queued} "
          f"(bound {config.queue_size})")

    # The gate: sustained socket-to-diagnosis ingest at >= 5k pkt/s.
    assert report.packets_sent == len(frame)
    assert report.throughput_pps >= THROUGHPUT_FLOOR_PPS, (
        f"{report.throughput_pps:,.0f} pkt/s below the "
        f"{THROUGHPUT_FLOOR_PPS:,} floor"
    )
    # Queue depth stayed bounded, and every accepted packet was diagnosed.
    assert report.peak_queued <= config.queue_size
    assert shard["queue_depth_packets"] == 0
    assert shard["packets"] == shard["packets_accepted"] == len(frame)


def test_bench_service_backpressure_drops_nothing(benchmark,
                                                  citysee_service_tool,
                                                  citysee_default_trace):
    packets = list(iter_packets(citysee_default_trace))[:4096]
    config = ServiceConfig(port=0, http_port=0, queue_size=1024,
                           retry_after_s=0.01)

    def scenario():
        with start_service_thread(citysee_service_tool, config) as handle:
            probe = ServiceClient(port=handle.port)
            probe._ensure_connected()
            probe.submit("bp", packets[:1])
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if handle.run_sync(
                    lambda: handle.service.shards["bp"].pending
                ) == 0:
                    break
                time.sleep(0.01)
            handle.run_sync(lambda: handle.service.shards["bp"].pause())

            # Frozen worker: raw ingests must hit an explicit rejection.
            rejections = 0
            sent = 1
            seq = 1000
            for start in range(1, len(packets), 512):
                batch = packets[start:start + 512]
                seq += 1
                reply = probe._roundtrip(protocol.ingest(
                    "bp",
                    [dict(node_id=int(p[0]), epoch=int(p[1]),
                          generated_at=float(p[2]), values=p[3].tolist())
                     for p in batch],
                    seq=seq,
                ))
                assert reply["queued"] <= config.queue_size
                if reply["accepted"]:
                    sent += reply["accepted"]
                else:
                    assert reply["reason"] == "queue_full"
                    rejections += 1
            assert rejections >= 1, "queue never filled"

            # Worker resumes; the SDK's retry loop lands the remainder.
            handle.run_sync(lambda: handle.service.shards["bp"].unpause())
            sdk = ServiceClient(port=handle.port)
            retries = 0
            for start in range(sent, len(packets), 512):
                result = sdk.submit("bp", packets[start:start + 512])
                sent += result.accepted
                retries += result.backpressure_retries

            handle.call(handle.service.shards["bp"].drain)
            snapshot = handle.run_sync(
                lambda: handle.service.shards["bp"].snapshot()
            )
            probe.close()
            sdk.close()
            handle.stop(drain=False)
        return rejections, retries, sent, snapshot

    rejections, retries, sent, snapshot = benchmark.pedantic(
        scenario, rounds=1, iterations=1
    )

    print("\n=== Backpressure under a full queue ===")
    print(f"queue bound {config.queue_size} packets; "
          f"{rejections} batches rejected with retry_after, "
          f"{retries} SDK retries")
    print(f"delivered {sent}/{len(packets)} packets; shard diagnosed "
          f"{snapshot['packets']} (accepted {snapshot['packets_accepted']})")

    # Explicit acks, not silent drops: everything sent was diagnosed.
    assert snapshot["batches_rejected"] >= 1
    assert sent == len(packets)
    assert snapshot["packets"] == snapshot["packets_accepted"] == len(packets)
    assert snapshot["queue_depth_packets"] == 0


def test_bench_service_metrics_endpoint_under_load(citysee_service_tool,
                                                   citysee_default_trace):
    """/metrics answers while ingest is running (operator visibility is
    the paper's point — it must not require quiescing the sink)."""
    frame = citysee_default_trace
    with start_service_thread(
        citysee_service_tool, ServiceConfig(port=0, http_port=0)
    ) as handle:
        polls = []

        import threading

        def poll():
            while not done.is_set():
                doc = http_get_json(handle.host, handle.http_port, "/metrics")
                polls.append(doc["totals"]["packets"])
                time.sleep(0.02)

        done = threading.Event()
        poller = threading.Thread(target=poll, daemon=True)
        poller.start()
        with ServiceClient(port=handle.port) as client:
            replay_trace(client, "live", frame, batch_size=512)
        done.set()
        poller.join(timeout=5.0)

    print(f"\n/metrics answered {len(polls)} times during replay; "
          f"packet counts seen: {polls[:3]} ... {polls[-3:]}")
    assert len(polls) >= 3
    assert polls == sorted(polls)  # monotone ingest counter


def _cluster_fanout(tool, frame, workers: int):
    """One fanout replay against a pool sink; returns (report, scrape)."""
    from urllib.request import urlopen

    names = [f"bench-{i}" for i in range(CLUSTER_DEPLOYMENTS)]
    config = ServiceConfig(port=0, http_port=0, workers=workers,
                           backend="pool")
    with start_service_thread(tool, config) as handle:
        report = replay_trace_fanout(
            ServiceClient(port=handle.port), names, frame, batch_size=512,
        )
        url = (f"http://{handle.host}:{handle.http_port}"
               "/metrics?format=prometheus")
        with urlopen(url, timeout=10.0) as response:
            scrape = response.read().decode("utf-8")
        handle.stop(drain=True)
    if report.errors:
        raise AssertionError(f"fanout errors: {report.errors}")
    return report, scrape


@pytest.mark.skipif(
    (os.cpu_count() or 1) < CLUSTER_WORKERS + 1,
    reason=f"cluster scaling gate needs >= {CLUSTER_WORKERS + 1} cores "
           f"({CLUSTER_WORKERS} workers + front door)",
)
def test_bench_cluster_scaling(benchmark, citysee_service_tool,
                               citysee_default_trace):
    """The cluster PR's gate: paired 1-worker vs 4-worker fanout.

    Same trace, same 8 deployments, same ``backend="pool"`` machinery —
    the only variable is worker count, so the ratio isolates what the
    process pool buys over a single diagnosis process.
    """
    from repro.obs import validate_exposition

    frame = citysee_default_trace
    solo, _ = _cluster_fanout(citysee_service_tool, frame, workers=1)

    clustered, scrape = benchmark.pedantic(
        lambda: _cluster_fanout(
            citysee_service_tool, frame, workers=CLUSTER_WORKERS
        ),
        rounds=1, iterations=1,
    )
    speedup = clustered.throughput_pps / solo.throughput_pps

    print(f"\n=== Cluster scaling ({CLUSTER_DEPLOYMENTS} deployments) ===")
    print(f"1 worker : {solo.to_text()}")
    print(f"{CLUSTER_WORKERS} workers: {clustered.to_text()}")
    print(f"speedup {speedup:.2f}x "
          f"(floor {CLUSTER_SCALING_FLOOR:.1f}x at {CLUSTER_WORKERS} workers)")

    expected = len(frame) * CLUSTER_DEPLOYMENTS
    assert solo.packets_sent == clustered.packets_sent == expected

    # The merged mid-run scrape is one valid exposition with every
    # worker's streaming series present.
    assert validate_exposition(scrape) > 0
    for i in range(CLUSTER_WORKERS):
        assert f'worker="w{i}"' in scrape

    assert speedup >= CLUSTER_SCALING_FLOOR, (
        f"{CLUSTER_WORKERS}-worker aggregate only {speedup:.2f}x the "
        f"single-worker rate (floor {CLUSTER_SCALING_FLOOR:.1f}x)"
    )
    assert clustered.throughput_pps >= CLUSTER_TARGET_PPS, (
        f"{clustered.throughput_pps:,.0f} pkt/s aggregate below the "
        f"{CLUSTER_TARGET_PPS:,} target"
    )
