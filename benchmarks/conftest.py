"""Benchmark fixtures: traces and trained models, built once per session.

Trace fixtures resolve through the scenario runner
(:func:`repro.runner.run_jobs`), which spools into the shared on-disk
cache (keyed by parameters), so only the first-ever benchmark run pays
simulation cost.  Set ``VN2_BENCH_JOBS=N`` to warm a cold cache in
parallel: the first trace request then submits the *whole* grid the suite
needs as one ``N``-worker run (bit-identical to serial generation) before
the individual fixtures load their entries.  Each bench prints the same
rows/series the paper's table or figure reports; run with
``pytest benchmarks/ --benchmark-only -s`` to see them.
"""

from __future__ import annotations

import os

import pytest

_grid_warmed = False


def bench_workers() -> int:
    """Worker count for benchmark trace generation (``VN2_BENCH_JOBS``)."""
    return int(os.environ.get("VN2_BENCH_JOBS", "1"))


def _grid_jobs() -> dict:
    """Every simulator run the benchmark suite's fixtures share."""
    import dataclasses

    from repro.runner import CitySeeJob, TestbedJob
    from repro.traces.citysee import CitySeeProfile
    from repro.traces.testbed import TestbedScenario

    small = CitySeeProfile.small()
    return {
        "citysee_small": CitySeeJob(small),
        "citysee_medium": CitySeeJob(CitySeeProfile.medium()),
        "citysee_episode": CitySeeJob(
            dataclasses.replace(small, days=14.0),
            episode=True, episode_days=(6.0, 8.0),
        ),
        "testbed_expansive": TestbedJob(
            scenario=TestbedScenario.EXPANSIVE, seed=7
        ),
        "testbed_local": TestbedJob(scenario=TestbedScenario.LOCAL, seed=7),
    }


def _bench_frame(key: str):
    """One shared trace, via the runner (parallel cache warm-up if asked)."""
    global _grid_warmed

    from repro.runner import run_jobs

    jobs = _grid_jobs()
    workers = bench_workers()
    if workers > 1 and not _grid_warmed:
        # One parallel pass spools every trace the suite needs into the
        # cache; the per-fixture runs below are then pure cache hits.
        run_jobs(list(jobs.values()), n_workers=workers)
        _grid_warmed = True
    return run_jobs([jobs[key]], n_workers=1).frames()[0]


@pytest.fixture(scope="session")
def citysee_trace():
    """Small CitySee training frame (no episode), disk-cached."""
    return _bench_frame("citysee_small")


@pytest.fixture(scope="session")
def citysee_default_trace():
    """The default CitySee training frame (medium profile), disk-cached.

    Used by the paired end-to-end fit benches: the speedup acceptance gate
    is stated against ``generate_citysee_frame()``'s default profile.
    """
    return _bench_frame("citysee_medium")


@pytest.fixture(scope="session")
def citysee_episode_trace():
    """14-day small CitySee frame with the degradation episode, disk-cached."""
    return _bench_frame("citysee_episode")


@pytest.fixture(scope="session")
def citysee_tool(citysee_trace):
    """VN2 trained on the CitySee training trace (rank 20, the scaled
    analogue of the paper's r=25)."""
    from repro.core.pipeline import VN2, VN2Config

    return VN2(VN2Config(rank=20)).fit(citysee_trace)


@pytest.fixture(scope="session")
def testbed_trace_expansive():
    return _bench_frame("testbed_expansive")


@pytest.fixture(scope="session")
def testbed_trace_local():
    return _bench_frame("testbed_local")


@pytest.fixture(scope="session")
def testbed_tool(testbed_trace_expansive):
    from repro.analysis.testbed_experiments import (
        fit_testbed_tool,
        train_test_split,
    )

    train, _ = train_test_split(testbed_trace_expansive)
    return fit_testbed_tool(train)


@pytest.fixture(scope="session")
def multicause_trace():
    from repro.analysis.baseline_comparison import build_multicause_frame

    return build_multicause_frame()
