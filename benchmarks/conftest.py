"""Benchmark fixtures: traces and trained models, built once per session.

CitySee-profile traces are additionally cached on disk (keyed by their
parameters), so only the first-ever benchmark run pays simulation cost for
them.  Each bench prints the same rows/series the paper's table or figure
reports; run with ``pytest benchmarks/ --benchmark-only -s`` to see them.
"""

from __future__ import annotations

import pytest


@pytest.fixture(scope="session")
def citysee_trace():
    """Small CitySee training frame (no episode), disk-cached."""
    from repro.traces.citysee import CitySeeProfile, generate_citysee_frame

    return generate_citysee_frame(CitySeeProfile.small(), episode=False)


@pytest.fixture(scope="session")
def citysee_default_trace():
    """The default CitySee training frame (medium profile), disk-cached.

    Used by the paired end-to-end fit benches: the speedup acceptance gate
    is stated against ``generate_citysee_frame()``'s default profile.
    """
    from repro.traces.citysee import generate_citysee_frame

    return generate_citysee_frame()


@pytest.fixture(scope="session")
def citysee_episode_trace():
    """14-day small CitySee frame with the degradation episode, disk-cached."""
    import dataclasses

    from repro.traces.citysee import CitySeeProfile, generate_citysee_frame

    profile = dataclasses.replace(CitySeeProfile.small(), days=14.0)
    return generate_citysee_frame(profile, episode=True, episode_days=(6.0, 8.0))


@pytest.fixture(scope="session")
def citysee_tool(citysee_trace):
    """VN2 trained on the CitySee training trace (rank 20, the scaled
    analogue of the paper's r=25)."""
    from repro.core.pipeline import VN2, VN2Config

    return VN2(VN2Config(rank=20)).fit(citysee_trace)


@pytest.fixture(scope="session")
def testbed_trace_expansive():
    from repro.traces.testbed import TestbedScenario, generate_testbed_frame

    return generate_testbed_frame(TestbedScenario.EXPANSIVE, seed=7)


@pytest.fixture(scope="session")
def testbed_trace_local():
    from repro.traces.testbed import TestbedScenario, generate_testbed_frame

    return generate_testbed_frame(TestbedScenario.LOCAL, seed=7)


@pytest.fixture(scope="session")
def testbed_tool(testbed_trace_expansive):
    from repro.analysis.testbed_experiments import (
        fit_testbed_tool,
        train_test_split,
    )

    train, _ = train_test_split(testbed_trace_expansive)
    return fit_testbed_tool(train)


@pytest.fixture(scope="session")
def multicause_trace():
    from repro.analysis.baseline_comparison import build_multicause_frame

    return build_multicause_frame()
