"""A1 — Ablation: the exception filter (paper Section IV-B).

Claim under test: pre-filtering to exception states keeps the exception
structure representable with a far smaller training set, instead of
letting normal states "conceal representability of network exceptions".
"""

from repro.analysis.ablations import exp_ablation_filter


def test_bench_ablation_filter(benchmark, citysee_trace):
    result = benchmark.pedantic(
        lambda: exp_ablation_filter(citysee_trace, rank=20),
        rounds=1,
        iterations=1,
    )
    print("\n=== Ablation: exception filter on/off ===")
    print(result.to_text())

    # the filter shrinks training data by an order of magnitude ...
    assert (
        result.with_filter.n_training_states
        < 0.3 * result.without_filter.n_training_states
    )
    # ... while reconstructing the exception states at least as well
    assert (
        result.with_filter.exception_reconstruction_error
        <= result.without_filter.exception_reconstruction_error + 0.05
    )
