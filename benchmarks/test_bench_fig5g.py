"""F5g — Fig 5(g): failure vs reboot events activate different rows.

Paper shape: node-failure exceptions concentrate on the failure-related
rows (Ψ1/Ψ2 in the paper), while reboot exceptions additionally activate
the reboot-related rows (Ψ4/Ψ10) — the two distributions are
distinguishable.
"""

from repro.analysis.testbed_experiments import exp_fig5g


def test_bench_fig5g(benchmark, testbed_tool, testbed_trace_expansive):
    result = benchmark.pedantic(
        lambda: exp_fig5g(testbed_tool, testbed_trace_expansive),
        rounds=1,
        iterations=1,
    )
    print("\n=== Fig 5(g): failure vs reboot strength profiles ===")
    print(result.to_text())

    assert result.n_failure_states > 20
    assert result.n_reboot_states > 20
    # both event types activate the model at all
    assert result.failure_profile.sum() > 0
    assert result.reboot_profile.sum() > 0
    # the fault-row profiles are distinguishable
    assert result.profile_distance > 0.05
