"""F3a — Fig 3(a): metric variations over time; exceptions are outliers.

Paper shape: most deltas hover near zero; discrete outlier points are the
exceptions, a small fraction of all states.
"""

import numpy as np

from repro.analysis.figures34 import exp_fig3a


def test_bench_fig3a(benchmark, citysee_trace):
    result = benchmark.pedantic(
        lambda: exp_fig3a(citysee_trace), rounds=1, iterations=1
    )
    print("\n=== Fig 3(a): metric variations over time ===")
    print(result.to_text())
    # exceptions are a small minority of states
    assert 0.0 < result.exception_fraction < 0.25
    # the bulk of every series sits near zero relative to its extremes
    for series in result.series:
        median_abs = float(np.median(np.abs(series.deltas)))
        max_abs = float(np.abs(series.deltas).max())
        assert max_abs == 0 or median_abs < 0.25 * max_abs
