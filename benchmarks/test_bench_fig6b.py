"""F6b — Fig 6(b): strength of Ψ rows over the degradation window.

Paper shape: the degraded window's states concentrate their correlation
strength on a small subset of the 25 rows (the paper highlights Ψ11, Ψ16,
Ψ17, Ψ22).
"""

import numpy as np

from repro.analysis.citysee_experiments import exp_fig6b


def test_bench_fig6b(benchmark, citysee_tool, citysee_episode_trace):
    result = benchmark.pedantic(
        lambda: exp_fig6b(citysee_tool, citysee_episode_trace),
        rounds=1,
        iterations=1,
    )
    print("\n=== Fig 6(b): root-cause strengths in the degraded window ===")
    print(result.to_text())

    assert result.n_states > 100
    # strength concentrates on a small subset of rows
    assert result.concentration > 0.25
    strengths = np.sort(result.strengths)[::-1]
    assert strengths[0] > 2.0 * strengths[len(strengths) // 2]
