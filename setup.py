"""Legacy setup shim (lets ``pip install -e .`` work without the wheel pkg)."""

from setuptools import setup

setup()
