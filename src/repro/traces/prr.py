"""Sink PRR (packet reception ratio) analysis — the paper's Figure 6(a).

PRR over a time bin is the number of report packets that arrived at the
sink divided by the number the deployment *should* have produced: every
sensor node emits three report packets per reporting period.  Dead nodes
still count in the denominator — that is exactly why node failures depress
the sink PRR the way the paper observes.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

import numpy as np

from repro.traces.frame import TraceFrame
from repro.traces.records import Trace


def _arrival_times(trace: Union[Trace, TraceFrame]) -> np.ndarray:
    """Arrival timestamps as one float array (no tuple materialization)."""
    columnar = getattr(trace, "arrival_times", None)
    if columnar is not None:
        return np.asarray(columnar, dtype=float)
    return np.array([t for t, _ in trace.arrivals], dtype=float)


def prr_series(
    trace: Union[Trace, TraceFrame],
    bin_seconds: float = 3600.0,
    n_sensor_nodes: Optional[int] = None,
    start: Optional[float] = None,
    end: Optional[float] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """The sink PRR time series.

    Args:
        trace: A deployment trace with arrival accounting.
        bin_seconds: Width of each PRR bin.
        n_sensor_nodes: Number of reporting nodes; defaults to the trace
            metadata's ``n_nodes`` minus the sink.
        start, end: Analysis window; defaults to the full trace span.

    Returns:
        ``(bin_centers, prr)`` arrays; ``prr`` values are clipped to [0, 1].
    """
    period = float(trace.metadata.get("report_period_s", 600.0))
    if n_sensor_nodes is None:
        n_nodes = int(trace.metadata.get("n_nodes", 0))
        n_sensor_nodes = max(1, n_nodes - 1)
    arrival_times = _arrival_times(trace)
    if start is None:
        start = 0.0
    if end is None:
        end = float(trace.metadata.get("sim_end", 0.0))
        if end <= start and arrival_times.size:
            end = float(arrival_times.max())
    if end <= start:
        return np.array([]), np.array([])

    edges = np.arange(start, end + bin_seconds, bin_seconds)
    if len(edges) < 2:
        return np.array([]), np.array([])
    counts, _ = np.histogram(arrival_times, bins=edges)
    expected_per_bin = 3.0 * n_sensor_nodes * (bin_seconds / period)
    prr = np.clip(counts / expected_per_bin, 0.0, 1.0)
    centers = (edges[:-1] + edges[1:]) / 2.0
    return centers, prr


def latency_series(
    trace: Union[Trace, TraceFrame],
    bin_seconds: float = 3600.0,
) -> Tuple[np.ndarray, np.ndarray]:
    """End-to-end snapshot latency over time.

    Latency of a snapshot is ``received_at - generated_at`` — generation at
    the node to completion of all three report packets at the sink.  The
    series is the per-bin median latency; congested or loopy periods show
    up as latency spikes even before PRR collapses.

    Returns:
        ``(bin_centers, median_latency_s)``; bins without snapshots carry
        NaN.
    """
    if len(trace) == 0:
        return np.array([]), np.array([])
    if isinstance(trace, TraceFrame):
        generated = trace.generated_at
        latencies = trace.received_at - trace.generated_at
    else:
        generated = np.array([r.generated_at for r in trace.rows])
        latencies = np.array([r.received_at - r.generated_at for r in trace.rows])
    start = float(generated.min())
    end = float(generated.max()) + bin_seconds
    edges = np.arange(start, end + bin_seconds, bin_seconds)
    if len(edges) < 2:
        return np.array([]), np.array([])
    centers = (edges[:-1] + edges[1:]) / 2.0
    medians = np.full(len(centers), np.nan)
    indices = np.searchsorted(edges, generated, side="right") - 1
    for b in range(len(centers)):
        mask = indices == b
        if mask.any():
            medians[b] = float(np.median(latencies[mask]))
    return centers, medians


def degraded_windows(
    centers: np.ndarray,
    prr: np.ndarray,
    threshold_fraction: float = 0.8,
) -> List[Tuple[float, float]]:
    """Contiguous windows where PRR drops below a fraction of its median.

    Used to locate degradation episodes like the paper's Sep 20-22 dip.
    """
    if len(prr) == 0:
        return []
    baseline = float(np.median(prr))
    low = prr < baseline * threshold_fraction
    windows: List[Tuple[float, float]] = []
    run_start: Optional[float] = None
    half_bin = (centers[1] - centers[0]) / 2.0 if len(centers) > 1 else 0.0
    for center, is_low in zip(centers, low):
        if is_low and run_start is None:
            run_start = center - half_bin
        elif not is_low and run_start is not None:
            windows.append((run_start, center - half_bin))
            run_start = None
    if run_start is not None:
        windows.append((run_start, centers[-1] + half_bin))
    return windows
