"""Synthetic CitySee traces (the paper's Section V-B field study).

CitySee was an urban CO2-sensing deployment: 286 TelosB nodes, one sink,
CTP collection, a 43-metric report every 10 minutes.  The paper uses a
7-day trace (Aug 1-7, 2011) to train the representative matrix, and a
14-day trace (Sep 14-27) — containing an obvious PRR degradation on
Sep 20-22 — to demonstrate diagnosis.

This module reproduces both as simulator runs:

* :func:`generate_citysee_trace` with ``episode=False`` gives the training
  trace: a long run with a realistic *background* fault mix (sporadic
  reboots, interference bursts, routing loops, link degradations, traffic
  hot spots, battery drains) scattered over space and time.
* With ``episode=True`` the run includes a concentrated degradation
  episode (loops + contention + node failures at once) positioned like the
  paper's Sep 20-22 event, so the PRR series shows the same dip and VN2's
  diagnosis should light up the same three root-cause families.

Because a full paper-scale run (286 nodes x 7 x 86400 s) is expensive in
pure Python, :class:`CitySeeProfile` provides scaled presets whose *shape*
(epochs per day, faults per day, hop depth) matches the full profile.
Traces are cached on disk keyed by their parameters.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import List, Optional, Tuple

import numpy as np

from repro.simnet.faults import (
    BatteryDrain,
    FaultInjector,
    ForcedLoop,
    Interference,
    LinkDegradation,
    NodeFailure,
    NodeReboot,
    TrafficBurst,
)
from repro.simnet.network import Network, NetworkConfig
from repro.simnet.radio import RadioParams
from repro.simnet.rng import RngRegistry
from repro.simnet.topology import Topology, random_geometric_topology
from repro.traces.frame import TraceFrame, frame_from_network
from repro.traces.records import Trace
from repro.traces.io import (
    load_frame_jsonl,
    load_frame_npz,
    save_frame_jsonl,
    save_frame_npz,
)


@dataclass(frozen=True)
class CitySeeProfile:
    """Shape parameters of a CitySee-like run.

    ``day_seconds`` scales simulated wall time: a "day" of 7200 s with a
    120 s reporting period has the same 60 epochs/day as the paper's
    86400 s day with 600 s reports, at a fraction of the event cost.
    """

    n_nodes: int = 286
    days: float = 7.0
    day_seconds: float = 86400.0
    report_period_s: float = 600.0
    area: Tuple[float, float] = (1000.0, 600.0)
    comm_radius_m: float = 120.0
    #: Urban-canopy path loss; 2.4 puts the 50 %-PRR distance near 130 m so
    #: links inside ``comm_radius_m`` are usable (the topology generator
    #: guarantees connectivity at that radius).
    path_loss_exponent: float = 2.4
    seed: int = 2011
    # background fault intensities, in events per day
    reboots_per_day: float = 4.0
    interference_per_day: float = 2.0
    loops_per_day: float = 1.0
    degradations_per_day: float = 2.0
    bursts_per_day: float = 1.0
    drains_per_day: float = 1.0

    @staticmethod
    def tiny(seed: int = 2011, days: float = 1.5) -> "CitySeeProfile":
        """~30 nodes, 1-hour 'days': for quick unit tests only."""
        return CitySeeProfile(
            n_nodes=30,
            days=days,
            day_seconds=3600.0,
            report_period_s=60.0,
            area=(300.0, 200.0),
            comm_radius_m=100.0,
            seed=seed,
            reboots_per_day=6.0,
            interference_per_day=3.0,
            loops_per_day=2.0,
            degradations_per_day=2.0,
            bursts_per_day=1.0,
            drains_per_day=1.0,
        )

    @staticmethod
    def small(seed: int = 2011, days: float = 3.0) -> "CitySeeProfile":
        """~60 nodes, 2-hour 'days': fast enough for unit tests."""
        return CitySeeProfile(
            n_nodes=60,
            days=days,
            day_seconds=7200.0,
            report_period_s=120.0,
            area=(420.0, 280.0),
            comm_radius_m=110.0,
            seed=seed,
        )

    @staticmethod
    def medium(seed: int = 2011, days: float = 7.0) -> "CitySeeProfile":
        """~120 nodes, 4-hour 'days': the benchmark default."""
        return CitySeeProfile(
            n_nodes=120,
            days=days,
            day_seconds=14400.0,
            report_period_s=180.0,
            area=(620.0, 400.0),
            comm_radius_m=115.0,
            seed=seed,
        )

    @staticmethod
    def full(seed: int = 2011, days: float = 7.0) -> "CitySeeProfile":
        """Paper scale: 286 nodes, real 86400 s days, 600 s reports."""
        return CitySeeProfile(seed=seed, days=days)

    def duration_s(self) -> float:
        return self.days * self.day_seconds


def _build_background_faults(
    profile: CitySeeProfile,
    topology: Topology,
    rng: np.random.Generator,
    start: float,
    end: float,
) -> List[object]:
    """Poisson-scattered background hazards over [start, end)."""
    faults: List[object] = []
    span_days = (end - start) / profile.day_seconds
    width, height = profile.area
    sensor_ids = topology.sensor_ids

    def times(rate_per_day: float) -> np.ndarray:
        n = rng.poisson(max(0.0, rate_per_day * span_days))
        return np.sort(rng.uniform(start, end, size=n))

    for t in times(profile.reboots_per_day):
        node_id = int(rng.choice(sensor_ids))
        faults.append(NodeReboot(node_id, at=float(t)))

    for t in times(profile.interference_per_day):
        center = (float(rng.uniform(0, width)), float(rng.uniform(0, height)))
        duration = float(rng.uniform(0.02, 0.08)) * profile.day_seconds
        faults.append(
            Interference(
                center=center,
                radius=float(rng.uniform(0.10, 0.22)) * max(width, height),
                start=float(t),
                end=float(t) + duration,
                delta_db=float(rng.uniform(12.0, 20.0)),
            )
        )

    for t in times(profile.loops_per_day):
        pair = _random_adjacent_pair(topology, rng, profile.comm_radius_m)
        if pair is None:
            continue
        duration = float(rng.uniform(0.02, 0.06)) * profile.day_seconds
        faults.append(
            ForcedLoop(pair[0], pair[1], start=float(t), end=float(t) + duration)
        )

    for t in times(profile.degradations_per_day):
        center = (float(rng.uniform(0, width)), float(rng.uniform(0, height)))
        duration = float(rng.uniform(0.05, 0.15)) * profile.day_seconds
        faults.append(
            LinkDegradation(
                center=center,
                radius=float(rng.uniform(0.08, 0.18)) * max(width, height),
                start=float(t),
                end=float(t) + duration,
                extra_db=float(rng.uniform(6.0, 14.0)),
            )
        )

    for t in times(profile.bursts_per_day):
        chosen = rng.choice(sensor_ids, size=min(4, len(sensor_ids)), replace=False)
        duration = float(rng.uniform(0.01, 0.04)) * profile.day_seconds
        faults.append(
            TrafficBurst(
                node_ids=tuple(int(n) for n in chosen),
                start=float(t),
                end=float(t) + duration,
                interval_s=max(2.0, profile.report_period_s / 30.0),
            )
        )

    for t in times(profile.drains_per_day):
        node_id = int(rng.choice(sensor_ids))
        duration = float(rng.uniform(0.1, 0.3)) * profile.day_seconds
        faults.append(
            BatteryDrain(
                node_id,
                start=float(t),
                end=float(t) + duration,
                multiplier=float(rng.uniform(30.0, 80.0)),
            )
        )

    return faults


def _random_adjacent_pair(
    topology: Topology, rng: np.random.Generator, comm_radius_m: float
) -> Optional[Tuple[int, int]]:
    """A random pair of nearby non-sink nodes (loop candidates)."""
    sensor_ids = topology.sensor_ids
    for _ in range(50):
        a = int(rng.choice(sensor_ids))
        nearby = [
            b
            for b in topology.neighbors_within(a, comm_radius_m * 0.5)
            if b != topology.sink_id
        ]
        if nearby:
            return a, int(rng.choice(nearby))
    return None


def _build_episode_faults(
    profile: CitySeeProfile,
    topology: Topology,
    rng: np.random.Generator,
    episode_start: float,
    episode_end: float,
) -> List[object]:
    """The concentrated degradation episode (paper's Sep 20-22).

    Three simultaneous hazard families, matching the paper's diagnosis of
    that window: routing loops, channel contention and node failures.
    """
    faults: List[object] = []
    width, height = profile.area
    sensor_ids = topology.sensor_ids
    span = episode_end - episode_start

    # Persistent wide-area interference (contention / Ψ17).
    faults.append(
        Interference(
            center=(width * 0.5, height * 0.5),
            radius=0.45 * max(width, height),
            start=episode_start + 0.05 * span,
            end=episode_end - 0.05 * span,
            delta_db=16.0,
        )
    )
    # Several long routing loops (Ψ16).
    for k in range(4):
        pair = _random_adjacent_pair(topology, rng, profile.comm_radius_m)
        if pair is None:
            continue
        t0 = episode_start + float(rng.uniform(0.0, 0.5)) * span
        faults.append(ForcedLoop(pair[0], pair[1], start=t0,
                                 end=t0 + float(rng.uniform(0.2, 0.4)) * span))
    # A batch of node failures, some recovering late (Ψ22 / Ψ11).
    n_failures = max(3, len(sensor_ids) // 20)
    failed = rng.choice(sensor_ids, size=n_failures, replace=False)
    for node_id in failed:
        t0 = episode_start + float(rng.uniform(0.0, 0.6)) * span
        faults.append(NodeFailure(int(node_id), at=t0))
        if rng.random() < 0.5:
            faults.append(
                NodeReboot(int(node_id), at=t0 + float(rng.uniform(0.2, 0.4)) * span)
            )
    return faults


def _cache_key(profile: CitySeeProfile, episode: bool,
               episode_days: Tuple[float, float]) -> str:
    payload = json.dumps(
        {"profile": asdict(profile), "episode": episode,
         "episode_days": list(episode_days), "v": 3},
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def default_cache_dir() -> Path:
    """Trace cache directory (override with ``REPRO_VN2_CACHE``)."""
    env = os.environ.get("REPRO_VN2_CACHE")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-vn2"


def citysee_cache_paths(
    profile: CitySeeProfile,
    episode: bool = False,
    episode_days: Tuple[float, float] = (6.0, 8.0),
    cache_dir: Optional[Path] = None,
) -> Tuple[Path, Path]:
    """(npz, jsonl) cache paths for one CitySee run.

    The key is a pure function of the generation parameters — the scenario
    runner uses this to spool worker output into the same cache entries a
    serial :func:`generate_citysee_frame` call would read and write.
    """
    directory = cache_dir or default_cache_dir()
    stem = f"citysee-{_cache_key(profile, episode, episode_days)}"
    return directory / f"{stem}.npz", directory / f"{stem}.jsonl"


def generate_citysee_frame(
    profile: Optional[CitySeeProfile] = None,
    episode: bool = False,
    episode_days: Tuple[float, float] = (6.0, 8.0),
    use_cache: bool = True,
    cache_dir: Optional[Path] = None,
) -> TraceFrame:
    """Generate (or load from cache) a CitySee-like trace, as a frame.

    The cache keeps two codecs per run: a fast ``.npz`` (preferred on
    load) and the legacy diff-able ``.jsonl``.  A cache directory written
    by an older version (jsonl only) is upgraded in place on first load.

    Args:
        profile: Scale/fault parameters; defaults to
            :meth:`CitySeeProfile.medium`.
        episode: Include the concentrated PRR-degradation episode.
        episode_days: (start_day, end_day) of the episode, in profile days.
        use_cache: Reuse a cached identical run when available.
        cache_dir: Cache location; defaults to :func:`default_cache_dir`.
    """
    profile = profile or CitySeeProfile.medium()
    npz_path: Optional[Path] = None
    jsonl_path: Optional[Path] = None
    if use_cache:
        npz_path, jsonl_path = citysee_cache_paths(
            profile, episode, episode_days, cache_dir
        )
        if npz_path.exists():
            return load_frame_npz(npz_path)
        if jsonl_path.exists():
            frame = load_frame_jsonl(jsonl_path)
            save_frame_npz(frame, npz_path)
            return frame

    rngs = RngRegistry(profile.seed)
    topology = random_geometric_topology(
        n_nodes=profile.n_nodes,
        area=profile.area,
        comm_radius=profile.comm_radius_m,
        rng=rngs.stream("topology"),
    )
    config = NetworkConfig(
        report_period_s=profile.report_period_s,
        day_seconds=profile.day_seconds,
        seed=profile.seed,
        max_range_m=profile.comm_radius_m * 1.25,
        beacon_max_s=min(480.0, profile.report_period_s),
        radio=RadioParams(path_loss_exponent=profile.path_loss_exponent),
    )
    network = Network(topology, config)

    warmup = min(0.25 * profile.day_seconds, 3600.0)
    end = profile.duration_s()
    fault_rng = network.rngs.stream("citysee.faults")
    faults = _build_background_faults(profile, topology, fault_rng, warmup, end)
    if episode:
        ep_start = episode_days[0] * profile.day_seconds
        ep_end = episode_days[1] * profile.day_seconds
        faults.extend(
            _build_episode_faults(profile, topology, fault_rng, ep_start, ep_end)
        )
    FaultInjector(faults).install(network)
    network.run(end)

    frame = frame_from_network(
        network,
        metadata={
            "kind": "citysee",
            "profile": asdict(profile),
            "episode": episode,
            "episode_days": list(episode_days),
            "warmup_s": warmup,
            "positions": {
                str(nid): list(pos) for nid, pos in topology.positions.items()
            },
        },
    )
    if npz_path is not None:
        save_frame_npz(frame, npz_path)
        save_frame_jsonl(frame, jsonl_path)
    return frame


def generate_citysee_trace(
    profile: Optional[CitySeeProfile] = None,
    episode: bool = False,
    episode_days: Tuple[float, float] = (6.0, 8.0),
    use_cache: bool = True,
    cache_dir: Optional[Path] = None,
) -> Trace:
    """Legacy shim: :func:`generate_citysee_frame` as a :class:`Trace`."""
    return generate_citysee_frame(
        profile=profile,
        episode=episode,
        episode_days=episode_days,
        use_cache=use_cache,
        cache_dir=cache_dir,
    ).to_trace()
