"""Trace containers, IO and the synthetic CitySee / testbed generators."""

from repro.traces.records import GroundTruth, SnapshotRow, Trace, trace_from_network
from repro.traces.frame import TraceFrame, as_frame, frame_from_network
from repro.traces.io import (
    export_snapshots_csv,
    load_frame,
    load_frame_jsonl,
    load_frame_npz,
    load_trace_jsonl,
    save_frame,
    save_frame_jsonl,
    save_frame_npz,
    save_trace_jsonl,
)
from repro.traces.prr import prr_series
from repro.traces.testbed import (
    TestbedScenario,
    generate_testbed_frame,
    generate_testbed_trace,
)
from repro.traces.citysee import (
    CitySeeProfile,
    generate_citysee_frame,
    generate_citysee_trace,
)
from repro.traces.synthetic import (
    PlantedDataset,
    generate_planted_dataset,
    match_components,
    planted_psi,
    recovery_score,
)

__all__ = [
    "GroundTruth",
    "SnapshotRow",
    "Trace",
    "TraceFrame",
    "as_frame",
    "frame_from_network",
    "trace_from_network",
    "export_snapshots_csv",
    "save_frame",
    "load_frame",
    "save_frame_jsonl",
    "load_frame_jsonl",
    "save_frame_npz",
    "load_frame_npz",
    "save_trace_jsonl",
    "load_trace_jsonl",
    "prr_series",
    "TestbedScenario",
    "generate_testbed_trace",
    "generate_testbed_frame",
    "CitySeeProfile",
    "generate_citysee_trace",
    "generate_citysee_frame",
    "PlantedDataset",
    "generate_planted_dataset",
    "match_components",
    "planted_psi",
    "recovery_score",
]
