"""Trace containers, IO and the synthetic CitySee / testbed generators."""

from repro.traces.records import SnapshotRow, Trace, trace_from_network
from repro.traces.io import save_trace_jsonl, load_trace_jsonl
from repro.traces.prr import prr_series
from repro.traces.testbed import TestbedScenario, generate_testbed_trace
from repro.traces.citysee import CitySeeProfile, generate_citysee_trace
from repro.traces.synthetic import (
    PlantedDataset,
    generate_planted_dataset,
    match_components,
    planted_psi,
    recovery_score,
)

__all__ = [
    "SnapshotRow",
    "Trace",
    "trace_from_network",
    "save_trace_jsonl",
    "load_trace_jsonl",
    "prr_series",
    "TestbedScenario",
    "generate_testbed_trace",
    "CitySeeProfile",
    "generate_citysee_trace",
    "PlantedDataset",
    "generate_planted_dataset",
    "match_components",
    "planted_psi",
    "recovery_score",
]
