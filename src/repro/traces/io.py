"""Trace persistence: JSONL (lossless, diff-able), NPZ (fast, columnar)
and CSV (snapshot matrix only).

Both real codecs speak :class:`repro.traces.frame.TraceFrame` natively —
no per-snapshot objects are materialized on either side of the disk.  The
legacy ``save_trace_jsonl`` / ``load_trace_jsonl`` helpers remain as thin
shims that convert at the boundary.

* **JSONL** — one header object followed by one object per snapshot.
  Human-readable and stable under version control; metric values are
  written with 6-decimal precision.
* **NPZ** — the frame's columns stored as raw numpy arrays plus a JSON
  header; bit-exact and an order of magnitude faster to load, the format
  the hot paths (trace cache, benchmarks) use.
"""

from __future__ import annotations

import contextlib
import csv
import json
import os
import tempfile
import time
import zipfile
from pathlib import Path
from typing import IO, Callable, Iterator, Optional, Union

import numpy as np

from repro.obs import get_registry
from repro.metrics.catalog import METRIC_NAMES, NUM_METRICS
from repro.traces.frame import TraceFrame, as_frame
from repro.traces.records import GroundTruth, SnapshotRow, Trace

_FORMAT_VERSION = 1

#: Formats understood by :func:`save_frame` / :func:`load_frame`.
FORMATS = ("jsonl", "npz")


@contextlib.contextmanager
def _atomic_open(
    path: Path, mode: str, encoding: Optional[str] = None
) -> Iterator[IO]:
    """Write to a same-directory temp file, then ``os.replace`` into place.

    Readers never observe a torn file and concurrent writers of the same
    path (e.g. two pool workers racing on one cache entry) each produce a
    complete file — the last rename wins.  The temp file is removed if the
    write fails.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, mode, encoding=encoding) as fh:
            yield fh
        os.replace(tmp_name, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp_name)
        raise


def _header_dict(frame: TraceFrame) -> dict:
    return {
        "format_version": _FORMAT_VERSION,
        "metadata": frame.metadata,
        "ground_truth": [
            {
                "kind": g.kind,
                "node_ids": list(g.node_ids),
                "start": g.start,
                "end": g.end,
            }
            for g in frame.ground_truth
        ],
        "packets_generated": frame.packets_generated,
        "packets_received": frame.packets_received,
        "arrivals": [
            [float(t), int(n)]
            for t, n in zip(frame.arrival_times, frame.arrival_nodes)
        ],
        "metric_names": list(METRIC_NAMES),
    }


def _check_header(header: dict, path: Path) -> None:
    version = header.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported trace format version {version!r} in {path}"
        )
    stored_names = header.get("metric_names", [])
    if list(stored_names) != list(METRIC_NAMES):
        raise ValueError(
            f"{path} was written with a different metric catalog "
            f"({len(stored_names)} metrics vs {len(METRIC_NAMES)})"
        )


def _frame_from_header(
    header: dict,
    node_ids: np.ndarray,
    epochs: np.ndarray,
    generated_at: np.ndarray,
    received_at: np.ndarray,
    values: np.ndarray,
    arrival_times: Optional[np.ndarray] = None,
    arrival_nodes: Optional[np.ndarray] = None,
) -> TraceFrame:
    if arrival_times is None:
        arrivals = header.get("arrivals", [])
        arrival_times = np.array([t for t, _ in arrivals], dtype=float)
        arrival_nodes = np.array([n for _, n in arrivals], dtype=np.int64)
    return TraceFrame(
        node_ids=node_ids,
        epochs=epochs,
        generated_at=generated_at,
        received_at=received_at,
        values=values,
        metadata=header.get("metadata", {}),
        ground_truth=[
            GroundTruth(
                kind=g["kind"],
                node_ids=tuple(g["node_ids"]),
                start=g["start"],
                end=g["end"],
            )
            for g in header.get("ground_truth", [])
        ],
        packets_generated=header.get("packets_generated", 0),
        packets_received=header.get("packets_received", 0),
        arrival_times=arrival_times,
        arrival_nodes=arrival_nodes,
    )


# --------------------------------------------------------------------------
# JSONL
# --------------------------------------------------------------------------


def row_obj(
    node_id: int,
    epoch: int,
    generated_at: float,
    received_at: float,
    values,
) -> dict:
    """One snapshot row as the canonical JSON object shape.

    This is the wire format shared by the JSONL trace codec, the tailing
    reader and the sink service's ingest protocol — one place to change
    the field names.  ``values`` must already be a plain list (pre-round
    it for the lossy trace codec; the service sends full precision).
    """
    return {
        "node_id": int(node_id),
        "epoch": int(epoch),
        "generated_at": float(generated_at),
        "received_at": float(received_at),
        "values": values,
    }


def row_from_obj(obj: dict) -> SnapshotRow:
    """Parse one canonical row object back into a :class:`SnapshotRow`.

    ``received_at`` is optional on the wire (a live packet's receive time
    is the sink's concern); it defaults to ``generated_at``.
    """
    generated_at = float(obj["generated_at"])
    return SnapshotRow(
        node_id=int(obj["node_id"]),
        epoch=int(obj["epoch"]),
        generated_at=generated_at,
        received_at=float(obj.get("received_at", generated_at)),
        values=np.asarray(obj["values"], dtype=float),
    )


def save_frame_jsonl(frame: TraceFrame, path: Union[str, Path]) -> None:
    """Write a frame to ``path`` in JSONL format (gzip-free, diff-able).

    The write is atomic (temp file + rename): concurrent readers and
    same-path writers always see a complete file.
    """
    path = Path(path)
    rounded = np.round(frame.values, 6)
    with _atomic_open(path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(_header_dict(frame)) + "\n")
        for i in range(len(frame)):
            fh.write(
                json.dumps(
                    row_obj(
                        frame.node_ids[i],
                        frame.epochs[i],
                        frame.generated_at[i],
                        frame.received_at[i],
                        rounded[i].tolist(),
                    )
                )
                + "\n"
            )


def load_frame_jsonl(path: Union[str, Path]) -> TraceFrame:
    """Read a frame from JSONL, parsing straight into column buffers."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as fh:
        header_line = fh.readline()
        if not header_line:
            raise ValueError(f"{path} is empty")
        header = json.loads(header_line)
        _check_header(header, path)
        node_ids, epochs, generated, received, value_rows = [], [], [], [], []
        for line in fh:
            obj = json.loads(line)
            node_ids.append(obj["node_id"])
            epochs.append(obj["epoch"])
            generated.append(obj["generated_at"])
            received.append(obj["received_at"])
            value_rows.append(obj["values"])
    n = len(node_ids)
    values = (
        np.asarray(value_rows, dtype=float)
        if n
        else np.zeros((0, NUM_METRICS))
    )
    if values.ndim != 2 or (n and values.shape[1] != NUM_METRICS):
        raise ValueError(f"{path} carries malformed snapshot rows")
    return _frame_from_header(
        header,
        node_ids=np.asarray(node_ids, dtype=np.int64),
        epochs=np.asarray(epochs, dtype=np.int64),
        generated_at=np.asarray(generated, dtype=float),
        received_at=np.asarray(received, dtype=float),
        values=values,
    )


def save_trace_jsonl(trace: Union[Trace, TraceFrame], path: Union[str, Path]) -> None:
    """Legacy shim: write a trace (or frame) to JSONL."""
    save_frame_jsonl(as_frame(trace), path)


def load_trace_jsonl(path: Union[str, Path]) -> Trace:
    """Legacy shim: read a JSONL trace as the object representation."""
    return load_frame_jsonl(path).to_trace()


# --------------------------------------------------------------------------
# NPZ
# --------------------------------------------------------------------------


def save_frame_npz(frame: TraceFrame, path: Union[str, Path]) -> None:
    """Write a frame to ``path`` as raw numpy columns (bit-exact, fast).

    The write is atomic (temp file + rename): a cache entry shared by
    concurrent pool workers is either absent or complete, never torn.
    """
    path = Path(path)
    header = _header_dict(frame)
    header.pop("arrivals")  # stored as first-class columns instead
    # Write through a file object so numpy keeps the exact path (bare
    # np.savez(path) appends ".npz" to suffix-less names).
    with _atomic_open(path, "wb") as fh:
        np.savez(
            fh,
            header=np.array(json.dumps(header)),
            node_ids=frame.node_ids,
            epochs=frame.epochs,
            generated_at=frame.generated_at,
            received_at=frame.received_at,
            values=frame.values,
            arrival_times=frame.arrival_times,
            arrival_nodes=frame.arrival_nodes,
        )


def load_frame_npz(path: Union[str, Path]) -> TraceFrame:
    """Read a frame previously written by :func:`save_frame_npz`."""
    path = Path(path)
    with np.load(path, allow_pickle=False) as arrays:
        header = json.loads(str(arrays["header"]))
        _check_header(header, path)
        return _frame_from_header(
            header,
            node_ids=arrays["node_ids"],
            epochs=arrays["epochs"],
            generated_at=arrays["generated_at"],
            received_at=arrays["received_at"],
            values=arrays["values"],
            arrival_times=arrays["arrival_times"],
            arrival_nodes=arrays["arrival_nodes"],
        )


# --------------------------------------------------------------------------
# streaming reads: bounded-memory chunks and live tailing
# --------------------------------------------------------------------------


def read_frame_header(path: Union[str, Path], fmt: Optional[str] = None) -> dict:
    """Read only a trace file's header (metadata, ground truth, counts).

    O(header) work for both codecs — the snapshot rows are never touched —
    so ``vn2 watch`` can pick up node positions and generation parameters
    before a single packet is consumed.
    """
    path = Path(path)
    fmt = fmt or detect_format(path)
    if fmt == "jsonl":
        with path.open("r", encoding="utf-8") as fh:
            header_line = fh.readline()
        if not header_line:
            raise ValueError(f"{path} is empty")
        header = json.loads(header_line)
    elif fmt == "npz":
        with zipfile.ZipFile(path) as zf:
            with zf.open("header.npy") as member:
                header = json.loads(str(np.lib.format.read_array(member)))
    else:
        raise ValueError(f"unknown trace format {fmt!r}; expected {FORMATS}")
    _check_header(header, path)
    return header


def _npy_member(zf: "zipfile.ZipFile", name: str):
    """Open one array member of an (uncompressed) NPZ as a raw stream.

    Returns ``(fileobj, shape, dtype)`` with the stream positioned at the
    first data byte.  ``np.savez`` writes plain C-order ``.npy`` members,
    so rows can be sliced off the stream without materializing the array.
    """
    member = zf.open(name + ".npy")
    version = np.lib.format.read_magic(member)
    if version == (1, 0):
        shape, fortran, dtype = np.lib.format.read_array_header_1_0(member)
    elif version == (2, 0):
        shape, fortran, dtype = np.lib.format.read_array_header_2_0(member)
    else:
        raise ValueError(f"unsupported npy version {version} for {name}")
    if fortran:
        raise ValueError(f"{name} is Fortran-ordered; cannot stream rows")
    return member, shape, dtype


def iter_frame_chunks(
    path: Union[str, Path],
    chunk_rows: int = 4096,
    fmt: Optional[str] = None,
) -> Iterator[TraceFrame]:
    """Iterate a trace file as bounded-memory :class:`TraceFrame` chunks.

    Chunks carry the snapshot columns only (no metadata / arrivals — use
    :func:`read_frame_header` for those); concatenating them reproduces
    the full frame's rows in order, and because trace files are written in
    (node_id, epoch) order every chunk honours the frame sort invariant as
    is.  Peak memory is O(chunk_rows), never O(trace).

    Works for both codecs: JSONL is line-streamed; NPZ members are read
    row-range by row-range straight from the (uncompressed) zip streams.
    """
    path = Path(path)
    fmt = fmt or detect_format(path)
    if chunk_rows < 1:
        raise ValueError(f"chunk_rows must be >= 1, got {chunk_rows}")
    if fmt == "jsonl":
        chunks = _iter_chunks_jsonl(path, chunk_rows)
    elif fmt == "npz":
        chunks = _iter_chunks_npz(path, chunk_rows)
    else:
        raise ValueError(f"unknown trace format {fmt!r}; expected {FORMATS}")
    registry = get_registry()
    if not registry.enabled:
        yield from chunks
        return
    labels = {"format": fmt}
    m_reads = registry.counter(
        "repro_io_chunk_reads_total", "Trace chunks read from disk", labels
    )
    m_rows = registry.counter(
        "repro_io_chunk_rows_total", "Snapshot rows read via chunks", labels
    )
    for chunk in chunks:
        m_reads.inc()
        m_rows.inc(len(chunk.node_ids))
        yield chunk


def _chunk_frame(
    node_ids, epochs, generated, received, values
) -> TraceFrame:
    return TraceFrame(
        node_ids=np.asarray(node_ids, dtype=np.int64),
        epochs=np.asarray(epochs, dtype=np.int64),
        generated_at=np.asarray(generated, dtype=float),
        received_at=np.asarray(received, dtype=float),
        values=np.asarray(values, dtype=float).reshape(-1, NUM_METRICS),
    )


def _iter_chunks_jsonl(path: Path, chunk_rows: int) -> Iterator[TraceFrame]:
    with path.open("r", encoding="utf-8") as fh:
        header_line = fh.readline()
        if not header_line:
            raise ValueError(f"{path} is empty")
        _check_header(json.loads(header_line), path)
        node_ids, epochs, generated, received, value_rows = [], [], [], [], []
        for line in fh:
            obj = json.loads(line)
            node_ids.append(obj["node_id"])
            epochs.append(obj["epoch"])
            generated.append(obj["generated_at"])
            received.append(obj["received_at"])
            value_rows.append(obj["values"])
            if len(node_ids) >= chunk_rows:
                yield _chunk_frame(node_ids, epochs, generated, received, value_rows)
                node_ids, epochs, generated, received, value_rows = [], [], [], [], []
        if node_ids:
            yield _chunk_frame(node_ids, epochs, generated, received, value_rows)


def _iter_chunks_npz(path: Path, chunk_rows: int) -> Iterator[TraceFrame]:
    with zipfile.ZipFile(path) as zf:
        with zf.open("header.npy") as member:
            _check_header(json.loads(str(np.lib.format.read_array(member))), path)
        streams = {}
        try:
            for name in ("node_ids", "epochs", "generated_at", "received_at", "values"):
                streams[name] = _npy_member(zf, name)
            n = streams["values"][1][0]
            width = streams["values"][1][1]
            for start in range(0, n, chunk_rows):
                rows = min(chunk_rows, n - start)
                cols = {}
                for name, (stream, _shape, dtype) in streams.items():
                    per_row = width if name == "values" else 1
                    nbytes = rows * per_row * dtype.itemsize
                    buf = stream.read(nbytes)
                    if len(buf) != nbytes:
                        raise ValueError(f"{path} truncated while reading {name}")
                    cols[name] = np.frombuffer(buf, dtype=dtype).copy()
                yield _chunk_frame(
                    cols["node_ids"],
                    cols["epochs"],
                    cols["generated_at"],
                    cols["received_at"],
                    cols["values"].reshape(rows, width),
                )
        finally:
            for stream, _shape, _dtype in streams.values():
                stream.close()


def tail_frame_jsonl(
    path: Union[str, Path],
    poll_s: float = 0.5,
    follow: bool = True,
    idle_timeout: Optional[float] = None,
    stop: Optional[Callable[[], bool]] = None,
) -> Iterator[SnapshotRow]:
    """Follow a (possibly still growing) JSONL trace, snapshot by snapshot.

    Yields one :class:`~repro.traces.records.SnapshotRow` per complete
    line as it lands in the file — the packet source a live ``vn2 watch``
    consumes.  Partial lines (a writer mid-append) are buffered until
    their newline arrives; a truncated file (trace rollover) restarts the
    reader from the new beginning.

    Args:
        path: The JSONL trace file (its header line is validated and
            skipped; fetch it via :func:`read_frame_header`).
        poll_s: Sleep between polls once the end of file is reached.
        follow: Keep polling for growth after EOF (``False`` = read what
            is there and return, like ``tail -c +0`` without ``-f``).
        idle_timeout: Give up after this many seconds without new data
            (``None`` = follow forever).
        stop: Optional callable checked at each poll; return True to end
            the tail (e.g. wired to a signal handler).
    """
    path = Path(path)
    m_rows = get_registry().counter(
        "repro_io_tail_rows_total", "Snapshot rows yielded by JSONL tails"
    )
    buffer = ""
    saw_header = False
    idle = 0.0
    with path.open("r", encoding="utf-8") as fh:
        while True:
            chunk = fh.read(65536)
            if chunk:
                idle = 0.0
                buffer += chunk
                while "\n" in buffer:
                    line, buffer = buffer.split("\n", 1)
                    if not line.strip():
                        continue
                    obj = json.loads(line)
                    if not saw_header:
                        _check_header(obj, path)
                        saw_header = True
                        continue
                    m_rows.inc()
                    yield row_from_obj(obj)
                continue
            if not follow:
                return
            if stop is not None and stop():
                return
            try:
                if os.stat(path).st_size < fh.tell():
                    # Truncated under us (rollover): restart from the top.
                    fh.seek(0)
                    buffer = ""
                    saw_header = False
                    continue
            except OSError:
                pass
            time.sleep(poll_s)
            idle += poll_s
            if idle_timeout is not None and idle >= idle_timeout:
                return


# --------------------------------------------------------------------------
# format dispatch
# --------------------------------------------------------------------------


def detect_format(path: Union[str, Path]) -> str:
    """Infer the codec from a path suffix (``.npz`` -> npz, else jsonl).

    The comparison is case-insensitive: ``.NPZ`` (e.g. files named on a
    case-folding filesystem) must not fall through to the JSONL parser,
    which would fail with a confusing decode error.
    """
    return "npz" if Path(path).suffix.lower() == ".npz" else "jsonl"


def save_frame(
    frame: Union[Trace, TraceFrame],
    path: Union[str, Path],
    fmt: Optional[str] = None,
) -> None:
    """Write a trace/frame in the requested (or suffix-inferred) format."""
    fmt = fmt or detect_format(path)
    frame = as_frame(frame)
    if fmt == "jsonl":
        save_frame_jsonl(frame, path)
    elif fmt == "npz":
        save_frame_npz(frame, path)
    else:
        raise ValueError(f"unknown trace format {fmt!r}; expected {FORMATS}")


def load_frame(path: Union[str, Path], fmt: Optional[str] = None) -> TraceFrame:
    """Read a frame in the requested (or suffix-inferred) format."""
    fmt = fmt or detect_format(path)
    if fmt == "jsonl":
        return load_frame_jsonl(path)
    if fmt == "npz":
        return load_frame_npz(path)
    raise ValueError(f"unknown trace format {fmt!r}; expected {FORMATS}")


# --------------------------------------------------------------------------
# CSV export
# --------------------------------------------------------------------------


def export_snapshots_csv(
    trace: Union[Trace, TraceFrame], path: Union[str, Path]
) -> None:
    """Write the snapshot matrix as CSV with named metric columns."""
    frame = as_frame(trace)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(
            ["node_id", "epoch", "generated_at", "received_at", *METRIC_NAMES]
        )
        for i in range(len(frame)):
            writer.writerow(
                [
                    int(frame.node_ids[i]),
                    int(frame.epochs[i]),
                    f"{frame.generated_at[i]:.3f}",
                    f"{frame.received_at[i]:.3f}",
                    *[f"{v:.6g}" for v in frame.values[i]],
                ]
            )
