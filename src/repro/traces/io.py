"""Trace persistence: JSONL (lossless) and CSV (snapshot matrix only).

The JSONL layout is one header object followed by one object per snapshot;
everything :class:`repro.traces.records.Trace` holds round-trips exactly.
CSV export keeps just the snapshot matrix with named metric columns, for
inspection in external tools.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import List, Union

import numpy as np

from repro.metrics.catalog import METRIC_NAMES
from repro.traces.records import GroundTruth, SnapshotRow, Trace

_FORMAT_VERSION = 1


def save_trace_jsonl(trace: Trace, path: Union[str, Path]) -> None:
    """Write a trace to ``path`` in JSONL format (gzip-free, diff-able)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as fh:
        header = {
            "format_version": _FORMAT_VERSION,
            "metadata": trace.metadata,
            "ground_truth": [
                {
                    "kind": g.kind,
                    "node_ids": list(g.node_ids),
                    "start": g.start,
                    "end": g.end,
                }
                for g in trace.ground_truth
            ],
            "packets_generated": trace.packets_generated,
            "packets_received": trace.packets_received,
            "arrivals": [[t, n] for (t, n) in trace.arrivals],
            "metric_names": list(METRIC_NAMES),
        }
        fh.write(json.dumps(header) + "\n")
        for row in trace.rows:
            fh.write(
                json.dumps(
                    {
                        "node_id": row.node_id,
                        "epoch": row.epoch,
                        "generated_at": row.generated_at,
                        "received_at": row.received_at,
                        "values": [round(float(v), 6) for v in row.values],
                    }
                )
                + "\n"
            )


def load_trace_jsonl(path: Union[str, Path]) -> Trace:
    """Read a trace previously written by :func:`save_trace_jsonl`."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as fh:
        header_line = fh.readline()
        if not header_line:
            raise ValueError(f"{path} is empty")
        header = json.loads(header_line)
        version = header.get("format_version")
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported trace format version {version!r} in {path}"
            )
        stored_names = header.get("metric_names", [])
        if list(stored_names) != list(METRIC_NAMES):
            raise ValueError(
                f"{path} was written with a different metric catalog "
                f"({len(stored_names)} metrics vs {len(METRIC_NAMES)})"
            )
        rows: List[SnapshotRow] = []
        for line in fh:
            obj = json.loads(line)
            rows.append(
                SnapshotRow(
                    node_id=obj["node_id"],
                    epoch=obj["epoch"],
                    generated_at=obj["generated_at"],
                    received_at=obj["received_at"],
                    values=np.asarray(obj["values"], dtype=float),
                )
            )
    return Trace(
        rows=rows,
        metadata=header.get("metadata", {}),
        ground_truth=[
            GroundTruth(
                kind=g["kind"],
                node_ids=tuple(g["node_ids"]),
                start=g["start"],
                end=g["end"],
            )
            for g in header.get("ground_truth", [])
        ],
        packets_generated=header.get("packets_generated", 0),
        packets_received=header.get("packets_received", 0),
        arrivals=[(t, n) for t, n in header.get("arrivals", [])],
    )


def export_snapshots_csv(trace: Trace, path: Union[str, Path]) -> None:
    """Write the snapshot matrix as CSV with named metric columns."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(
            ["node_id", "epoch", "generated_at", "received_at", *METRIC_NAMES]
        )
        for row in trace.rows:
            writer.writerow(
                [
                    row.node_id,
                    row.epoch,
                    f"{row.generated_at:.3f}",
                    f"{row.received_at:.3f}",
                    *[f"{v:.6g}" for v in row.values],
                ]
            )
