"""Columnar trace backbone: the structure-of-arrays twin of :class:`Trace`.

A :class:`TraceFrame` holds the same sink-side record a :class:`Trace`
holds, but as contiguous numpy columns instead of per-snapshot Python
objects: ``node_ids`` / ``epochs`` / ``generated_at`` / ``received_at``
vectors plus one ``(n_reports, 43)`` metric matrix whose column order is
the :data:`repro.metrics.catalog.METRIC_NAMES` contract.  Everything
downstream of the sink (state construction, exception detection, NMF,
NNLS attribution) is matrix math, so keeping the data columnar from the
moment it leaves the collector removes the object-stream tax the legacy
path paid on every layer.

The two representations round-trip losslessly (``Trace.to_frame()`` /
:meth:`TraceFrame.to_trace`); the frame is the fast path, the ``Trace``
object API remains as a thin boundary shim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.metrics.catalog import NUM_METRICS


@dataclass
class TraceFrame:
    """A full deployment trace in structure-of-arrays layout.

    Rows are sorted by ``(node_id, epoch)`` — the invariant every
    consumer (per-node slicing, vectorized differencing) relies on; the
    constructor restores it if violated.

    Attributes:
        node_ids: (n,) int64 — originating node of each snapshot.
        epochs: (n,) int64 — reporting-epoch index at the origin.
        generated_at: (n,) float64 — when the node took the snapshot.
        received_at: (n,) float64 — when its last packet reached the sink.
        values: (n, 43) float64 — metric matrix in catalog column order.
        metadata: Generation parameters (report period, duration, seed ...).
        ground_truth: Fault episodes, for evaluation harnesses only.
        packets_generated: Report packets the nodes emitted.
        packets_received: Report packets that reached the sink.
        arrival_times: (k,) float64 — per received packet, arrival order.
        arrival_nodes: (k,) int64 — originating node per received packet.
    """

    node_ids: np.ndarray
    epochs: np.ndarray
    generated_at: np.ndarray
    received_at: np.ndarray
    values: np.ndarray
    metadata: Dict[str, object] = field(default_factory=dict)
    ground_truth: List["GroundTruth"] = field(default_factory=list)
    packets_generated: int = 0
    packets_received: int = 0
    arrival_times: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=float)
    )
    arrival_nodes: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=np.int64)
    )

    def __post_init__(self) -> None:
        self.node_ids = np.asarray(self.node_ids, dtype=np.int64).ravel()
        self.epochs = np.asarray(self.epochs, dtype=np.int64).ravel()
        self.generated_at = np.asarray(self.generated_at, dtype=float).ravel()
        self.received_at = np.asarray(self.received_at, dtype=float).ravel()
        self.values = np.asarray(self.values, dtype=float)
        if self.values.size == 0:
            self.values = self.values.reshape(0, NUM_METRICS)
        if self.values.ndim != 2 or self.values.shape[1] != NUM_METRICS:
            raise ValueError(
                f"frame values must be (n, {NUM_METRICS}), got {self.values.shape}"
            )
        n = self.values.shape[0]
        for name in ("node_ids", "epochs", "generated_at", "received_at"):
            column = getattr(self, name)
            if column.shape[0] != n:
                raise ValueError(
                    f"frame column {name} has {column.shape[0]} entries "
                    f"for {n} snapshots"
                )
        self.arrival_times = np.asarray(self.arrival_times, dtype=float).ravel()
        self.arrival_nodes = np.asarray(
            self.arrival_nodes, dtype=np.int64
        ).ravel()
        if self.arrival_times.shape != self.arrival_nodes.shape:
            raise ValueError("arrival_times / arrival_nodes length mismatch")
        # Restore the (node_id, epoch) sort invariant only when needed —
        # frames from the collector or a codec arrive already sorted.
        if n > 1:
            keys_sorted = bool(
                np.all(
                    (self.node_ids[:-1] < self.node_ids[1:])
                    | (
                        (self.node_ids[:-1] == self.node_ids[1:])
                        & (self.epochs[:-1] <= self.epochs[1:])
                    )
                )
            )
            if not keys_sorted:
                order = np.lexsort((self.epochs, self.node_ids))
                self._reorder(order)

    def _reorder(self, order: np.ndarray) -> None:
        self.node_ids = self.node_ids[order]
        self.epochs = self.epochs[order]
        self.generated_at = self.generated_at[order]
        self.received_at = self.received_at[order]
        self.values = self.values[order]

    # ------------------------------------------------------------------
    # views (mirroring the Trace API)
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self.values.shape[0]

    @property
    def unique_node_ids(self) -> List[int]:
        """Distinct node ids present in the frame, ascending."""
        return [int(n) for n in np.unique(self.node_ids)]

    def node_slices(self) -> Iterator[Tuple[int, slice]]:
        """Yield ``(node_id, slice)`` pairs, one contiguous run per node."""
        if len(self) == 0:
            return
        boundaries = np.flatnonzero(self.node_ids[1:] != self.node_ids[:-1]) + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [len(self)]))
        for start, end in zip(starts, ends):
            yield int(self.node_ids[start]), slice(int(start), int(end))

    def node_slice(self, node_id: int) -> slice:
        """Contiguous row range of one node (empty slice when absent)."""
        start = int(np.searchsorted(self.node_ids, node_id, side="left"))
        end = int(np.searchsorted(self.node_ids, node_id, side="right"))
        return slice(start, end)

    def time_span(self) -> Tuple[float, float]:
        """(first, last) snapshot generation time; (0, 0) when empty."""
        if len(self) == 0:
            return (0.0, 0.0)
        return (float(self.generated_at.min()), float(self.generated_at.max()))

    def window(self, start: float, end: float) -> "TraceFrame":
        """Sub-frame of snapshots generated in [start, end)."""
        mask = (self.generated_at >= start) & (self.generated_at < end)
        arrival_mask = (self.arrival_times >= start) & (self.arrival_times < end)
        return TraceFrame(
            node_ids=self.node_ids[mask],
            epochs=self.epochs[mask],
            generated_at=self.generated_at[mask],
            received_at=self.received_at[mask],
            values=self.values[mask],
            metadata=dict(self.metadata),
            ground_truth=list(self.ground_truth),
            packets_generated=self.packets_generated,
            packets_received=self.packets_received,
            arrival_times=self.arrival_times[arrival_mask],
            arrival_nodes=self.arrival_nodes[arrival_mask],
        )

    def delivery_ratio(self) -> float:
        """Fraction of generated report packets that arrived at the sink."""
        if self.packets_generated == 0:
            return 0.0
        return self.packets_received / self.packets_generated

    def ground_truth_in(self, start: float, end: float) -> List["GroundTruth"]:
        """Ground-truth episodes overlapping [start, end)."""
        return [
            g for g in self.ground_truth if g.start < end and g.end >= start
        ]

    @property
    def arrivals(self) -> List[Tuple[float, int]]:
        """(received_at, node_id) tuples — the Trace-compatible view."""
        return [
            (float(t), int(n))
            for t, n in zip(self.arrival_times, self.arrival_nodes)
        ]

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------

    @classmethod
    def from_trace(cls, trace) -> "TraceFrame":
        """Columnarize a :class:`repro.traces.records.Trace` losslessly."""
        n = len(trace.rows)
        node_ids = np.empty(n, dtype=np.int64)
        epochs = np.empty(n, dtype=np.int64)
        generated = np.empty(n, dtype=float)
        received = np.empty(n, dtype=float)
        values = np.empty((n, NUM_METRICS), dtype=float)
        for i, row in enumerate(trace.rows):
            node_ids[i] = row.node_id
            epochs[i] = row.epoch
            generated[i] = row.generated_at
            received[i] = row.received_at
            values[i] = row.values
        if trace.arrivals:
            arrival_times = np.array([t for t, _ in trace.arrivals], dtype=float)
            arrival_nodes = np.array(
                [n for _, n in trace.arrivals], dtype=np.int64
            )
        else:
            arrival_times = np.zeros(0, dtype=float)
            arrival_nodes = np.zeros(0, dtype=np.int64)
        return cls(
            node_ids=node_ids,
            epochs=epochs,
            generated_at=generated,
            received_at=received,
            values=values,
            metadata=dict(trace.metadata),
            ground_truth=list(trace.ground_truth),
            packets_generated=trace.packets_generated,
            packets_received=trace.packets_received,
            arrival_times=arrival_times,
            arrival_nodes=arrival_nodes,
        )

    def to_trace(self):
        """Materialize the legacy object representation (lossless)."""
        from repro.traces.records import SnapshotRow, Trace

        rows = [
            SnapshotRow(
                node_id=int(self.node_ids[i]),
                epoch=int(self.epochs[i]),
                generated_at=float(self.generated_at[i]),
                received_at=float(self.received_at[i]),
                values=self.values[i].copy(),
            )
            for i in range(len(self))
        ]
        return Trace(
            rows=rows,
            metadata=dict(self.metadata),
            ground_truth=list(self.ground_truth),
            packets_generated=self.packets_generated,
            packets_received=self.packets_received,
            arrivals=self.arrivals,
        )


def as_frame(data) -> TraceFrame:
    """Coerce a :class:`Trace` or :class:`TraceFrame` to a frame.

    The single conversion point the batch layers use: a frame passes
    through untouched, a legacy trace is columnarized once at the
    boundary.
    """
    if isinstance(data, TraceFrame):
        return data
    if hasattr(data, "rows"):
        return TraceFrame.from_trace(data)
    raise TypeError(f"expected Trace or TraceFrame, got {type(data).__name__}")


def frame_from_network(
    network, metadata: Optional[Dict[str, object]] = None
) -> TraceFrame:
    """Extract a :class:`TraceFrame` straight from a finished simulation.

    Reads the collector's column buffers directly — no per-snapshot
    objects are materialized anywhere between the sink and the frame.
    """
    from repro.traces.records import GroundTruth

    timelines = [
        network.collector.timelines[nid]
        for nid in sorted(network.collector.timelines)
    ]
    if timelines:
        columns = [t.columns() for t in timelines]
        node_ids = np.concatenate(
            [np.full(len(c[0]), t.node_id, dtype=np.int64)
             for t, c in zip(timelines, columns)]
        )
        epochs = np.concatenate([c[0] for c in columns])
        generated = np.concatenate([c[1] for c in columns])
        received = np.concatenate([c[2] for c in columns])
        values = np.concatenate([c[3] for c in columns])
    else:
        node_ids = np.zeros(0, dtype=np.int64)
        epochs = np.zeros(0, dtype=np.int64)
        generated = np.zeros(0, dtype=float)
        received = np.zeros(0, dtype=float)
        values = np.zeros((0, NUM_METRICS), dtype=float)
    meta: Dict[str, object] = {
        "report_period_s": network.config.report_period_s,
        "day_seconds": network.config.day_seconds,
        "seed": network.config.seed,
        "n_nodes": len(network.topology),
        "sink_id": network.topology.sink_id,
        "sim_end": network.sim.now(),
    }
    if metadata:
        meta.update(metadata)
    arrival_log = network.collector.arrival_log
    if arrival_log:
        arrival_times = np.array(
            [received_at for (_n, _e, _c, received_at) in arrival_log],
            dtype=float,
        )
        arrival_nodes = np.array(
            [nid for (nid, _e, _c, _t) in arrival_log], dtype=np.int64
        )
    else:
        arrival_times = np.zeros(0, dtype=float)
        arrival_nodes = np.zeros(0, dtype=np.int64)
    return TraceFrame(
        node_ids=node_ids,
        epochs=epochs,
        generated_at=generated,
        received_at=received,
        values=values,
        metadata=meta,
        ground_truth=[
            GroundTruth(g.kind, tuple(g.node_ids), g.start, g.end)
            for g in network.ground_truth
        ],
        packets_generated=network.stats.packets_generated,
        packets_received=network.collector.packets_received,
        arrival_times=arrival_times,
        arrival_nodes=arrival_nodes,
    )
