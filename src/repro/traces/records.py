"""Trace container: what VN2's back-end actually consumes.

A :class:`Trace` is the sink-side record of a deployment: complete 43-metric
snapshots per node (in epoch order), packet-arrival accounting for PRR
analysis, the ground-truth fault log (for evaluation only — the algorithm
never sees it), and the generation metadata needed to interpret timestamps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.metrics.catalog import NUM_METRICS


@dataclass
class SnapshotRow:
    """One complete snapshot of one node, as received at the sink."""

    node_id: int
    epoch: int
    generated_at: float
    received_at: float
    values: np.ndarray

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=float)
        if self.values.shape != (NUM_METRICS,):
            raise ValueError(
                f"snapshot values must have shape ({NUM_METRICS},), "
                f"got {self.values.shape}"
            )


@dataclass
class GroundTruth:
    """An injected fault episode (copied from the network's log)."""

    kind: str
    node_ids: Tuple[int, ...]
    start: float
    end: float


@dataclass
class Trace:
    """A full deployment trace.

    Attributes:
        rows: All complete snapshots, sorted by (node_id, epoch).
        metadata: Generation parameters (report period, duration, seed ...).
        ground_truth: Fault episodes, for evaluation harnesses only.
        packets_generated: Report packets the nodes emitted.
        packets_received: Report packets that reached the sink.
        arrivals: (received_at, node_id) per received packet, arrival order.
    """

    rows: List[SnapshotRow]
    metadata: Dict[str, object] = field(default_factory=dict)
    ground_truth: List[GroundTruth] = field(default_factory=list)
    packets_generated: int = 0
    packets_received: int = 0
    arrivals: List[Tuple[float, int]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.rows.sort(key=lambda r: (r.node_id, r.epoch))

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------

    @property
    def node_ids(self) -> List[int]:
        """Distinct node ids present in the trace, ascending."""
        return sorted({r.node_id for r in self.rows})

    def rows_for(self, node_id: int) -> List[SnapshotRow]:
        """This node's snapshots in epoch order."""
        return [r for r in self.rows if r.node_id == node_id]

    def per_node(self) -> Dict[int, List[SnapshotRow]]:
        """node_id -> its snapshots in epoch order."""
        result: Dict[int, List[SnapshotRow]] = {}
        for row in self.rows:
            result.setdefault(row.node_id, []).append(row)
        return result

    def time_span(self) -> Tuple[float, float]:
        """(first, last) snapshot generation time; (0, 0) when empty."""
        if not self.rows:
            return (0.0, 0.0)
        times = [r.generated_at for r in self.rows]
        return (min(times), max(times))

    def window(self, start: float, end: float) -> "Trace":
        """Sub-trace of snapshots generated in [start, end)."""
        rows = [r for r in self.rows if start <= r.generated_at < end]
        arrivals = [(t, n) for (t, n) in self.arrivals if start <= t < end]
        return Trace(
            rows=rows,
            metadata=dict(self.metadata),
            ground_truth=list(self.ground_truth),
            packets_generated=self.packets_generated,
            packets_received=self.packets_received,
            arrivals=arrivals,
        )

    def delivery_ratio(self) -> float:
        """Fraction of generated report packets that arrived at the sink."""
        if self.packets_generated == 0:
            return 0.0
        return self.packets_received / self.packets_generated

    def __len__(self) -> int:
        return len(self.rows)

    def ground_truth_in(self, start: float, end: float) -> List[GroundTruth]:
        """Ground-truth episodes overlapping [start, end)."""
        return [
            g for g in self.ground_truth if g.start < end and g.end >= start
        ]

    def to_frame(self):
        """Columnarize into a :class:`repro.traces.frame.TraceFrame`.

        The conversion is lossless: ``trace.to_frame().to_trace()`` gives
        back bit-identical snapshot values, ordering and accounting.
        """
        from repro.traces.frame import TraceFrame

        return TraceFrame.from_trace(self)


def trace_from_network(network, metadata: Optional[Dict[str, object]] = None) -> Trace:
    """Extract a :class:`Trace` from a finished simulation.

    This is the legacy object-shaped view; it materializes the columnar
    :func:`repro.traces.frame.frame_from_network` extraction once at the
    boundary.

    Args:
        network: A :class:`repro.simnet.network.Network` that has been run.
        metadata: Extra metadata to record alongside the run parameters.
    """
    from repro.traces.frame import frame_from_network

    return frame_from_network(network, metadata).to_trace()
