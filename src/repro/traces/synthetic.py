"""Planted-root-cause synthetic data: controlled NMF validation.

The simulator exercises the full pipeline, but its ground truth lives at
the *fault* level, not the *matrix* level.  This module generates
exception matrices with **known factors** — sparse non-negative weights W
over hand-planted root-cause vectors Ψ, plus noise — so recovery quality
can be measured exactly:

    E = W_true @ Psi_true + noise,  W_true sparse and non-negative.

:func:`match_components` aligns recovered rows to planted ones (greedy
best-cosine matching), giving the mean cosine similarity that the
recovery tests and benches assert on.

Planted vectors default to VN2-flavoured signatures (a loop vector, a
contention vector, a reboot vector, ...) on the real 43-metric axis, so
the same machinery doubles as a sanity world for the interpreter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.metrics.catalog import METRIC_INDEX, NUM_METRICS

#: Hand-planted signature templates on the 43-metric axis (normalized
#: units in [0, 1]; 0.5 is "no movement" under the robust display map).
_SIGNATURE_TEMPLATES: Tuple[Tuple[str, Tuple[Tuple[str, float], ...]], ...] = (
    (
        "routing_loop",
        (
            ("loop_counter", 1.0),
            ("duplicate_counter", 0.9),
            ("transmit_counter", 0.85),
            ("self_transmit_counter", 0.6),
            ("overflow_drop_counter", 0.5),
        ),
    ),
    (
        "contention",
        (
            ("mac_backoff_counter", 1.0),
            ("noack_retransmit_counter", 0.8),
            ("retransmit_counter", 0.7),
        ),
    ),
    (
        "node_reboot",
        (
            ("transmit_counter", -0.9),
            ("receive_counter", -0.9),
            ("beacon_counter", -0.8),
            ("radio_on_time", -0.85),
            ("voltage", 0.6),
        ),
    ),
    (
        "link_dynamics",
        tuple((f"rssi_{i}", 0.7 - 0.05 * i) for i in range(1, 6))
        + tuple((f"etx_{i}", 0.6 - 0.05 * i) for i in range(1, 6)),
    ),
    (
        "environment",
        (
            ("temperature", 0.9),
            ("humidity", -0.7),
            ("light", 0.8),
            ("co2", 0.5),
        ),
    ),
    (
        "queue_overflow",
        (
            ("overflow_drop_counter", 1.0),
            ("receive_counter", 0.7),
            ("noack_retransmit_counter", 0.4),
        ),
    ),
)


def planted_psi(n_causes: int, rest: float = 0.5) -> np.ndarray:
    """``n_causes`` planted root-cause vectors on the 43-metric axis.

    Signed template movements are mapped around a rest level of ``rest``
    (matching the robust normalizer's zero-delta point), clipped to
    [0, 1].
    """
    if not (1 <= n_causes <= len(_SIGNATURE_TEMPLATES)):
        raise ValueError(
            f"n_causes must be in [1, {len(_SIGNATURE_TEMPLATES)}]"
        )
    psi = np.full((n_causes, NUM_METRICS), 0.0)
    for row, (_name, movements) in enumerate(_SIGNATURE_TEMPLATES[:n_causes]):
        vec = np.full(NUM_METRICS, rest)
        for metric, movement in movements:
            vec[METRIC_INDEX[metric]] = np.clip(rest + movement * rest, 0.0, 1.0)
            if movement < 0:
                vec[METRIC_INDEX[metric]] = np.clip(
                    rest + movement * rest, 0.0, 1.0
                )
        psi[row] = vec
    return psi


def planted_cause_names(n_causes: int) -> List[str]:
    """Names of the first ``n_causes`` planted signatures."""
    return [name for name, _m in _SIGNATURE_TEMPLATES[:n_causes]]


@dataclass
class PlantedDataset:
    """A synthetic exception matrix with known factors."""

    E: np.ndarray  # (n_states, 43), non-negative
    W_true: np.ndarray  # (n_states, r) sparse non-negative weights
    Psi_true: np.ndarray  # (r, 43) planted root-cause vectors
    cause_names: List[str]
    noise_sigma: float


def generate_planted_dataset(
    n_states: int = 400,
    n_causes: int = 4,
    causes_per_state: Tuple[int, int] = (1, 3),
    noise_sigma: float = 0.02,
    rng: Optional[np.random.Generator] = None,
) -> PlantedDataset:
    """Exception states as sparse mixtures of planted causes plus noise.

    Args:
        n_states: Rows of E.
        n_causes: Planted root-cause vectors (<= 6 available templates).
        causes_per_state: Inclusive range of active causes per state.
        noise_sigma: Gaussian noise level (clipped to keep E >= 0).
        rng: Random generator (default seed 0 for reproducibility).
    """
    rng = rng or np.random.default_rng(0)
    psi = planted_psi(n_causes)
    W = np.zeros((n_states, n_causes))
    lo, hi = causes_per_state
    for i in range(n_states):
        k = int(rng.integers(lo, hi + 1))
        active = rng.choice(n_causes, size=min(k, n_causes), replace=False)
        W[i, active] = rng.uniform(0.3, 1.0, size=len(active))
    E = W @ psi + rng.normal(0.0, noise_sigma, size=(n_states, NUM_METRICS))
    E = np.clip(E, 0.0, None)
    return PlantedDataset(
        E=E,
        W_true=W,
        Psi_true=psi,
        cause_names=planted_cause_names(n_causes),
        noise_sigma=noise_sigma,
    )


def match_components(
    recovered: np.ndarray, planted: np.ndarray, center: float = 0.0
) -> Tuple[List[int], np.ndarray]:
    """Greedy best-cosine matching of recovered rows to planted rows.

    Args:
        recovered, planted: Row matrices to align.
        center: Subtracted from every entry before the cosine.  Planted
            vectors share a large common rest level (~0.5 in normalized
            units); raw cosines between *different* planted signatures are
            then 0.9+, which hides recovery errors.  Centering at the rest
            level makes the similarity measure signature overlap only.

    Returns:
        (assignment, similarities): for each planted row p,
        ``assignment[p]`` is the matched recovered row index and
        ``similarities[p]`` the (centered) cosine similarity of the pair.
    """
    recovered = np.atleast_2d(np.asarray(recovered, dtype=float)) - center
    planted = np.atleast_2d(np.asarray(planted, dtype=float)) - center

    def unit(M: np.ndarray) -> np.ndarray:
        norms = np.linalg.norm(M, axis=1, keepdims=True)
        return M / np.maximum(norms, 1e-12)

    sims = unit(planted) @ unit(recovered).T  # (p, r)
    assignment = [-1] * planted.shape[0]
    similarities = np.zeros(planted.shape[0])
    available = set(range(recovered.shape[0]))
    # repeatedly take the globally best remaining pair
    order = np.dstack(np.unravel_index(np.argsort(-sims, axis=None), sims.shape))[0]
    assigned_planted: set = set()
    for p, r in order:
        p, r = int(p), int(r)
        if p in assigned_planted or r not in available:
            continue
        assignment[p] = r
        similarities[p] = float(sims[p, r])
        assigned_planted.add(p)
        available.discard(r)
        if len(assigned_planted) == planted.shape[0]:
            break
    return assignment, similarities


def recovery_score(
    recovered: np.ndarray, planted: np.ndarray, center: float = 0.0
) -> float:
    """Mean matched cosine similarity (1.0 = perfect recovery)."""
    _assignment, similarities = match_components(recovered, planted, center)
    return float(similarities.mean())
