"""Synthetic 45-node testbed traces (the paper's Section V-A experiments).

The paper's testbed: 45 TelosB nodes in a 9x5 grid, CC2420 at power
level 2, every node reporting C1/C2/C3 every three minutes, for about two
hours.  Two kinds of events are introduced manually every ten minutes:
*node failure* (remove 5-7 nodes) and *node reboot* (put some of them
back).  Two scenarios differ in where the removed nodes sit:

* **Scenario 1 (LOCAL)** — nodes are removed from one local area;
* **Scenario 2 (EXPANSIVE)** — nodes are removed spread across the grid.

(The paper finds scenario 2's exceptions easier to detect — Fig 5(i)
matches the training profile more closely than Fig 5(h).)
"""

from __future__ import annotations

import enum
import hashlib
import json
import math
from pathlib import Path
from typing import List, Optional, Sequence

import numpy as np

from repro.simnet.faults import FaultInjector, NodeFailure, NodeReboot
from repro.simnet.network import Network, NetworkConfig
from repro.simnet.radio import RadioParams
from repro.simnet.topology import Topology, grid_topology
from repro.traces.frame import TraceFrame, frame_from_network
from repro.traces.io import load_frame_npz, save_frame_npz
from repro.traces.records import Trace


class TestbedScenario(enum.Enum):
    """Where the removed nodes are located."""

    __test__ = False  # not a pytest collection target despite the name

    LOCAL = "local"  # scenario 1 in the paper
    EXPANSIVE = "expansive"  # scenario 2 in the paper


def _testbed_config(seed: int, report_period_s: float) -> NetworkConfig:
    """Radio/network parameters for the 9x5, 8 m-spaced indoor grid."""
    return NetworkConfig(
        report_period_s=report_period_s,
        beacon_min_s=15.0,
        beacon_max_s=240.0,
        neighbor_timeout_s=900.0,
        seed=seed,
        radio=RadioParams(tx_power_dbm=-10.0),
        max_range_m=40.0,
    )


def _pick_local(
    candidates: Sequence[int],
    topology: Topology,
    count: int,
    rng: np.random.Generator,
) -> List[int]:
    """``count`` nodes clustered around a random anchor node."""
    anchor = int(rng.choice(list(candidates)))
    ax, ay = topology.positions[anchor]
    ordered = sorted(
        candidates,
        key=lambda nid: math.hypot(
            topology.positions[nid][0] - ax, topology.positions[nid][1] - ay
        ),
    )
    return ordered[:count]


def _pick_expansive(
    candidates: Sequence[int],
    count: int,
    rng: np.random.Generator,
) -> List[int]:
    """``count`` nodes sampled uniformly across the grid."""
    picked = rng.choice(list(candidates), size=min(count, len(candidates)),
                        replace=False)
    return [int(n) for n in picked]


def build_failure_schedule(
    topology: Topology,
    scenario: TestbedScenario,
    rng: np.random.Generator,
    first_event_at: float,
    last_event_at: float,
    cycle_s: float = 600.0,
    reboot_offset_s: float = 300.0,
) -> List[object]:
    """The remove/put-back schedule the paper's experiments use.

    Every ``cycle_s`` seconds, 5-7 currently-alive nodes are removed; at
    ``reboot_offset_s`` into each cycle, roughly half of the currently
    removed nodes are put back (rebooted).
    """
    faults: List[object] = []
    removed: List[int] = []
    alive = set(topology.sensor_ids)
    t = first_event_at
    while t <= last_event_at:
        count = int(rng.integers(5, 8))
        candidates = sorted(alive)
        if len(candidates) <= count + 5:
            break  # never hollow the network out entirely
        if scenario is TestbedScenario.LOCAL:
            to_remove = _pick_local(candidates, topology, count, rng)
        else:
            to_remove = _pick_expansive(candidates, count, rng)
        for node_id in to_remove:
            faults.append(NodeFailure(node_id, at=t))
            alive.discard(node_id)
            removed.append(node_id)
        # Put back about half of everything currently removed.
        n_back = max(1, len(removed) // 2)
        back = [int(n) for n in rng.choice(removed, size=n_back, replace=False)]
        for node_id in back:
            faults.append(NodeReboot(node_id, at=t + reboot_offset_s))
            removed.remove(node_id)
            alive.add(node_id)
        t += cycle_s
    return faults


def testbed_cache_paths(
    scenario: TestbedScenario,
    seed: int = 7,
    duration_s: float = 7200.0,
    warmup_s: float = 1200.0,
    report_period_s: float = 180.0,
    rows: int = 9,
    cols: int = 5,
    spacing_m: float = 8.0,
    cache_dir: Optional[Path] = None,
) -> Path:
    """NPZ cache path for one testbed run, keyed by its parameters.

    Same contract as :func:`repro.traces.citysee.citysee_cache_paths`: a
    pure function of the generation parameters, shared by serial calls and
    the scenario runner's spool-to-cache workers.
    """
    from repro.traces.citysee import default_cache_dir

    payload = json.dumps(
        {
            "scenario": scenario.value,
            "seed": seed,
            "duration_s": duration_s,
            "warmup_s": warmup_s,
            "report_period_s": report_period_s,
            "rows": rows,
            "cols": cols,
            "spacing_m": spacing_m,
            "v": 1,
        },
        sort_keys=True,
    )
    key = hashlib.sha256(payload.encode()).hexdigest()[:16]
    directory = cache_dir or default_cache_dir()
    return directory / f"testbed-{key}.npz"


def generate_testbed_frame(
    scenario: TestbedScenario = TestbedScenario.EXPANSIVE,
    seed: int = 7,
    duration_s: float = 7200.0,
    warmup_s: float = 1200.0,
    report_period_s: float = 180.0,
    rows: int = 9,
    cols: int = 5,
    spacing_m: float = 8.0,
    use_cache: bool = False,
    cache_dir: Optional[Path] = None,
) -> TraceFrame:
    """Run the testbed experiment and return its trace as a frame.

    The trace covers ``warmup_s + duration_s`` simulated seconds; failures
    and reboots start after the warmup (the tree needs time to form), every
    10 minutes, exactly as in the paper's two-hour runs.

    With ``use_cache=True`` an identical earlier run is reloaded from the
    NPZ trace cache instead of re-simulated (writes are atomic, so
    concurrent generators of the same parameters never clobber each
    other).  Off by default to preserve the historical run-every-time
    behavior of direct calls.
    """
    npz_path: Optional[Path] = None
    if use_cache:
        npz_path = testbed_cache_paths(
            scenario, seed, duration_s, warmup_s, report_period_s,
            rows, cols, spacing_m, cache_dir,
        )
        if npz_path.exists():
            return load_frame_npz(npz_path)

    topology = grid_topology(rows=rows, cols=cols, spacing=spacing_m)
    config = _testbed_config(seed, report_period_s)
    network = Network(topology, config)

    rng = network.rngs.stream("testbed.schedule")
    faults = build_failure_schedule(
        topology,
        scenario,
        rng,
        first_event_at=warmup_s,
        last_event_at=warmup_s + duration_s - 600.0,
    )
    FaultInjector(faults).install(network)
    network.run(warmup_s + duration_s)

    frame = frame_from_network(
        network,
        metadata={
            "kind": "testbed",
            "scenario": scenario.value,
            "warmup_s": warmup_s,
            "duration_s": duration_s,
            "rows": rows,
            "cols": cols,
            "spacing_m": spacing_m,
            "positions": {
                str(nid): list(pos) for nid, pos in topology.positions.items()
            },
        },
    )
    if npz_path is not None:
        save_frame_npz(frame, npz_path)
    return frame


def generate_testbed_trace(
    scenario: TestbedScenario = TestbedScenario.EXPANSIVE,
    seed: int = 7,
    duration_s: float = 7200.0,
    warmup_s: float = 1200.0,
    report_period_s: float = 180.0,
    rows: int = 9,
    cols: int = 5,
    spacing_m: float = 8.0,
) -> Trace:
    """Legacy shim: :func:`generate_testbed_frame` as a :class:`Trace`."""
    return generate_testbed_frame(
        scenario=scenario,
        seed=seed,
        duration_s=duration_s,
        warmup_s=warmup_s,
        report_period_s=report_period_s,
        rows=rows,
        cols=cols,
        spacing_m=spacing_m,
    ).to_trace()
