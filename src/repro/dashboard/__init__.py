"""Dependency-free live dashboard served by the diagnosis sink.

The dashboard is a read-only observer assembled entirely from surfaces
the service already exposes: per-node summaries from the streaming
sessions, the incident tracker documents, the fitted model's Ψ
interpretation, and the subscribe-protocol event feed.  It adds zero
coupling into the diagnosis path — the SSE hub is just another
subscriber, and a stalled browser is evicted rather than ever
backpressuring ingest (:mod:`repro.dashboard.sse`).

Enable it with ``vn2 serve --dashboard`` and open ``/dashboard``; see
``docs/dashboard.md`` for the endpoint contracts.
"""

from repro.dashboard.sse import DashboardHub, SSEClient, format_sse
from repro.dashboard.topology import (
    assemble_topology,
    infer_edges,
    model_doc,
    validate_stream_event,
    validate_topology_doc,
)

__all__ = [
    "DashboardHub",
    "SSEClient",
    "assemble_topology",
    "format_sse",
    "infer_edges",
    "model_doc",
    "validate_stream_event",
    "validate_topology_doc",
]
