"""Server-sent-events hub: the dashboard's live incident feed.

The hub is *just another subscriber*: it hands the shard backend one
``asyncio.Queue`` per the existing subscribe contract
(:meth:`~repro.service.backends.ShardBackend.subscribe`) and fans the
arriving event messages out to attached browsers as SSE frames.  Nothing
in the diagnosis path knows the dashboard exists.

The one invariant that matters is that a stalled browser can never
backpressure ingest.  Every client gets a *bounded* frame queue; the
fan-out uses ``put_nowait`` and treats a full queue as proof the client
stopped reading: the client is evicted on the spot —
``repro_dashboard_clients_evicted_total`` increments, its transport is
aborted (unblocking a handler stuck in ``drain()`` against a full TCP
buffer), and the pump moves on.  Eviction costs O(1) and drops only the
evicted client's frames; every other subscriber — SSE or TCP — sees the
identical, complete event stream.

Per-client memory is therefore bounded by ``max_queue`` frames (an
incident-event frame is a few hundred bytes), and the hub itself adds
one queue hop per event — measured under 5% ingest overhead with an
attached client (``benchmarks/test_bench_dashboard.py``).
"""

from __future__ import annotations

import asyncio
import json
from typing import Callable, Optional, Set

__all__ = ["DashboardHub", "SSEClient", "format_sse"]

#: Queue sentinel: the hub closed this client (eviction or shutdown).
_CLOSE = object()

#: Comment frame sent when a client has been idle for a keepalive period.
KEEPALIVE_FRAME = b": keepalive\n\n"

#: Per-connection write-buffer bound (transport high-water mark and
#: ``SO_SNDBUF``) for SSE streams.  Small on purpose: a stalled client's
#: backlog must accumulate in its bounded hub queue — the thing slow
#: consumer eviction watches — not in elastic socket buffers.
SSE_BUFFER_BYTES = 16384


def format_sse(
    data: dict,
    event: Optional[str] = None,
    retry_ms: Optional[int] = None,
) -> bytes:
    """Frame one JSON payload as a server-sent event.

    Compact JSON (no newlines) keeps the frame a single ``data:`` line,
    so the payload parses with any SSE client and with none at all
    (``grep '^data:'``).
    """
    lines = []
    if event:
        lines.append(f"event: {event}")
    if retry_ms is not None:
        lines.append(f"retry: {int(retry_ms)}")
    lines.append("data: " + json.dumps(data, separators=(",", ":")))
    return ("\n".join(lines) + "\n\n").encode("utf-8")


class SSEClient:
    """One attached browser: a bounded frame queue plus eviction state."""

    def __init__(
        self,
        max_queue: int,
        deployment: Optional[str] = None,
        on_close: Optional[Callable[[], None]] = None,
    ):
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=max_queue)
        self.deployment = deployment
        self.on_close = on_close
        self.evicted = False

    async def next_frame(self, keepalive_s: float) -> Optional[bytes]:
        """The next frame to write, a keepalive after idleness, or
        ``None`` once the hub closed this client."""
        try:
            frame = await asyncio.wait_for(self.queue.get(), keepalive_s)
        except asyncio.TimeoutError:
            return KEEPALIVE_FRAME
        return None if frame is _CLOSE else frame


class DashboardHub:
    """Subscribe-protocol fan-out to SSE clients (runs on the service loop).

    Args:
        service: The owning :class:`~repro.service.server.DiagnosisService`.
        max_queue: Frames buffered per client before slow-consumer
            eviction (``ServiceConfig.dashboard_queue``).
        rescan_s: How often the pump checks for newly materialized
            deployments to subscribe to.
    """

    def __init__(self, service, max_queue: int = 256, rescan_s: float = 0.5):
        self.service = service
        self.max_queue = max_queue
        self.rescan_s = rescan_s
        self._outbox: Optional[asyncio.Queue] = None
        self._subscribed: Set[str] = set()
        self._clients: Set[SSEClient] = set()
        self._pump: Optional[asyncio.Task] = None
        registry = service.registry
        self._m_attached = registry.counter(
            "repro_dashboard_clients_total",
            "Dashboard SSE clients ever attached",
        )
        self._m_evicted = registry.counter(
            "repro_dashboard_clients_evicted_total",
            "Dashboard SSE clients evicted for slow consumption",
        )
        self._m_events = registry.counter(
            "repro_dashboard_events_total",
            "Incident events fanned out by the dashboard SSE hub",
        )
        registry.gauge(
            "repro_dashboard_clients",
            "Dashboard SSE clients currently attached",
            fn=lambda: float(len(self._clients)),
        )

    # -- lifecycle (service start/stop) --------------------------------

    async def start(self) -> None:
        self._outbox = asyncio.Queue()
        self._pump = asyncio.get_running_loop().create_task(
            self._run(), name="dashboard-hub"
        )

    async def stop(self) -> None:
        """Close every client and stop the pump (before the listeners
        close, so no handler is left blocked on a dead stream).

        The pump is stopped with a queue sentinel, not ``cancel()``: a
        cancel landing exactly as the pump's rescan timeout expires gets
        swallowed as ``TimeoutError`` by ``wait_for`` (the documented
        race), which would leave ``await self._pump`` hanging forever.
        The sentinel wakes the pump immediately and exits its loop
        deterministically.
        """
        if self._pump is not None:
            self._outbox.put_nowait(_CLOSE)
            await self._pump
            self._pump = None
        for deployment in self._subscribed:
            self.service.backend.unsubscribe(deployment, self._outbox)
        self._subscribed.clear()
        for client in list(self._clients):
            self._close(client)
        self._clients.clear()

    # -- client attachment ---------------------------------------------

    def attach(
        self,
        deployment: Optional[str] = None,
        on_close: Optional[Callable[[], None]] = None,
    ) -> SSEClient:
        """Register one SSE client; ``on_close`` is invoked on eviction
        or hub shutdown (the HTTP handler passes a transport abort)."""
        client = SSEClient(self.max_queue, deployment, on_close)
        self._clients.add(client)
        self._m_attached.inc()
        return client

    def detach(self, client: SSEClient) -> None:
        self._clients.discard(client)

    # -- pump ----------------------------------------------------------

    async def _run(self) -> None:
        while True:
            self._rescan()
            try:
                message = await asyncio.wait_for(
                    self._outbox.get(), self.rescan_s
                )
            except asyncio.TimeoutError:
                continue
            if message is _CLOSE:
                return
            self._broadcast(message)

    def on_deployment(self, deployment: str) -> None:
        """Materialization hook: the backend calls this the moment a new
        shard/route exists, so the hub is subscribed before the first
        batch's events are published (the pump's periodic rescan is just
        a safety net).  Added to ``_subscribed`` first because
        ``backend.subscribe`` materializes on miss and would re-enter."""
        if self._outbox is None or deployment in self._subscribed:
            return
        self._subscribed.add(deployment)
        self.service.backend.subscribe(deployment, self._outbox)

    def _rescan(self) -> None:
        """Subscribe to any deployment materialized since the last look.

        The hub wants *all* deployments; a subscriber queue is keyed by
        identity, so one outbox can subscribe everywhere — exactly like
        one TCP connection holding several subscriptions.
        """
        for deployment in self.service.backend.deployments():
            self.on_deployment(deployment)

    def _broadcast(self, message: dict) -> None:
        self._m_events.inc()
        frame = None
        for client in list(self._clients):
            if (
                client.deployment is not None
                and message.get("deployment") != client.deployment
            ):
                continue
            if frame is None:
                frame = format_sse(message, event="incident")
            try:
                client.queue.put_nowait(frame)
            except asyncio.QueueFull:
                self._evict(client)

    # -- eviction ------------------------------------------------------

    def _evict(self, client: SSEClient) -> None:
        """Slow consumer: count the eviction, then close the client."""
        self._m_evicted.inc()
        self._clients.discard(client)
        self._close(client)

    def _close(self, client: SSEClient) -> None:
        client.evicted = True
        try:
            client.queue.get_nowait()  # make room for the sentinel
        except asyncio.QueueEmpty:
            pass
        client.queue.put_nowait(_CLOSE)
        if client.on_close is not None:
            try:
                client.on_close()
            except Exception:
                pass  # the transport may already be gone
