"""Topology assembly for the live dashboard.

The sink's visible surface is built from three existing feeds — per-node
summaries (:meth:`~repro.core.streaming.StreamingDiagnosisSession.node_summaries`),
the incident tracker's open/closed documents, and the fitted model's Ψ
interpretation — stitched here into the ``GET /api/topology`` payload.

The 43-metric catalog carries no explicit parent pointer, but it does
carry each node's hop count (``path_length``) and path ETX, and the sink
may know static node positions.  :func:`infer_edges` reconstructs a
plausible collection tree the way the paper's operators read one: every
node at hop *h* links to the "nearest" node at hop *h-1* — nearest by
Euclidean position when positions are configured, else the parent
candidate whose own path ETX is closest to the child's minus one (the
expected one-hop ETX gap).  The inference is deterministic (ties break
on node id) and cheap: O(nodes at h × nodes at h-1) per hop ring, on
dicts that are already O(nodes).

The validators at the bottom are the documented JSON contract of
``/api/topology`` and ``/api/incidents/stream`` (see
``docs/dashboard.md``); tests and the CI dashboard smoke job run every
served payload through them.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.metrics.catalog import METRIC_NAMES

__all__ = [
    "assemble_topology",
    "infer_edges",
    "model_doc",
    "validate_stream_event",
    "validate_topology_doc",
]

#: Keys every per-node summary entry must carry (the streaming session's
#: contract; the validator checks them on served payloads).
NODE_KEYS = (
    "node_id", "epoch", "last_seen", "hop", "path_etx", "voltage",
    "neighbors", "packets", "states", "score", "exception", "hazard",
    "family", "strength",
)

#: Keys of one incident object (:func:`repro.service.protocol.incident_obj`).
INCIDENT_KEYS = (
    "hazard", "node_ids", "start", "end", "peak_strength",
    "total_strength", "n_observations",
)


def _finite(value) -> Optional[float]:
    if isinstance(value, (int, float)) and math.isfinite(value):
        return float(value)
    return None


def infer_edges(
    nodes: List[dict],
    positions: Optional[Dict[int, tuple]] = None,
) -> List[dict]:
    """Infer collection-tree edges from per-node hop counts.

    Returns ``{"from": child, "to": parent, "etx": child path ETX}``
    dicts, children in node-id order.  Nodes without a finite hop (never
    reported ``path_length``) and hop-ring gaps (no candidates at
    ``h-1``) simply contribute no edge — the dashboard renders them as
    unattached, which is itself a visibility signal.
    """
    by_hop: Dict[int, List[dict]] = {}
    for node in nodes:
        hop = _finite(node.get("hop"))
        if hop is None:
            continue
        by_hop.setdefault(int(round(hop)), []).append(node)
    edges: List[dict] = []
    for hop in sorted(by_hop):
        parents = by_hop.get(hop - 1)
        if hop <= 0 or not parents:
            continue
        for node in sorted(by_hop[hop], key=lambda n: n["node_id"]):
            parent = _closest_parent(node, parents, positions)
            if parent is not None:
                edges.append({
                    "from": int(node["node_id"]),
                    "to": int(parent["node_id"]),
                    "etx": _finite(node.get("path_etx")),
                })
    return edges


def _closest_parent(node, parents, positions) -> Optional[dict]:
    def _distance(parent) -> float:
        if positions:
            mine = positions.get(node["node_id"])
            theirs = positions.get(parent["node_id"])
            if mine is not None and theirs is not None:
                return math.hypot(
                    float(mine[0]) - float(theirs[0]),
                    float(mine[1]) - float(theirs[1]),
                )
        # No geometry: the parent whose own path ETX best explains this
        # child's (child ≈ parent + one hop) is the likeliest relay.
        child_etx = _finite(node.get("path_etx"))
        parent_etx = _finite(parent.get("path_etx"))
        if child_etx is None or parent_etx is None:
            return float("inf")
        return abs(child_etx - 1.0 - parent_etx)

    best = min(
        parents, key=lambda p: (_distance(p), int(p["node_id"])), default=None
    )
    return best


def assemble_topology(
    nodes: List[dict],
    incidents: Optional[dict] = None,
    positions: Optional[Dict[int, tuple]] = None,
) -> dict:
    """One deployment's topology panel: nodes + inferred edges + incidents.

    ``nodes`` is a session's :meth:`node_summaries` list; ``incidents``
    the deployment's tracker document (``{"open": [...], ...}``).  Known
    positions are stamped onto nodes as ``x``/``y`` so the page can lay
    the tree out geographically; without them it falls back to hop rings.
    """
    incidents = incidents or {}
    doc_nodes = []
    for node in sorted(nodes, key=lambda n: n["node_id"]):
        entry = dict(node)
        position = (positions or {}).get(node["node_id"])
        if position is not None:
            entry["x"] = float(position[0])
            entry["y"] = float(position[1])
        doc_nodes.append(entry)
    return {
        "nodes": doc_nodes,
        "edges": infer_edges(nodes, positions),
        "incidents_open": list(incidents.get("open") or []),
        "incidents_closed_total": int(incidents.get("closed_total") or 0),
        "incidents_evicted": int(incidents.get("evicted") or 0),
    }


def model_doc(tool) -> dict:
    """The serving model's Ψ signatures, for the heatmap panel.

    One entry per component: its interpreted family/hazards/explanation
    (:class:`~repro.core.interpretation.RootCauseLabel`) and the raw Ψ
    row over the 43 catalog metrics.  The page matches an incident's
    hazard to the components that score it to render the exception
    signature behind each open incident.
    """
    psi = tool.nmf_.Psi
    return {
        "version": tool.model_version,
        "rank": int(psi.shape[0]),
        "metric_names": list(METRIC_NAMES),
        "components": [
            {
                "index": int(label.index),
                "family": label.family,
                "hazards": [
                    [name, float(score)] for name, score in label.hazards
                ],
                "explanation": label.explanation,
                "is_baseline": bool(label.is_baseline),
                "psi": [float(v) for v in psi[int(label.index)]],
            }
            for label in tool.labels
        ],
    }


# --------------------------------------------------------------------------
# payload validation (the documented JSON contract; tests + CI smoke)
# --------------------------------------------------------------------------


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(message)


def _check_incident(obj, where: str) -> None:
    _require(isinstance(obj, dict), f"{where}: incident must be an object")
    for key in INCIDENT_KEYS:
        _require(key in obj, f"{where}: incident missing {key!r}")
    _require(
        isinstance(obj["node_ids"], list) and obj["node_ids"],
        f"{where}: incident node_ids must be a non-empty list",
    )


def validate_topology_doc(doc) -> int:
    """Structurally validate a ``GET /api/topology`` payload.

    Returns the total node count across deployments; raises
    ``ValueError`` on the first contract violation.
    """
    _require(isinstance(doc, dict), "topology doc must be an object")
    for key in ("ts", "server", "deployments", "model"):
        _require(key in doc, f"topology doc missing {key!r}")
    server = doc["server"]
    _require(isinstance(server, dict), "server section must be an object")
    for key in ("backend", "model_version", "uptime_s"):
        _require(key in server, f"server section missing {key!r}")
    model = doc["model"]
    _require(isinstance(model, dict), "model section must be an object")
    _require(
        isinstance(model.get("components"), list) and model["components"],
        "model section must list components",
    )
    _require(
        model.get("metric_names") == list(METRIC_NAMES),
        "model metric_names must be the 43-metric catalog",
    )
    width = len(METRIC_NAMES)
    for component in model["components"]:
        _require(
            isinstance(component.get("psi"), list)
            and len(component["psi"]) == width,
            f"component psi must have {width} entries",
        )
    _require(
        isinstance(doc["deployments"], dict),
        "deployments section must be an object",
    )
    n_nodes = 0
    for name, deployment in doc["deployments"].items():
        where = f"deployment {name!r}"
        _require(isinstance(deployment, dict), f"{where} must be an object")
        for key in ("nodes", "edges", "incidents_open"):
            _require(key in deployment, f"{where} missing {key!r}")
        node_ids = set()
        for node in deployment["nodes"]:
            _require(isinstance(node, dict), f"{where}: node must be an object")
            for key in NODE_KEYS:
                _require(key in node, f"{where}: node missing {key!r}")
            node_ids.add(node["node_id"])
        n_nodes += len(node_ids)
        for edge in deployment["edges"]:
            _require(
                edge.get("from") in node_ids and edge.get("to") in node_ids,
                f"{where}: edge endpoints must be known nodes",
            )
        for incident in deployment["incidents_open"]:
            _check_incident(incident, where)
    return n_nodes


def validate_stream_event(obj) -> str:
    """Structurally validate one ``/api/incidents/stream`` data payload.

    Returns the payload's type (``hello`` or ``event``); raises
    ``ValueError`` on violation.  ``event`` payloads are the verbatim
    subscribe-protocol messages, so the nested ``event`` object is the
    exact shape ``vn2 watch --output`` writes.
    """
    _require(isinstance(obj, dict), "stream payload must be an object")
    kind = obj.get("type")
    if kind == "hello":
        _require(
            isinstance(obj.get("deployments"), list),
            "hello payload must list deployments",
        )
        return "hello"
    _require(kind == "event", f"unknown stream payload type {kind!r}")
    _require(
        isinstance(obj.get("deployment"), str) and obj["deployment"],
        "event payload missing deployment",
    )
    event = obj.get("event")
    _require(isinstance(event, dict), "event payload missing event object")
    for key in ("kind", "incident_id", "time"):
        _require(key in event, f"event object missing {key!r}")
    _check_incident(event, f"event {event.get('incident_id')!r}")
    return "event"
