"""The 43-metric instrumentation layer.

This package defines the metric catalog (which metrics exist, how they are
grouped into the C1/C2/C3 report packets, and which hazard events they
correlate with — the paper's Table I), the report-packet records, and the
sink-side collector that merges packet streams into per-node metric
snapshots.
"""

from repro.metrics.catalog import (
    METRICS,
    METRIC_NAMES,
    METRIC_INDEX,
    NUM_METRICS,
    Metric,
    MetricKind,
    PacketClass,
    HAZARDS,
    Hazard,
    metrics_in_packet,
)
from repro.metrics.packets import (
    C1Packet,
    C2Packet,
    C3Packet,
    ReportPacket,
    snapshot_to_packets,
    merge_packets,
)
from repro.metrics.collector import SinkCollector, NodeTimeline

__all__ = [
    "METRICS",
    "METRIC_NAMES",
    "METRIC_INDEX",
    "NUM_METRICS",
    "Metric",
    "MetricKind",
    "PacketClass",
    "HAZARDS",
    "Hazard",
    "metrics_in_packet",
    "C1Packet",
    "C2Packet",
    "C3Packet",
    "ReportPacket",
    "snapshot_to_packets",
    "merge_packets",
    "SinkCollector",
    "NodeTimeline",
]
