"""Catalog of the 43 injected metrics and their hazard knowledge base.

The paper instruments every node with M = 43 performance-correlated metrics,
reported to the sink in three packet classes:

* **C1** — sensor readings and routing summary (environmental state),
* **C2** — the neighbor table: RSSI and link-ETX for up to 10 neighbors,
* **C3** — protocol counters (cumulative, monotonically non-decreasing).

Table I of the paper maps a sample of these metrics to the hazard events
they correlate with; :data:`HAZARDS` encodes that table so the
interpretation engine (:mod:`repro.core.interpretation`) can turn an NMF
root-cause vector into a human-readable explanation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Tuple

MAX_NEIGHBORS = 10
"""Maximum neighbor-table entries carried in a C2 packet (per the paper)."""


class PacketClass(enum.Enum):
    """Which report packet carries a metric."""

    C1 = "C1"
    C2 = "C2"
    C3 = "C3"


class MetricKind(enum.Enum):
    """How a metric evolves over time.

    ``GAUGE`` metrics are instantaneous samples (temperature, RSSI);
    ``COUNTER`` metrics are cumulative and non-decreasing between reboots
    (the paper calls them "time increasing").  The distinction matters when
    building state vectors: a counter's delta is its activity in the
    interval, while a gauge's delta is its drift.
    """

    GAUGE = "gauge"
    COUNTER = "counter"


@dataclass(frozen=True)
class Metric:
    """One injected metric.

    Attributes:
        name: Canonical snake_case identifier.
        packet: Which report packet (C1/C2/C3) carries it.
        kind: Gauge or cumulative counter.
        description: What the metric measures.
    """

    name: str
    packet: PacketClass
    kind: MetricKind
    description: str


def _c1(name: str, description: str) -> Metric:
    return Metric(name, PacketClass.C1, MetricKind.GAUGE, description)


def _c2(name: str, description: str) -> Metric:
    return Metric(name, PacketClass.C2, MetricKind.GAUGE, description)


def _c3(name: str, description: str) -> Metric:
    return Metric(name, PacketClass.C3, MetricKind.COUNTER, description)


# --------------------------------------------------------------------------
# The 43 metrics:  7 (C1)  +  21 (C2)  +  15 (C3)
# --------------------------------------------------------------------------

METRICS: Tuple[Metric, ...] = (
    # --- C1: sensors + routing summary (7) ---
    _c1("temperature", "Ambient temperature at the node (deg C)."),
    _c1("humidity", "Relative humidity at the node (%)."),
    _c1("light", "Ambient light level (lux, normalised)."),
    _c1("co2", "CO2 concentration (ppm) — CitySee's primary sensing target."),
    _c1("voltage", "Battery voltage (V); nodes stop working below 2.8 V."),
    _c1("path_etx", "Path-ETX estimate from this node to the sink."),
    _c1("path_length", "Hop count of the current routing path to the sink."),
    # --- C2: neighbor table (1 + 10 + 10 = 21) ---
    _c2("neighbor_num", "Number of entries in the neighbor/routing table."),
    *[
        _c2(f"rssi_{i}", f"RSSI (dBm) of neighbor-table entry {i}.")
        for i in range(1, MAX_NEIGHBORS + 1)
    ],
    *[
        _c2(f"etx_{i}", f"Link-ETX estimate of neighbor-table entry {i}.")
        for i in range(1, MAX_NEIGHBORS + 1)
    ],
    # --- C3: protocol counters (15) ---
    _c3("parent_change_counter", "Times the node changed its CTP parent."),
    _c3("no_parent_counter", "Times the node had no valid parent to route to."),
    _c3("transmit_counter", "Packets transmitted (forwarded + self)."),
    _c3("self_transmit_counter", "Self-generated packets transmitted."),
    _c3("receive_counter", "Packets received for forwarding."),
    _c3("overflow_drop_counter", "Packets dropped because the receive queue overflowed."),
    _c3("noack_retransmit_counter", "Retransmissions because no ACK was received."),
    _c3("drop_packet_counter", "Packets dropped after 30 failed retransmissions."),
    _c3("duplicate_counter", "Duplicate packets received (seen sequence numbers)."),
    _c3("loop_counter", "Routing loops detected (own ID seen in a packet's path)."),
    _c3("mac_backoff_counter", "CSMA backoffs taken before channel access."),
    _c3("radio_on_time", "Cumulative radio-on time (seconds)."),
    _c3("beacon_counter", "Routing beacons transmitted."),
    _c3("ack_counter", "Link-layer ACKs transmitted."),
    _c3("retransmit_counter", "All link-layer retransmissions (any cause)."),
)

METRIC_NAMES: Tuple[str, ...] = tuple(m.name for m in METRICS)
METRIC_INDEX: Dict[str, int] = {m.name: i for i, m in enumerate(METRICS)}
NUM_METRICS: int = len(METRICS)

assert NUM_METRICS == 43, f"metric catalog must have 43 entries, got {NUM_METRICS}"


def metrics_in_packet(packet: PacketClass) -> List[Metric]:
    """All metrics carried by the given packet class, in catalog order."""
    return [m for m in METRICS if m.packet is packet]


# --------------------------------------------------------------------------
# Table I: hazard knowledge base
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Hazard:
    """A hazard event from the paper's Table I (plus companions).

    Attributes:
        name: Short identifier of the hazard (e.g. ``"routing_loop"``).
        triggers: Metric names whose *variation* signals this hazard.
        event: The paper's "potential hazard event" description.
        impact: The paper's "related network performance" description.
        directions: Expected sign of each trigger's movement, parallel to
            ``triggers``: +1 the metric rises, -1 it falls, 0 either way.
            Empty means "any direction" for every trigger.
    """

    name: str
    triggers: Tuple[str, ...]
    event: str
    impact: str
    directions: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.directions and len(self.directions) != len(self.triggers):
            raise ValueError(
                f"hazard {self.name}: directions must match triggers"
            )

    def direction_of(self, position: int) -> int:
        """Expected sign of trigger ``position`` (0 = any)."""
        if not self.directions:
            return 0
        return self.directions[position]


HAZARDS: Tuple[Hazard, ...] = (
    Hazard(
        name="clock_instability",
        triggers=("temperature",),
        event="Hardware clocks are unstable due to temperature variation.",
        impact=(
            "Sending rate is controlled by the hardware clock; an unstable "
            "clock makes a node send too fast or too slow, which can lead "
            "to network contention."
        ),
    ),
    Hazard(
        name="low_voltage",
        triggers=("voltage",),
        directions=(-1,),
        event="A node stops working if its voltage drops below 2.8 V.",
        impact=(
            "The node can no longer send or forward packets; if it is a key "
            "node, part of the subnetwork breaks down."
        ),
    ),
    Hazard(
        name="node_reboot",
        triggers=("voltage", "neighbor_num"),
        directions=(1, 0),
        event="A node reboots: counters reset and neighbors rediscover it.",
        impact=(
            "All cumulative counters jump back to zero and neighbors see a "
            "new node join, perturbing parent selection."
        ),
    ),
    Hazard(
        name="key_node",
        triggers=("neighbor_num",),
        directions=(1,),
        event="A node has large subtrees (many nodes use it as parent).",
        impact=(
            "The node becomes a key node; its breakdown causes great packet "
            "loss downstream."
        ),
    ),
    Hazard(
        name="noise_increase",
        triggers=tuple(f"rssi_{i}" for i in range(1, MAX_NEIGHBORS + 1)),
        event="A node detects that its neighbors' noise levels are rising.",
        impact=(
            "Noise degrades packet receive ratio and indicates bad link "
            "quality."
        ),
    ),
    Hazard(
        name="link_dynamics",
        triggers=tuple(f"etx_{i}" for i in range(1, MAX_NEIGHBORS + 1))
        + tuple(f"rssi_{i}" for i in range(1, MAX_NEIGHBORS + 1)),
        event="Link quality to neighbors fluctuates (environment change, "
        "mobile obstacles, or co-existing signals).",
        impact="Routing cost estimates churn; parents may change often.",
    ),
    Hazard(
        name="queue_overflow",
        triggers=("overflow_drop_counter",),
        directions=(1,),
        event="A node's receiving queue overflows.",
        impact=(
            "Queue overflow loses both incoming and self-generated packets."
        ),
    ),
    Hazard(
        name="noack_retransmit",
        triggers=("noack_retransmit_counter", "retransmit_counter"),
        directions=(1, 1),
        event="Packets are retransmitted because no ACK is received.",
        impact=(
            "Either the link between sender and receiver is poor, or the "
            "receiver cannot handle the incoming packets (buffer overflow)."
        ),
    ),
    Hazard(
        name="parent_churn",
        triggers=("parent_change_counter",),
        directions=(1,),
        event="A node changes its parent frequently.",
        impact=(
            "Frequent parent change indicates great link dynamics, often "
            "correlated with environmental conditions."
        ),
    ),
    Hazard(
        name="routing_loop",
        triggers=(
            "loop_counter",
            "transmit_counter",
            "self_transmit_counter",
            "duplicate_counter",
            "overflow_drop_counter",
        ),
        directions=(1, 1, 1, 1, 1),
        event="A loop appears in the network.",
        impact=(
            "A loop causes great packet loss and energy consumption in an "
            "area: packets are repeatedly sent and received until dropped, "
            "queues overflow, and duplicates proliferate."
        ),
    ),
    Hazard(
        name="link_disconnection",
        triggers=("drop_packet_counter",),
        directions=(1,),
        event="A packet is dropped after 30 retransmissions.",
        impact=(
            "The link between sender and receiver is very poor, or they "
            "are disconnected entirely."
        ),
    ),
    Hazard(
        name="duplicate_storm",
        triggers=("duplicate_counter",),
        directions=(1,),
        event="Too many duplicate packets in the network.",
        impact=(
            "Duplicates waste energy and storage, and indicate poor link "
            "quality (ACKs lost on the reverse link)."
        ),
    ),
    Hazard(
        name="contention",
        triggers=("mac_backoff_counter", "noack_retransmit_counter"),
        directions=(1, 1),
        event="Severe channel contention: nodes back off repeatedly and "
        "cannot send or receive successfully.",
        impact=(
            "Link-quality degradation, often caused by environmental "
            "factors (interference)."
        ),
    ),
    Hazard(
        name="node_failure",
        triggers=("no_parent_counter", "parent_change_counter",
                  "noack_retransmit_counter"),
        directions=(1, 1, 1),
        event="A neighbor (often the parent) fails and becomes unreachable.",
        impact=(
            "Children retransmit without ACKs, then change parent; if no "
            "alternative parent exists they are cut off from the sink."
        ),
    ),
    Hazard(
        name="energy_drain",
        triggers=("voltage", "radio_on_time"),
        directions=(-1, 1),
        event="A node consumes too much energy during the interval.",
        impact="Voltage sags; sustained drain leads to node death.",
    ),
)

HAZARD_INDEX: Dict[str, Hazard] = {h.name: h for h in HAZARDS}


def hazards_for_metric(metric_name: str) -> List[Hazard]:
    """All hazards whose trigger set contains ``metric_name``."""
    if metric_name not in METRIC_INDEX:
        raise KeyError(f"unknown metric: {metric_name!r}")
    return [h for h in HAZARDS if metric_name in h.triggers]
