"""Sink-side collection of report packets into per-node metric timelines.

The sink receives C1/C2/C3 packets out of order and with losses.  The
collector groups them by (node, epoch); once all three classes of an epoch
have arrived, the epoch is *complete* and a full 43-metric snapshot is
appended to that node's timeline.  Incomplete epochs are dropped (the paper
differences *successive packets*, so a snapshot with a missing third is
useless for state construction).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.metrics.catalog import PacketClass
from repro.metrics.packets import ReportPacket, merge_packets


@dataclass
class SnapshotRecord:
    """One complete snapshot as seen at the sink.

    Attributes:
        node_id: Originating node.
        epoch: Reporting-epoch index at the origin.
        generated_at: When the node took the snapshot.
        received_at: When the last of the three packets arrived at the sink.
        values: Length-43 metric vector in catalog order.
    """

    node_id: int
    epoch: int
    generated_at: float
    received_at: float
    values: np.ndarray


class NodeTimeline:
    """Epoch-ordered sequence of complete snapshots for a single node.

    Epochs can *complete* out of order at the sink (a retransmitted C3 of
    epoch 8 may arrive after all of epoch 9 during heavy loss), so append
    inserts by epoch rather than trusting completion order.
    """

    def __init__(self, node_id: int):
        self.node_id = node_id
        self.snapshots: List[SnapshotRecord] = []

    def append(self, record: SnapshotRecord) -> None:
        position = bisect.bisect_left(
            [s.epoch for s in self.snapshots], record.epoch
        )
        self.snapshots.insert(position, record)

    def __len__(self) -> int:
        return len(self.snapshots)

    def matrix(self) -> np.ndarray:
        """All snapshots stacked into an (n_snapshots, 43) array."""
        if not self.snapshots:
            return np.zeros((0, 0))
        return np.vstack([s.values for s in self.snapshots])


class SinkCollector:
    """Accumulates report packets arriving at the sink.

    Also keeps delivery statistics (packets received per class, per node)
    that feed the PRR analysis.
    """

    def __init__(self):
        self._pending: Dict[Tuple[int, int], List[ReportPacket]] = {}
        self.timelines: Dict[int, NodeTimeline] = {}
        self.packets_received = 0
        self.packets_by_class: Dict[PacketClass, int] = {
            PacketClass.C1: 0,
            PacketClass.C2: 0,
            PacketClass.C3: 0,
        }
        #: (node_id, epoch, packet_class, received_at) tuples, in arrival order.
        self.arrival_log: List[Tuple[int, int, PacketClass, float]] = []

    def deliver(self, packet: ReportPacket, received_at: float) -> Optional[SnapshotRecord]:
        """Register an arriving packet.

        Returns:
            The completed :class:`SnapshotRecord` if this packet finished
            its epoch, else ``None``.
        """
        self.packets_received += 1
        self.packets_by_class[packet.PACKET_CLASS] += 1
        self.arrival_log.append(
            (packet.node_id, packet.epoch, packet.PACKET_CLASS, received_at)
        )

        key = (packet.node_id, packet.epoch)
        bucket = self._pending.setdefault(key, [])
        if any(p.PACKET_CLASS is packet.PACKET_CLASS for p in bucket):
            return None  # duplicate delivery of the same class; ignore
        bucket.append(packet)
        if len(bucket) < 3:
            return None

        values = merge_packets(bucket)
        record = SnapshotRecord(
            node_id=packet.node_id,
            epoch=packet.epoch,
            generated_at=bucket[0].generated_at,
            received_at=received_at,
            values=values,
        )
        del self._pending[key]
        timeline = self.timelines.get(packet.node_id)
        if timeline is None:
            timeline = NodeTimeline(packet.node_id)
            self.timelines[packet.node_id] = timeline
        timeline.append(record)
        return record

    def incomplete_epochs(self) -> int:
        """Number of (node, epoch) buckets still missing packet classes."""
        return len(self._pending)

    def total_snapshots(self) -> int:
        """Total complete snapshots across all nodes."""
        return sum(len(t) for t in self.timelines.values())
