"""Sink-side collection of report packets into per-node metric timelines.

The sink receives C1/C2/C3 packets out of order and with losses.  The
collector groups them by (node, epoch); once all three classes of an epoch
have arrived, the epoch is *complete* and a full 43-metric snapshot is
appended to that node's timeline.  Incomplete epochs are dropped (the paper
differences *successive packets*, so a snapshot with a missing third is
useless for state construction).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.metrics.catalog import NUM_METRICS, PacketClass
from repro.metrics.packets import ReportPacket, merge_packets


@dataclass
class SnapshotRecord:
    """One complete snapshot as seen at the sink.

    Attributes:
        node_id: Originating node.
        epoch: Reporting-epoch index at the origin.
        generated_at: When the node took the snapshot.
        received_at: When the last of the three packets arrived at the sink.
        values: Length-43 metric vector in catalog order.
    """

    node_id: int
    epoch: int
    generated_at: float
    received_at: float
    values: np.ndarray


class NodeTimeline:
    """Epoch-ordered columns of complete snapshots for a single node.

    Epochs can *complete* out of order at the sink (a retransmitted C3 of
    epoch 8 may arrive after all of epoch 9 during heavy loss), so append
    insert-sorts by epoch rather than trusting completion order.

    Storage is columnar: preallocated epoch / timestamp vectors plus one
    (capacity, 43) value matrix, grown geometrically.  This is the buffer
    :func:`repro.traces.frame.frame_from_network` reads straight into a
    :class:`~repro.traces.frame.TraceFrame` — no per-snapshot objects
    exist on the hot path.
    """

    _MIN_CAPACITY = 16

    def __init__(self, node_id: int):
        self.node_id = node_id
        self._size = 0
        self._epochs = np.zeros(0, dtype=np.int64)
        self._generated = np.zeros(0, dtype=float)
        self._received = np.zeros(0, dtype=float)
        self._values = np.zeros((0, NUM_METRICS), dtype=float)

    def _grow(self) -> None:
        capacity = max(self._MIN_CAPACITY, 2 * self._epochs.shape[0])
        self._epochs = np.resize(self._epochs, capacity)
        self._generated = np.resize(self._generated, capacity)
        self._received = np.resize(self._received, capacity)
        values = np.zeros((capacity, NUM_METRICS), dtype=float)
        values[: self._size] = self._values[: self._size]
        self._values = values

    def append(self, record: SnapshotRecord) -> None:
        if self._size == self._epochs.shape[0]:
            self._grow()
        position = int(
            np.searchsorted(self._epochs[: self._size], record.epoch)
        )
        if position < self._size:  # out-of-order completion: shift right
            self._epochs[position + 1 : self._size + 1] = self._epochs[
                position : self._size
            ]
            self._generated[position + 1 : self._size + 1] = self._generated[
                position : self._size
            ]
            self._received[position + 1 : self._size + 1] = self._received[
                position : self._size
            ]
            self._values[position + 1 : self._size + 1] = self._values[
                position : self._size
            ]
        self._epochs[position] = record.epoch
        self._generated[position] = record.generated_at
        self._received[position] = record.received_at
        self._values[position] = record.values
        self._size += 1

    def __len__(self) -> int:
        return self._size

    def columns(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Trimmed ``(epochs, generated_at, received_at, values)`` views."""
        n = self._size
        return (
            self._epochs[:n],
            self._generated[:n],
            self._received[:n],
            self._values[:n],
        )

    @property
    def snapshots(self) -> List[SnapshotRecord]:
        """Epoch-ordered :class:`SnapshotRecord` objects (materialized view)."""
        return [
            SnapshotRecord(
                node_id=self.node_id,
                epoch=int(self._epochs[i]),
                generated_at=float(self._generated[i]),
                received_at=float(self._received[i]),
                values=self._values[i].copy(),
            )
            for i in range(self._size)
        ]

    def matrix(self) -> np.ndarray:
        """All snapshots stacked into an (n_snapshots, 43) array."""
        if self._size == 0:
            return np.zeros((0, 0))
        return self._values[: self._size].copy()


class SinkCollector:
    """Accumulates report packets arriving at the sink.

    Also keeps delivery statistics (packets received per class, per node)
    that feed the PRR analysis.
    """

    def __init__(self):
        self._pending: Dict[Tuple[int, int], List[ReportPacket]] = {}
        self.timelines: Dict[int, NodeTimeline] = {}
        self.packets_received = 0
        self.packets_by_class: Dict[PacketClass, int] = {
            PacketClass.C1: 0,
            PacketClass.C2: 0,
            PacketClass.C3: 0,
        }
        #: (node_id, epoch, packet_class, received_at) tuples, in arrival order.
        self.arrival_log: List[Tuple[int, int, PacketClass, float]] = []
        #: node_id -> sorted metric names its last completed epoch actually
        #: carried.  Nodes on old firmware report a catalog subset
        #: (:data:`repro.metrics.packets.MISSING_METRIC_FILL` pads the
        #: rest); this map is how sink-side consumers can tell a filled
        #: value from a measured one.
        self.metrics_reported: Dict[int, Tuple[str, ...]] = {}

    def deliver(self, packet: ReportPacket, received_at: float) -> Optional[SnapshotRecord]:
        """Register an arriving packet.

        Returns:
            The completed :class:`SnapshotRecord` if this packet finished
            its epoch, else ``None``.
        """
        self.packets_received += 1
        self.packets_by_class[packet.PACKET_CLASS] += 1
        self.arrival_log.append(
            (packet.node_id, packet.epoch, packet.PACKET_CLASS, received_at)
        )

        key = (packet.node_id, packet.epoch)
        bucket = self._pending.setdefault(key, [])
        if any(p.PACKET_CLASS is packet.PACKET_CLASS for p in bucket):
            return None  # duplicate delivery of the same class; ignore
        bucket.append(packet)
        if len(bucket) < 3:
            return None

        values = merge_packets(bucket)
        self.metrics_reported[packet.node_id] = tuple(
            sorted(name for p in bucket for name in p.values)
        )
        record = SnapshotRecord(
            node_id=packet.node_id,
            epoch=packet.epoch,
            generated_at=bucket[0].generated_at,
            received_at=received_at,
            values=values,
        )
        del self._pending[key]
        timeline = self.timelines.get(packet.node_id)
        if timeline is None:
            timeline = NodeTimeline(packet.node_id)
            self.timelines[packet.node_id] = timeline
        timeline.append(record)
        return record

    def incomplete_epochs(self) -> int:
        """Number of (node, epoch) buckets still missing packet classes."""
        return len(self._pending)

    def total_snapshots(self) -> int:
        """Total complete snapshots across all nodes."""
        return sum(len(t) for t in self.timelines.values())
