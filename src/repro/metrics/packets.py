"""Report packets C1/C2/C3 and conversions to/from 43-metric snapshots.

Every reporting period a node splits its current metric snapshot into the
three packet classes the paper describes and hands them to the collection
layer.  At the sink, :func:`merge_packets` reassembles packets from the same
reporting epoch into one full snapshot vector.  A snapshot is a length-43
``numpy`` array in :data:`repro.metrics.catalog.METRIC_NAMES` order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar, Dict, Iterable, Optional, Tuple

import numpy as np

from repro.metrics.catalog import (
    METRIC_INDEX,
    METRIC_NAMES,
    NUM_METRICS,
    PacketClass,
    metrics_in_packet,
)

_C1_NAMES: Tuple[str, ...] = tuple(m.name for m in metrics_in_packet(PacketClass.C1))
_C2_NAMES: Tuple[str, ...] = tuple(m.name for m in metrics_in_packet(PacketClass.C2))
_C3_NAMES: Tuple[str, ...] = tuple(m.name for m in metrics_in_packet(PacketClass.C3))


def _fill_defaults() -> np.ndarray:
    """Sink-side fill values for metrics an old-firmware node never reports.

    Empty neighbor-table slots are reported as -100 dBm / ETX 50 by current
    firmware (see ``repro.simnet.node.EMPTY_RSSI_SLOT`` /
    ``EMPTY_ETX_SLOT``; the literals are repeated here because the metrics
    layer does not import the simulator).  Using the same values for
    *unreported* slots keeps the merged snapshot constant where coverage is
    constant, so firmware-skewed nodes do not shower the pipeline with fake
    per-epoch deltas.  Everything else fills with zero.
    """
    fill = np.zeros(NUM_METRICS, dtype=float)
    for name, index in METRIC_INDEX.items():
        if name.startswith("rssi_"):
            fill[index] = -100.0
        elif name.startswith("etx_"):
            fill[index] = 50.0
    return fill


MISSING_METRIC_FILL: np.ndarray = _fill_defaults()
"""Per-metric defaults merged in for metrics absent from an epoch's packets."""


@dataclass
class ReportPacket:
    """Base class for the three report packet types.

    Attributes:
        node_id: Originating node.
        epoch: Reporting-epoch index at the origin (ties the three packet
            classes of one snapshot together).
        generated_at: Simulation time the snapshot was taken.
        values: Metric name -> value for the metrics this class carries.
    """

    node_id: int
    epoch: int
    generated_at: float
    values: Dict[str, float] = field(default_factory=dict)

    #: Metric names this packet class carries, in catalog order.
    FIELD_NAMES: ClassVar[Tuple[str, ...]] = ()
    #: Which packet class this is.
    PACKET_CLASS: ClassVar[Optional[PacketClass]] = None

    def __post_init__(self) -> None:
        unknown = set(self.values) - set(self.FIELD_NAMES)
        if unknown:
            raise ValueError(
                f"{type(self).__name__} cannot carry metrics {sorted(unknown)}"
            )


@dataclass
class C1Packet(ReportPacket):
    """Sensor readings + routing summary (temperature ... path_length)."""

    FIELD_NAMES: ClassVar[Tuple[str, ...]] = _C1_NAMES
    PACKET_CLASS: ClassVar[PacketClass] = PacketClass.C1


@dataclass
class C2Packet(ReportPacket):
    """Neighbor table: neighbor count, per-entry RSSI and link-ETX."""

    FIELD_NAMES: ClassVar[Tuple[str, ...]] = _C2_NAMES
    PACKET_CLASS: ClassVar[PacketClass] = PacketClass.C2


@dataclass
class C3Packet(ReportPacket):
    """Cumulative protocol counters."""

    FIELD_NAMES: ClassVar[Tuple[str, ...]] = _C3_NAMES
    PACKET_CLASS: ClassVar[PacketClass] = PacketClass.C3


_PACKET_TYPES = (C1Packet, C2Packet, C3Packet)


def snapshot_to_packets(
    node_id: int,
    epoch: int,
    generated_at: float,
    snapshot: np.ndarray,
    metrics: Optional[Iterable[str]] = None,
) -> Tuple[C1Packet, C2Packet, C3Packet]:
    """Split a full 43-metric snapshot into its three report packets.

    Args:
        node_id: Originating node id.
        epoch: Reporting-epoch index at the origin.
        generated_at: Simulation time of the snapshot.
        snapshot: Length-43 array in catalog order.
        metrics: Firmware reporting subset — only these metric names are
            carried (``None`` = full catalog, the default firmware).  All
            three packets are still emitted, possibly with empty payloads:
            old firmware keeps the C1/C2/C3 packet train, it just packs
            fewer fields.

    Returns:
        The (C1, C2, C3) packets carrying the corresponding slices.

    Raises:
        ValueError: On a malformed snapshot or unknown metric names.
    """
    snapshot = np.asarray(snapshot, dtype=float)
    if snapshot.shape != (NUM_METRICS,):
        raise ValueError(
            f"snapshot must have shape ({NUM_METRICS},), got {snapshot.shape}"
        )
    mask: Optional[frozenset] = None
    if metrics is not None:
        mask = frozenset(metrics)
        unknown = mask - set(METRIC_NAMES)
        if unknown:
            raise ValueError(f"unknown metrics {sorted(unknown)}")
    packets = []
    for cls in _PACKET_TYPES:
        values = {
            name: float(snapshot[METRIC_INDEX[name]])
            for name in cls.FIELD_NAMES
            if mask is None or name in mask
        }
        packets.append(cls(node_id, epoch, generated_at, values))
    return tuple(packets)  # type: ignore[return-value]


def merge_packets(packets: Iterable[ReportPacket]) -> np.ndarray:
    """Reassemble one epoch's packets into a full snapshot vector.

    All packets must come from the same node and epoch, with one C1, one C2
    and one C3.  Metrics no packet carries (firmware-skewed nodes report a
    subset of the catalog) take their :data:`MISSING_METRIC_FILL` default,
    so the result is always a full-width vector.

    Returns:
        Length-43 array in catalog order.

    Raises:
        ValueError: On node/epoch mismatch, duplicates, or missing classes.
    """
    packets = list(packets)
    if not packets:
        raise ValueError("no packets to merge")
    node_ids = {p.node_id for p in packets}
    epochs = {p.epoch for p in packets}
    if len(node_ids) != 1 or len(epochs) != 1:
        raise ValueError(
            f"packets span nodes {sorted(node_ids)} / epochs {sorted(epochs)}; "
            "merge takes one node-epoch at a time"
        )
    seen_classes = [p.PACKET_CLASS for p in packets]
    if len(set(seen_classes)) != len(seen_classes):
        raise ValueError("duplicate packet class in merge input")
    if set(seen_classes) != {PacketClass.C1, PacketClass.C2, PacketClass.C3}:
        missing = {PacketClass.C1, PacketClass.C2, PacketClass.C3} - set(seen_classes)
        raise ValueError(
            f"incomplete snapshot: missing {sorted(c.value for c in missing)}"
        )
    snapshot = MISSING_METRIC_FILL.copy()
    for packet in packets:
        for name, value in packet.values.items():
            snapshot[METRIC_INDEX[name]] = value
    return snapshot


def packet_class_of(packet: ReportPacket) -> PacketClass:
    """The :class:`PacketClass` of a packet instance."""
    if packet.PACKET_CLASS is None:
        raise TypeError("bare ReportPacket has no packet class")
    return packet.PACKET_CLASS
