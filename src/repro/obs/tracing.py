"""Span-based tracing: where did the wall-clock, CPU and memory go?

A :class:`Span` measures one named region — wall time, CPU time and
(optionally) the tracemalloc peak inside it — and nests: spans opened
while another span is active become its children, so a whole ``vn2
train`` run renders as one tree.  The context manager **always times**;
what the enabled flag controls is whether the finished span is *kept* in
the tracer's tree.  That split lets call sites use the measured times
directly (``VN2.fit`` feeds its ``timings_`` dict from the spans) while
the un-profiled hot path pays only a couple of clock reads per span.

Spans are plain data: :meth:`Span.to_dict` / :meth:`Span.from_dict`
round-trip through JSON, which is how the process-pool runner ships each
worker's span tree back to the parent for merging
(:meth:`Tracer.attach`), and how ``vn2 profile --output`` exports a run
(flattened JSONL, one span per line with ``span_id``/``parent_id``).

Rendering: :meth:`Tracer.render` draws the tree with per-span wall/CPU
time and share-of-parent; :meth:`Tracer.top_table` aggregates by span
name into a self-time-sorted hot-spot table.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

__all__ = ["Span", "Tracer", "get_tracer", "span", "format_seconds"]


def format_seconds(seconds: Optional[float]) -> str:
    """Human-scale duration: ``1.234s`` / ``56.7ms`` / ``890us``."""
    if seconds is None:
        return "-"
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds * 1e6:.0f}us"


def _format_bytes(n: Optional[int]) -> str:
    if n is None:
        return "-"
    if n >= 1 << 30:
        return f"{n / (1 << 30):.2f}GB"
    if n >= 1 << 20:
        return f"{n / (1 << 20):.1f}MB"
    if n >= 1 << 10:
        return f"{n / (1 << 10):.1f}KB"
    return f"{n}B"


class Span:
    """One timed region of a run, possibly with children.

    Attributes:
        name: Dotted region name (``"fit.nmf"``, ``"runner.job"``).
        attrs: Small JSON-able context (``rank=25``, ``job="citysee…"``).
        wall_s: Wall-clock seconds (None while still open).
        cpu_s: Process CPU seconds across the span.
        peak_bytes: Peak tracemalloc allocation inside the span, when the
            tracer captures allocations (else None).
        status: ``"ok"`` or ``"error"``.
        error: ``TypeName: message`` of the exception that crossed the
            span boundary, when status is ``"error"``.
        children: Nested spans, in start order.
    """

    __slots__ = (
        "name", "attrs", "wall_s", "cpu_s", "peak_bytes",
        "status", "error", "children",
        "_t0_wall", "_t0_cpu", "_peak_seen",
    )

    def __init__(self, name: str, attrs: Optional[dict] = None):
        self.name = name
        self.attrs = dict(attrs or {})
        self.wall_s: Optional[float] = None
        self.cpu_s: Optional[float] = None
        self.peak_bytes: Optional[int] = None
        self.status = "ok"
        self.error: Optional[str] = None
        self.children: List["Span"] = []
        self._t0_wall = 0.0
        self._t0_cpu = 0.0
        self._peak_seen = 0

    # -- lifecycle (driven by Tracer.span) -----------------------------

    def _start(self, capture_alloc: bool) -> None:
        if capture_alloc:
            import tracemalloc

            if tracemalloc.is_tracing():
                tracemalloc.reset_peak()
        self._t0_cpu = time.process_time()
        self._t0_wall = time.perf_counter()

    def _finish(self, capture_alloc: bool) -> None:
        self.wall_s = time.perf_counter() - self._t0_wall
        self.cpu_s = time.process_time() - self._t0_cpu
        if capture_alloc:
            import tracemalloc

            if tracemalloc.is_tracing():
                # reset_peak in a child span erased our running peak;
                # children report theirs upward via _peak_seen.
                self.peak_bytes = max(
                    tracemalloc.get_traced_memory()[1], self._peak_seen
                )

    # -- serialization -------------------------------------------------

    def to_dict(self) -> dict:
        out = {"name": self.name, "wall_s": self.wall_s, "cpu_s": self.cpu_s}
        if self.attrs:
            out["attrs"] = self.attrs
        if self.peak_bytes is not None:
            out["peak_bytes"] = self.peak_bytes
        if self.status != "ok":
            out["status"] = self.status
            out["error"] = self.error
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out

    @classmethod
    def from_dict(cls, obj: dict) -> "Span":
        span = cls(obj["name"], obj.get("attrs"))
        span.wall_s = obj.get("wall_s")
        span.cpu_s = obj.get("cpu_s")
        span.peak_bytes = obj.get("peak_bytes")
        span.status = obj.get("status", "ok")
        span.error = obj.get("error")
        span.children = [
            cls.from_dict(child) for child in obj.get("children", ())
        ]
        return span

    # -- traversal -----------------------------------------------------

    def walk(self) -> Iterator["Span"]:
        """This span, then every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    @property
    def self_s(self) -> Optional[float]:
        """Wall seconds not accounted to any child."""
        if self.wall_s is None:
            return None
        child_total = sum(c.wall_s or 0.0 for c in self.children)
        return max(self.wall_s - child_total, 0.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, wall={format_seconds(self.wall_s)}, "
            f"children={len(self.children)})"
        )


class Tracer:
    """Collects span trees for one logical run.

    Args:
        enabled: Keep finished spans in :attr:`roots` (the context
            manager always *times*; disabled tracers just don't record).
        capture_alloc: Also capture tracemalloc peaks — requires
            ``tracemalloc.start()`` (``vn2 profile --memory`` does both).

    Single-threaded by design: one tracer per run/worker; the runner
    gives every pool worker its own and merges the serialized trees.
    """

    def __init__(self, enabled: bool = False, capture_alloc: bool = False):
        self.enabled = enabled
        self.capture_alloc = capture_alloc
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    @contextmanager
    def span(self, name: str, **attrs):
        """Time a region; record it in the tree when enabled.

        Exceptions propagate untouched; the span they cross is marked
        ``status="error"`` with the exception's type and message.
        """
        node = Span(name, attrs)
        recording = self.enabled
        if recording:
            if self._stack:
                self._stack[-1].children.append(node)
            else:
                self.roots.append(node)
            self._stack.append(node)
        node._start(self.capture_alloc and recording)
        try:
            yield node
        except BaseException as exc:
            node.status = "error"
            node.error = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            node._finish(self.capture_alloc and recording)
            if recording:
                popped = self._stack.pop()
                assert popped is node, "span stack corrupted"
                if self._stack and node.peak_bytes is not None:
                    parent = self._stack[-1]
                    parent._peak_seen = max(parent._peak_seen, node.peak_bytes)

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def attach(self, tree: Union[dict, Span]) -> Optional[Span]:
        """Graft a finished span tree (e.g. from a pool worker) into the
        tracer — under the currently open span, or as a new root.  A
        no-op on a disabled tracer (returns None)."""
        if not self.enabled:
            return None
        node = tree if isinstance(tree, Span) else Span.from_dict(tree)
        if self._stack:
            self._stack[-1].children.append(node)
        else:
            self.roots.append(node)
        return node

    def clear(self) -> None:
        self.roots = []
        self._stack = []

    # -- reporting -----------------------------------------------------

    def render(self, max_depth: Optional[int] = None) -> str:
        """The span tree as indented text (names, wall/CPU, % of parent)."""
        lines: List[str] = []
        for root in self.roots:
            self._render_span(root, "", True, None, lines, max_depth, 0)
        return "\n".join(lines)

    def _render_span(self, node, prefix, is_last, parent_wall, lines,
                     max_depth, depth) -> None:
        if max_depth is not None and depth > max_depth:
            return
        connector = "" if not prefix and depth == 0 else ("└─ " if is_last else "├─ ")
        share = ""
        if parent_wall and node.wall_s is not None and parent_wall > 0:
            share = f"  {100.0 * node.wall_s / parent_wall:5.1f}%"
        extras = ""
        if node.peak_bytes is not None:
            extras += f"  peak {_format_bytes(node.peak_bytes)}"
        if node.status != "ok":
            extras += f"  ERROR({node.error})"
        if node.attrs:
            rendered = ", ".join(f"{k}={v}" for k, v in node.attrs.items())
            extras += f"  [{rendered}]"
        label = f"{prefix}{connector}{node.name}"
        timing = (
            f"wall {format_seconds(node.wall_s):>9s}  "
            f"cpu {format_seconds(node.cpu_s):>9s}"
        )
        lines.append(f"{label:<48s} {timing}{share}{extras}")
        child_prefix = prefix + ("   " if is_last else "│  ")
        if depth == 0 and not prefix:
            child_prefix = ""
        for i, child in enumerate(node.children):
            self._render_span(
                child, child_prefix, i == len(node.children) - 1,
                node.wall_s, lines, max_depth, depth + 1,
            )

    def top_table(self, n: int = 15) -> str:
        """Hot spots aggregated by span name, sorted by self wall time."""
        agg: Dict[str, dict] = {}
        for root in self.roots:
            for node in root.walk():
                row = agg.setdefault(
                    node.name,
                    {"count": 0, "wall": 0.0, "self": 0.0, "cpu": 0.0},
                )
                row["count"] += 1
                row["wall"] += node.wall_s or 0.0
                row["self"] += node.self_s or 0.0
                row["cpu"] += node.cpu_s or 0.0
        rows = sorted(agg.items(), key=lambda kv: -kv[1]["self"])[:n]
        if not rows:
            return "(no spans recorded)"
        lines = [
            f"{'span':<32s} {'count':>6s} {'self':>10s} {'total':>10s} {'cpu':>10s}"
        ]
        for name, row in rows:
            lines.append(
                f"{name:<32s} {row['count']:>6d} "
                f"{format_seconds(row['self']):>10s} "
                f"{format_seconds(row['wall']):>10s} "
                f"{format_seconds(row['cpu']):>10s}"
            )
        return "\n".join(lines)

    # -- export --------------------------------------------------------

    def to_jsonl(self) -> str:
        """Flatten every tree to JSONL: one span per line, parent-linked.

        Each line carries ``span_id`` (depth-first order), ``parent_id``
        (None for roots), ``depth``, and the span's measured fields —
        trivially loadable into pandas or jq without recursion.
        """
        lines: List[str] = []
        next_id = [0]

        def _emit(node: Span, parent_id: Optional[int], depth: int) -> None:
            span_id = next_id[0]
            next_id[0] += 1
            record = {
                "span_id": span_id,
                "parent_id": parent_id,
                "depth": depth,
                "name": node.name,
                "wall_s": node.wall_s,
                "cpu_s": node.cpu_s,
                "self_s": node.self_s,
                "status": node.status,
            }
            if node.attrs:
                record["attrs"] = node.attrs
            if node.peak_bytes is not None:
                record["peak_bytes"] = node.peak_bytes
            if node.error is not None:
                record["error"] = node.error
            lines.append(json.dumps(record))
            for child in node.children:
                _emit(child, span_id, depth + 1)

        for root in self.roots:
            _emit(root, None, 0)
        return "\n".join(lines) + ("\n" if lines else "")

    def export_jsonl(self, path: Union[str, Path]) -> None:
        """Write :meth:`to_jsonl` to ``path`` (parents created)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_jsonl(), encoding="utf-8")


_default_tracer = Tracer(enabled=False)


def get_tracer() -> Tracer:
    """The process-wide tracer (disabled unless ``vn2 profile`` turns it
    on — spans still time, they just aren't retained)."""
    return _default_tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer`` process-wide; returns the previous tracer.

    ``vn2 profile`` installs an enabled tracer around the wrapped
    subcommand, and pool workers install a local one so nested spans land
    in the tree they serialize back to the submitting process.
    """
    global _default_tracer
    previous = _default_tracer
    _default_tracer = tracer
    return previous


@contextmanager
def span(name: str, **attrs):
    """``with span("fit.nmf", rank=r) as sp:`` against the global tracer.

    Always yields a measured :class:`Span` (``sp.wall_s`` is valid after
    the block); the span only lands in the profile tree when the global
    tracer is enabled.
    """
    with _default_tracer.span(name, **attrs) as node:
        yield node
