"""Metrics primitives: counters, gauges, fixed-bucket histograms, registry.

The telemetry layer every subsystem reports into.  Design constraints,
in order:

1. **Cheap enough to leave on.**  ``Counter.inc`` is one integer add;
   ``Histogram.observe`` is one bisect over a short tuple plus two adds.
   No locks on the hot path (single-writer subsystems — the streaming
   session, the service event loop — are the intended producers; the
   GIL makes the stray cross-thread read safe enough for monitoring).
2. **A no-op when disabled.**  A disabled registry hands out shared
   no-op metric objects whose mutators are empty methods, so
   instrumented code pays one method call and nothing else.
3. **Dependency-free.**  Pure stdlib; numpy never enters the hot path.

Naming convention (enforced only by review, documented in
``docs/observability.md``): ``repro_<subsystem>_<name>``, with counters
ending in ``_total`` and histogram/gauge units spelled out
(``_seconds``, ``_bytes``, ``_packets``).

Every metric is addressed by ``(name, labels)``; repeated
``registry.counter(...)`` calls with the same address return the same
object, so call sites never need module-level caching to stay correct
(though hot loops should hold the returned object).

:func:`MetricsRegistry.to_prometheus` renders the whole registry in the
Prometheus text exposition format (version 0.0.4); use
:func:`validate_exposition` to syntax-check such output (the CI job
does).
"""

from __future__ import annotations

import math
import os
import re
import threading
from bisect import bisect_left
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "LATENCY_BUCKETS",
    "NULL_REGISTRY",
    "get_registry",
    "merge_dumps",
    "set_registry",
    "validate_exposition",
]

#: General-purpose duration buckets (seconds): half a millisecond to 10 s.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Fine-grained buckets for per-packet / per-solve latencies (seconds):
#: ten microseconds up to one second.
LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3,
    5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 1.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

LabelItems = Tuple[Tuple[str, str], ...]


def _label_items(labels: Optional[Mapping[str, str]]) -> LabelItems:
    if not labels:
        return ()
    items = tuple(sorted((str(k), str(v)) for k, v in labels.items()))
    for key, _value in items:
        if not _LABEL_RE.match(key):
            raise ValueError(f"invalid label name {key!r}")
    return items


def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _format_labels(items: LabelItems, extra: LabelItems = ()) -> str:
    merged = items + extra
    if not merged:
        return ""
    body = ",".join(
        f'{key}="{_escape_label_value(value)}"' for key, value in merged
    )
    return "{" + body + "}"


def _format_value(value) -> str:
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "NaN"
    if isinstance(value, float) and math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _format_le(bound: float) -> str:
    if math.isinf(bound):
        return "+Inf"
    as_int = int(bound)
    return str(as_int) if as_int == bound else repr(bound)


class Counter:
    """A monotonically increasing count.

    Values are plain Python ints, so they never wrap: incrementing past
    2**63 simply promotes to a big integer (asserted by the test suite).
    """

    kind = "counter"
    __slots__ = ("name", "help", "labels", "_value")

    def __init__(self, name: str, help: str = "", labels: LabelItems = ()):
        self.name = name
        self.help = help
        self.labels = labels
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counters only go up; got inc({amount})")
        self._value += amount

    @property
    def value(self):
        return self._value

    def sample(self) -> dict:
        return {"labels": dict(self.labels), "value": self._value}


class Gauge:
    """A value that goes up and down — or a live callback.

    ``set_function`` turns the gauge into a pull-through: reading
    :attr:`value` invokes the callback (used for "how many incidents are
    open right now" style metrics, where the source of truth already
    exists and duplicating it invites drift).
    """

    kind = "gauge"
    __slots__ = ("name", "help", "labels", "_value", "_fn")

    def __init__(self, name: str, help: str = "", labels: LabelItems = ()):
        self.name = name
        self.help = help
        self.labels = labels
        self._value = 0.0
        self._fn: Optional[Callable[[], float]] = None

    def set(self, value: float) -> None:
        self._fn = None
        self._value = value

    def inc(self, amount: float = 1.0) -> None:
        self._fn = None
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def set_function(self, fn: Optional[Callable[[], float]]) -> None:
        """Make the gauge read through ``fn`` (None reverts to stored)."""
        self._fn = fn

    @property
    def value(self):
        if self._fn is not None:
            try:
                return self._fn()
            except Exception:
                # A dead callback (e.g. its owner was garbage collected
                # mid-call) must never take the whole scrape down.
                return float("nan")
        return self._value

    def sample(self) -> dict:
        return {"labels": dict(self.labels), "value": self.value}


class Histogram:
    """Fixed-bucket histogram with cheap observes and estimated quantiles.

    Buckets are upper bounds with Prometheus ``le`` semantics: a sample
    lands in the first bucket whose bound is **>= the value** (boundary
    values inclusive), with an implicit ``+Inf`` bucket catching the
    rest.  Quantiles are estimated by linear interpolation inside the
    target bucket — exact at bucket boundaries, bounded error inside —
    the same estimate ``histogram_quantile`` computes server-side.
    """

    kind = "histogram"
    __slots__ = ("name", "help", "labels", "bounds", "_counts", "sum", "count")

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: LabelItems = (),
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ):
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must strictly increase: {bounds}")
        if any(math.isinf(b) or math.isnan(b) for b in bounds):
            raise ValueError("bucket bounds must be finite (+Inf is implicit)")
        self.name = name
        self.help = help
        self.labels = labels
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # last = +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one sample (O(log buckets))."""
        self._counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def bucket_counts(self) -> List[int]:
        """Per-bucket (non-cumulative) counts, +Inf last."""
        return list(self._counts)

    def quantile(self, q: float) -> Optional[float]:
        """Estimated q-quantile (``None`` when empty; ``0 <= q <= 1``)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return None
        target = q * self.count
        cumulative = 0
        for i, bucket_count in enumerate(self._counts):
            cumulative += bucket_count
            if cumulative >= target and bucket_count > 0:
                if i >= len(self.bounds):
                    # +Inf bucket: the largest finite bound is the best
                    # statement the histogram can make.
                    return self.bounds[-1]
                lower = self.bounds[i - 1] if i > 0 else 0.0
                upper = self.bounds[i]
                into = (target - (cumulative - bucket_count)) / bucket_count
                return lower + (upper - lower) * min(max(into, 0.0), 1.0)
        return self.bounds[-1]

    def sample(self) -> dict:
        return {
            "labels": dict(self.labels),
            "count": self.count,
            "sum": self.sum,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }


class _NoopCounter(Counter):
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass


class _NoopGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set_function(self, fn=None) -> None:
        pass


class _NoopHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


_NOOP_COUNTER = _NoopCounter("noop")
_NOOP_GAUGE = _NoopGauge("noop")
_NOOP_HISTOGRAM = _NoopHistogram("noop", buckets=(1.0,))


class MetricsRegistry:
    """The process's metric namespace.

    ``counter`` / ``gauge`` / ``histogram`` get-or-create: the first call
    for a ``(name, labels)`` address creates the series, later calls
    return it.  One *name* always maps to one kind (and one help string —
    the first one wins); requesting the same name as a different kind
    raises, catching copy-paste instrumentation bugs early.

    A registry constructed with ``enabled=False`` hands out shared no-op
    metrics and records nothing — the "instrumentation off" mode the
    overhead benchmark compares against.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._lock = threading.Lock()
        self._metrics: Dict[Tuple[str, LabelItems], object] = {}
        self._kinds: Dict[str, str] = {}
        self._helps: Dict[str, str] = {}

    # -- creation ------------------------------------------------------

    def _get_or_create(self, cls, name: str, help: str, labels, **kwargs):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        items = _label_items(labels)
        key = (name, items)
        metric = self._metrics.get(key)
        if metric is not None:
            if metric.kind != cls.kind:
                raise ValueError(
                    f"metric {name!r} already registered as {metric.kind}, "
                    f"requested {cls.kind}"
                )
            return metric
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                kind = self._kinds.get(name)
                if kind is not None and kind != cls.kind:
                    raise ValueError(
                        f"metric {name!r} already registered as {kind}, "
                        f"requested {cls.kind}"
                    )
                metric = cls(name, help=help, labels=items, **kwargs)
                self._metrics[key] = metric
                self._kinds[name] = cls.kind
            elif metric.kind != cls.kind:
                raise ValueError(
                    f"metric {name!r} already registered as {metric.kind}, "
                    f"requested {cls.kind}"
                )
            # Help text is per *name*: the first non-empty string wins,
            # but a later registration may backfill an empty one (merge
            # paths can register a name before the instrumented code
            # does), so HELP coverage never depends on registration order.
            if help and not self._helps.get(name):
                self._helps[name] = help
            else:
                self._helps.setdefault(name, help)
        return metric

    def counter(
        self, name: str, help: str = "",
        labels: Optional[Mapping[str, str]] = None,
    ) -> Counter:
        if not self.enabled:
            return _NOOP_COUNTER
        return self._get_or_create(Counter, name, help, labels)

    def gauge(
        self, name: str, help: str = "",
        labels: Optional[Mapping[str, str]] = None,
        fn: Optional[Callable[[], float]] = None,
    ) -> Gauge:
        if not self.enabled:
            return _NOOP_GAUGE
        gauge = self._get_or_create(Gauge, name, help, labels)
        if fn is not None:
            gauge.set_function(fn)
        return gauge

    def histogram(
        self, name: str, help: str = "",
        labels: Optional[Mapping[str, str]] = None,
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        if not self.enabled:
            return _NOOP_HISTOGRAM
        return self._get_or_create(
            Histogram, name, help, labels, buckets=buckets
        )

    # -- introspection -------------------------------------------------

    def collect(self) -> Dict[str, List[object]]:
        """Name -> series list, names sorted, series in creation order."""
        by_name: Dict[str, List[object]] = {}
        for (name, _labels), metric in sorted(
            self._metrics.items(), key=lambda kv: kv[0]
        ):
            by_name.setdefault(name, []).append(metric)
        return by_name

    def snapshot(self) -> dict:
        """JSON-ready view of every series (the ``vn2 stats`` document)."""
        out: Dict[str, dict] = {}
        for name, series in self.collect().items():
            out[name] = {
                "kind": self._kinds[name],
                "help": self._helps.get(name, ""),
                "series": [metric.sample() for metric in series],
            }
        return out

    def reset(self) -> None:
        """Drop every registered series (test isolation helper)."""
        with self._lock:
            self._metrics.clear()
            self._kinds.clear()
            self._helps.clear()

    # -- cross-process merge -------------------------------------------

    def dump(self) -> dict:
        """Full, mergeable state of every series.

        Unlike :meth:`snapshot` (which renders *derived* values such as
        histogram quantiles), a dump keeps raw histogram bucket counts so
        two processes' dumps can be summed without loss.  This is the
        payload a sink-cluster worker ships to the front door for the
        merged ``/metrics`` rollup; gauges are resolved through their
        callbacks at dump time.
        """
        out: Dict[str, dict] = {}
        for name, series in self.collect().items():
            entry: Dict[str, object] = {
                "kind": self._kinds[name],
                "help": self._helps.get(name, ""),
                "series": [],
            }
            for metric in series:
                record: Dict[str, object] = {"labels": dict(metric.labels)}
                if metric.kind == "histogram":
                    record["buckets"] = list(metric.bounds)
                    record["counts"] = metric.bucket_counts()
                    record["sum"] = metric.sum
                    record["count"] = metric.count
                else:
                    value = metric.value
                    record["value"] = (
                        float(value) if isinstance(value, float) else value
                    )
                entry["series"].append(record)
            out[name] = entry
        return out

    def merge_dump(self, dump: Mapping[str, dict]) -> None:
        """Fold one :meth:`dump` into this registry.

        Counters and gauges add; histograms add bucket by bucket (the
        bucket bounds must match — every repro metric name has one fixed
        bucket layout, so a mismatch means two incompatible versions and
        raises).  Series are matched by ``(name, labels)``: give each
        producer distinguishing labels (the cluster stamps ``worker``)
        when summing would hide information.
        """
        for name, entry in dump.items():
            kind = entry.get("kind")
            for record in entry.get("series", ()):
                labels = record.get("labels") or None
                if kind == "counter":
                    self.counter(name, entry.get("help", ""), labels).inc(
                        int(record.get("value", 0))
                    )
                elif kind == "gauge":
                    gauge = self.gauge(name, entry.get("help", ""), labels)
                    value = record.get("value", 0.0)
                    if value is None or (
                        isinstance(value, float) and math.isnan(value)
                    ):
                        value = 0.0  # dead callback at dump time adds nothing
                    gauge.inc(float(value))
                elif kind == "histogram":
                    bounds = tuple(record.get("buckets", ()))
                    histogram = self.histogram(
                        name, entry.get("help", ""), labels,
                        buckets=bounds or DEFAULT_BUCKETS,
                    )
                    if histogram.bounds != bounds:
                        raise ValueError(
                            f"histogram {name!r}: dump buckets {bounds} do "
                            f"not match registered {histogram.bounds}"
                        )
                    counts = record.get("counts", ())
                    for i, bucket_count in enumerate(counts):
                        histogram._counts[i] += int(bucket_count)
                    histogram.sum += float(record.get("sum", 0.0))
                    histogram.count += int(record.get("count", 0))
                else:
                    raise ValueError(
                        f"cannot merge metric {name!r} of kind {kind!r}"
                    )

    # -- exposition ----------------------------------------------------

    def to_prometheus(self) -> str:
        """Render the registry as Prometheus text exposition (0.0.4)."""
        lines: List[str] = []
        for name, series in self.collect().items():
            help_text = self._helps.get(name, "")
            if help_text:
                escaped = help_text.replace("\\", r"\\").replace("\n", r"\n")
                lines.append(f"# HELP {name} {escaped}")
            lines.append(f"# TYPE {name} {self._kinds[name]}")
            for metric in series:
                if metric.kind == "histogram":
                    cumulative = 0
                    counts = metric.bucket_counts()
                    for bound, bucket_count in zip(
                        list(metric.bounds) + [float("inf")], counts
                    ):
                        cumulative += bucket_count
                        label_str = _format_labels(
                            metric.labels, (("le", _format_le(bound)),)
                        )
                        lines.append(f"{name}_bucket{label_str} {cumulative}")
                    label_str = _format_labels(metric.labels)
                    lines.append(
                        f"{name}_sum{label_str} {_format_value(metric.sum)}"
                    )
                    lines.append(f"{name}_count{label_str} {metric.count}")
                else:
                    label_str = _format_labels(metric.labels)
                    lines.append(
                        f"{name}{label_str} {_format_value(metric.value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")


def merge_dumps(dumps: Iterable[Mapping[str, dict]]) -> MetricsRegistry:
    """Build one registry holding the sum of several :meth:`dump` payloads.

    The cluster front door calls this with its own dump plus one per
    worker to render a single merged ``/metrics`` scrape.  Matching
    ``(name, labels)`` series sum, so producers that must stay distinct
    in the rollup (per-worker session counters) need a distinguishing
    label before dumping.
    """
    merged = MetricsRegistry(enabled=True)
    for dump in dumps:
        merged.merge_dump(dump)
    return merged


#: A permanently disabled registry: pass it anywhere a ``registry``
#: argument is accepted to switch that producer's instrumentation off.
NULL_REGISTRY = MetricsRegistry(enabled=False)

_default_registry = MetricsRegistry(
    enabled=os.environ.get("VN2_OBS", "1") != "0"
)


def get_registry() -> MetricsRegistry:
    """The process-wide default registry (``VN2_OBS=0`` disables it)."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the process-wide default; returns the previous one."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous


# --------------------------------------------------------------------------
# exposition-format validation (used by tests and the CI job)
# --------------------------------------------------------------------------

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)"
    r"(?:\s+(?P<timestamp>-?\d+))?$"
)
_LABEL_PAIR_RE = re.compile(
    r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\["\\n])*"$'
)


def validate_exposition(text: str, require_help: bool = False) -> int:
    """Syntax-check Prometheus text exposition; returns the sample count.

    Raises ``ValueError`` on the first malformed line.  This is a strict
    line-grammar check (HELP/TYPE comments, sample lines with optional
    labels and timestamps, numeric values incl. ``+Inf``/``NaN``), not a
    full semantic validation.

    With ``require_help=True``, additionally require every ``# TYPE``'d
    metric to carry a ``# HELP`` line with a non-empty description — the
    repo-wide exposition contract (CI scrapes are checked with it).
    """
    n_samples = 0
    typed: Dict[str, str] = {}
    helped: Dict[str, str] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] in ("HELP", "TYPE"):
                if len(parts) < 3 or not _NAME_RE.match(parts[2]):
                    raise ValueError(
                        f"line {lineno}: malformed {parts[1]} comment: {line!r}"
                    )
                if parts[1] == "TYPE":
                    kind = parts[3] if len(parts) > 3 else ""
                    if kind not in (
                        "counter", "gauge", "histogram", "summary", "untyped"
                    ):
                        raise ValueError(
                            f"line {lineno}: unknown metric type {kind!r}"
                        )
                    typed[parts[2]] = kind
                else:
                    helped[parts[2]] = parts[3] if len(parts) > 3 else ""
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"line {lineno}: malformed sample: {line!r}")
        labels = match.group("labels")
        if labels is not None and labels != "":
            for pair in _split_label_pairs(labels, lineno):
                if not _LABEL_PAIR_RE.match(pair):
                    raise ValueError(
                        f"line {lineno}: malformed label pair {pair!r}"
                    )
        value = match.group("value")
        if value not in ("+Inf", "-Inf", "NaN"):
            try:
                float(value)
            except ValueError:
                raise ValueError(
                    f"line {lineno}: non-numeric sample value {value!r}"
                ) from None
        n_samples += 1
    if n_samples == 0:
        raise ValueError("no samples in exposition")
    if require_help:
        missing = sorted(
            name for name in typed if not helped.get(name, "").strip()
        )
        if missing:
            raise ValueError(
                f"metrics missing a # HELP description: {', '.join(missing)}"
            )
    return n_samples


def _split_label_pairs(labels: str, lineno: int) -> List[str]:
    """Split ``a="x",b="y"`` respecting escaped quotes inside values."""
    pairs: List[str] = []
    depth_in_quotes = False
    current = ""
    i = 0
    while i < len(labels):
        ch = labels[i]
        if ch == "\\" and depth_in_quotes and i + 1 < len(labels):
            current += labels[i:i + 2]
            i += 2
            continue
        if ch == '"':
            depth_in_quotes = not depth_in_quotes
        if ch == "," and not depth_in_quotes:
            pairs.append(current)
            current = ""
        else:
            current += ch
        i += 1
    if current:
        pairs.append(current)
    if depth_in_quotes:
        raise ValueError(f"line {lineno}: unterminated label value")
    return pairs
