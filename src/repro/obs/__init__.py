"""``repro.obs`` — the unified telemetry core.

VN2 is a visibility tool; this package is its visibility into *itself*:

* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges and fixed-bucket histograms, cheap enough to leave enabled and
  a strict no-op when disabled, with Prometheus text exposition.
* :mod:`repro.obs.tracing` — nested :func:`span` tracing with wall/CPU
  time and optional tracemalloc peaks, JSONL export and a text tree
  renderer; what ``vn2 profile`` prints.

Both are dependency-free (pure stdlib) and shared by every subsystem:
``VN2.fit`` stages, the NNLS/NMF solvers, the streaming diagnosis
session, trace IO, the scenario runner and the sink service all report
here.  ``VN2_OBS=0`` disables the default registry process-wide; code
that wants private metrics (the service does) constructs its own
registry and passes it down.

See ``docs/observability.md`` for the metric naming convention and a
how-to-add-a-metric walkthrough.
"""

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    LATENCY_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    merge_dumps,
    set_registry,
    validate_exposition,
)
from repro.obs.tracing import (
    Span,
    Tracer,
    format_seconds,
    get_tracer,
    set_tracer,
    span,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "LATENCY_BUCKETS",
    "NULL_REGISTRY",
    "get_registry",
    "merge_dumps",
    "set_registry",
    "validate_exposition",
    "Span",
    "Tracer",
    "format_seconds",
    "get_tracer",
    "set_tracer",
    "span",
]
