"""Command-line interface: ``vn2 <command>`` (or ``python -m repro``).

Commands:

* ``vn2 simulate-testbed`` — run the 45-node testbed experiment, save the
  trace.
* ``vn2 simulate-citysee`` — run a CitySee-like deployment, save the trace.
* ``vn2 train`` — fit a VN2 model from a saved trace, save the model.
* ``vn2 diagnose`` — diagnose a saved trace (or window of it) with a saved
  model.
* ``vn2 watch`` — tail a growing JSONL trace with a saved model and
  stream incident open/update/close events as packets land.
* ``vn2 serve`` — run the diagnosis sink server: report packets in over
  TCP (many deployments, bounded queues, explicit backpressure),
  incident events and operator metrics out.  ``--refit-every`` /
  ``--drift-threshold`` arm the online model lifecycle (background
  refits + zero-downtime rotation).
* ``vn2 model`` — inspect a saved model (``info``), compare two saves
  (``diff``), or rotate a running sink to a new save (``rotate``).
* ``vn2 experiment`` — run one of the paper's figure/table harnesses.
* ``vn2 sweep`` — run a multi-seed scenario sweep through the parallel
  runner and score every deployment against its fault schedule
  (``--suite chaos`` runs the chaos preset suite instead).
* ``vn2 chaos`` — the chaos scenario engine: ``list`` the preset
  library, ``run`` presets through the process pool, ``score`` them
  with the per-fault-family accuracy scorecard (``--gate`` enforces
  each preset's detection-rate floors; the CI gate).
* ``vn2 profile`` — run any other subcommand under the span tracer and
  print its span tree, hot-spot table and (optionally) a spans JSONL.
* ``vn2 stats`` — fetch and pretty-print a running service's
  ``/metrics`` (or its raw Prometheus exposition).

Commands that generate more than one independent simulator run accept
``--jobs N`` to shard the runs across a process pool (output is
bit-identical to serial).  ``train`` and ``evaluate`` also accept
generator specs (``citysee:small``, ``citysee:small:episode``,
``testbed:expansive``) in place of a trace path — the trace is generated
through the runner's cache instead of loaded from a file.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


_CITYSEE_PROFILES = ("tiny", "small", "medium", "full")


def _resolve_trace(arg: str, fmt: Optional[str], jobs: int = 1):
    """Load a trace file, or generate one from a ``kind:variant`` spec.

    Specs route through the scenario runner (and its NPZ cache):
    ``citysee:<profile>[:episode]`` or ``testbed:<scenario>``.  Anything
    else is treated as a path.
    """
    from repro.traces.io import load_frame

    head = arg.split(":", 1)[0]
    if head not in ("citysee", "testbed"):
        return load_frame(arg, fmt=fmt)

    import dataclasses

    from repro.runner import CitySeeJob, TestbedJob, run_jobs
    from repro.traces.citysee import CitySeeProfile
    from repro.traces.testbed import TestbedScenario

    parts = arg.split(":")
    if head == "citysee":
        variant = parts[1] if len(parts) > 1 else "small"
        if variant not in _CITYSEE_PROFILES:
            raise SystemExit(
                f"unknown citysee profile {variant!r}; "
                f"expected one of {_CITYSEE_PROFILES}"
            )
        profile = getattr(CitySeeProfile, variant)()
        episode = len(parts) > 2 and parts[2] == "episode"
        if episode:
            profile = dataclasses.replace(profile, days=14.0)
        job = CitySeeJob(profile, episode=episode)
    else:
        scenario = TestbedScenario(parts[1] if len(parts) > 1 else "expansive")
        job = TestbedJob(scenario=scenario)
    report = run_jobs([job], n_workers=jobs)
    return report.frames()[0]


def _cmd_simulate_testbed(args: argparse.Namespace) -> int:
    from repro.traces.io import save_frame
    from repro.traces.testbed import TestbedScenario, generate_testbed_frame

    scenario = TestbedScenario(args.scenario)
    frame = generate_testbed_frame(
        scenario=scenario,
        seed=args.seed,
        duration_s=args.duration,
    )
    save_frame(frame, args.output, fmt=args.format)
    print(
        f"testbed trace: {len(frame)} snapshots, "
        f"delivery {frame.delivery_ratio():.3f} -> {args.output}"
    )
    return 0


def _cmd_simulate_citysee(args: argparse.Namespace) -> int:
    from repro.traces.citysee import CitySeeProfile, generate_citysee_frame
    from repro.traces.io import save_frame

    profile_factory = {
        "tiny": CitySeeProfile.tiny,
        "small": CitySeeProfile.small,
        "medium": CitySeeProfile.medium,
        "full": CitySeeProfile.full,
    }[args.profile]
    profile = profile_factory(seed=args.seed, days=args.days)
    frame = generate_citysee_frame(
        profile, episode=args.episode, use_cache=not args.no_cache
    )
    save_frame(frame, args.output, fmt=args.format)
    print(
        f"citysee trace ({args.profile}): {len(frame)} snapshots, "
        f"delivery {frame.delivery_ratio():.3f} -> {args.output}"
    )
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    from repro.core.pipeline import VN2, VN2Config

    frame = _resolve_trace(args.trace, args.format, jobs=args.jobs)
    config = VN2Config(
        rank=args.rank,
        filter_exceptions=not args.no_filter,
        retention=args.retention,
    )
    tool = VN2(config).fit(frame)
    tool.save(args.output)
    print(f"trained r={tool.rank_} model on {len(tool.states_)} states -> {args.output}")
    for label in tool.labels:
        flag = " [baseline]" if label.is_baseline else ""
        print(f"  Ψ{label.index + 1}: {label.primary_hazard or label.family}{flag}")
    if args.profile:
        # fit ends at Ψ; run one batch inference over the training states
        # so the NNLS stage shows up in the profile too.
        inference_states = (
            tool.exceptions_.states if tool.exceptions_ is not None
            else tool.states_
        )
        tool.correlation_strengths(inference_states)
        total = sum(tool.timings_.values())
        print("per-stage wall-clock:")
        for stage in ("states", "exceptions", "nmf", "sparsify", "nnls"):
            if stage in tool.timings_:
                seconds = tool.timings_[stage]
                print(f"  {stage:<10s} {seconds * 1000.0:8.1f} ms")
        print(f"  {'total':<10s} {total * 1000.0:8.1f} ms")
    return 0


def _cmd_diagnose(args: argparse.Namespace) -> int:
    from repro.core.pipeline import VN2
    from repro.core.states import build_states
    from repro.traces.io import load_frame

    tool = VN2.load(args.model)
    frame = load_frame(args.trace, fmt=args.format)
    if args.start is not None or args.end is not None:
        frame = frame.window(args.start or 0.0, args.end or float("inf"))
    states = build_states(frame)
    if len(states) == 0:
        print("no states in the requested window", file=sys.stderr)
        return 1
    reports = tool.diagnose_batch(states)
    shown = 0
    for i, report in enumerate(reports):
        if not report.ranked:
            continue
        node_id = int(states.node_ids[i])
        print(f"node {node_id} @ {states.times_to[i]:.0f}s: {report.summary()}")
        shown += 1
        if shown >= args.limit:
            break
    print(f"({shown} diagnoses shown of {len(states)} states)")
    return 0


def _event_json(event) -> str:
    import json

    from repro.service.protocol import incident_event_obj

    # The exact object the service's `event` messages carry, so a watch
    # log and a served event stream are comparable byte for byte.
    return json.dumps(incident_event_obj(event))


def _cmd_watch(args: argparse.Namespace) -> int:
    import contextlib
    import os
    import time as _time

    from repro.core.pipeline import VN2
    from repro.core.streaming import StreamingDiagnosisSession
    from repro.traces.io import read_frame_header, tail_frame_jsonl

    tool = VN2.load(args.model)

    # Wait for the trace file (and its header line) to appear — a live
    # writer may still be creating it when the watcher starts.
    deadline = (
        None if args.idle_timeout is None else _time.monotonic() + args.idle_timeout
    )
    while True:
        try:
            header = read_frame_header(args.trace, fmt="jsonl")
            break
        except (FileNotFoundError, ValueError):
            if not args.follow or (
                deadline is not None and _time.monotonic() >= deadline
            ):
                print(f"no readable trace at {args.trace}", file=sys.stderr)
                return 1
            _time.sleep(args.poll)

    positions = {
        int(k): tuple(v)
        for k, v in header.get("metadata", {}).get("positions", {}).items()
    } or None
    session = StreamingDiagnosisSession(
        tool,
        positions=positions,
        threshold_ratio=args.threshold,
        min_strength=args.min_strength,
        time_gap_s=args.time_gap,
        radius_m=args.radius,
    )

    output = args.output or os.environ.get("VN2_WATCH_LOG")
    log = open(output, "a", encoding="utf-8") if output else None

    def emit(events) -> None:
        for event in events:
            print(event.describe())
            if log is not None:
                log.write(_event_json(event) + "\n")
                log.flush()

    # --stats-every: one-line registry snapshot on stderr (stdout keeps
    # the event-line format; the JSONL log file is untouched).
    stats_every = getattr(args, "stats_every", None)
    stats_state = {"at": _time.monotonic(), "packets": 0}

    def maybe_stats() -> None:
        now = _time.monotonic()
        elapsed = now - stats_state["at"]
        if elapsed < stats_every:
            return
        counts = session.counters()
        # --stats-every 0 on a coarse clock can see elapsed == 0.0
        delta = counts["packets"] - stats_state["packets"]
        rate = delta / elapsed if elapsed > 0 else 0.0
        print(
            f"[stats] packets={counts['packets']} ({rate:.1f}/s) "
            f"states={counts['states']} exceptions={counts['exceptions']} "
            f"incidents open={counts['incidents_open']} "
            f"closed={counts['incidents_closed']}",
            file=sys.stderr,
        )
        stats_state["at"] = now
        stats_state["packets"] = counts["packets"]

    try:
        rows = tail_frame_jsonl(
            args.trace,
            poll_s=args.poll,
            follow=args.follow,
            idle_timeout=args.idle_timeout,
        )
        with contextlib.suppress(KeyboardInterrupt):
            for row in rows:
                update = session.push_packet(
                    row.node_id, row.epoch, row.generated_at, row.values
                )
                if update is not None and update.events:
                    emit(update.events)
                if stats_every is not None:
                    maybe_stats()
        emit(session.finish())
    finally:
        if log is not None:
            log.close()
    closed = len(session.tracker.incidents)
    print(
        f"watched {session.n_packets} packets -> {session.n_states} states, "
        f"{session.n_exceptions} exceptions, {closed} incidents"
    )
    return 0


async def _serve_async(tool, config, ready_file: Optional[str]) -> int:
    import asyncio
    import json
    import signal

    from repro.service.server import DiagnosisService

    service = DiagnosisService(tool, config)
    await service.start()
    print(
        f"vn2 serve: ingest on {config.host}:{service.port}, "
        f"operator http on {config.host}:{service.http_port} "
        f"(backend: {service.backend.name})",
        flush=True,
    )
    if config.dashboard:
        print(
            f"vn2 serve: dashboard at "
            f"http://{config.host}:{service.http_port}/dashboard",
            flush=True,
        )
    if not await service.backend.wait_ready(timeout=60.0):
        print("vn2 serve: shard workers failed to become healthy",
              flush=True)
        await service.stop(drain=False)
        return 1
    if ready_file:
        # Ephemeral-port handshake for supervisors (the CI smoke uses
        # it).  Written only now — after every shard worker reported a
        # healthy heartbeat — so a supervisor that sees the file can
        # ingest immediately without racing worker startup.
        with open(ready_file, "w", encoding="utf-8") as fh:
            json.dump(
                {
                    "port": service.port,
                    "http_port": service.http_port,
                    "backend": service.backend.name,
                    "workers": service.backend.describe()["workers"],
                },
                fh,
            )
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, stop.set)
        except NotImplementedError:  # pragma: no cover - non-unix
            pass
    await stop.wait()
    print("vn2 serve: draining queues and flushing open incidents ...",
          flush=True)
    await service.stop(drain=True)
    totals = service.metrics_snapshot()["totals"]
    print(
        f"vn2 serve: drained; {totals['packets']} packets -> "
        f"{totals['states']} states, {totals['exceptions']} exceptions, "
        f"{totals['incidents_closed']} incidents across "
        f"{len(service.backend.deployments())} deployments",
        flush=True,
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.core.pipeline import VN2
    from repro.service.server import ServiceConfig

    tool = VN2.load(args.model)
    positions = None
    if args.positions_from:
        from repro.traces.io import read_frame_header

        header = read_frame_header(args.positions_from)
        positions = {
            int(k): tuple(v)
            for k, v in header.get("metadata", {}).get("positions", {}).items()
        } or None
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        http_port=args.http_port,
        queue_size=args.queue_size,
        retry_after_s=args.retry_after,
        threshold_ratio=args.threshold,
        min_strength=args.min_strength,
        time_gap_s=args.time_gap,
        radius_m=args.radius,
        max_closed_incidents=(
            None if args.max_closed is None or args.max_closed < 0
            else args.max_closed
        ),
        positions=positions,
        workers=args.workers,
        refit_every_s=args.refit_every,
        drift_threshold=args.drift_threshold,
        refit_min_states=args.refit_min_states,
        dashboard=args.dashboard,
        dashboard_queue=args.dashboard_queue,
    )
    return asyncio.run(_serve_async(tool, config, args.ready_file))


def _cmd_dashboard(args: argparse.Namespace) -> int:
    import json

    from repro.service.client import http_get_json

    path = "/api/topology"
    if args.deployment:
        path += f"?deployment={args.deployment}"
    try:
        doc = http_get_json(args.host, args.http_port, path,
                            timeout=args.timeout)
    except ConnectionError as exc:
        print(f"vn2 dashboard: {exc}", file=sys.stderr)
        print(
            "hint: is the sink running with --dashboard? "
            f"(vn2 serve <model> --dashboard --http-port {args.http_port})",
            file=sys.stderr,
        )
        return 1
    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 0
    server = doc["server"]
    print(
        f"sink: backend={server['backend']} "
        f"model={server['model_version']} up={server['uptime_s']}s "
        f"(browser view: http://{args.host}:{args.http_port}/dashboard)"
    )
    if not doc["deployments"]:
        print("no deployments materialized yet")
        return 0
    for name, dep in sorted(doc["deployments"].items()):
        nodes, edges = dep["nodes"], dep["edges"]
        exceptions = sum(1 for n in nodes if n["exception"])
        print(
            f"\ndeployment {name}: {len(nodes)} nodes, "
            f"{len(edges)} tree edges, {exceptions} in exception, "
            f"{len(dep['incidents_open'])} open incidents "
            f"({dep['incidents_closed_total']} closed total)"
        )
        hops: dict = {}
        for n in nodes:
            hop = "?" if n["hop"] is None else int(round(n["hop"]))
            hops[hop] = hops.get(hop, 0) + 1
        ring = "  ".join(
            f"hop {h}: {hops[h]}"
            for h in sorted(hops, key=lambda v: (isinstance(v, str), v))
        )
        print(f"  rings: {ring}")
        for inc in dep["incidents_open"]:
            nodes_s = ",".join(str(i) for i in inc["node_ids"])
            print(
                f"  OPEN {inc['hazard']}: nodes [{nodes_s}] "
                f"peak={inc['peak_strength']:.2f} "
                f"obs={inc['n_observations']} "
                f"t={inc['start']:.0f}..{inc['end']:.0f}"
            )
        worst = [
            n for n in nodes
            if n["hazard"] is not None and not n["exception"]
        ]
        for n in sorted(
            worst, key=lambda n: -(n["strength"] or 0.0)
        )[:5]:
            print(
                f"  last-hazard node {n['node_id']}: {n['hazard']} "
                f"(strength {n['strength']:.2f})"
            )
    return 0


def _cmd_model_info(args: argparse.Namespace) -> int:
    from repro.core.pipeline import VN2

    tool = VN2.load(args.model)
    meta = tool._sidecar_meta()
    norm = meta.get("normalizer") or {}
    if tool._train_mean is None:
        stats = "absent (legacy save: every served state is diagnosed)"
    else:
        stats = (
            f"mean/std over {tool._train_mean.shape[0]} metrics, "
            f"max_eps={tool._train_max_eps:.4f}"
        )
    print(f"model: {args.model}")
    print(f"  model_version: {tool.model_version}")
    print(f"  rank: {meta['rank']}")
    print(
        f"  normalizer: {norm.get('method')} "
        f"(robust_quantile={norm.get('robust_quantile')})"
    )
    print(f"  train stats: {stats}")
    print(
        f"  W: {tool.nmf_.W.shape}  Psi: {tool.nmf_.Psi.shape}  "
        f"W_sparse: {tool.sparsify_.W_sparse.shape}"
    )
    for label in tool.labels:
        flag = " [baseline]" if label.is_baseline else ""
        print(f"  Ψ{label.index + 1}: {label.primary_hazard or label.family}{flag}")
    return 0


def _cmd_model_diff(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.core.pipeline import VN2

    a = VN2.load(args.model_a)
    b = VN2.load(args.model_b)
    print(f"a: {args.model_a} ({a.model_version})")
    print(f"b: {args.model_b} ({b.model_version})")
    if a.model_version == b.model_version:
        print("identical (same model_version)")
        return 0

    def flatten(doc, prefix=""):
        flat = {}
        for key, value in doc.items():
            name = f"{prefix}{key}"
            if isinstance(value, dict):
                flat.update(flatten(value, f"{name}."))
            else:
                flat[name] = value
        return flat

    meta_a, meta_b = flatten(a._sidecar_meta()), flatten(b._sidecar_meta())
    for key in sorted(set(meta_a) | set(meta_b)):
        va, vb = meta_a.get(key), meta_b.get(key)
        if va != vb:
            print(f"  meta {key}: {va!r} -> {vb!r}")
    arrays_a, arrays_b = a._payload_arrays(), b._payload_arrays()
    for name in sorted(set(arrays_a) | set(arrays_b)):
        arr_a, arr_b = arrays_a.get(name), arrays_b.get(name)
        if arr_a is None or arr_b is None:
            print(f"  array {name}: only in {'a' if arr_b is None else 'b'}")
        elif arr_a.shape != arr_b.shape:
            print(f"  array {name}: shape {arr_a.shape} -> {arr_b.shape}")
        elif not np.array_equal(arr_a, arr_b):
            delta = float(np.max(np.abs(arr_a - arr_b)))
            print(f"  array {name}: max |delta| = {delta:.3e}")
    return 1


def _cmd_model_rotate(args: argparse.Namespace) -> int:
    import os

    from repro.service.client import http_post_json

    path = os.path.abspath(args.model)
    try:
        result = http_post_json(
            args.host, args.http_port, "/model", {"path": path},
            timeout=args.timeout,
        )
    except (ConnectionError, OSError) as exc:
        print(f"vn2 model rotate: {exc}", file=sys.stderr)
        return 1
    print(f"rotated {result['previous']} -> {result['model_version']}")
    for name, boundary in sorted((result.get("boundaries") or {}).items()):
        print(
            f"  {name}: boundary at {boundary['packets']} packets / "
            f"{boundary['states']} states"
        )
    return 0


def _cmd_incidents(args: argparse.Namespace) -> int:
    from repro.analysis.performance import estimate_cause_costs
    from repro.core.incidents import incidents_from_trace
    from repro.core.pipeline import VN2, VN2Config
    from repro.traces.io import load_frame

    trace = load_frame(args.trace, fmt=args.format)
    tool = VN2(VN2Config(rank=args.rank)).fit(trace)
    incidents = incidents_from_trace(
        tool, trace, min_observations=args.min_observations
    )
    if not incidents:
        print("no incidents found")
    for rank, incident in enumerate(incidents[: args.limit], start=1):
        print(f"{rank}. {incident.describe()}")
    if args.costs:
        try:
            model = estimate_cause_costs(tool, trace)
            print()
            print(model.to_text())
        except ValueError as exc:
            print(f"(cost model unavailable: {exc})")
    return 0


def _cmd_node_report(args: argparse.Namespace) -> int:
    from repro.analysis.node_report import node_health_report
    from repro.core.pipeline import VN2, VN2Config
    from repro.traces.io import load_frame

    trace = load_frame(args.trace, fmt=args.format)
    tool = VN2(VN2Config(rank=args.rank)).fit(trace)
    report = node_health_report(tool, trace)
    print(report.to_text(limit=args.limit))
    unhealthy = [h.node_id for h in report.nodes if not h.healthy]
    print(
        f"\n{len(report.nodes)} nodes; "
        f"{len(unhealthy)} need attention: {unhealthy[:20]}"
    )
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    from repro.analysis.evaluation import evaluate_diagnoses, threshold_sweep
    from repro.core.pipeline import VN2, VN2Config

    trace = _resolve_trace(args.trace, args.format, jobs=args.jobs)
    if not trace.ground_truth:
        print("trace has no ground-truth fault schedule; nothing to score",
              file=sys.stderr)
        return 1
    tool = VN2(VN2Config(rank=args.rank)).fit(trace)
    result = evaluate_diagnoses(tool, trace, min_strength=args.min_strength)
    print(result.to_text())
    if args.sweep:
        print("\nthreshold sweep (threshold, precision, recall):")
        for threshold, precision, recall in threshold_sweep(tool, trace):
            print(f"  {threshold:.2f}  P={precision:.2f}  R={recall:.2f}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    name = args.name
    if name == "table1":
        from repro.analysis.table1 import exp_table1

        result = exp_table1(quick=args.quick)
        print(result.to_text())
        return 0 if result.all_passed else 1
    if name == "baselines":
        from repro.analysis.baseline_comparison import exp_baselines

        print(exp_baselines().to_text())
        return 0
    if name in ("fig5b", "fig5g", "fig5h", "fig5i", "fig5hi"):
        from repro.analysis.testbed_experiments import (
            exp_fig5b,
            exp_fig5g,
            exp_fig5hi,
            exp_fig5hi_both,
            generate_scenario_frames,
        )
        from repro.traces.testbed import TestbedScenario

        if name in ("fig5b", "fig5g"):
            trace = generate_scenario_frames(
                [TestbedScenario.EXPANSIVE], seed=args.seed, jobs=args.jobs
            )[TestbedScenario.EXPANSIVE]
            fig5b = exp_fig5b(trace)
            if name == "fig5b":
                print(fig5b.to_text())
            else:
                print(exp_fig5g(fig5b.tool, trace).to_text())
        elif name == "fig5hi":
            results = exp_fig5hi_both(seed=args.seed, jobs=args.jobs)
            for result in results.values():
                print(result.to_text(), "\n")
        else:
            scenario = (
                TestbedScenario.LOCAL if name == "fig5h" else TestbedScenario.EXPANSIVE
            )
            print(exp_fig5hi(scenario, seed=args.seed, jobs=args.jobs).to_text())
        return 0
    if name in ("fig3a", "fig3b", "fig3c", "fig4", "fig6", "ablation-filter",
                "ablation-sparsify", "ablation-suite"):
        from repro.traces.citysee import CitySeeProfile, generate_citysee_frame

        profile = {
            "tiny": CitySeeProfile.tiny,
            "small": CitySeeProfile.small,
            "medium": CitySeeProfile.medium,
            "full": CitySeeProfile.full,
        }[args.profile](seed=args.seed)
        if name == "fig6":
            from repro.analysis.citysee_experiments import run_citysee_study

            _tool, _trace, f6a, f6b, f6c = run_citysee_study(
                profile, jobs=args.jobs
            )
            print(f6a.to_text(), "\n")
            print(f6b.to_text(), "\n")
            print(f6c.to_text())
            return 0
        if name == "ablation-suite":
            from repro.analysis.ablations import exp_ablation_suite

            print(
                exp_ablation_suite(
                    profile, n_seeds=args.n_seeds, jobs=args.jobs
                ).to_text()
            )
            return 0
        trace = generate_citysee_frame(profile, episode=False)
        if name == "fig3a":
            from repro.analysis.figures34 import exp_fig3a

            print(exp_fig3a(trace).to_text())
        elif name == "fig3b":
            from repro.analysis.figures34 import exp_fig3b

            print(exp_fig3b(trace).to_text())
        elif name == "fig3c":
            from repro.analysis.figures34 import exp_fig3c

            print(exp_fig3c(trace).to_text())
        elif name == "fig4":
            from repro.analysis.figures34 import exp_fig3c, exp_fig4

            fig3c = exp_fig3c(trace)
            print(exp_fig4(fig3c.tool).to_text())
        elif name == "ablation-filter":
            from repro.analysis.ablations import exp_ablation_filter

            print(exp_ablation_filter(trace).to_text())
        elif name == "ablation-sparsify":
            from repro.analysis.ablations import exp_ablation_sparsify

            print(exp_ablation_sparsify(trace).to_text())
        return 0
    print(f"unknown experiment {name!r}", file=sys.stderr)
    return 2


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.analysis.evaluation import evaluate_seed_sweep
    from repro.traces.citysee import CitySeeProfile

    if args.suite == "chaos":
        from repro.analysis.scorecard import run_chaos_suite

        suite = run_chaos_suite(
            seed=args.seed,
            scale=args.profile,
            jobs=args.jobs,
            use_cache=not args.no_cache,
            min_strength=args.min_strength,
        )
        if suite.run_report is not None:
            print(suite.run_report.to_text())
            print()
            if args.timings:
                suite.run_report.write_timings(args.timings)
        print(suite.to_text())
        return 0 if suite.ok else 1

    profile = {
        "tiny": CitySeeProfile.tiny,
        "small": CitySeeProfile.small,
        "medium": CitySeeProfile.medium,
        "full": CitySeeProfile.full,
    }[args.profile](seed=args.seed)
    result = evaluate_seed_sweep(
        profile,
        n_seeds=args.n_seeds,
        rank=args.rank,
        min_strength=args.min_strength,
        jobs=args.jobs,
        use_cache=not args.no_cache,
    )
    if result.run_report is not None:
        print(result.run_report.to_text())
        print()
        if args.timings:
            result.run_report.write_timings(args.timings)
    print(result.to_text())
    return 0


def _chaos_preset_names(arg: str) -> List[str]:
    from repro.chaos.presets import PRESET_NAMES, PRESETS

    if arg == "all":
        return list(PRESET_NAMES)
    names = [n.strip() for n in arg.split(",") if n.strip()]
    for name in names:
        if name not in PRESETS:
            raise SystemExit(
                f"unknown preset {name!r}; available: "
                f"{', '.join(PRESET_NAMES)} (or 'all')"
            )
    return names


def _cmd_chaos_list(args: argparse.Namespace) -> int:
    from repro.analysis.reporting import format_table
    from repro.chaos.presets import PRESETS

    rows = []
    for info in PRESETS.values():
        scenario = info.build(seed=args.seed, scale=args.scale)
        floors = ", ".join(
            f"{family}>={floor:.2f}"
            for family, floor in sorted(info.gate_floors.items())
        )
        rows.append(
            (
                info.name,
                info.description,
                ",".join(scenario.families()),
                len(scenario.faults),
                floors,
            )
        )
    print(format_table(
        ["preset", "description", "families", "faults", "gate floors"], rows
    ))
    return 0


def _cmd_chaos_run(args: argparse.Namespace) -> int:
    from repro.runner import chaos_preset_jobs, run_jobs
    from repro.traces.io import save_frame

    names = _chaos_preset_names(args.preset)
    jobs = chaos_preset_jobs(names, seed=args.seed, scale=args.scale)
    report = run_jobs(jobs, n_workers=args.jobs, use_cache=not args.no_cache)
    print(report.to_text())
    if not report.ok:
        for result in report.errors():
            print(result.error, file=sys.stderr)
        return 1
    for job, result in zip(jobs, report.results):
        frame = result.frame()
        print(
            f"{job.scenario.name}: {len(frame)} snapshots, "
            f"delivery {frame.delivery_ratio():.3f}, "
            f"{len(frame.ground_truth)} ground-truth episodes"
        )
    if args.output:
        if len(jobs) != 1:
            print("--output needs exactly one preset", file=sys.stderr)
            return 2
        save_frame(report.results[0].frame(), args.output, fmt=args.format)
        print(f"trace -> {args.output}")
    return 0


def _cmd_chaos_score(args: argparse.Namespace) -> int:
    import json as _json
    from pathlib import Path

    from repro.analysis.scorecard import run_chaos_suite

    names = _chaos_preset_names(args.preset)
    suite = run_chaos_suite(
        names,
        seed=args.seed,
        scale=args.scale,
        jobs=args.jobs,
        use_cache=not args.no_cache,
        min_strength=args.min_strength,
        gate=args.gate,
    )
    if suite.run_report is not None:
        print(suite.run_report.to_text())
        print()
    print(suite.to_text())
    if args.json:
        path = Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(_json.dumps(suite.to_json_dict(), indent=2) + "\n")
        print(f"scorecard -> {path}")
    return 0 if (suite.ok or not args.gate) else 1


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.obs import Tracer, set_tracer

    command = list(args.cmd)
    if command and command[0] == "--":
        command = command[1:]
    if not command:
        print("vn2 profile: give a subcommand to run, e.g. "
              "vn2 profile train citysee:tiny", file=sys.stderr)
        return 2
    if command[0] == "profile":
        print("vn2 profile: cannot profile itself", file=sys.stderr)
        return 2

    tracer = Tracer(enabled=True, capture_alloc=args.alloc)
    previous = set_tracer(tracer)
    try:
        try:
            with tracer.span("vn2 " + command[0], argv=command[1:]):
                code = main(command)
        except SystemExit as exc:  # argparse errors inside the subcommand
            code = exc.code if isinstance(exc.code, int) else 1
    finally:
        set_tracer(previous)

    print()
    print(f"profile: vn2 {' '.join(command)}")
    print(tracer.render(max_depth=args.max_depth))
    print()
    print(tracer.top_table(args.top))
    if args.output:
        tracer.export_jsonl(args.output)
        print(f"spans -> {args.output}")
    return code


def _cmd_stats(args: argparse.Namespace) -> int:
    import json as _json
    from urllib.request import urlopen

    url = f"http://{args.host}:{args.port}/metrics"
    if args.prometheus:
        url += "?format=prometheus"
    try:
        with urlopen(url, timeout=args.timeout) as response:
            body = response.read().decode("utf-8")
    except OSError as exc:
        print(f"vn2 stats: cannot reach {url}: {exc}", file=sys.stderr)
        return 1
    if args.prometheus or args.as_json:
        print(body, end="" if body.endswith("\n") else "\n")
        return 0
    doc = _json.loads(body)
    server = doc["server"]
    print(
        f"server: {server['deployments']} deployments, "
        f"uptime {server['uptime_s']}s, "
        f"queue_size {server['queue_size']}, "
        f"protocol v{server['protocol_version']}"
    )
    print("totals:")
    for key, value in doc["totals"].items():
        print(f"  {key:<22s} {value}")
    for name, shard in doc["deployments"].items():
        latency = shard.get("ingest_latency") or {}
        print(
            f"deployment {name}: "
            f"packets={shard['packets']} states={shard['states']} "
            f"exceptions={shard['exceptions']} "
            f"open={shard['incidents_open']} "
            f"closed={shard['incidents_closed']} "
            f"queue={shard['queue_depth_packets']} "
            f"p50={latency.get('p50_ms')}ms p99={latency.get('p99_ms')}ms"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for tests)."""
    import repro

    parser = argparse.ArgumentParser(
        prog="vn2",
        description="VN2: NMF-based root-cause diagnosis for sensor networks",
    )
    parser.add_argument(
        "--version", action="version", version=f"vn2 {repro.__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_format_option(p: argparse.ArgumentParser, verb: str) -> None:
        p.add_argument(
            "--format", choices=["jsonl", "npz"], default=None,
            help=f"trace codec to {verb} (default: inferred from extension)",
        )

    def add_jobs_option(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--jobs", type=int, default=1, metavar="N",
            help="process-pool workers for independent simulator runs "
                 "(1 = serial; output is bit-identical either way)",
        )

    p = sub.add_parser("simulate-testbed", help="run the 45-node testbed experiment")
    p.add_argument("--scenario", choices=["local", "expansive"], default="expansive")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--duration", type=float, default=7200.0)
    p.add_argument("--output", default="testbed_trace.jsonl")
    add_format_option(p, "save with")
    p.set_defaults(func=_cmd_simulate_testbed)

    p = sub.add_parser("simulate-citysee", help="run a CitySee-like deployment")
    p.add_argument("--profile", choices=["tiny", "small", "medium", "full"],
                   default="small")
    p.add_argument("--days", type=float, default=3.0)
    p.add_argument("--seed", type=int, default=2011)
    p.add_argument("--episode", action="store_true",
                   help="include the PRR-degradation episode")
    p.add_argument("--no-cache", action="store_true")
    p.add_argument("--output", default="citysee_trace.jsonl")
    add_format_option(p, "save with")
    p.set_defaults(func=_cmd_simulate_citysee)

    p = sub.add_parser("train", help="fit a VN2 model from a saved trace")
    p.add_argument("trace",
                   help="trace path, or a generator spec such as "
                        "citysee:small, citysee:small:episode, "
                        "testbed:expansive")
    p.add_argument("--rank", type=int, default=None,
                   help="compression factor r (default: automatic)")
    p.add_argument("--no-filter", action="store_true",
                   help="skip the exception filter (testbed-style training)")
    p.add_argument("--retention", type=float, default=0.9)
    p.add_argument("--output", default="vn2_model")
    p.add_argument("--profile", action="store_true",
                   help="print per-stage wall-clock "
                        "(states/exceptions/NMF/sparsify/NNLS)")
    add_format_option(p, "load")
    add_jobs_option(p)
    p.set_defaults(func=_cmd_train)

    p = sub.add_parser("diagnose", help="diagnose a saved trace with a model")
    p.add_argument("model")
    p.add_argument("trace")
    p.add_argument("--start", type=float, default=None)
    p.add_argument("--end", type=float, default=None)
    p.add_argument("--limit", type=int, default=20)
    add_format_option(p, "load")
    p.set_defaults(func=_cmd_diagnose)

    p = sub.add_parser(
        "watch",
        help="tail a growing JSONL trace with a saved model, streaming "
             "incident open/update/close events",
    )
    p.add_argument("trace", help="JSONL trace file (may still be growing)")
    p.add_argument("--model", required=True,
                   help="saved model path (from vn2 train)")
    p.add_argument("--follow", dest="follow", action="store_true", default=True,
                   help="keep polling for growth after EOF (default)")
    p.add_argument("--no-follow", dest="follow", action="store_false",
                   help="read what is there and exit")
    p.add_argument("--poll", type=float, default=0.5, metavar="SECONDS",
                   help="poll interval while waiting for new data")
    p.add_argument("--idle-timeout", type=float, default=None, metavar="SECONDS",
                   help="exit after this long without new data "
                        "(default: follow forever)")
    p.add_argument("--output", default=None, metavar="FILE",
                   help="append incident events as JSON lines "
                        "(default: $VN2_WATCH_LOG if set)")
    p.add_argument("--threshold", type=float, default=None,
                   help="exception-screen ratio (default: model config)")
    p.add_argument("--min-strength", type=float, default=0.2)
    p.add_argument("--time-gap", type=float, default=600.0, metavar="SECONDS",
                   help="incident gap expiry")
    p.add_argument("--radius", type=float, default=60.0, metavar="METERS",
                   help="incident spatial merge radius")
    p.add_argument("--stats-every", type=float, default=None, metavar="SECONDS",
                   help="print a one-line counters snapshot to stderr every "
                        "N seconds (stdout event format is unchanged)")
    p.set_defaults(func=_cmd_watch)

    p = sub.add_parser(
        "serve",
        help="run the diagnosis sink server: packets in over TCP, "
             "incident events and operator metrics out",
    )
    p.add_argument("model", help="saved model path (from vn2 train)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7433,
                   help="TCP ingest/subscribe port (0 = ephemeral)")
    p.add_argument("--http-port", type=int, default=7434,
                   help="operator HTTP port for /health /metrics /incidents "
                        "(0 = ephemeral)")
    p.add_argument("--queue-size", type=int, default=8192, metavar="PACKETS",
                   help="per-deployment ingest queue bound; a batch that "
                        "would exceed it is backpressured, never dropped")
    p.add_argument("--retry-after", type=float, default=0.05, metavar="SECONDS",
                   help="retry hint sent with a backpressure ack")
    p.add_argument("--threshold", type=float, default=None,
                   help="exception-screen ratio (default: model config)")
    p.add_argument("--min-strength", type=float, default=0.2)
    p.add_argument("--time-gap", type=float, default=600.0, metavar="SECONDS",
                   help="incident gap expiry")
    p.add_argument("--radius", type=float, default=60.0, metavar="METERS",
                   help="incident spatial merge radius")
    p.add_argument("--max-closed", type=int, default=10000, metavar="N",
                   help="closed incidents retained per deployment "
                        "(-1 = unlimited)")
    p.add_argument("--positions-from", default=None, metavar="TRACE",
                   help="trace file whose header supplies node positions "
                        "for spatial incident clustering")
    p.add_argument("--workers", type=int, default=0, metavar="N",
                   help="shard worker processes; <=1 keeps diagnosis "
                        "in-process, >=2 shards deployments over a "
                        "consistent-hash-routed process pool")
    p.add_argument("--ready-file", default=None, metavar="FILE",
                   help="write the bound ports as JSON once listening and "
                        "every shard worker is heartbeating "
                        "(for supervisors using --port 0)")
    p.add_argument("--refit-every", type=float, default=None,
                   metavar="SECONDS",
                   help="arm background refits: every N seconds drain the "
                        "shards' retained exception states and, when the "
                        "trigger fires, absorb them into a refitted model "
                        "and rotate it in with zero downtime")
    p.add_argument("--drift-threshold", type=float, default=None,
                   help="only refit once some shard's drift score (mean "
                        "relative NNLS residual) reaches this value "
                        "(default: refit whenever enough states retained)")
    p.add_argument("--refit-min-states", type=int, default=32, metavar="N",
                   help="minimum retained exception states before a "
                        "scheduled refit is attempted")
    p.add_argument("--dashboard", action="store_true",
                   help="serve the live dashboard: GET /dashboard (HTML), "
                        "/api/topology, /api/series and the "
                        "/api/incidents/stream SSE feed")
    p.add_argument("--dashboard-queue", type=int, default=256,
                   metavar="FRAMES",
                   help="SSE frames buffered per dashboard client; a "
                        "client that falls this far behind is evicted so "
                        "it can never backpressure ingest")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "dashboard",
        help="fetch a running sink's /api/topology and print a terminal "
             "summary (the browser view lives at http://host:port/dashboard)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--http-port", type=int, default=7434,
                   help="the sink's operator HTTP port")
    p.add_argument("--deployment", default=None,
                   help="limit the view to one deployment")
    p.add_argument("--json", action="store_true",
                   help="print the raw /api/topology JSON document")
    p.add_argument("--timeout", type=float, default=10.0, metavar="SECONDS")
    p.set_defaults(func=_cmd_dashboard)

    p = sub.add_parser(
        "model",
        help="inspect, compare and rotate saved VN2 models",
    )
    model_sub = p.add_subparsers(dest="model_command", required=True)
    q = model_sub.add_parser(
        "info",
        help="print a saved model's version hash, rank, train stats and "
             "root-cause labels",
    )
    q.add_argument("model", help="saved model path (from vn2 train)")
    q.set_defaults(func=_cmd_model_info)
    q = model_sub.add_parser(
        "diff",
        help="compare two saved models; exit 1 (after printing the "
             "differing meta/arrays) when they differ",
    )
    q.add_argument("model_a")
    q.add_argument("model_b")
    q.set_defaults(func=_cmd_model_diff)
    q = model_sub.add_parser(
        "rotate",
        help="rotate a running sink to a saved model with zero downtime "
             "(POST /model on the operator port)",
    )
    q.add_argument("model", help="saved model path, resolved server-side")
    q.add_argument("--host", default="127.0.0.1")
    q.add_argument("--http-port", type=int, default=7434,
                   help="the sink's operator HTTP port")
    q.add_argument("--timeout", type=float, default=60.0, metavar="SECONDS")
    q.set_defaults(func=_cmd_model_rotate)

    p = sub.add_parser(
        "incidents",
        help="train on a trace and print network-level incidents",
    )
    p.add_argument("trace")
    p.add_argument("--rank", type=int, default=None)
    p.add_argument("--min-observations", type=int, default=2)
    p.add_argument("--limit", type=int, default=10)
    p.add_argument("--costs", action="store_true",
                   help="also fit and print the per-cause PRR cost model")
    add_format_option(p, "load")
    p.set_defaults(func=_cmd_incidents)

    p = sub.add_parser(
        "node-report",
        help="per-node health summary of a trace",
    )
    p.add_argument("trace")
    p.add_argument("--rank", type=int, default=None)
    p.add_argument("--limit", type=int, default=10)
    add_format_option(p, "load")
    p.set_defaults(func=_cmd_node_report)

    p = sub.add_parser(
        "evaluate",
        help="score a trace's diagnoses against its fault schedule",
    )
    p.add_argument("trace")
    p.add_argument("--rank", type=int, default=None)
    p.add_argument("--min-strength", type=float, default=0.2)
    p.add_argument("--sweep", action="store_true",
                   help="also print the threshold operating curve")
    add_format_option(p, "load")
    add_jobs_option(p)
    p.set_defaults(func=_cmd_evaluate)

    p = sub.add_parser("experiment", help="run one of the paper's harnesses")
    p.add_argument(
        "name",
        choices=[
            "table1", "fig3a", "fig3b", "fig3c", "fig4", "fig5b", "fig5g",
            "fig5h", "fig5i", "fig5hi", "fig6", "ablation-filter",
            "ablation-sparsify", "ablation-suite", "baselines",
        ],
    )
    p.add_argument("--profile", choices=["tiny", "small", "medium", "full"],
                   default="small")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--quick", action="store_true")
    p.add_argument("--n-seeds", type=int, default=2,
                   help="seed-sweep width for ablation-suite")
    add_jobs_option(p)
    p.set_defaults(func=_cmd_experiment)

    p = sub.add_parser(
        "sweep",
        help="multi-seed CitySee sweep through the parallel runner, "
             "scored against ground truth",
    )
    p.add_argument("--suite", choices=["seeds", "chaos"], default="seeds",
                   help="'seeds': multi-seed CitySee sweep; 'chaos': the "
                        "chaos preset suite with per-family gates")
    p.add_argument("--profile", choices=["tiny", "small", "medium", "full"],
                   default="small")
    p.add_argument("--seed", type=int, default=2011)
    p.add_argument("--n-seeds", type=int, default=4)
    p.add_argument("--rank", type=int, default=None)
    p.add_argument("--min-strength", type=float, default=0.2)
    p.add_argument("--no-cache", action="store_true")
    p.add_argument("--timings", default=None, metavar="FILE",
                   help="write per-job timing JSON (CI artifact format)")
    add_jobs_option(p)
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser(
        "chaos",
        help="chaos scenario engine: composable fault presets and the "
             "per-fault-family accuracy scorecard",
    )
    chaos_sub = p.add_subparsers(dest="chaos_command", required=True)

    def add_chaos_selection(q: argparse.ArgumentParser) -> None:
        q.add_argument("--preset", default="all", metavar="NAME",
                       help="preset name, comma list, or 'all' "
                            "(see 'vn2 chaos list')")
        q.add_argument("--seed", type=int, default=2011)
        q.add_argument("--scale", choices=["tiny", "small", "medium", "full"],
                       default="tiny")

    q = chaos_sub.add_parser("list", help="show the preset library")
    q.add_argument("--seed", type=int, default=2011)
    q.add_argument("--scale", choices=["tiny", "small", "medium", "full"],
                   default="tiny")
    q.set_defaults(func=_cmd_chaos_list)

    q = chaos_sub.add_parser(
        "run", help="run chaos presets through the process pool"
    )
    add_chaos_selection(q)
    q.add_argument("--no-cache", action="store_true")
    q.add_argument("--output", default=None, metavar="FILE",
                   help="save the trace (single preset only)")
    add_format_option(q, "save with")
    add_jobs_option(q)
    q.set_defaults(func=_cmd_chaos_run)

    q = chaos_sub.add_parser(
        "score",
        help="fit + score presets with the per-family scorecard",
    )
    add_chaos_selection(q)
    q.add_argument("--min-strength", type=float, default=0.2)
    q.add_argument("--no-cache", action="store_true")
    q.add_argument("--json", default=None, metavar="FILE",
                   help="write the scorecard JSON (CI artifact format)")
    q.add_argument("--gate", action="store_true",
                   help="exit non-zero if any preset's family detection "
                        "rate is below its floor")
    add_jobs_option(q)
    q.set_defaults(func=_cmd_chaos_score)

    p = sub.add_parser(
        "profile",
        help="run any vn2 subcommand under the span tracer; print its "
             "span tree and hot-spot table",
    )
    p.add_argument("cmd", nargs=argparse.REMAINDER, metavar="command...",
                   help="the subcommand to run, e.g. train citysee:tiny "
                        "(profile options must come before it)")
    p.add_argument("--top", type=int, default=15, metavar="N",
                   help="rows in the hot-spot table")
    p.add_argument("--max-depth", type=int, default=None, metavar="D",
                   help="truncate the span tree below this depth")
    p.add_argument("--alloc", action="store_true",
                   help="also capture tracemalloc peak allocations (slower)")
    p.add_argument("--output", default=None, metavar="FILE",
                   help="write the spans as JSONL (one span per line)")
    p.set_defaults(func=_cmd_profile)

    p = sub.add_parser(
        "stats",
        help="fetch and print a running service's /metrics",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7434,
                   help="the service's operator HTTP port")
    p.add_argument("--prometheus", action="store_true",
                   help="print the raw Prometheus text exposition")
    p.add_argument("--json", dest="as_json", action="store_true",
                   help="print the raw JSON document")
    p.add_argument("--timeout", type=float, default=5.0, metavar="SECONDS")
    p.set_defaults(func=_cmd_stats)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
