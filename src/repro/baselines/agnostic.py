"""Agnostic-Diagnosis-style correlation-graph detection (Miao et al.,
INFOCOM'11).

Agnostic Diagnosis learns, per node, the *correlation graph* of its metrics
during normal operation and flags windows whose correlation structure
drifts.  It needs no expert knowledge — but, as the paper notes, it is
coarse-grained: the output is "this node looks abnormal now", with no
decomposition into root causes.

The reproduction: a reference correlation matrix is fit per node over its
training states; at test time a sliding window's correlation matrix is
compared against the reference by mean absolute difference over metric
pairs that were reliably correlated in training.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.core.states import StateMatrix


def _correlation_matrix(values: np.ndarray) -> np.ndarray:
    """Pearson correlations with degenerate (constant) columns zeroed."""
    values = np.asarray(values, dtype=float)
    std = values.std(axis=0)
    safe = np.where(std < 1e-12, 1.0, std)
    z = (values - values.mean(axis=0)) / safe
    corr = (z.T @ z) / max(values.shape[0] - 1, 1)
    constant = std < 1e-12
    corr[constant, :] = 0.0
    corr[:, constant] = 0.0
    np.fill_diagonal(corr, 1.0)
    return np.clip(corr, -1.0, 1.0)


@dataclass
class CorrelationVerdict:
    """Window-level verdict for one node."""

    node_id: int
    window_start_index: int
    score: float
    is_abnormal: bool


@dataclass
class AgnosticDiagnoser:
    """Correlation-graph change detector.

    Args:
        window: States per sliding window (both for reference and test).
        reliable_threshold: |corr| above which a training pair is part of
            the node's "underlying rules" and is monitored for change.
        anomaly_factor: A test window is abnormal when its score exceeds
            ``anomaly_factor`` x the node's median training score.
    """

    window: int = 12
    reliable_threshold: float = 0.5
    anomaly_factor: float = 2.0
    _references: Dict[int, np.ndarray] = field(default_factory=dict, repr=False)
    _masks: Dict[int, np.ndarray] = field(default_factory=dict, repr=False)
    _baseline_scores: Dict[int, float] = field(default_factory=dict, repr=False)
    fitted: bool = False

    def _score_window(self, node_id: int, values: np.ndarray) -> float:
        reference = self._references[node_id]
        mask = self._masks[node_id]
        if not mask.any():
            return 0.0
        corr = _correlation_matrix(values)
        return float(np.abs(corr - reference)[mask].mean())

    def fit(self, states: StateMatrix) -> "AgnosticDiagnoser":
        """Learn per-node reference correlation graphs."""
        for node_id in np.unique(states.node_ids):
            node_id = int(node_id)
            values = states.values[states.node_ids == node_id]
            if values.shape[0] < self.window:
                continue
            reference = _correlation_matrix(values)
            mask = np.abs(reference) >= self.reliable_threshold
            np.fill_diagonal(mask, False)
            self._references[node_id] = reference
            self._masks[node_id] = mask
            # Baseline variability: score training windows against the
            # reference to calibrate the anomaly threshold.
            scores = []
            for start in range(0, values.shape[0] - self.window + 1,
                               max(1, self.window // 2)):
                scores.append(
                    self._score_window(
                        node_id, values[start : start + self.window]
                    )
                )
            self._baseline_scores[node_id] = float(np.median(scores)) if scores else 0.0
        if not self._references:
            raise ValueError(
                f"no node had >= {self.window} training states; "
                "use a longer trace or a smaller window"
            )
        self.fitted = True
        return self

    def diagnose_node(self, node_id: int, states: StateMatrix) -> List[CorrelationVerdict]:
        """Score every sliding window of one node's test states."""
        if not self.fitted:
            raise RuntimeError("call fit() before diagnose_node()")
        if node_id not in self._references:
            return []
        node_states = states.for_node(node_id)
        values = node_states.values
        verdicts: List[CorrelationVerdict] = []
        baseline = max(self._baseline_scores.get(node_id, 0.0), 1e-6)
        for start in range(0, values.shape[0] - self.window + 1):
            score = self._score_window(node_id, values[start : start + self.window])
            verdicts.append(
                CorrelationVerdict(
                    node_id=node_id,
                    window_start_index=start,
                    score=score,
                    is_abnormal=score > self.anomaly_factor * baseline,
                )
            )
        return verdicts

    def diagnose_batch(self, states: StateMatrix) -> List[CorrelationVerdict]:
        """Window verdicts for every node present in ``states``."""
        verdicts: List[CorrelationVerdict] = []
        for node_id in np.unique(states.node_ids):
            verdicts.extend(self.diagnose_node(int(node_id), states))
        return verdicts
