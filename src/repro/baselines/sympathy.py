"""Sympathy-style decision-tree diagnosis (Ramanathan et al., SenSys'05).

Sympathy ranks possible root causes in a fixed decision tree and stops at
the first check that fires: each abnormal state gets exactly **one** root
cause.  The tree below walks the classic ordering (most-specific evidence
first), with thresholds calibrated on training data (mean + k·std per
metric), standing in for Sympathy's hand-set constants.

This is intentionally the strawman the paper criticises: when a loop, a
jammer and a dead parent act at once, the tree reports only whichever
check happens to sit highest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.states import StateMatrix
from repro.metrics.catalog import METRIC_INDEX

#: Decision-tree order: (cause name, metric checked, direction).
_TREE: Tuple[Tuple[str, str, str], ...] = (
    ("node_reboot", "transmit_counter", "below"),  # counters jumped backwards
    ("no_route", "no_parent_counter", "above"),
    ("routing_loop", "loop_counter", "above"),
    ("queue_overflow", "overflow_drop_counter", "above"),
    ("link_disconnection", "drop_packet_counter", "above"),
    ("bad_link", "noack_retransmit_counter", "above"),
    ("contention", "mac_backoff_counter", "above"),
    ("parent_churn", "parent_change_counter", "above"),
    ("low_battery", "voltage", "below"),
)


@dataclass
class SympathyVerdict:
    """Single-cause verdict for one state."""

    cause: Optional[str]  # None = "everything looks fine"
    metric: Optional[str]
    value: float
    threshold: float

    @property
    def is_abnormal(self) -> bool:
        return self.cause is not None


@dataclass
class SympathyDiagnoser:
    """Decision-tree diagnoser with data-calibrated thresholds.

    Args:
        sigma: Threshold distance from the training mean, in training
            standard deviations (one-sided per the tree's direction).
    """

    sigma: float = 3.0
    _upper: Dict[str, float] = field(default_factory=dict, repr=False)
    _lower: Dict[str, float] = field(default_factory=dict, repr=False)
    fitted: bool = False

    def fit(self, states: StateMatrix) -> "SympathyDiagnoser":
        """Calibrate per-metric thresholds on (assumed mostly-normal) data."""
        values = states.values
        if values.shape[0] < 2:
            raise ValueError("need at least 2 training states")
        mean = values.mean(axis=0)
        std = values.std(axis=0)
        std = np.where(std < 1e-12, 1.0, std)
        for _cause, metric, _direction in _TREE:
            idx = METRIC_INDEX[metric]
            self._upper[metric] = float(mean[idx] + self.sigma * std[idx])
            self._lower[metric] = float(mean[idx] - self.sigma * std[idx])
        self.fitted = True
        return self

    def diagnose(self, state: np.ndarray) -> SympathyVerdict:
        """Walk the tree; return the FIRST cause whose check fires."""
        if not self.fitted:
            raise RuntimeError("call fit() before diagnose()")
        state = np.asarray(state, dtype=float).ravel()
        for cause, metric, direction in _TREE:
            idx = METRIC_INDEX[metric]
            value = float(state[idx])
            if direction == "above":
                threshold = self._upper[metric]
                if value > threshold:
                    return SympathyVerdict(cause, metric, value, threshold)
            else:
                threshold = self._lower[metric]
                if value < threshold:
                    return SympathyVerdict(cause, metric, value, threshold)
        return SympathyVerdict(None, None, 0.0, 0.0)

    def diagnose_batch(self, states: StateMatrix) -> List[SympathyVerdict]:
        """Verdicts for every state row."""
        return [self.diagnose(row) for row in states.values]
