"""PCA reconstruction-error anomaly detection.

The generic linear-subspace alternative to NMF: project states onto the
top-k principal components of the training set and score each state by
its reconstruction error.  PCA components are signed and dense, so while
the detector finds outliers about as well as anything, its components do
not decompose into additive, individually-interpretable root causes — the
property NMF's non-negativity buys VN2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.states import StateMatrix


@dataclass
class PCAVerdict:
    """Per-state verdict."""

    score: float
    is_abnormal: bool


@dataclass
class PCADetector:
    """Top-k PCA subspace detector with quantile thresholding.

    Args:
        n_components: Subspace dimension.
        threshold_quantile: Training-score quantile above which a state is
            declared abnormal.
    """

    n_components: int = 10
    threshold_quantile: float = 0.95
    _mean: Optional[np.ndarray] = field(default=None, repr=False)
    _scale: Optional[np.ndarray] = field(default=None, repr=False)
    _components: Optional[np.ndarray] = field(default=None, repr=False)
    _threshold: float = 0.0
    fitted: bool = False

    def _standardize(self, values: np.ndarray) -> np.ndarray:
        return (values - self._mean) / self._scale

    def _scores(self, values: np.ndarray) -> np.ndarray:
        z = self._standardize(np.atleast_2d(values))
        projected = z @ self._components.T @ self._components
        return np.linalg.norm(z - projected, axis=1)

    def fit(self, states: StateMatrix) -> "PCADetector":
        """Fit the subspace and calibrate the anomaly threshold."""
        values = np.asarray(states.values, dtype=float)
        if values.shape[0] <= self.n_components:
            raise ValueError(
                f"need more than {self.n_components} states, got {values.shape[0]}"
            )
        self._mean = values.mean(axis=0)
        scale = values.std(axis=0)
        self._scale = np.where(scale < 1e-12, 1.0, scale)
        z = self._standardize(values)
        _u, _s, vt = np.linalg.svd(z, full_matrices=False)
        self._components = vt[: self.n_components]
        scores = self._scores(values)
        self._threshold = float(np.quantile(scores, self.threshold_quantile))
        self.fitted = True
        return self

    def diagnose(self, state: np.ndarray) -> PCAVerdict:
        """Score one state against the fitted subspace."""
        if not self.fitted:
            raise RuntimeError("call fit() before diagnose()")
        score = float(self._scores(state)[0])
        return PCAVerdict(score=score, is_abnormal=score > self._threshold)

    def diagnose_batch(self, states: StateMatrix) -> List[PCAVerdict]:
        """Verdicts for every state row."""
        scores = self._scores(states.values)
        return [
            PCAVerdict(score=float(s), is_abnormal=bool(s > self._threshold))
            for s in scores
        ]
