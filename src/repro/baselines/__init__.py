"""Comparison diagnosers.

Three baselines bracket VN2's design space, mirroring the related work the
paper positions itself against:

* :mod:`repro.baselines.sympathy` — evidence-driven decision tree that
  commits to **one** root cause per state (the drawback the paper calls
  out: real failures are combinations);
* :mod:`repro.baselines.agnostic` — Agnostic-Diagnosis-style correlation
  graphs: knowledge-free but **coarse-grained** (only good/bad per node,
  no explanation);
* :mod:`repro.baselines.pca` — a PCA reconstruction-error detector, the
  generic dimensionality-reduction alternative to NMF (components are
  signed and dense, so attribution is much harder to read).
"""

from repro.baselines.sympathy import SympathyDiagnoser, SympathyVerdict
from repro.baselines.agnostic import AgnosticDiagnoser, CorrelationVerdict
from repro.baselines.pca import PCADetector, PCAVerdict

__all__ = [
    "SympathyDiagnoser",
    "SympathyVerdict",
    "AgnosticDiagnoser",
    "CorrelationVerdict",
    "PCADetector",
    "PCAVerdict",
]
