"""Load generator: replay a saved trace against a running sink.

Feeds a trace's packets — in the canonical arrival order the streaming
engine's bit-identity guarantees assume — through the client SDK, either
flat out (``speed=None``, the throughput-benchmark mode) or paced at a
multiple of trace time (``speed=10`` replays one simulated hour in six
wall-clock minutes).  Backpressure handling comes from the SDK: full
queues slow the generator down instead of losing packets, and the
returned report counts the retries so a benchmark can prove backpressure
actually engaged.

Two shapes of load:

* :func:`replay_trace` — one deployment over one connection (the
  original, unchanged).
* :func:`replay_trace_fanout` — the *cluster* load shape: N deployments,
  each replaying the same trace over its **own connection** from its own
  thread (``client.clone()`` per deployment).  One connection per
  deployment matters because a single lockstep request/ack connection
  serializes acks and can't saturate a multi-worker sink.

Also runnable as a script (the CI service job does)::

    python -m repro.service.loadgen trace.jsonl --port 7433 \
        --deployment citysee --batch 256 --report report.json
    python -m repro.service.loadgen trace.jsonl --port 7433 \
        --fanout 8 --batch 256 --report report.json   # dep-0 .. dep-7
"""

from __future__ import annotations

import argparse
import json
import threading
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import List, Optional, Union

from repro.core.streaming import iter_packets
from repro.service.client import ServiceClient, SubmitResult
from repro.traces.frame import TraceFrame
from repro.traces.io import load_frame


@dataclass
class LoadgenReport:
    """What one replay did, for humans and CI artifacts."""

    deployment: str
    packets_sent: int
    batches_sent: int
    wall_s: float
    throughput_pps: float
    backpressure_retries: int
    reconnects: int
    peak_queued: int  #: deepest server-side queue depth seen in an ack
    speed: Optional[float]

    def to_text(self) -> str:
        pacing = "flat out" if self.speed is None else f"{self.speed:g}x trace time"
        return (
            f"replayed {self.packets_sent} packets "
            f"({self.batches_sent} batches, {pacing}) "
            f"in {self.wall_s:.2f}s = {self.throughput_pps:,.0f} pkt/s; "
            f"{self.backpressure_retries} backpressure retries, "
            f"{self.reconnects} reconnects, peak queue {self.peak_queued}"
        )


def replay_trace(
    client: ServiceClient,
    deployment: str,
    trace: Union[str, Path, TraceFrame],
    speed: Optional[float] = None,
    batch_size: int = 256,
    max_packets: Optional[int] = None,
) -> LoadgenReport:
    """Replay a trace (path or frame) through ``client`` into ``deployment``.

    Args:
        client: Connected (or connectable) :class:`ServiceClient`.
        deployment: Target shard name.
        trace: Trace path (any codec) or an in-memory frame.
        speed: Trace-time rate multiplier; ``None`` = as fast as possible.
            With pacing, a batch is sent once its *first* packet's
            ``generated_at`` is due.
        batch_size: Packets per ingest message.
        max_packets: Stop after this many packets (``None`` = whole trace).
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if speed is not None and speed <= 0:
        raise ValueError(f"speed must be > 0, got {speed}")
    frame = trace if isinstance(trace, TraceFrame) else load_frame(trace)

    packets_sent = batches_sent = retries = reconnects = peak_queued = 0
    t_start = time.perf_counter()
    trace_t0: Optional[float] = None

    batch = []
    batch_due: Optional[float] = None

    def _flush() -> None:
        nonlocal packets_sent, batches_sent, retries, reconnects, peak_queued
        result: SubmitResult = client.submit(deployment, batch)
        packets_sent += result.accepted
        batches_sent += 1
        retries += result.backpressure_retries
        reconnects += result.reconnects
        peak_queued = max(peak_queued, result.queued)
        batch.clear()

    for packet in iter_packets(frame):
        if max_packets is not None and packets_sent + len(batch) >= max_packets:
            break
        generated_at = packet[2]
        if trace_t0 is None:
            trace_t0 = generated_at
        if not batch:
            batch_due = (generated_at - trace_t0) / speed if speed else None
        batch.append(packet)
        if len(batch) >= batch_size:
            if batch_due is not None:
                lag = batch_due - (time.perf_counter() - t_start)
                if lag > 0:
                    time.sleep(lag)
            _flush()
    if batch:
        if batch_due is not None:
            lag = batch_due - (time.perf_counter() - t_start)
            if lag > 0:
                time.sleep(lag)
        _flush()

    wall = time.perf_counter() - t_start
    return LoadgenReport(
        deployment=deployment,
        packets_sent=packets_sent,
        batches_sent=batches_sent,
        wall_s=wall,
        throughput_pps=packets_sent / wall if wall > 0 else 0.0,
        backpressure_retries=retries,
        reconnects=reconnects,
        peak_queued=peak_queued,
        speed=speed,
    )


@dataclass
class FanoutReport:
    """Aggregate of one multi-deployment, multi-connection replay."""

    deployments: List[str]
    packets_sent: int
    wall_s: float
    throughput_pps: float  #: aggregate over all deployments
    backpressure_retries: int
    reconnects: int
    errors: List[str] = field(default_factory=list)
    per_deployment: List[LoadgenReport] = field(default_factory=list)

    def to_text(self) -> str:
        lines = [
            f"fanout over {len(self.deployments)} deployments: "
            f"{self.packets_sent} packets in {self.wall_s:.2f}s = "
            f"{self.throughput_pps:,.0f} pkt/s aggregate; "
            f"{self.backpressure_retries} backpressure retries, "
            f"{self.reconnects} reconnects"
        ]
        lines += [f"  {r.deployment}: {r.to_text()}" for r in self.per_deployment]
        lines += [f"  ERROR {e}" for e in self.errors]
        return "\n".join(lines)


def replay_trace_fanout(
    client: ServiceClient,
    deployments: List[str],
    trace: Union[str, Path, TraceFrame],
    speed: Optional[float] = None,
    batch_size: int = 256,
    max_packets: Optional[int] = None,
) -> FanoutReport:
    """Replay the same trace into every deployment concurrently.

    ``client`` supplies the endpoint; each deployment gets its own
    cloned connection and thread.  ``max_packets`` is per deployment.
    A thread that raises is reported in ``errors`` rather than killing
    its siblings (the cluster chaos test relies on survivors finishing).
    """
    if not deployments:
        raise ValueError("deployments must be non-empty")
    frame = trace if isinstance(trace, TraceFrame) else load_frame(trace)
    reports: List[Optional[LoadgenReport]] = [None] * len(deployments)
    errors: List[str] = []
    lock = threading.Lock()

    def _one(index: int, deployment: str) -> None:
        try:
            with client.clone() as conn:
                report = replay_trace(
                    conn, deployment, frame,
                    speed=speed, batch_size=batch_size,
                    max_packets=max_packets,
                )
            reports[index] = report
        except Exception as exc:
            with lock:
                errors.append(f"{deployment}: {type(exc).__name__}: {exc}")

    threads = [
        threading.Thread(
            target=_one, args=(i, name), name=f"loadgen-{name}", daemon=True
        )
        for i, name in enumerate(deployments)
    ]
    t_start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - t_start

    done = [r for r in reports if r is not None]
    packets = sum(r.packets_sent for r in done)
    return FanoutReport(
        deployments=list(deployments),
        packets_sent=packets,
        wall_s=wall,
        throughput_pps=packets / wall if wall > 0 else 0.0,
        backpressure_retries=sum(r.backpressure_retries for r in done),
        reconnects=sum(r.reconnects for r in done),
        errors=errors,
        per_deployment=done,
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.loadgen",
        description="replay a saved trace against a running vn2 serve sink",
    )
    parser.add_argument("trace", help="trace file (jsonl or npz)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7433)
    parser.add_argument("--deployment", default="loadgen")
    parser.add_argument("--fanout", type=int, default=None, metavar="N",
                        help="replay into N deployments concurrently "
                             "(<deployment>-0 .. <deployment>-{N-1}), one "
                             "connection each — the cluster load shape")
    parser.add_argument("--speed", type=float, default=None,
                        help="trace-time multiplier (default: flat out)")
    parser.add_argument("--batch", type=int, default=256)
    parser.add_argument("--max-packets", type=int, default=None)
    parser.add_argument("--report", default=None, metavar="FILE",
                        help="also write the report as JSON")
    args = parser.parse_args(argv)

    if args.fanout is not None:
        if args.fanout < 1:
            parser.error(f"--fanout must be >= 1, got {args.fanout}")
        names = [f"{args.deployment}-{i}" for i in range(args.fanout)]
        report = replay_trace_fanout(
            ServiceClient(host=args.host, port=args.port),
            names,
            args.trace,
            speed=args.speed,
            batch_size=args.batch,
            max_packets=args.max_packets,
        )
        print(report.to_text())
        if args.report:
            Path(args.report).write_text(json.dumps(asdict(report), indent=2))
        return 1 if report.errors else 0

    with ServiceClient(host=args.host, port=args.port) as client:
        report = replay_trace(
            client,
            args.deployment,
            args.trace,
            speed=args.speed,
            batch_size=args.batch,
            max_packets=args.max_packets,
        )
    print(report.to_text())
    if args.report:
        Path(args.report).write_text(json.dumps(asdict(report), indent=2))
    return 0


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
