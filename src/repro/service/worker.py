"""Shard worker process: the cluster backend's unit of parallelism.

:func:`worker_main` is the top-level target each
:class:`repro.runner.pool.ProcessPool` child runs.  A worker owns a set
of deployment shards — each a private
:class:`~repro.core.streaming.StreamingDiagnosisSession` — and converses
with the front door over its pipe using the internal worker messages of
:mod:`repro.service.protocol`:

* ``ingest`` batches arrive **already parsed** (the front door validated
  them once); the worker pushes every packet through its session and
  answers ``w_ack`` carrying the incident-event objects the batch
  emitted, in emission order.  The pipe is FIFO both ways, so one
  deployment's events reach the front door in exactly the order its
  session produced them — the cluster's per-deployment ordering
  guarantee needs nothing more.
* ``drain`` flushes one shard (shard handoff / rebalance); ``drain_all``
  flushes everything, ships the worker's metrics-registry dump and span
  trees in ``w_bye``, and exits — the graceful-SIGTERM path.
* Heartbeats go up whenever the pipe has been idle for a beat, so the
  front door can gate readiness (``--ready-file``) and notice wedged
  workers without extra machinery.

Sessions are created lazily on first ingest.  That makes worker-death
handoff trivially robust: the surviving worker that inherits a
deployment needs no setup message — the first replayed batch
materializes a fresh session.  Each session stamps its metrics with
``{"deployment", "worker"}`` labels so the merged cluster rollup never
collapses two workers' series (and a handed-off deployment's history
stays attributed to the worker that produced it).
"""

from __future__ import annotations

import os
import time
from typing import Dict, Optional

from repro.obs import MetricsRegistry
from repro.service import protocol

__all__ = ["ShardWorker", "worker_main"]

#: Default seconds of pipe idleness between heartbeats.
HEARTBEAT_S = 0.5

#: Session-construction knobs :func:`worker_main` forwards from its
#: ``options`` dict (the backend fills them from :class:`ServiceConfig`).
SESSION_OPTION_KEYS = (
    "positions", "threshold_ratio", "max_epoch_gap", "min_strength",
    "time_gap_s", "radius_m", "max_closed_incidents",
    "keep_exception_states",
)


class ShardWorker:
    """The in-child state machine (separate from the pipe loop for tests).

    Args:
        worker_id: Pool-assigned id (``w0``…); becomes the ``worker``
            metric label on every session this worker creates.
        tool: The fitted model (read-only; rides the fork).
        options: Session kwargs (:data:`SESSION_OPTION_KEYS`) plus
            ``heartbeat_s``.
    """

    def __init__(self, worker_id: str, tool, options: Optional[dict] = None):
        self.worker_id = worker_id
        self.tool = tool
        self.options = dict(options or {})
        self.registry = MetricsRegistry(enabled=True)
        self.sessions: Dict[str, object] = {}
        self.n_packets = 0

    def session(self, deployment: str):
        """The deployment's session, created on first use."""
        session = self.sessions.get(deployment)
        if session is None:
            from repro.core.streaming import StreamingDiagnosisSession

            kwargs = {
                key: self.options[key]
                for key in SESSION_OPTION_KEYS
                if key in self.options
            }
            session = StreamingDiagnosisSession(
                self.tool,
                registry=self.registry,
                metric_labels={
                    "deployment": deployment,
                    "worker": self.worker_id,
                    "model_version": self.tool.model_version,
                },
                **kwargs,
            )
            self.sessions[deployment] = session
        return session

    # -- message handlers (each returns the reply message or None) -----

    def handle_assign(self, msg: dict) -> None:
        # Routing is the front door's job; materializing the session now
        # just warms it up before the first batch lands.
        self.session(msg["deployment"])
        return None

    def handle_ingest(self, msg: dict) -> dict:
        deployment = msg["deployment"]
        session = self.session(deployment)
        events = []
        for packet in msg["packets"]:
            update = session.push_packet(*packet)
            if update is not None and update.events:
                events.extend(
                    protocol.incident_event_obj(e) for e in update.events
                )
        self.n_packets += len(msg["packets"])
        return protocol.worker_ack(
            deployment, msg["batch_id"], len(msg["packets"]),
            events, session.counters(),
        )

    def handle_drain(self, msg: dict) -> dict:
        deployment = msg["deployment"]
        session = self.sessions.pop(deployment, None)
        if session is None:
            return protocol.worker_drained(deployment, [], {})
        events = [protocol.incident_event_obj(e) for e in session.finish()]
        return protocol.worker_drained(deployment, events, session.counters())

    def drain_all(self):
        """Flush every shard; yield the ``w_drained`` messages then ``w_bye``."""
        for deployment in sorted(self.sessions):
            yield self.handle_drain({"deployment": deployment})
        yield protocol.worker_bye(self.worker_id, self.registry.dump())

    def handle_metrics_query(self, msg: dict) -> dict:
        shards = [
            {"deployment": name, **session.counters()}
            for name, session in sorted(self.sessions.items())
        ]
        return protocol.worker_metrics(
            msg["req"], self.worker_id, self.registry.dump(), shards
        )

    def handle_incidents_query(self, msg: dict) -> dict:
        target = msg.get("deployment")
        names = [target] if target is not None else sorted(self.sessions)
        out = {}
        for name in names:
            session = self.sessions.get(name)
            if session is None:
                continue
            tracker = session.tracker
            out[name] = {
                "open": [
                    protocol.incident_obj(i) for i in tracker.open_incidents()
                ],
                "closed": [
                    protocol.incident_obj(i) for i in tracker.incidents
                ],
                "closed_total": tracker.n_closed_total,
                "evicted": tracker.n_evicted,
            }
        return protocol.worker_incidents(msg["req"], self.worker_id, out)

    def handle_topology_query(self, msg: dict) -> dict:
        target = msg.get("deployment")
        names = [target] if target is not None else sorted(self.sessions)
        nodes = {}
        for name in names:
            session = self.sessions.get(name)
            if session is not None:
                nodes[name] = session.node_summaries()
        return protocol.worker_topology(msg["req"], self.worker_id, nodes)

    def handle_model_update(self, msg: dict) -> dict:
        """Rotate every live session to the new model, atomically.

        The pipe is FIFO: this message lands strictly between two ingest
        batches, so each shard's rotation boundary is a deterministic
        packet count — no batch is ever split across models.  New sessions
        created after this point serve the new model too.
        """
        tool = msg["tool"]
        self.tool = tool
        boundaries = {
            name: session.set_model(tool)
            for name, session in sorted(self.sessions.items())
        }
        return protocol.worker_model(
            msg["req"], self.worker_id, tool.model_version, boundaries
        )

    def handle_states_query(self, msg: dict) -> dict:
        """Ship each session's retained exception states to the front door
        (drained — a state is only ever absorbed once)."""
        states = {}
        drift = {}
        for name, session in sorted(self.sessions.items()):
            drained = session.drain_exception_states()
            if len(drained):
                states[name] = drained
            drift[name] = session.drift_score
        return protocol.worker_states(
            msg["req"], self.worker_id, states, drift
        )

    def heartbeat(self) -> dict:
        return protocol.worker_heartbeat(
            self.worker_id, os.getpid(), time.time(),
            len(self.sessions), self.n_packets,
        )


def worker_main(conn, worker_id: str, tool, options: Optional[dict] = None) -> None:
    """Child-process entry point: pipe loop around a :class:`ShardWorker`.

    Protocol: send ``w_hello``, then serve messages until ``drain_all``
    (graceful exit) or pipe EOF (the front door died — exit quietly; an
    orphaned diagnosis worker has nobody to report to).
    """
    state = ShardWorker(worker_id, tool, options)
    heartbeat_s = float(state.options.get("heartbeat_s", HEARTBEAT_S))
    try:
        conn.send(protocol.worker_hello(worker_id, os.getpid()))
        while True:
            if not conn.poll(heartbeat_s):
                conn.send(state.heartbeat())
                continue
            msg = conn.recv()
            mtype = protocol.check_worker_message(msg)
            try:
                if mtype == "ingest":
                    conn.send(state.handle_ingest(msg))
                elif mtype == "assign":
                    state.handle_assign(msg)
                elif mtype == "drain":
                    conn.send(state.handle_drain(msg))
                elif mtype == "drain_all":
                    for reply in state.drain_all():
                        conn.send(reply)
                    return
                elif mtype == "metrics_query":
                    conn.send(state.handle_metrics_query(msg))
                elif mtype == "incidents_query":
                    conn.send(state.handle_incidents_query(msg))
                elif mtype == "model_update":
                    conn.send(state.handle_model_update(msg))
                elif mtype == "states_query":
                    conn.send(state.handle_states_query(msg))
                elif mtype == "topology_query":
                    conn.send(state.handle_topology_query(msg))
                else:  # an "up" type arriving downstream = version drift
                    raise protocol.ProtocolError(
                        "bad_type", f"unexpected downstream {mtype!r}"
                    )
            except protocol.ProtocolError:
                raise
            except Exception as exc:  # keep serving other shards
                import traceback

                traceback.print_exc()
                conn.send(
                    protocol.worker_error(
                        worker_id, f"{type(exc).__name__}: {exc}",
                        msg.get("deployment"),
                    )
                )
    except (EOFError, OSError, BrokenPipeError, KeyboardInterrupt):
        return
    finally:
        try:
            conn.close()
        except OSError:
            pass
