"""The diagnosis sink server: a front-door router over a shard backend.

Architecture (the paper's sink, made multi-tenant and horizontally
scalable):

* The server owns the listeners and the wire contract; *where* a
  deployment's :class:`~repro.core.streaming.StreamingDiagnosisSession`
  runs is a :class:`~repro.service.backends.ShardBackend` decision:
  in-process asyncio shards (the default, and the PR 4 architecture
  verbatim) or a consistent-hash-routed pool of worker processes
  (``ServiceConfig(workers=N)`` / ``vn2 serve --workers N``).  See
  :mod:`repro.service.backends`.
* Every named *deployment* still gets its own shard — a private session
  fed in arrival order.  Shards share nothing but the fitted model
  (read-only after training), so a hot deployment cannot stall
  another's diagnosis — its producers are backpressured instead.
* Backpressure is explicit: when a batch would push a shard's queue past
  ``queue_size`` packets, the server acks ``accepted: 0`` with a
  ``retry_after`` hint.  An acked packet is never dropped; a rejected
  batch is never partially queued.
* Two listeners: a TCP NDJSON port for ingest/subscribe
  (:mod:`repro.service.protocol`) and a minimal HTTP port for operators
  (``GET /health``, ``GET /metrics``, ``GET /incidents``; in cluster
  mode ``/metrics?format=prometheus`` is the merged all-process scrape).

Determinism: one deployment's packets are processed in arrival order by
one shard owner, through the same per-state NNLS path as
:meth:`VN2.diagnose_stream`, so the served event stream for a trace
replayed in canonical order is bit-identical to a local batch replay —
in *both* backends (the cluster keeps per-deployment FIFO end to end).

For synchronous callers (tests, benchmarks, examples) use
:func:`start_service_thread`, which runs the event loop in a daemon
thread and returns a handle with the bound ports and a blocking
``stop()``.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
import weakref
from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

from repro.core.pipeline import VN2
from repro.core.streaming import StreamingDiagnosisSession
from repro.obs import MetricsRegistry
from repro.service import protocol
from repro.service.backends import ModelSwap
from repro.service.metrics import (
    LatencyWindow,
    ShardCounters,
    sum_shard_totals,
)

#: Bytes allowed per NDJSON line (a MAX_BATCH ingest of 43 floats fits).
_LINE_LIMIT = 1 << 24

_STOP = object()  # queue sentinel: drain and exit the worker


@dataclass
class ServiceConfig:
    """Knobs of one :class:`DiagnosisService` instance.

    Attributes:
        host: Bind address for both listeners.
        port: TCP ingest/subscribe port (0 = ephemeral, see
            :attr:`DiagnosisService.port` after start).
        http_port: Operator HTTP port (0 = ephemeral).
        queue_size: Per-shard ingest bound, in *packets*; a batch that
            would exceed it is backpressured.
        retry_after_s: The hint sent with a backpressure ack.
        threshold_ratio / min_strength / time_gap_s / radius_m /
        max_epoch_gap: Forwarded to every shard's
            :class:`~repro.core.streaming.StreamingDiagnosisSession`.
        max_closed_incidents: Closed-incident retention per shard (a
            long-lived sink should set this; ``None`` keeps all).
        positions: Optional node positions shared by all shards.
        latency_window: Ingest-latency samples retained per shard.
        workers: Shard worker processes.  ``<= 1`` keeps shards in the
            server process (:class:`~repro.service.backends.InprocBackend`);
            ``>= 2`` runs them in a process pool.
        backend: ``"auto"`` (pick from ``workers``), ``"inproc"``, or
            ``"pool"`` (forces the pool even at one worker — the cluster
            tests use this to exercise the pool path cheaply).
        heartbeat_s: Worker heartbeat period (pool backend).
        drain_timeout_s: Seconds a graceful drain waits for every worker
            to flush and say goodbye before hard-stopping the pool.
        keep_exception_states: Exception states each shard retains for
            background refits (0 disables retention).  Auto-enabled
            (4096) when a refit trigger below is configured.
        refit_every_s: Period of the model manager's refit check;
            ``None`` (the default) disables background refits.
        drift_threshold: When set, a refit check only fires once some
            shard's drift score reaches this value; ``None`` refits on
            every period that has enough retained states.
        refit_min_states: Minimum retained exception states before a
            (non-forced) refit is attempted.
        dashboard: Serve the live dashboard (``GET /dashboard``,
            ``/api/topology``, ``/api/series``, ``/api/incidents/stream``).
            Off by default: when disabled those routes 404 and zero
            dashboard code runs.
        dashboard_queue: SSE frames buffered per dashboard client before
            the slow consumer is evicted (see :mod:`repro.dashboard.sse`).
        dashboard_keepalive_s: Idle seconds between SSE keepalive
            comments (holds proxies/browsers open through quiet spells).
    """

    host: str = "127.0.0.1"
    port: int = 7433
    http_port: int = 7434
    queue_size: int = 8192
    retry_after_s: float = 0.05
    threshold_ratio: Optional[float] = None
    min_strength: float = 0.2
    time_gap_s: float = 600.0
    radius_m: float = 60.0
    max_epoch_gap: Optional[int] = None
    max_closed_incidents: Optional[int] = 10000
    positions: Optional[Dict[int, Tuple[float, float]]] = None
    latency_window: int = 4096
    workers: int = 0
    backend: str = "auto"
    heartbeat_s: float = 0.5
    drain_timeout_s: float = 30.0
    keep_exception_states: int = 0
    refit_every_s: Optional[float] = None
    drift_threshold: Optional[float] = None
    refit_min_states: int = 32
    dashboard: bool = False
    dashboard_queue: int = 256
    dashboard_keepalive_s: float = 15.0

    def __post_init__(self):
        if self.queue_size < 1:
            raise ValueError(f"queue_size must be >= 1, got {self.queue_size}")
        if self.retry_after_s <= 0:
            raise ValueError(
                f"retry_after_s must be > 0, got {self.retry_after_s}"
            )
        if self.backend not in ("auto", "inproc", "pool"):
            raise ValueError(
                f"backend must be auto|inproc|pool, got {self.backend!r}"
            )
        if self.backend == "inproc" and self.workers > 1:
            raise ValueError(
                f"backend='inproc' cannot host workers={self.workers}"
            )
        if self.heartbeat_s <= 0:
            raise ValueError(
                f"heartbeat_s must be > 0, got {self.heartbeat_s}"
            )
        if self.refit_every_s is not None and self.refit_every_s <= 0:
            raise ValueError(
                f"refit_every_s must be > 0, got {self.refit_every_s}"
            )
        if self.drift_threshold is not None and self.drift_threshold < 0:
            raise ValueError(
                f"drift_threshold must be >= 0, got {self.drift_threshold}"
            )
        if self.keep_exception_states < 0:
            raise ValueError(
                "keep_exception_states must be >= 0, "
                f"got {self.keep_exception_states}"
            )
        if self.refit_min_states < 1:
            raise ValueError(
                f"refit_min_states must be >= 1, got {self.refit_min_states}"
            )
        if self.dashboard_queue < 1:
            raise ValueError(
                f"dashboard_queue must be >= 1, got {self.dashboard_queue}"
            )
        if self.dashboard_keepalive_s <= 0:
            raise ValueError(
                "dashboard_keepalive_s must be > 0, "
                f"got {self.dashboard_keepalive_s}"
            )
        if (
            self.keep_exception_states == 0
            and (self.refit_every_s is not None
                 or self.drift_threshold is not None)
        ):
            # A refit trigger without retained states would never have
            # anything to absorb; retain a bounded reservoir per shard.
            self.keep_exception_states = 4096


class DeploymentShard:
    """One deployment's session, queue and worker."""

    def __init__(self, name: str, service: "DiagnosisService"):
        self.name = name
        self.service = service
        config = service.config
        labels = {"deployment": name}
        self.session = StreamingDiagnosisSession(
            service.tool,
            positions=config.positions,
            threshold_ratio=config.threshold_ratio,
            max_epoch_gap=config.max_epoch_gap,
            min_strength=config.min_strength,
            time_gap_s=config.time_gap_s,
            radius_m=config.radius_m,
            max_closed_incidents=config.max_closed_incidents,
            keep_exception_states=config.keep_exception_states,
            registry=service.registry,
            metric_labels={
                **labels,
                "model_version": service.tool.model_version,
            },
        )
        self.queue: asyncio.Queue = asyncio.Queue()
        self.pending = 0  #: packets queued but not yet diagnosed
        self.peak_pending = 0
        self.counters = ShardCounters(
            latency=LatencyWindow(config.latency_window),
            registry=service.registry,
            labels=labels,
        )
        self.subscribers: Set[asyncio.Queue] = set()
        ref = weakref.ref(self)
        service.registry.gauge(
            "repro_service_queue_depth_packets",
            "Packets queued but not yet diagnosed",
            labels,
            fn=lambda: float(ref().pending) if ref() is not None else 0.0,
        )
        service.registry.gauge(
            "repro_service_subscribers",
            "Live event subscribers of this deployment",
            labels,
            fn=lambda: float(len(ref().subscribers)) if ref() is not None else 0.0,
        )
        self._resume = asyncio.Event()
        self._resume.set()
        self.worker = asyncio.get_running_loop().create_task(
            self._run(), name=f"shard:{name}"
        )

    # -- test/benchmark hook: freeze the worker to observe backpressure --

    def pause(self) -> None:
        """Stop draining the queue (packets keep queueing up)."""
        self._resume.clear()

    def unpause(self) -> None:
        self._resume.set()

    # ------------------------------------------------------------------

    def try_enqueue(self, packets, now: float) -> bool:
        """Queue a batch atomically; False = backpressure (nothing queued)."""
        if self.pending + len(packets) > self.service.config.queue_size:
            self.counters.add_batch_rejected()
            return False
        self.pending += len(packets)
        self.peak_pending = max(self.peak_pending, self.pending)
        self.counters.add_batch_accepted(len(packets))
        self.queue.put_nowait((packets, now))
        return True

    def publish(self, events) -> None:
        """Fan one shard's incident events out to its subscribers."""
        if not events:
            return
        self.counters.add_events_emitted(len(events))
        if not self.subscribers:
            return
        messages = [protocol.event_message(self.name, e) for e in events]
        for outbox in self.subscribers:
            for message in messages:
                outbox.put_nowait(message)

    async def _run(self) -> None:
        while True:
            item = await self.queue.get()
            if item is _STOP:
                return
            if isinstance(item, ModelSwap):
                # Rotation rides the same FIFO queue as packet batches,
                # so it lands strictly between two batches — no batch is
                # ever split across models.
                boundary = self.session.set_model(item.tool)
                if not item.future.done():
                    item.future.set_result(boundary)
                continue
            await self._resume.wait()
            packets, enqueued_at = item
            for packet in packets:
                update = self.session.push_packet(*packet)
                self.pending -= 1
                if update is not None and update.events:
                    self.publish(update.events)
            self.counters.observe_latency(time.monotonic() - enqueued_at)
            # One batch per loop tick: keep sibling shards and the
            # listeners responsive under a sustained ingest burst.
            await asyncio.sleep(0)

    async def drain(self) -> None:
        """Process everything queued, then flush open incidents."""
        self.queue.put_nowait(_STOP)
        self._resume.set()
        await self.worker
        self.publish(self.session.finish())

    def snapshot(self) -> dict:
        """The ``/metrics`` entry for this shard."""
        return {
            **self.session.counters(),
            **self.counters.snapshot(),
            "queue_depth_packets": self.pending,
            "queue_peak_packets": self.peak_pending,
            "subscribers": len(self.subscribers),
        }


class _Connection:
    """One TCP client: a reader loop plus a serialized outbox writer."""

    def __init__(self, service, reader, writer):
        self.service = service
        self.reader = reader
        self.writer = writer
        self.outbox: asyncio.Queue = asyncio.Queue()
        self.subscriptions: Set[str] = set()  #: subscribed deployments
        self.writer_task: Optional[asyncio.Task] = None
        self._closed = False

    def send(self, message: dict) -> None:
        self.outbox.put_nowait(message)

    async def _write_loop(self) -> None:
        while True:
            message = await self.outbox.get()
            if message is _STOP:
                break
            self.writer.write(protocol.encode(message))
            # Coalesce whatever queued up behind it before draining once.
            while True:
                try:
                    message = self.outbox.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if message is _STOP:
                    await self.writer.drain()
                    return
                self.writer.write(protocol.encode(message))
            await self.writer.drain()

    async def flush_and_close(self) -> None:
        """Drain the outbox, then close (idempotent; double calls happen
        when a client disconnects during a server drain)."""
        if self._closed:
            return
        self._closed = True
        self.outbox.put_nowait(_STOP)
        if self.writer_task is not None:
            try:
                await self.writer_task
            except (ConnectionError, OSError):
                pass
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass


class DiagnosisService:
    """The multi-deployment sink server (see module docstring).

    Args:
        tool: A fitted/loaded :class:`~repro.core.pipeline.VN2` model,
            shared read-only by every shard.
        config: Service knobs; defaults are production-ish.
    """

    def __init__(self, tool: VN2, config: Optional[ServiceConfig] = None):
        tool._require_fitted()
        self.tool = tool
        self.config = config or ServiceConfig()
        #: Service-private metrics registry: every shard's session,
        #: tracker and ingest counters report here with a
        #: ``deployment`` label, independent of the process default.
        #: (Pool workers keep their own registries; the merged scrape is
        #: rendered by the backend via :func:`repro.obs.merge_dumps`.)
        self.registry = MetricsRegistry(enabled=True)
        from repro.service.backends import make_backend
        from repro.service.models import ModelManager

        #: Where shards execute; see :mod:`repro.service.backends`.
        self.backend = make_backend(self)
        #: Online model lifecycle: drift-triggered refits + rotation.
        self.models = ModelManager(self)
        #: SSE fan-out for the live dashboard; ``None`` when disabled —
        #: the dashboard is a pure observer riding the subscribe
        #: protocol, so turning it off removes every trace of it.
        self.dashboard = None
        if self.config.dashboard:
            from repro.dashboard.sse import DashboardHub

            self.dashboard = DashboardHub(
                self, max_queue=self.config.dashboard_queue
            )
        _service_ref = weakref.ref(self)
        self.registry.gauge(
            "repro_service_deployments",
            "Deployment shards currently materialized",
            fn=lambda: (
                float(len(_service_ref().backend.deployments()))
                if _service_ref() is not None else 0.0
            ),
        )
        self.registry.gauge(
            "repro_service_uptime_seconds",
            "Seconds since the listeners were bound",
            fn=lambda: (
                time.monotonic() - _service_ref()._started_at
                if _service_ref() is not None
                and _service_ref()._started_at is not None else 0.0
            ),
        )
        self._connections: Set[_Connection] = set()
        self._tcp_server: Optional[asyncio.AbstractServer] = None
        self._http_server: Optional[asyncio.AbstractServer] = None
        self._started_at: Optional[float] = None
        self._stopping = False
        self.port: Optional[int] = None  #: bound TCP port (after start)
        self.http_port: Optional[int] = None  #: bound HTTP port (after start)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def shards(self) -> Dict[str, "DeploymentShard"]:
        """The inproc backend's shard table (empty in cluster mode).

        Kept as the compatibility surface tests and benchmarks poke
        (``service.shards["name"].pause()`` …); cluster-mode callers use
        :meth:`metrics_snapshot` / ``backend.describe()`` instead.
        """
        return getattr(self.backend, "shards", {})

    async def start(self) -> None:
        """Start the shard backend, then bind both listeners; resolves
        :attr:`port` / :attr:`http_port`.  Workers spawn before the
        listeners accept traffic (readiness is gated separately — see
        :meth:`~repro.service.backends.ShardBackend.wait_ready`)."""
        config = self.config
        await self.backend.start()
        self._tcp_server = await asyncio.start_server(
            self._handle_tcp, config.host, config.port, limit=_LINE_LIMIT
        )
        self._http_server = await asyncio.start_server(
            self._handle_http, config.host, config.http_port
        )
        self.port = self._tcp_server.sockets[0].getsockname()[1]
        self.http_port = self._http_server.sockets[0].getsockname()[1]
        await self.models.start()
        if self.dashboard is not None:
            await self.dashboard.start()
        self._started_at = time.monotonic()

    async def stop(self, drain: bool = True) -> None:
        """Shut down; with ``drain`` (the SIGTERM path) every queued packet
        is diagnosed and open incidents are flush-closed to subscribers
        before connections go away."""
        if self._stopping:
            return
        self._stopping = True
        await self.models.stop()
        if self.dashboard is not None:
            # Abort SSE clients first: on 3.12+ ``wait_closed`` below
            # waits for handlers, and a handler blocked writing to a
            # dead browser would stall shutdown.
            await self.dashboard.stop()
        for server in (self._tcp_server, self._http_server):
            if server is not None:
                server.close()
        if drain:
            await self.backend.drain()
        else:
            await self.backend.abort()
        for connection in list(self._connections):
            await connection.flush_and_close()
        for server in (self._tcp_server, self._http_server):
            if server is not None:
                await server.wait_closed()

    async def serve_forever(self, stop_event: Optional[asyncio.Event] = None) -> None:
        """Run until ``stop_event`` is set (``vn2 serve`` wires signals to it)."""
        if stop_event is None:
            stop_event = asyncio.Event()
        await stop_event.wait()
        await self.stop(drain=True)

    def _deployment_materialized(self, deployment: str) -> None:
        """Backend hook: a new shard/route exists.  Lets the dashboard
        hub subscribe before the deployment's first events publish."""
        if self.dashboard is not None:
            self.dashboard.on_deployment(deployment)

    def shard(self, deployment: str) -> DeploymentShard:
        """The inproc shard for a deployment, created on first use.

        Only meaningful on the inproc backend (raises otherwise); the
        dispatch path goes through ``self.backend`` and works on both.
        """
        return self.backend.shard(deployment)

    # ------------------------------------------------------------------
    # TCP: ingest + subscribe
    # ------------------------------------------------------------------

    async def _handle_tcp(self, reader, writer) -> None:
        connection = _Connection(self, reader, writer)
        self._connections.add(connection)
        connection.writer_task = asyncio.get_running_loop().create_task(
            connection._write_loop()
        )
        connection.send(protocol.hello())
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, ConnectionError):
                    break  # line over limit, or peer vanished mid-line
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    self._dispatch(connection, line)
                except protocol.ProtocolError as exc:
                    connection.send(
                        protocol.error(exc.code, str(exc), exc.seq)
                    )
        finally:
            for deployment in connection.subscriptions:
                self.backend.unsubscribe(deployment, connection.outbox)
            await connection.flush_and_close()
            self._connections.discard(connection)

    def _dispatch(self, connection: _Connection, line: bytes) -> None:
        message = protocol.decode(line)
        mtype, seq = protocol._check_envelope(message)
        if mtype == "ingest":
            seq, deployment, packets = protocol.parse_ingest(message)
            accepted, queued = self.backend.try_enqueue(
                deployment, packets, time.monotonic()
            )
            if accepted:
                connection.send(protocol.ack(seq, len(packets), queued))
            else:
                connection.send(
                    protocol.ack(
                        seq, 0, queued,
                        retry_after=self.config.retry_after_s,
                    )
                )
        elif mtype == "subscribe":
            deployment = protocol.check_deployment(message.get("deployment"), seq)
            self.backend.subscribe(deployment, connection.outbox)
            connection.subscriptions.add(deployment)
            connection.send(protocol.subscribed(seq, deployment))
        else:
            raise protocol.ProtocolError(
                "bad_type", f"unknown message type {mtype!r}", seq
            )

    # ------------------------------------------------------------------
    # HTTP: operator surface
    # ------------------------------------------------------------------

    def metrics_snapshot(self) -> dict:
        """The ``GET /metrics`` document.

        Synchronous by contract (tests call it via ``run_sync``): it
        renders the backend's current view.  In cluster mode the
        session-side counters are as fresh as the latest worker ack —
        the HTTP handler awaits ``backend.refresh()`` first to tighten
        that to "right now".
        """
        per_shard = self.backend.shard_snapshots()
        totals = sum_shard_totals(per_shard)
        uptime = (
            None if self._started_at is None
            else round(time.monotonic() - self._started_at, 3)
        )
        return {
            "server": {
                "uptime_s": uptime,
                "deployments": len(per_shard),
                "queue_size": self.config.queue_size,
                "protocol_version": protocol.PROTOCOL_VERSION,
                "backend": self.backend.name,
                "model_version": self.tool.model_version,
            },
            "totals": totals,
            "deployments": per_shard,
        }

    def incidents_snapshot(self, deployment: Optional[str] = None) -> dict:
        """The ``GET /incidents`` document (open + retained closed).

        Synchronous inproc path; cluster mode answers over the worker
        pipes, so the HTTP handler awaits ``backend.incidents_doc``
        (this method then reports the shards this process hosts: none).
        """
        from repro.service.backends import _tracker_doc

        out = {}
        names = (
            [deployment] if deployment is not None else sorted(self.shards)
        )
        for name in names:
            shard = self.shards.get(name)
            if shard is not None:
                out[name] = _tracker_doc(shard.session.tracker)
        return {"deployments": out}

    def health_snapshot(self) -> dict:
        """The ``GET /health`` document."""
        import repro

        described = self.backend.describe()
        uptime = (
            None if self._started_at is None
            else round(time.monotonic() - self._started_at, 3)
        )
        return {
            "status": "draining" if self._stopping else "ok",
            "version": repro.__version__,
            "model_version": self.tool.model_version,
            "uptime_s": uptime,
            "deployments": len(self.backend.deployments()),
            "backend": described["backend"],
            "workers": described["workers"],
            "dashboard": self.dashboard is not None,
        }

    async def topology_doc(self, deployment: Optional[str] = None) -> dict:
        """The ``GET /api/topology`` document (cluster-aware).

        Per-node summaries and incident docs come from the backend —
        inproc reads its shards directly; the pool queries every worker
        over the pipes and merges (one deployment lives on exactly one
        worker, so the merge never collides).  Shape is validated by
        :func:`repro.dashboard.topology.validate_topology_doc`.
        """
        from repro.dashboard.topology import assemble_topology, model_doc

        nodes = await self.backend.node_summaries_doc(deployment)
        incidents = await self.backend.incidents_doc(deployment)
        deployments = {
            name: assemble_topology(
                nodes.get(name, []),
                incidents.get(name),
                self.config.positions,
            )
            for name in sorted(set(nodes) | set(incidents))
        }
        uptime = (
            None if self._started_at is None
            else round(time.monotonic() - self._started_at, 3)
        )
        return {
            "ts": time.time(),
            "server": {
                "backend": self.backend.name,
                "model_version": self.tool.model_version,
                "uptime_s": uptime,
            },
            "deployments": deployments,
            "model": model_doc(self.tool),
        }

    async def _handle_http(self, reader, writer) -> None:
        try:
            request_line = await reader.readline()
            headers = {}
            while True:
                header = await reader.readline()
                if header in (b"\r\n", b"\n", b""):
                    break
                name, _, value = header.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            parts = request_line.decode("latin-1").split()
            if len(parts) < 2 or parts[0] not in ("GET", "POST"):
                self._http_reply(writer, 405, {"error": "GET/POST only"})
                return
            method = parts[0]
            path, _, query = parts[1].partition("?")
            params = {}
            for pair in query.split("&"):
                key, _, value = pair.partition("=")
                if key:
                    params[key] = value
            if method == "POST":
                try:
                    length = int(headers.get("content-length", "0") or 0)
                except ValueError:
                    length = -1
                if length < 0 or length > _LINE_LIMIT:
                    self._http_reply(
                        writer, 400, {"error": "bad Content-Length"}
                    )
                    return
                raw = await reader.readexactly(length) if length else b""
                try:
                    body = json.loads(raw) if raw else {}
                except ValueError:
                    self._http_reply(
                        writer, 400, {"error": "invalid JSON body"}
                    )
                    return
                if path == "/model":
                    doc, status = await self._model_post(body)
                    self._http_reply(writer, status, doc)
                else:
                    self._http_reply(
                        writer, 404, {"error": f"no route POST {path}"}
                    )
            elif path == "/health":
                self._http_reply(writer, 200, self.health_snapshot())
            elif path == "/model":
                self._http_reply(writer, 200, self.models.doc())
            elif path == "/metrics":
                if params.get("format") == "prometheus":
                    # Inproc: this process's registry.  Cluster: the
                    # merged rollup across the front door + every worker.
                    self._http_reply_text(
                        writer, 200, await self.backend.prometheus_text()
                    )
                else:
                    await self.backend.refresh()
                    self._http_reply(writer, 200, self.metrics_snapshot())
            elif path == "/incidents":
                doc = await self.backend.incidents_doc(
                    params.get("deployment")
                )
                self._http_reply(writer, 200, {"deployments": doc})
            elif path in (
                "/dashboard", "/api/topology", "/api/series",
                "/api/incidents/stream",
            ):
                if self.dashboard is None:
                    self._http_reply(writer, 404, {
                        "error": "dashboard disabled; start the sink with "
                        "vn2 serve --dashboard "
                        "(ServiceConfig(dashboard=True))",
                    })
                elif path == "/dashboard":
                    self._http_reply_raw(
                        writer, 200, _dashboard_page(),
                        "text/html; charset=utf-8",
                    )
                elif path == "/api/topology":
                    doc = await self.topology_doc(
                        params.get("deployment") or None
                    )
                    self._http_reply(writer, 200, doc)
                elif path == "/api/series":
                    self._http_reply(writer, 200, {
                        "ts": time.time(),
                        "metrics": await self.backend.registry_snapshot(),
                    })
                else:
                    # The one streaming route: _serve_sse owns the socket
                    # until the client goes away (or is evicted).
                    await self._serve_sse(writer, params)
                    return
            else:
                self._http_reply(writer, 404, {"error": f"no route {path}"})
            await writer.drain()
        except asyncio.IncompleteReadError:
            pass
        except (ConnectionError, OSError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_sse(self, writer, params) -> None:
        """``GET /api/incidents/stream``: the dashboard's live feed.

        Attaches one bounded-queue client to the hub and pumps frames
        until the browser disconnects or the hub closes the client
        (slow-consumer eviction aborts the transport, which surfaces
        here as a connection error).  Data payloads are the verbatim
        subscribe-protocol event messages — byte-identical JSON to what
        a TCP subscriber (``vn2 watch``) receives.
        """
        import socket as _socket

        from repro.dashboard.sse import SSE_BUFFER_BYTES, format_sse

        # Keep a stalled browser's backlog in the hub's *bounded* client
        # queue — where eviction is defined — rather than in elastic
        # transport/kernel buffers that would hide the stall for
        # hundreds of KB.  SSE frames are a few hundred bytes; these
        # limits are generous for any client that actually reads.
        writer.transport.set_write_buffer_limits(high=SSE_BUFFER_BYTES)
        sock = writer.get_extra_info("socket")
        if sock is not None:
            try:
                sock.setsockopt(
                    _socket.SOL_SOCKET, _socket.SO_SNDBUF, SSE_BUFFER_BYTES
                )
            except OSError:  # pragma: no cover - exotic transports
                pass
        client = self.dashboard.attach(
            params.get("deployment") or None,
            on_close=writer.transport.abort,
        )
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: text/event-stream\r\n"
            "Cache-Control: no-cache\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1"))
        writer.write(format_sse(
            {
                "type": "hello",
                "deployments": sorted(self.backend.deployments()),
                "model_version": self.tool.model_version,
            },
            event="hello",
            retry_ms=2000,
        ))
        try:
            await writer.drain()
            while True:
                frame = await client.next_frame(
                    self.config.dashboard_keepalive_s
                )
                if frame is None:
                    break  # hub closed this client (eviction/shutdown)
                writer.write(frame)
                await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            self.dashboard.detach(client)

    async def _model_post(self, body) -> Tuple[dict, int]:
        """``POST /model``: rotate to a saved model, or force a refit.

        Body is either ``{"path": "<model path on the server host>"}``
        (load — integrity-checked — and rotate) or ``{"refit": true}``
        (run a refit cycle now, skipping the drift/min-states gates).
        """
        if not isinstance(body, dict):
            return {"error": "JSON object body required"}, 400
        if body.get("refit"):
            result = await self.models.maybe_refit(force=True)
            if result is None:
                return {
                    "refit": False,
                    "model_version": self.tool.model_version,
                    "reason": self.models.last_error
                    or "no retained exception states",
                }, 200
            return {"refit": True, **result}, 200
        path = body.get("path")
        if not isinstance(path, str) or not path:
            return {"error": "body must carry 'path' or 'refit': true"}, 400
        from repro.core.pipeline import ModelIntegrityError

        try:
            tool = await asyncio.to_thread(VN2.load, path)
        except FileNotFoundError as exc:
            return {"error": str(exc)}, 404
        except (ModelIntegrityError, ValueError, KeyError, OSError) as exc:
            return {"error": f"{type(exc).__name__}: {exc}"}, 400
        result = await self.models.rotate(tool)
        return result, 200

    @staticmethod
    def _http_reply(writer, status: int, body: dict) -> None:
        DiagnosisService._http_reply_raw(
            writer, status, json.dumps(body).encode("utf-8"),
            "application/json",
        )

    @staticmethod
    def _http_reply_text(writer, status: int, body: str) -> None:
        DiagnosisService._http_reply_raw(
            writer, status, body.encode("utf-8"),
            # The Prometheus text exposition content type (format 0.0.4).
            "text/plain; version=0.0.4; charset=utf-8",
        )

    @staticmethod
    def _http_reply_raw(
        writer, status: int, payload: bytes, content_type: str
    ) -> None:
        reason = {
            200: "OK",
            400: "Bad Request",
            404: "Not Found",
            405: "Method Not Allowed",
        }
        head = (
            f"HTTP/1.1 {status} {reason.get(status, 'Error')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + payload)


def _dashboard_page() -> bytes:
    """The single-file dashboard page, shipped as package data."""
    from importlib.resources import files

    return (
        files("repro.dashboard").joinpath("static/index.html").read_bytes()
    )


# --------------------------------------------------------------------------
# synchronous embedding
# --------------------------------------------------------------------------


@dataclass
class ServiceHandle:
    """A running service owned by a background event-loop thread."""

    service: DiagnosisService
    loop: asyncio.AbstractEventLoop
    thread: threading.Thread
    _stopped: bool = field(default=False, repr=False)

    @property
    def host(self) -> str:
        return self.service.config.host

    @property
    def port(self) -> int:
        return self.service.port

    @property
    def http_port(self) -> int:
        return self.service.http_port

    def call(self, coro_fn, *args):
        """Run a coroutine on the service loop; block for its result."""
        return asyncio.run_coroutine_threadsafe(
            coro_fn(*args), self.loop
        ).result(timeout=60.0)

    def run_sync(self, fn, *args):
        """Run plain callable on the loop thread (shard pokes in tests)."""
        done = threading.Event()
        box = {}

        def _invoke():
            try:
                box["result"] = fn(*args)
            except BaseException as exc:  # surfaced to the caller below
                box["error"] = exc
            done.set()

        self.loop.call_soon_threadsafe(_invoke)
        done.wait(timeout=60.0)
        if "error" in box:
            raise box["error"]
        return box.get("result")

    def stop(self, drain: bool = True) -> None:
        """Drain (optionally), stop the loop and join the thread."""
        if self._stopped:
            return
        self._stopped = True
        asyncio.run_coroutine_threadsafe(
            self.service.stop(drain), self.loop
        ).result(timeout=120.0)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=30.0)

    def __enter__(self) -> "ServiceHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_service_thread(
    tool: VN2,
    config: Optional[ServiceConfig] = None,
    ready_timeout_s: float = 30.0,
) -> ServiceHandle:
    """Start a :class:`DiagnosisService` on a daemon thread; block until
    its ports are bound **and** its backend reports ready (inproc:
    immediate; pool: every worker heartbeating).  The returned handle is
    a context manager."""
    service = DiagnosisService(tool, config)
    started = threading.Event()
    box: dict = {}

    def _run() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        box["loop"] = loop
        try:
            loop.run_until_complete(service.start())
            if not loop.run_until_complete(
                service.backend.wait_ready(ready_timeout_s)
            ):
                raise RuntimeError(
                    f"service backend {service.backend.name!r} not ready "
                    f"after {ready_timeout_s}s"
                )
        except BaseException as exc:
            box["error"] = exc
            started.set()
            loop.close()
            return
        started.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    thread = threading.Thread(target=_run, name="repro-service", daemon=True)
    thread.start()
    started.wait(timeout=30.0)
    if "error" in box:
        raise box["error"]
    return ServiceHandle(service=service, loop=box["loop"], thread=thread)
