"""Shard backends: where a deployment's diagnosis session actually runs.

PR 4 built the sink as one asyncio process — the front door *was* the
shard host.  This module splits that coupling: the server keeps the
listeners, wire protocol and backpressure contract, and delegates shard
execution to a :class:`ShardBackend`:

* :class:`InprocBackend` — the original architecture, unchanged: one
  :class:`~repro.service.server.DeploymentShard` (session + bounded
  queue + worker task) per deployment, inside the server process.  The
  default, and bit-identical to the pre-split server.
* :class:`ProcessPoolBackend` — shards live in a pool of worker
  processes (:mod:`repro.service.worker` children driven through
  :class:`repro.runner.pool.ProcessPool`), routed by consistent hashing
  on the deployment name (:class:`HashRing`).  The front door validates
  and sequences batches, fans them out over FIFO pipes, and merges the
  returned incident-event streams — per-deployment ordering holds
  because one deployment maps to one worker and both pipe directions
  are FIFO.

Failure semantics of the pool backend (the cluster's contract):

* **Backpressure** is still per deployment and still explicit: a route
  tracks packets sent-but-unacked, and a batch that would push it past
  ``queue_size`` is rejected with ``retry_after`` — never dropped.
* **Worker death** is observed as pipe EOF.  The dead worker leaves the
  hash ring, its deployments remap to survivors (minimal movement —
  that is the point of the ring), and every unacked batch is replayed
  in order to the new owner, whose session materializes fresh on the
  first replayed packet.  Delivery is therefore *at least once* across
  a crash: a batch the dead worker had half-diagnosed is diagnosed
  again, but no accepted packet is ever lost.
* **Graceful drain** (SIGTERM) broadcasts ``drain_all``; pipe FIFO
  guarantees every accepted batch is diagnosed before the worker
  flushes open incidents and reports ``w_bye`` with its final metrics
  dump and span trees.

Metrics: each route keeps front-door :class:`ShardCounters` (labelled
``{"deployment"}``, exactly like inproc), workers keep their sessions'
series labelled ``{"deployment", "worker"}``, and the merged Prometheus
scrape is rendered via :func:`repro.obs.merge_dumps` over the front
door's registry dump plus the latest dump from every worker.
"""

from __future__ import annotations

import asyncio
import bisect
import time
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from hashlib import sha256
from typing import Dict, List, Optional, Set, Tuple

from repro.obs import get_tracer, merge_dumps
from repro.service import protocol
from repro.service.metrics import (
    LatencyWindow,
    ShardCounters,
    empty_session_counters,
)

__all__ = [
    "HashRing",
    "InprocBackend",
    "ModelSwap",
    "ProcessPoolBackend",
    "ShardBackend",
    "make_backend",
]


@dataclass
class ModelSwap:
    """In-queue rotation command for inproc shards.

    The inproc backend rotates by enqueuing one of these into every
    shard's packet queue: the shard loop applies it strictly between two
    batches — the same FIFO-boundary guarantee the pool backend gets from
    its worker pipes — and resolves ``future`` with the session's
    rotation boundary.
    """

    tool: object
    future: asyncio.Future


class HashRing:
    """Consistent hashing over worker ids (sha256, virtual nodes).

    ``lookup(key)`` walks clockwise from the key's point to the next
    virtual node.  Removing a node only remaps the keys that hashed to
    its arcs — the property the cluster's worker-death handoff relies on
    to move as few deployments as possible.
    """

    def __init__(self, nodes=(), replicas: int = 64):
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.replicas = replicas
        self.nodes: Set[str] = set()
        self._points: List[int] = []
        self._owners: List[str] = []
        for node in nodes:
            self.add(node)

    @staticmethod
    def _hash(key: str) -> int:
        return int.from_bytes(sha256(key.encode("utf-8")).digest()[:8], "big")

    def add(self, node: str) -> None:
        if node in self.nodes:
            return
        self.nodes.add(node)
        for replica in range(self.replicas):
            point = self._hash(f"{node}#{replica}")
            index = bisect.bisect(self._points, point)
            self._points.insert(index, point)
            self._owners.insert(index, node)

    def remove(self, node: str) -> None:
        if node not in self.nodes:
            return
        self.nodes.discard(node)
        kept = [
            (p, o) for p, o in zip(self._points, self._owners) if o != node
        ]
        self._points = [p for p, _ in kept]
        self._owners = [o for _, o in kept]

    def lookup(self, key: str) -> Optional[str]:
        """The node owning ``key`` (None when the ring is empty)."""
        if not self._points:
            return None
        index = bisect.bisect(self._points, self._hash(key))
        if index == len(self._points):
            index = 0
        return self._owners[index]


class ShardBackend:
    """What the front door needs from a shard host.

    Sync methods run on the server's event loop (dispatch path); async
    methods are awaited by lifecycle and HTTP handlers.  ``try_enqueue``
    must be atomic — either the whole batch is accepted (and will be
    diagnosed exactly in order within its deployment) or nothing is.
    """

    name = "abstract"

    async def start(self) -> None:
        raise NotImplementedError

    async def wait_ready(self, timeout: Optional[float] = None) -> bool:
        """True once every shard host is confirmed healthy."""
        raise NotImplementedError

    def try_enqueue(self, deployment: str, packets, now: float) -> Tuple[bool, int]:
        """Atomically accept or backpressure one batch → (accepted, queued)."""
        raise NotImplementedError

    def deployments(self) -> List[str]:
        """Names of every materialized shard/route."""
        raise NotImplementedError

    def subscribe(self, deployment: str, outbox: asyncio.Queue) -> None:
        raise NotImplementedError

    def unsubscribe(self, deployment: str, outbox: asyncio.Queue) -> None:
        raise NotImplementedError

    async def drain(self) -> None:
        """Diagnose everything accepted, flush open incidents, shut down."""
        raise NotImplementedError

    async def abort(self) -> None:
        """Shut down without draining (the fast test-teardown path)."""
        raise NotImplementedError

    def shard_snapshots(self) -> Dict[str, dict]:
        """Per-deployment ``/metrics`` entries (may be a beat stale)."""
        raise NotImplementedError

    async def refresh(self) -> None:
        """Pull fresh state from the shard hosts (no-op inproc)."""

    async def rotate_model(self, tool) -> Dict[str, dict]:
        """Atomically swap every live session to ``tool`` mid-stream.

        Returns deployment → rotation boundary (``{"packets", "states"}``)
        for every shard that existed when the rotation landed.  The swap
        is a FIFO barrier per shard: no batch is split across models, no
        event is dropped, duplicated or reordered.
        """
        raise NotImplementedError

    async def collect_refit_states(self) -> Tuple[Dict[str, object], Dict[str, float]]:
        """Drain retained exception states and drift scores per shard.

        Returns ``(states, drift)``: deployment → drained
        :class:`~repro.core.states.StateMatrix` (omitted when empty) and
        deployment → drift score.
        """
        raise NotImplementedError

    async def prometheus_text(self) -> str:
        raise NotImplementedError

    async def registry_snapshot(self) -> dict:
        """The registry's JSON snapshot, merged across all processes
        (``GET /api/series`` — the dashboard's sparkline feed)."""
        raise NotImplementedError

    async def incidents_doc(self, deployment: Optional[str] = None) -> dict:
        raise NotImplementedError

    async def node_summaries_doc(
        self, deployment: Optional[str] = None
    ) -> Dict[str, list]:
        """Deployment → per-node summary list (the ``/api/topology`` feed).

        Summaries come from each live session's
        :meth:`~repro.core.streaming.StreamingDiagnosisSession.node_summaries`;
        in cluster mode one deployment lives on exactly one worker, so
        merging per-worker answers never collides.
        """
        raise NotImplementedError

    def describe(self) -> dict:
        """The ``/health`` backend section (worker ids/pids/liveness)."""
        raise NotImplementedError


# --------------------------------------------------------------------------
# in-process backend (the PR 4 architecture, verbatim)
# --------------------------------------------------------------------------


class InprocBackend(ShardBackend):
    """Shards as asyncio tasks inside the server process (the default)."""

    name = "inproc"

    def __init__(self, service):
        self.service = service
        #: Exposed as ``DiagnosisService.shards`` for compatibility —
        #: tests and benchmarks poke shard internals through it.
        self.shards: Dict[str, object] = {}

    async def start(self) -> None:
        pass

    async def wait_ready(self, timeout: Optional[float] = None) -> bool:
        return True

    def shard(self, deployment: str):
        shard = self.shards.get(deployment)
        if shard is None:
            from repro.service.server import DeploymentShard

            shard = self.shards[deployment] = DeploymentShard(
                deployment, self.service
            )
            self.service._deployment_materialized(deployment)
        return shard

    def try_enqueue(self, deployment: str, packets, now: float) -> Tuple[bool, int]:
        shard = self.shard(deployment)
        accepted = shard.try_enqueue(packets, now)
        return accepted, shard.pending

    def deployments(self) -> List[str]:
        return list(self.shards)

    def subscribe(self, deployment: str, outbox: asyncio.Queue) -> None:
        self.shard(deployment).subscribers.add(outbox)

    def unsubscribe(self, deployment: str, outbox: asyncio.Queue) -> None:
        shard = self.shards.get(deployment)
        if shard is not None:
            shard.subscribers.discard(outbox)

    async def drain(self) -> None:
        for shard in self.shards.values():
            await shard.drain()

    async def abort(self) -> None:
        for shard in self.shards.values():
            shard.worker.cancel()

    def shard_snapshots(self) -> Dict[str, dict]:
        return {
            name: shard.snapshot()
            for name, shard in sorted(self.shards.items())
        }

    async def rotate_model(self, tool) -> Dict[str, dict]:
        """Swap every shard to ``tool`` via an in-queue :class:`ModelSwap`.

        The sentinel rides the same bounded queue as packet batches, so
        the shard loop applies it strictly between two batches — exactly
        the FIFO boundary the pool backend gets from its worker pipes.
        ``service.tool`` is updated first so shards materialized during
        the rotation start on the new model from their first packet.
        """
        self.service.tool = tool
        loop = asyncio.get_running_loop()
        waits = []
        for name, shard in sorted(self.shards.items()):
            swap = ModelSwap(tool=tool, future=loop.create_future())
            shard.queue.put_nowait(swap)
            waits.append((name, swap.future))
        return {name: await future for name, future in waits}

    async def collect_refit_states(self) -> Tuple[Dict[str, object], Dict[str, float]]:
        states: Dict[str, object] = {}
        drift: Dict[str, float] = {}
        for name, shard in sorted(self.shards.items()):
            drained = shard.session.drain_exception_states()
            if len(drained):
                states[name] = drained
            drift[name] = shard.session.drift_score
        return states, drift

    async def prometheus_text(self) -> str:
        return self.service.registry.to_prometheus()

    async def registry_snapshot(self) -> dict:
        return self.service.registry.snapshot()

    async def incidents_doc(self, deployment: Optional[str] = None) -> dict:
        names = (
            [deployment] if deployment is not None else sorted(self.shards)
        )
        out = {}
        for name in names:
            shard = self.shards.get(name)
            if shard is None:
                continue
            out[name] = _tracker_doc(shard.session.tracker)
        return out

    async def node_summaries_doc(
        self, deployment: Optional[str] = None
    ) -> Dict[str, list]:
        names = (
            [deployment] if deployment is not None else sorted(self.shards)
        )
        out = {}
        for name in names:
            shard = self.shards.get(name)
            if shard is not None:
                out[name] = shard.session.node_summaries()
        return out

    def describe(self) -> dict:
        return {"backend": self.name, "workers": []}


def _tracker_doc(tracker) -> dict:
    return {
        "open": [
            protocol.incident_obj(i) for i in tracker.open_incidents()
        ],
        "closed": [protocol.incident_obj(i) for i in tracker.incidents],
        "closed_total": tracker.n_closed_total,
        "evicted": tracker.n_evicted,
    }


# --------------------------------------------------------------------------
# multi-process backend
# --------------------------------------------------------------------------


class ShardRoute:
    """Front-door state for one deployment routed to a pool worker."""

    def __init__(self, name: str, backend: "ProcessPoolBackend"):
        service = backend.service
        config = service.config
        labels = {"deployment": name}
        self.name = name
        self.worker_id: Optional[str] = backend.ring.lookup(name)
        self.pending = 0  #: packets sent to the worker, not yet acked
        self.peak_pending = 0
        self.batch_seq = 0
        #: batch_id -> (packets, enqueued_at); insertion order is send
        #: order, which is what a crash replay must preserve.
        self.unacked: "OrderedDict[int, tuple]" = OrderedDict()
        self.counters = ShardCounters(
            latency=LatencyWindow(config.latency_window),
            registry=service.registry,
            labels=labels,
        )
        self.subscribers: Set[asyncio.Queue] = set()
        #: Latest session counters reported by the owning worker.
        self.session_counters: dict = empty_session_counters()
        ref = weakref.ref(self)
        service.registry.gauge(
            "repro_service_queue_depth_packets",
            "Packets queued but not yet diagnosed",
            labels,
            fn=lambda: float(ref().pending) if ref() is not None else 0.0,
        )
        service.registry.gauge(
            "repro_service_subscribers",
            "Live event subscribers of this deployment",
            labels,
            fn=lambda: (
                float(len(ref().subscribers)) if ref() is not None else 0.0
            ),
        )

    def publish(self, events: List[dict]) -> None:
        """Fan worker-produced incident-event objects out to subscribers.

        ``events`` are :func:`protocol.incident_event_obj` dicts exactly
        as the worker's session emitted them, so the framed messages are
        byte-identical to the inproc backend's.
        """
        if not events:
            return
        self.counters.add_events_emitted(len(events))
        if not self.subscribers:
            return
        messages = [
            {
                "v": protocol.PROTOCOL_VERSION,
                "type": "event",
                "deployment": self.name,
                "event": event,
            }
            for event in events
        ]
        for outbox in self.subscribers:
            for message in messages:
                outbox.put_nowait(message)

    def snapshot(self) -> dict:
        return {
            **empty_session_counters(),
            **self.session_counters,
            **self.counters.snapshot(),
            "queue_depth_packets": self.pending,
            "queue_peak_packets": self.peak_pending,
            "subscribers": len(self.subscribers),
            "worker": self.worker_id,
        }


class ProcessPoolBackend(ShardBackend):
    """Shards in a pool of worker processes, consistent-hash routed."""

    name = "pool"

    def __init__(self, service, n_workers: int):
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.service = service
        self.n_workers = n_workers
        self.ring = HashRing()
        self.routes: Dict[str, ShardRoute] = {}
        self.pool = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready: Optional[asyncio.Event] = None
        self._draining = False
        #: worker_id -> {"pid", "hello", "beats", "last_beat", "alive",
        #:               "bye": Future}
        self._workers: Dict[str, dict] = {}
        #: worker_id -> latest registry dump (w_metrics or w_bye).
        self._dumps: Dict[str, dict] = {}
        self._req_seq = 0
        #: req id -> {"waiting": set, "future", "replies": dict}
        self._requests: Dict[int, dict] = {}
        registry = service.registry
        self._m_handoffs = registry.counter(
            "repro_service_worker_handoffs_total",
            "Deployments remapped off a dead worker",
        )
        self._m_replayed = registry.counter(
            "repro_service_packets_replayed_total",
            "Packets resent to a surviving worker after a crash",
        )
        self._m_worker_errors = registry.counter(
            "repro_service_worker_errors_total",
            "w_error messages received from shard workers",
        )
        registry.gauge(
            "repro_service_workers_alive",
            "Live shard worker processes",
            fn=lambda: float(len(self.ring.nodes)),
        )

    # -- lifecycle -----------------------------------------------------

    def _worker_options(self) -> dict:
        config = self.service.config
        return {
            "positions": config.positions,
            "threshold_ratio": config.threshold_ratio,
            "max_epoch_gap": config.max_epoch_gap,
            "min_strength": config.min_strength,
            "time_gap_s": config.time_gap_s,
            "radius_m": config.radius_m,
            "max_closed_incidents": config.max_closed_incidents,
            "keep_exception_states": config.keep_exception_states,
            "heartbeat_s": config.heartbeat_s,
        }

    async def start(self) -> None:
        from repro.runner.pool import ProcessPool
        from repro.service.worker import worker_main

        self._loop = asyncio.get_running_loop()
        self._ready = asyncio.Event()
        self.pool = ProcessPool(
            worker_main,
            self.n_workers,
            args=(self.service.tool, self._worker_options()),
            on_message=self._on_pipe_message,
        )
        self.pool.start()
        for worker_id in self.pool.workers:
            self.ring.add(worker_id)
            self._workers[worker_id] = {
                "pid": self.pool.workers[worker_id].pid,
                "hello": False,
                "beats": 0,
                "last_beat": None,
                "alive": True,
                "bye": self._loop.create_future(),
            }

    async def wait_ready(self, timeout: Optional[float] = None) -> bool:
        """True once every worker has reported a healthy heartbeat."""
        assert self._ready is not None, "backend not started"
        try:
            await asyncio.wait_for(self._ready.wait(), timeout)
            return True
        except asyncio.TimeoutError:
            return False

    async def drain(self) -> None:
        """Graceful shutdown: every accepted packet diagnosed, incidents
        flushed (published to subscribers), workers exited via ``w_bye``."""
        self._draining = True
        if self.pool is None:
            return
        byes = [
            info["bye"] for info in self._workers.values()
            if info["alive"] and not info["bye"].done()
        ]
        self.pool.broadcast(protocol.drain_all())
        if byes:
            await asyncio.wait(
                byes, timeout=self.service.config.drain_timeout_s
            )
        await asyncio.to_thread(self.pool.stop, 5.0)

    async def abort(self) -> None:
        self._draining = True
        if self.pool is not None:
            await asyncio.to_thread(self.pool.terminate)

    # -- dispatch path -------------------------------------------------

    def route(self, deployment: str) -> ShardRoute:
        route = self.routes.get(deployment)
        if route is None:
            route = self.routes[deployment] = ShardRoute(deployment, self)
            if route.worker_id is not None:
                self.pool.send(
                    route.worker_id,
                    protocol.assign(deployment, route.worker_id),
                )
            self.service._deployment_materialized(deployment)
        return route

    def try_enqueue(self, deployment: str, packets, now: float) -> Tuple[bool, int]:
        route = self.route(deployment)
        if route.worker_id is None:
            # The ring was empty at route creation (all workers dead);
            # a later lookup may succeed if that ever changes.
            route.worker_id = self.ring.lookup(deployment)
        config = self.service.config
        if (
            route.worker_id is None
            or route.pending + len(packets) > config.queue_size
        ):
            route.counters.add_batch_rejected()
            return False, route.pending
        route.batch_seq += 1
        batch_id = route.batch_seq
        route.unacked[batch_id] = (packets, now)
        route.pending += len(packets)
        route.peak_pending = max(route.peak_pending, route.pending)
        route.counters.add_batch_accepted(len(packets))
        self.pool.send(
            route.worker_id,
            protocol.shard_ingest(deployment, batch_id, packets),
        )
        return True, route.pending

    def deployments(self) -> List[str]:
        return list(self.routes)

    def subscribe(self, deployment: str, outbox: asyncio.Queue) -> None:
        self.route(deployment).subscribers.add(outbox)

    def unsubscribe(self, deployment: str, outbox: asyncio.Queue) -> None:
        route = self.routes.get(deployment)
        if route is not None:
            route.subscribers.discard(outbox)

    # -- pipe messages (reader thread -> event loop) -------------------

    def _on_pipe_message(self, worker_id: str, message: dict) -> None:
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        try:
            loop.call_soon_threadsafe(self._handle, worker_id, message)
        except RuntimeError:
            pass  # loop shut down between the check and the call

    def _handle(self, worker_id: str, message: dict) -> None:
        from repro.runner.pool import WORKER_LOST

        mtype = message.get("type")
        if mtype == WORKER_LOST:
            self._on_worker_lost(worker_id)
            return
        info = self._workers.get(worker_id)
        if info is None:
            return
        if mtype == "w_hello":
            info["hello"] = True
            info["pid"] = message.get("pid", info["pid"])
        elif mtype == "w_heartbeat":
            info["beats"] += 1
            info["last_beat"] = message.get("ts")
            self._check_ready()
        elif mtype == "w_ack":
            route = self.routes.get(message["deployment"])
            if route is None:
                return
            entry = route.unacked.pop(message["batch_id"], None)
            if entry is not None:
                packets, enqueued_at = entry
                route.pending -= len(packets)
                route.counters.observe_latency(
                    time.monotonic() - enqueued_at
                )
            if message.get("counters"):
                route.session_counters = message["counters"]
            route.publish(message.get("events") or [])
        elif mtype == "w_drained":
            route = self.routes.get(message["deployment"])
            if route is not None:
                if message.get("counters"):
                    route.session_counters = message["counters"]
                route.publish(message.get("events") or [])
        elif mtype == "w_bye":
            self._dumps[worker_id] = message.get("dump") or {}
            spans = message.get("spans") or []
            if spans:
                from repro.runner.pool import attach_span_trees

                attach_span_trees(
                    get_tracer(), list(enumerate(spans))
                )
            if not info["bye"].done():
                info["bye"].set_result(True)
        elif mtype in (
            "w_metrics", "w_incidents", "w_model", "w_states", "w_topology"
        ):
            if mtype == "w_metrics":
                self._dumps[worker_id] = message.get("dump") or {}
                for shard in message.get("shards") or []:
                    route = self.routes.get(shard.get("deployment"))
                    if route is not None:
                        route.session_counters = {
                            k: v for k, v in shard.items()
                            if k != "deployment"
                        }
            request = self._requests.get(message.get("req"))
            if request is not None and worker_id in request["waiting"]:
                request["waiting"].discard(worker_id)
                request["replies"][worker_id] = message
                if not request["waiting"] and not request["future"].done():
                    request["future"].set_result(request["replies"])
        elif mtype == "w_error":
            self._m_worker_errors.inc()

    def _check_ready(self) -> None:
        if self._ready is None or self._ready.is_set():
            return
        if all(
            info["hello"] and info["beats"] >= 1
            for info in self._workers.values()
        ):
            self._ready.set()

    def _on_worker_lost(self, worker_id: str) -> None:
        info = self._workers.get(worker_id)
        if info is None or not info["alive"]:
            return
        info["alive"] = False
        self.ring.remove(worker_id)
        if not info["bye"].done():
            # Death during drain: unblock the waiter; the worker's
            # accepted-but-undiagnosed work is gone with it.
            info["bye"].set_result(False)
        # A dead worker will never answer an in-flight operator query
        # (metrics/incidents/model/states): drop it from every pending
        # request so gathers resolve with the survivors' replies instead
        # of stalling to the timeout.
        for request in self._requests.values():
            if worker_id in request["waiting"]:
                request["waiting"].discard(worker_id)
                if not request["waiting"] and not request["future"].done():
                    request["future"].set_result(request["replies"])
        if self._draining:
            return
        for route in self.routes.values():
            if route.worker_id != worker_id:
                continue
            new_worker = self.ring.lookup(route.name)
            route.worker_id = new_worker
            self._m_handoffs.inc()
            if new_worker is None:
                continue  # no survivors: unacked kept, ingest backpressures
            self.pool.send(
                new_worker, protocol.assign(route.name, new_worker)
            )
            replayed = 0
            for batch_id, (packets, _t0) in route.unacked.items():
                self.pool.send(
                    new_worker,
                    protocol.shard_ingest(route.name, batch_id, packets),
                )
                replayed += len(packets)
            if replayed:
                self._m_replayed.inc(replayed)

    # -- chaos / introspection -----------------------------------------

    def kill_worker(self, worker_id: str) -> None:
        """SIGKILL one worker (the chaos hook CI's cluster job uses)."""
        self.pool.kill(worker_id)

    def describe(self) -> dict:
        return {
            "backend": self.name,
            "workers": [
                {
                    "id": worker_id,
                    "pid": info["pid"],
                    "alive": info["alive"],
                    "beats": info["beats"],
                }
                for worker_id, info in sorted(self._workers.items())
            ],
        }

    def shard_snapshots(self) -> Dict[str, dict]:
        return {
            name: route.snapshot()
            for name, route in sorted(self.routes.items())
        }

    # -- operator queries ----------------------------------------------

    def _begin_request(self, alive: List[str]):
        self._req_seq += 1
        req = self._req_seq
        request = {
            "waiting": set(alive),
            "replies": {},
            "future": self._loop.create_future(),
        }
        self._requests[req] = request
        return req, request

    async def _gather(self, request, timeout: float) -> dict:
        try:
            return await asyncio.wait_for(request["future"], timeout)
        except asyncio.TimeoutError:
            return request["replies"]

    async def refresh(self, timeout: float = 5.0) -> None:
        """Pull a fresh registry dump + session counters from every worker."""
        alive = [
            wid for wid, info in self._workers.items() if info["alive"]
        ]
        if not alive or self._draining:
            return
        req, request = self._begin_request(alive)
        try:
            for worker_id in alive:
                self.pool.send(worker_id, protocol.metrics_query(req))
            await self._gather(request, timeout)
        finally:
            self._requests.pop(req, None)

    async def prometheus_text(self) -> str:
        await self.refresh()
        merged = merge_dumps(
            [self.service.registry.dump()] + list(self._dumps.values())
        )
        return merged.to_prometheus()

    async def registry_snapshot(self) -> dict:
        await self.refresh()
        merged = merge_dumps(
            [self.service.registry.dump()] + list(self._dumps.values())
        )
        return merged.snapshot()

    async def node_summaries_doc(
        self, deployment: Optional[str] = None, timeout: float = 5.0
    ) -> Dict[str, list]:
        alive = [
            wid for wid, info in self._workers.items() if info["alive"]
        ]
        if not alive:
            return {}
        req, request = self._begin_request(alive)
        try:
            for worker_id in alive:
                self.pool.send(
                    worker_id, protocol.topology_query(req, deployment)
                )
            replies = await self._gather(request, timeout)
        finally:
            self._requests.pop(req, None)
        out: Dict[str, list] = {}
        for reply in replies.values():
            out.update(reply.get("nodes") or {})
        return dict(sorted(out.items()))

    async def incidents_doc(
        self, deployment: Optional[str] = None, timeout: float = 5.0
    ) -> dict:
        alive = [
            wid for wid, info in self._workers.items() if info["alive"]
        ]
        if not alive:
            return {}
        req, request = self._begin_request(alive)
        try:
            for worker_id in alive:
                self.pool.send(
                    worker_id, protocol.incidents_query(req, deployment)
                )
            replies = await self._gather(request, timeout)
        finally:
            self._requests.pop(req, None)
        out: dict = {}
        for reply in replies.values():
            out.update(reply.get("incidents") or {})
        return dict(sorted(out.items()))

    async def rotate_model(self, tool, timeout: float = 30.0) -> Dict[str, dict]:
        """Broadcast ``model_update`` and gather per-shard boundaries.

        Each worker's pipe is FIFO, so the update lands strictly between
        two ingest batches on every shard it owns — the same no-split
        guarantee the inproc sentinel gives.  ``service.tool`` is updated
        too, keeping ``/health`` and future restarts consistent.
        """
        self.service.tool = tool
        alive = [
            wid for wid, info in self._workers.items() if info["alive"]
        ]
        if not alive or self._draining:
            return {}
        req, request = self._begin_request(alive)
        try:
            version = tool.model_version
            for worker_id in alive:
                self.pool.send(
                    worker_id, protocol.model_update(req, tool, version)
                )
            replies = await self._gather(request, timeout)
        finally:
            self._requests.pop(req, None)
        boundaries: Dict[str, dict] = {}
        for reply in replies.values():
            boundaries.update(reply.get("boundaries") or {})
        return dict(sorted(boundaries.items()))

    async def collect_refit_states(
        self, timeout: float = 10.0
    ) -> Tuple[Dict[str, object], Dict[str, float]]:
        alive = [
            wid for wid, info in self._workers.items() if info["alive"]
        ]
        if not alive or self._draining:
            return {}, {}
        req, request = self._begin_request(alive)
        try:
            for worker_id in alive:
                self.pool.send(worker_id, protocol.states_query(req))
            replies = await self._gather(request, timeout)
        finally:
            self._requests.pop(req, None)
        states: Dict[str, object] = {}
        drift: Dict[str, float] = {}
        for reply in replies.values():
            states.update(reply.get("states") or {})
            drift.update(reply.get("drift") or {})
        return states, drift


def make_backend(service) -> ShardBackend:
    """Pick a backend from the service config.

    ``backend="auto"`` (the default) selects inproc for ``workers <= 1``
    — keeping the single-worker server literally the PR 4 code path, the
    differential anchor — and the process pool above that.  ``"pool"``
    forces the pool even at one worker (the cluster tests' fixture).
    """
    config = service.config
    choice = getattr(config, "backend", "auto")
    workers = getattr(config, "workers", 0)
    if choice == "inproc" or (choice == "auto" and workers <= 1):
        return InprocBackend(service)
    if choice in ("auto", "pool"):
        return ProcessPoolBackend(service, max(1, workers))
    raise ValueError(f"unknown backend {choice!r}")
