"""``repro.service``: the deployed diagnosis sink.

The streaming core behind a network boundary: an asyncio TCP/HTTP front
door (:mod:`~repro.service.server`) routing one
:class:`~repro.core.streaming.StreamingDiagnosisSession` shard per named
deployment onto a :class:`~repro.service.backends.ShardBackend` —
in-process asyncio tasks by default, or a consistent-hash-routed pool of
worker processes (:mod:`~repro.service.worker`) with ``workers=N``.
Plus an NDJSON wire protocol (:mod:`~repro.service.protocol`), a
sync/async client SDK (:mod:`~repro.service.client`) and a trace load
generator (:mod:`~repro.service.loadgen`).  Start one from the CLI with
``vn2 serve [--workers N]`` or in-process with
:func:`start_service_thread`.
"""

from repro.service.backends import (
    HashRing,
    InprocBackend,
    ProcessPoolBackend,
    ShardBackend,
)
from repro.service.client import (
    AsyncServiceClient,
    BackoffPolicy,
    ServiceClient,
    ServiceUnavailable,
    SubmitResult,
    http_get_json,
    http_post_json,
)
from repro.service.metrics import LatencyWindow, ShardCounters
from repro.service.models import ModelManager
from repro.service.protocol import PROTOCOL_VERSION, ProtocolError
from repro.service.server import (
    DeploymentShard,
    DiagnosisService,
    ServiceConfig,
    ServiceHandle,
    start_service_thread,
)

_LAZY = {"LoadgenReport", "replay_trace", "FanoutReport", "replay_trace_fanout"}


def __getattr__(name: str):
    # Lazy so `python -m repro.service.loadgen` doesn't trigger runpy's
    # already-imported warning (the loadgen imports this package).
    if name in _LAZY:
        from repro.service import loadgen

        return getattr(loadgen, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "AsyncServiceClient",
    "BackoffPolicy",
    "DeploymentShard",
    "DiagnosisService",
    "FanoutReport",
    "HashRing",
    "InprocBackend",
    "LatencyWindow",
    "LoadgenReport",
    "ModelManager",
    "PROTOCOL_VERSION",
    "ProcessPoolBackend",
    "ProtocolError",
    "ServiceClient",
    "ServiceConfig",
    "ServiceHandle",
    "ServiceUnavailable",
    "ShardBackend",
    "ShardCounters",
    "SubmitResult",
    "http_get_json",
    "http_post_json",
    "replay_trace",
    "replay_trace_fanout",
    "start_service_thread",
]
