"""Model lifecycle on the front door: background refits and rotation.

The sink serves one fitted :class:`~repro.core.pipeline.VN2` model per
process tree.  This module adds the online half of the model's life:

* :class:`ModelManager` — owned by the
  :class:`~repro.service.server.DiagnosisService`.  It periodically
  drains the exception states every shard retained
  (``ServiceConfig.keep_exception_states``), watches the per-shard drift
  scores, and when the trigger fires absorbs the drained states into a
  *clone* of the served model via
  :func:`~repro.core.lifecycle.incremental_refit` — in a **child
  process** (:class:`repro.runner.pool.ProcessPool`), so a refit never
  steals event-loop time from ingest.  The refitted model is then
  rotated into every live session through
  :meth:`~repro.service.backends.ShardBackend.rotate_model`, whose
  per-shard FIFO barrier guarantees no event is lost, duplicated or
  reordered across the swap.
* Explicit rotation: ``POST /model {"path": ...}`` (and
  ``vn2 model rotate``) loads a saved model — integrity-checked against
  its recorded ``model_version`` — and swaps it in the same way.

Every lifecycle action is observable: rotations and refits are counted
(``repro_service_model_rotations_total``,
``repro_service_refits_total`` …), the swap runs under a
``service.model_rotate`` span, and ``GET /model`` returns the serving
version, drift scores and lifecycle counters.

See ``docs/model_lifecycle.md`` for the full semantics, including how
rotation composes with the cluster's at-least-once crash handoff.
"""

from __future__ import annotations

import asyncio
import threading
import weakref
from typing import Dict, List, Optional

import numpy as np

from repro.core.states import StateMatrix
from repro.obs import span

__all__ = ["ModelManager", "merge_state_matrices"]


def merge_state_matrices(parts: List[StateMatrix]) -> Optional[StateMatrix]:
    """Concatenate per-shard state matrices into one refit batch.

    Returns ``None`` when nothing survives (all parts empty).  Order is
    the caller's: the manager appends drains chronologically, so the
    batch preserves arrival order within each shard.
    """
    parts = [p for p in parts if len(p)]
    if not parts:
        return None
    if len(parts) == 1:
        return parts[0]
    return StateMatrix(
        values=np.concatenate([p.values for p in parts]),
        node_ids=np.concatenate([p.node_ids for p in parts]),
        epochs_from=np.concatenate([p.epochs_from for p in parts]),
        epochs_to=np.concatenate([p.epochs_to for p in parts]),
        times_from=np.concatenate([p.times_from for p in parts]),
        times_to=np.concatenate([p.times_to for p in parts]),
    )


def _refit_main(conn, worker_id: str, tool, states, warm_iterations, tol) -> None:
    """Child-process target: one refit, one reply, exit.

    Runs in a :class:`~repro.runner.pool.ProcessPool` child so the NMF
    iterations never block the server's event loop (or its GIL).  The
    inputs ride the fork; only the refitted model crosses the pipe back.
    """
    try:
        from repro.core.lifecycle import incremental_refit

        updated = incremental_refit(
            tool, states, warm_iterations=warm_iterations, tol=tol
        )
        conn.send({"type": "refit_done", "tool": updated})
    except Exception as exc:
        try:
            conn.send({
                "type": "refit_error",
                "error": f"{type(exc).__name__}: {exc}",
            })
        except (OSError, ValueError):
            pass
    finally:
        try:
            conn.close()
        except OSError:
            pass


class ModelManager:
    """Drift-triggered refits and zero-downtime rotation for one service.

    All async methods run on the service's event loop; lifecycle
    operations (refit, rotate) serialize on one lock so two triggers can
    never race a swap.
    """

    #: Iteration budget / early-stop tolerance for background refits.
    warm_iterations = 60
    tol = 1e-4
    #: Hard ceiling on one child refit (seconds).
    refit_timeout_s = 600.0

    def __init__(self, service):
        self.service = service
        self.n_rotations = 0
        self.n_refits = 0
        #: Drained-but-not-yet-absorbed state batches (kept across refit
        #: checks that don't trigger — a drain must never lose states).
        self._pending: List[StateMatrix] = []
        #: Latest per-deployment drift scores seen by a refit check.
        self._drift: Dict[str, float] = {}
        self._task: Optional[asyncio.Task] = None
        self._lock = asyncio.Lock()
        self.last_error: Optional[str] = None
        registry = service.registry
        self._m_rotations = registry.counter(
            "repro_service_model_rotations_total",
            "Zero-downtime model rotations applied across the backend",
        )
        self._m_refits = registry.counter(
            "repro_service_refits_total",
            "Background refits completed by the model manager",
        )
        self._m_refit_failures = registry.counter(
            "repro_service_refit_failures_total",
            "Background refits that failed or produced no model",
        )
        self._m_refit_states = registry.counter(
            "repro_service_refit_states_total",
            "Exception states absorbed by background refits",
        )
        ref = weakref.ref(self)
        registry.gauge(
            "repro_service_model_drift",
            "Largest per-deployment drift score at the last refit check",
            fn=lambda: (
                max(ref()._drift.values(), default=0.0)
                if ref() is not None else 0.0
            ),
        )
        registry.gauge(
            "repro_service_refit_backlog_states",
            "Exception states drained from shards but not yet absorbed",
            fn=lambda: (
                float(sum(len(p) for p in ref()._pending))
                if ref() is not None else 0.0
            ),
        )

    # -- introspection -------------------------------------------------

    @property
    def model_version(self) -> str:
        return self.service.tool.model_version

    def doc(self) -> dict:
        """The ``GET /model`` document."""
        config = self.service.config
        return {
            "model_version": self.model_version,
            "model": self.service.tool._sidecar_meta(),
            "rotations": self.n_rotations,
            "refits": self.n_refits,
            "pending_states": sum(len(p) for p in self._pending),
            "drift": dict(sorted(self._drift.items())),
            "drift_score": max(self._drift.values(), default=0.0),
            "refit_every_s": config.refit_every_s,
            "drift_threshold": config.drift_threshold,
            "refit_min_states": config.refit_min_states,
            "last_error": self.last_error,
        }

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        """Arm the periodic refit task when the service configured one."""
        if self.service.config.refit_every_s is not None:
            self._task = asyncio.get_running_loop().create_task(
                self._periodic(), name="model-manager"
            )

    async def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None

    async def _periodic(self) -> None:
        period = self.service.config.refit_every_s
        while True:
            await asyncio.sleep(period)
            try:
                await self.maybe_refit()
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # keep the cadence alive
                self.last_error = f"{type(exc).__name__}: {exc}"
                self._m_refit_failures.inc()

    # -- rotation ------------------------------------------------------

    async def rotate(self, tool) -> dict:
        """Swap ``tool`` into every live session; returns the boundaries."""
        tool._require_fitted()
        async with self._lock:
            return await self._rotate_locked(tool)

    async def _rotate_locked(self, tool) -> dict:
        previous = self.service.tool.model_version
        version = tool.model_version
        with span(
            "service.model_rotate", model_version=version, previous=previous
        ):
            boundaries = await self.service.backend.rotate_model(tool)
        self.n_rotations += 1
        self._m_rotations.inc()
        return {
            "model_version": version,
            "previous": previous,
            "boundaries": boundaries,
        }

    # -- refit ---------------------------------------------------------

    async def maybe_refit(self, force: bool = False) -> Optional[dict]:
        """One refit check: drain, decide, absorb in a child, rotate.

        Returns the rotation document (plus ``absorbed_states``) when a
        refit happened, ``None`` when the trigger didn't fire.  With
        ``force`` the drift/min-states gates are skipped (any retained
        state is enough) — the ``POST /model {"refit": true}`` path.
        """
        config = self.service.config
        async with self._lock:
            states, drift = await self.service.backend.collect_refit_states()
            if drift:
                self._drift = dict(drift)
            merged = merge_state_matrices(list(states.values()))
            if merged is not None:
                self._pending.append(merged)
            total = sum(len(p) for p in self._pending)
            if total == 0:
                return None
            if not force:
                if total < config.refit_min_states:
                    return None
                if (
                    config.drift_threshold is not None
                    and max(self._drift.values(), default=0.0)
                    < config.drift_threshold
                ):
                    return None
            batch = merge_state_matrices(self._pending)
            self._pending = []
            updated = await asyncio.to_thread(
                self._refit_blocking, self.service.tool, batch
            )
            if updated is None:
                self._m_refit_failures.inc()
                # The batch was consumed by the failed attempt; retrying
                # it against the same model would fail the same way, so
                # it is dropped (counted above) rather than re-queued.
                return None
            self.n_refits += 1
            self._m_refits.inc()
            self._m_refit_states.inc(len(batch))
            result = await self._rotate_locked(updated)
            result["absorbed_states"] = len(batch)
            return result

    def _refit_blocking(self, tool, states):
        """Run one refit in a single-shot pool child; None on failure."""
        from repro.runner.pool import WORKER_LOST, ProcessPool

        box: dict = {}
        done = threading.Event()

        def on_message(worker_id: str, message: dict) -> None:
            mtype = message.get("type")
            if mtype == "refit_done":
                box["tool"] = message.get("tool")
                done.set()
            elif mtype == "refit_error":
                box["error"] = message.get("error")
                done.set()
            elif mtype == WORKER_LOST:
                done.set()

        pool = ProcessPool(
            _refit_main,
            1,
            args=(tool, states, self.warm_iterations, self.tol),
            on_message=on_message,
        )
        pool.start()
        try:
            done.wait(timeout=self.refit_timeout_s)
        finally:
            pool.stop(timeout=5.0)
        if "error" in box:
            self.last_error = box["error"]
        return box.get("tool")
