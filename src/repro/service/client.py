"""Client SDK for the diagnosis sink: sync and async packet submission.

Both clients speak :mod:`repro.service.protocol` and share the same
semantics:

* ``submit`` sends one ingest batch and blocks until it is acked.  A
  backpressure ack (``accepted: 0`` + ``retry_after``) is retried after
  the server's hint — the SDK never drops a packet — and the retry count
  is reported on the returned :class:`SubmitResult`.
* A lost connection triggers reconnection with jittered exponential
  backoff (:class:`BackoffPolicy`); the in-flight batch is resent after
  reconnect.  Ingest is idempotent at the diagnosis level only if the
  batch was not processed, so the SDK resends only batches whose ack was
  never received — the standard at-least-once tradeoff, documented here
  rather than hidden.
* ``events`` subscribes to a deployment's incident stream and iterates
  the event objects as they arrive.

Packets can be ``(node_id, epoch, generated_at, values)`` tuples,
:class:`~repro.traces.records.SnapshotRow` instances, or pre-built row
objects (:func:`repro.traces.io.row_obj`) — anything a trace yields.
"""

from __future__ import annotations

import asyncio
import json
import random
import socket
import time
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional

import numpy as np

from repro.service import protocol
from repro.traces.records import SnapshotRow


@dataclass
class BackoffPolicy:
    """Jittered exponential backoff for reconnects.

    Delay before attempt ``n`` (0-based) is
    ``min(base * factor**n, max_delay)`` scaled by a uniform jitter in
    ``[1 - jitter, 1 + jitter]`` — the jitter de-synchronizes a fleet of
    clients reconnecting after a sink restart.
    """

    base: float = 0.05
    factor: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5
    max_attempts: int = 8

    def delay(self, attempt: int, rng: random.Random) -> float:
        raw = min(self.base * (self.factor ** attempt), self.max_delay)
        return raw * rng.uniform(1.0 - self.jitter, 1.0 + self.jitter)


@dataclass
class SubmitResult:
    """Outcome of one (possibly retried) ingest submission."""

    accepted: int
    queued: int  #: server-side shard queue depth after the ack
    backpressure_retries: int = 0
    reconnects: int = 0


class ServiceUnavailable(ConnectionError):
    """Raised when reconnection attempts are exhausted."""


def _packet_obj(packet) -> dict:
    """Normalize any accepted packet shape into the wire row object."""
    if isinstance(packet, dict):
        return packet
    if isinstance(packet, SnapshotRow):
        values = packet.values
        return {
            "node_id": int(packet.node_id),
            "epoch": int(packet.epoch),
            "generated_at": float(packet.generated_at),
            "received_at": float(packet.received_at),
            "values": values.tolist() if isinstance(values, np.ndarray) else list(values),
        }
    node_id, epoch, generated_at, values = packet
    return {
        "node_id": int(node_id),
        "epoch": int(epoch),
        "generated_at": float(generated_at),
        "values": values.tolist() if isinstance(values, np.ndarray) else list(values),
    }


class ServiceClient:
    """Blocking client (one TCP connection, request/ack in lockstep).

    Args:
        host, port: The sink's TCP listener.
        timeout: Socket timeout for connects and acks.
        backoff: Reconnect policy.
        rng: Jitter source (inject a seeded ``random.Random`` in tests).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7433,
        timeout: float = 30.0,
        backoff: Optional[BackoffPolicy] = None,
        rng: Optional[random.Random] = None,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.backoff = backoff or BackoffPolicy()
        self.rng = rng or random.Random()
        self._sock: Optional[socket.socket] = None
        self._file = None
        self._seq = 0
        self.hello: Optional[dict] = None  #: the server's greeting

    # -- connection management -----------------------------------------

    def connect(self) -> None:
        """Connect (or reconnect) and read the server hello."""
        self.close()
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        self._file = sock.makefile("rwb")
        greeting = self._read_message()
        if greeting.get("type") != "hello":
            raise ConnectionError(f"expected hello, got {greeting!r}")
        self.hello = greeting

    def _ensure_connected(self) -> int:
        """Connect if needed, with backoff; returns reconnect attempts used."""
        if self._file is not None:
            return 0
        attempts = 0
        while True:
            try:
                self.connect()
                return attempts
            except (ConnectionError, OSError) as exc:
                if attempts >= self.backoff.max_attempts:
                    raise ServiceUnavailable(
                        f"{self.host}:{self.port} unreachable after "
                        f"{attempts} retries: {exc}"
                    ) from exc
                time.sleep(self.backoff.delay(attempts, self.rng))
                attempts += 1

    def clone(self) -> "ServiceClient":
        """A fresh, unconnected client with this one's endpoint/policy.

        The multi-connection loadgen fanout opens one connection per
        deployment this way; the clone gets its own jitter source so
        sibling connections don't back off in lockstep.
        """
        return ServiceClient(
            host=self.host,
            port=self.port,
            timeout=self.timeout,
            backoff=self.backoff,
        )

    def close(self) -> None:
        for closer in (self._file, self._sock):
            if closer is not None:
                try:
                    closer.close()
                except OSError:
                    pass
        self._file = None
        self._sock = None

    def __enter__(self) -> "ServiceClient":
        self._ensure_connected()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- wire helpers ---------------------------------------------------

    def _read_message(self) -> dict:
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    def _roundtrip(self, message: dict) -> dict:
        """Send one message and read its reply, reconnecting on failure."""
        reconnects = 0
        while True:
            reconnects += self._ensure_connected()
            try:
                self._file.write(protocol.encode(message))
                self._file.flush()
                reply = self._read_message()
                reply["_reconnects"] = reconnects
                return reply
            except (ConnectionError, OSError, socket.timeout):
                self.close()
                reconnects += 1
                if reconnects > self.backoff.max_attempts:
                    raise ServiceUnavailable(
                        f"lost {self.host}:{self.port} and could not "
                        f"recover within {self.backoff.max_attempts} attempts"
                    )
                time.sleep(self.backoff.delay(reconnects - 1, self.rng))

    # -- public API -----------------------------------------------------

    def submit(self, deployment: str, packets: Iterable) -> SubmitResult:
        """Submit one batch; block until accepted (retrying backpressure)."""
        objs = [_packet_obj(p) for p in packets]
        if not objs:
            return SubmitResult(accepted=0, queued=0)
        retries = 0
        reconnects = 0
        while True:
            self._seq += 1
            reply = self._roundtrip(protocol.ingest(deployment, objs, self._seq))
            reconnects += reply.pop("_reconnects", 0)
            if reply.get("type") == "error":
                raise protocol.ProtocolError(
                    reply.get("code", "bad_request"),
                    reply.get("message", "rejected"),
                    reply.get("seq"),
                )
            if reply.get("type") != "ack":
                raise ConnectionError(f"expected ack, got {reply!r}")
            if reply["accepted"]:
                return SubmitResult(
                    accepted=reply["accepted"],
                    queued=reply["queued"],
                    backpressure_retries=retries,
                    reconnects=reconnects,
                )
            retries += 1
            time.sleep(float(reply.get("retry_after", 0.05)))

    def events(
        self,
        deployment: str,
        max_events: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> Iterator[dict]:
        """Subscribe and yield incident-event objects as they arrive.

        Runs on this client's connection — don't interleave ``submit``
        calls from another thread; use a second client for ingest.
        Stops after ``max_events`` events, on ``timeout`` seconds of
        silence, or when the server closes (its drain flushes final
        close events first).
        """
        self._ensure_connected()
        self._seq += 1
        reply = self._roundtrip(protocol.subscribe(deployment, self._seq))
        reply.pop("_reconnects", None)
        if reply.get("type") != "subscribed":
            raise ConnectionError(f"expected subscribed, got {reply!r}")
        if timeout is not None:
            self._sock.settimeout(timeout)
        seen = 0
        while max_events is None or seen < max_events:
            try:
                message = self._read_message()
            except (ConnectionError, socket.timeout, OSError):
                return
            if message.get("type") != "event":
                continue
            yield message["event"]
            seen += 1

    def metrics(self, http_port: int) -> dict:
        """Convenience ``GET /metrics`` against the operator port."""
        return http_get_json(self.host, http_port, "/metrics")

    def model(self, http_port: int) -> dict:
        """Convenience ``GET /model`` (serving version + lifecycle state)."""
        return http_get_json(self.host, http_port, "/model")

    def rotate_model(self, http_port: int, path: str) -> dict:
        """Rotate the sink to the saved model at ``path`` (server host)."""
        return http_post_json(self.host, http_port, "/model", {"path": path})


def _http_exchange(
    host: str, port: int, request: bytes, timeout: float
) -> tuple:
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(request)
        chunks = []
        while True:
            data = sock.recv(65536)
            if not data:
                break
            chunks.append(data)
    payload = b"".join(chunks)
    head, _, body = payload.partition(b"\r\n\r\n")
    status = head.split(b" ", 2)[1].decode("latin-1")
    return status, body


def http_get_json(host: str, port: int, path: str, timeout: float = 10.0) -> dict:
    """Tiny dependency-free HTTP GET → parsed JSON body."""
    request = (
        f"GET {path} HTTP/1.1\r\nHost: {host}\r\nConnection: close\r\n\r\n"
    )
    status, body = _http_exchange(host, port, request.encode("latin-1"), timeout)
    if status != "200":
        raise ConnectionError(f"GET {path} -> HTTP {status}")
    return json.loads(body)


def http_post_json(
    host: str, port: int, path: str, body: dict, timeout: float = 120.0
) -> dict:
    """Dependency-free HTTP POST of a JSON body → parsed JSON reply.

    Raises :class:`ConnectionError` on any non-200 status, with the
    server's error message when it sent one.  The generous default
    timeout covers a forced refit, which runs a full NMF absorb before
    replying.
    """
    payload = json.dumps(body).encode("utf-8")
    request = (
        f"POST {path} HTTP/1.1\r\nHost: {host}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(payload)}\r\nConnection: close\r\n\r\n"
    ).encode("latin-1") + payload
    status, reply = _http_exchange(host, port, request, timeout)
    if status != "200":
        detail = ""
        try:
            detail = json.loads(reply).get("error", "")
        except ValueError:
            pass
        raise ConnectionError(
            f"POST {path} -> HTTP {status}" + (f": {detail}" if detail else "")
        )
    return json.loads(reply)


# --------------------------------------------------------------------------
# asyncio client
# --------------------------------------------------------------------------


@dataclass
class AsyncServiceClient:
    """Asyncio twin of :class:`ServiceClient` (submit + events).

    Use as an async context manager::

        async with AsyncServiceClient(port=port) as client:
            await client.submit("city-a", packets)
    """

    host: str = "127.0.0.1"
    port: int = 7433
    backoff: BackoffPolicy = field(default_factory=BackoffPolicy)
    rng: random.Random = field(default_factory=random.Random)
    _reader: Optional[asyncio.StreamReader] = field(default=None, repr=False)
    _writer: Optional[asyncio.StreamWriter] = field(default=None, repr=False)
    _seq: int = field(default=0, repr=False)
    hello: Optional[dict] = None

    async def connect(self) -> None:
        await self.aclose()
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        greeting = await self._read_message()
        if greeting.get("type") != "hello":
            raise ConnectionError(f"expected hello, got {greeting!r}")
        self.hello = greeting

    async def _ensure_connected(self) -> None:
        if self._writer is not None:
            return
        for attempt in range(self.backoff.max_attempts + 1):
            try:
                await self.connect()
                return
            except (ConnectionError, OSError) as exc:
                if attempt >= self.backoff.max_attempts:
                    raise ServiceUnavailable(
                        f"{self.host}:{self.port} unreachable: {exc}"
                    ) from exc
                await asyncio.sleep(self.backoff.delay(attempt, self.rng))

    async def aclose(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        self._reader = None
        self._writer = None

    async def __aenter__(self) -> "AsyncServiceClient":
        await self._ensure_connected()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    async def _read_message(self) -> dict:
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    async def submit(self, deployment: str, packets: Iterable) -> SubmitResult:
        """Submit one batch; await the ack, honouring backpressure."""
        objs = [_packet_obj(p) for p in packets]
        if not objs:
            return SubmitResult(accepted=0, queued=0)
        retries = 0
        while True:
            await self._ensure_connected()
            self._seq += 1
            self._writer.write(
                protocol.encode(protocol.ingest(deployment, objs, self._seq))
            )
            await self._writer.drain()
            reply = await self._read_message()
            if reply.get("type") == "error":
                raise protocol.ProtocolError(
                    reply.get("code", "bad_request"),
                    reply.get("message", "rejected"),
                    reply.get("seq"),
                )
            if reply.get("type") != "ack":
                raise ConnectionError(f"expected ack, got {reply!r}")
            if reply["accepted"]:
                return SubmitResult(
                    accepted=reply["accepted"],
                    queued=reply["queued"],
                    backpressure_retries=retries,
                )
            retries += 1
            await asyncio.sleep(float(reply.get("retry_after", 0.05)))

    async def events(
        self, deployment: str, max_events: Optional[int] = None
    ):
        """Async iterator over a deployment's incident events."""
        await self._ensure_connected()
        self._seq += 1
        self._writer.write(
            protocol.encode(protocol.subscribe(deployment, self._seq))
        )
        await self._writer.drain()
        reply = await self._read_message()
        if reply.get("type") != "subscribed":
            raise ConnectionError(f"expected subscribed, got {reply!r}")
        seen = 0
        while max_events is None or seen < max_events:
            try:
                message = await self._read_message()
            except (ConnectionError, OSError):
                return
            if message.get("type") != "event":
                continue
            yield message["event"]
            seen += 1


def iter_trace_packets(frame) -> Iterator[tuple]:
    """Canonical-arrival-order packets of a trace (re-export for clients).

    Thin alias of :func:`repro.core.streaming.iter_packets` so SDK users
    don't need to import the core package to replay a trace faithfully.
    """
    from repro.core.streaming import iter_packets

    return iter_packets(frame)
