"""Operator metrics for the sink service: counters and latency quantiles.

Kept dependency-free and allocation-light: one fixed-size ring buffer per
shard for ingest latencies (p50/p99 over the most recent window — a
long-lived sink must not keep every sample), plus plain integer counters.
Everything here is called from the server's event loop, so observing a
sample is O(1) and quantiles are only computed when ``/metrics`` asks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np


class LatencyWindow:
    """Rolling window of latency samples with on-demand quantiles.

    Args:
        size: Samples retained (oldest overwritten first).
    """

    def __init__(self, size: int = 4096):
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        self._buf = np.zeros(size, dtype=float)
        self._next = 0
        self.count = 0  #: lifetime samples observed

    def observe(self, seconds: float) -> None:
        """Record one sample (O(1))."""
        self._buf[self._next] = seconds
        self._next = (self._next + 1) % len(self._buf)
        self.count += 1

    def _window(self) -> np.ndarray:
        n = min(self.count, len(self._buf))
        return self._buf[:n]

    def quantile(self, q: float) -> Optional[float]:
        """Latency quantile over the retained window (None when empty)."""
        window = self._window()
        if window.size == 0:
            return None
        return float(np.quantile(window, q))

    def snapshot(self) -> dict:
        """The ``/metrics`` view: count, p50/p99/max over the window."""
        window = self._window()
        if window.size == 0:
            return {"count": 0, "p50_ms": None, "p99_ms": None, "max_ms": None}
        p50, p99 = np.quantile(window, [0.5, 0.99])
        return {
            "count": self.count,
            "p50_ms": round(float(p50) * 1000.0, 3),
            "p99_ms": round(float(p99) * 1000.0, 3),
            "max_ms": round(float(window.max()) * 1000.0, 3),
        }


@dataclass
class ShardCounters:
    """Per-deployment ingest accounting (the session tracks the rest)."""

    batches_accepted: int = 0
    batches_rejected: int = 0  #: backpressure acks sent (never drops)
    packets_accepted: int = 0
    events_emitted: int = 0
    latency: LatencyWindow = field(default_factory=LatencyWindow)

    def snapshot(self) -> Dict[str, object]:
        return {
            "batches_accepted": self.batches_accepted,
            "batches_rejected": self.batches_rejected,
            "packets_accepted": self.packets_accepted,
            "events_emitted": self.events_emitted,
            "ingest_latency": self.latency.snapshot(),
        }
