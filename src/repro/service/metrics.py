"""Operator metrics for the sink service: counters and latency quantiles.

Kept dependency-free and allocation-light: one fixed-size ring buffer per
shard for ingest latencies (p50/p99 over the most recent window — a
long-lived sink must not keep every sample), plus registry-backed
counters from :mod:`repro.obs`.  Everything here is called from the
server's event loop, so observing a sample is O(1) and quantiles are only
computed when ``/metrics`` asks.

The ``/metrics`` JSON document keeps its original shape (ints plus the
``ingest_latency`` window quantiles); the same counters are *also* what
``/metrics?format=prometheus`` renders, because they live in the
service's private :class:`~repro.obs.MetricsRegistry` alongside the
streaming sessions' metrics.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional

import numpy as np

from repro.obs import LATENCY_BUCKETS, MetricsRegistry

#: Keys of :meth:`StreamingDiagnosisSession.counters` — the session-side
#: half of a shard snapshot.  The cluster backend seeds these to zero for
#: a route whose worker has not acked a batch yet.
SESSION_COUNTER_KEYS = (
    "packets", "states", "exceptions",
    "incidents_open", "incidents_closed", "incidents_evicted",
)

#: Every integer key summed into the ``/metrics`` ``totals`` section.
#: Shared by the inproc and pool backends so the JSON document keeps one
#: shape regardless of where the shards execute.
SHARD_TOTAL_KEYS = SESSION_COUNTER_KEYS + (
    "batches_accepted", "batches_rejected", "packets_accepted",
    "events_emitted", "queue_depth_packets",
)


def empty_session_counters() -> Dict[str, int]:
    return {key: 0 for key in SESSION_COUNTER_KEYS}


def sum_shard_totals(per_shard: Mapping[str, Mapping]) -> Dict[str, int]:
    """Roll per-shard snapshots up into the ``totals`` document."""
    return {
        key: sum(s[key] for s in per_shard.values())
        for key in SHARD_TOTAL_KEYS
    }


class LatencyWindow:
    """Rolling window of latency samples with on-demand quantiles.

    Args:
        size: Samples retained (oldest overwritten first).
    """

    def __init__(self, size: int = 4096):
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        self._buf = np.zeros(size, dtype=float)
        self._next = 0
        self.count = 0  #: lifetime samples observed

    def observe(self, seconds: float) -> None:
        """Record one sample (O(1))."""
        self._buf[self._next] = seconds
        self._next = (self._next + 1) % len(self._buf)
        self.count += 1

    def _window(self) -> np.ndarray:
        n = min(self.count, len(self._buf))
        return self._buf[:n]

    def quantile(self, q: float) -> Optional[float]:
        """Latency quantile over the retained window (None when empty)."""
        window = self._window()
        if window.size == 0:
            return None
        return float(np.quantile(window, q))

    def snapshot(self) -> dict:
        """The ``/metrics`` view: count, p50/p99/max over the window."""
        window = self._window()
        if window.size == 0:
            return {"count": 0, "p50_ms": None, "p99_ms": None, "max_ms": None}
        p50, p99 = np.quantile(window, [0.5, 0.99])
        return {
            "count": self.count,
            "p50_ms": round(float(p50) * 1000.0, 3),
            "p99_ms": round(float(p99) * 1000.0, 3),
            "max_ms": round(float(window.max()) * 1000.0, 3),
        }


class ShardCounters:
    """Per-deployment ingest accounting (the session tracks the rest).

    Counter state lives in a :class:`~repro.obs.MetricsRegistry` — the
    service passes its private registry with a ``{"deployment": name}``
    label set, so one Prometheus scrape covers every shard.  Constructed
    bare (no registry), a private enabled registry keeps the counters
    independent, preserving the original plain-int semantics.

    The legacy attribute names (``batches_accepted`` …) remain readable
    properties; mutation goes through the ``add_*`` methods.
    """

    def __init__(
        self,
        latency: Optional[LatencyWindow] = None,
        registry: Optional[MetricsRegistry] = None,
        labels: Optional[Mapping[str, str]] = None,
    ):
        reg = MetricsRegistry(enabled=True) if registry is None else registry
        self.registry = reg
        labels = dict(labels) if labels else None
        self.latency = LatencyWindow() if latency is None else latency
        self._batches_accepted = reg.counter(
            "repro_service_batches_accepted_total",
            "Ingest batches queued for diagnosis",
            labels,
        )
        #: backpressure acks sent (never drops)
        self._batches_rejected = reg.counter(
            "repro_service_batches_rejected_total",
            "Ingest batches backpressured (retry_after acks)",
            labels,
        )
        self._packets_accepted = reg.counter(
            "repro_service_packets_accepted_total",
            "Packets queued for diagnosis",
            labels,
        )
        self._events_emitted = reg.counter(
            "repro_service_events_emitted_total",
            "Incident events fanned out to subscribers",
            labels,
        )
        self._ingest_seconds = reg.histogram(
            "repro_service_ingest_seconds",
            "Enqueue-to-diagnosed latency of one ingest batch",
            labels,
            buckets=LATENCY_BUCKETS,
        )

    # -- mutation (event-loop side) ------------------------------------

    def add_batch_accepted(self, n_packets: int) -> None:
        self._batches_accepted.inc()
        self._packets_accepted.inc(n_packets)

    def add_batch_rejected(self) -> None:
        self._batches_rejected.inc()

    def add_events_emitted(self, n_events: int) -> None:
        self._events_emitted.inc(n_events)

    def observe_latency(self, seconds: float) -> None:
        self.latency.observe(seconds)
        self._ingest_seconds.observe(seconds)

    # -- legacy read surface -------------------------------------------

    @property
    def batches_accepted(self) -> int:
        return int(self._batches_accepted.value)

    @property
    def batches_rejected(self) -> int:
        return int(self._batches_rejected.value)

    @property
    def packets_accepted(self) -> int:
        return int(self._packets_accepted.value)

    @property
    def events_emitted(self) -> int:
        return int(self._events_emitted.value)

    def snapshot(self) -> Dict[str, object]:
        return {
            "batches_accepted": self.batches_accepted,
            "batches_rejected": self.batches_rejected,
            "packets_accepted": self.packets_accepted,
            "events_emitted": self.events_emitted,
            "ingest_latency": self.latency.snapshot(),
        }
