"""The sink service's wire protocol: newline-delimited JSON, version 1.

One JSON object per line, over a plain TCP stream.  Both directions use
the same framing; every message carries ``{"v": 1, "type": ...}``.

Client → server:

* ``ingest`` — ``{"v", "type", "seq", "deployment", "packets": [...]}``
  where each packet is the canonical snapshot-row object of the JSONL
  trace codec (:func:`repro.traces.io.row_obj`): ``node_id``, ``epoch``,
  ``generated_at``, optional ``received_at`` and a ``values`` list of
  exactly the 43 catalog metrics.  A batch is acked atomically: either
  every packet is queued or none is.
* ``subscribe`` — ``{"v", "type", "seq", "deployment"}``; the server
  answers ``subscribed`` and then streams ``event`` messages for that
  deployment over the same connection (several subscriptions can share a
  connection).

Server → client:

* ``hello`` — sent once on connect: server name, protocol version,
  metric-catalog width (a client talking to a sink with a different
  catalog should stop right there).
* ``ack`` — answers one ``ingest``: ``accepted`` (batch size, or 0),
  ``queued`` (the shard's queue depth in packets after the ack) and, on
  backpressure, ``retry_after`` seconds with ``reason: "queue_full"``.
  Backpressure is always explicit — the server never silently drops a
  packet it acked.
* ``subscribed`` — answers one ``subscribe``.
* ``event`` — one incident transition:
  ``{"deployment", "event": {kind, incident_id, time, hazard, node_ids,
  start, end, peak_strength, total_strength, n_observations}}`` — the
  exact object ``vn2 watch --output`` writes, full float precision, so
  served events can be compared bit for bit against a local replay.
* ``error`` — a rejected message: ``code`` (machine-readable, see
  :data:`ERROR_CODES`), ``message`` (human-readable), and the offending
  ``seq`` when the client supplied one.  Errors are per-message; the
  connection stays usable.

Validation is strict and total: unknown types, missing fields, wrong
value-vector width, non-finite floats and malformed deployment names are
all rejected with ``error`` before anything touches a queue.
"""

from __future__ import annotations

import json
import math
import re
from typing import List, Optional, Tuple

import numpy as np

from repro.metrics.catalog import NUM_METRICS

#: Protocol version spoken by this module.
PROTOCOL_VERSION = 1

#: Deployment names: DNS-label-ish, 1-64 chars.
DEPLOYMENT_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}$")

#: Hard cap on packets per ingest batch (keeps per-line memory bounded).
MAX_BATCH = 4096

#: Machine-readable ``error.code`` values the server can send.
ERROR_CODES = (
    "bad_json",          # line is not a JSON object
    "bad_version",       # missing/unsupported "v"
    "bad_type",          # unknown or missing "type"
    "bad_deployment",    # malformed deployment name
    "bad_packet",        # malformed packet in an ingest batch
    "bad_request",       # structurally invalid message
)


class ProtocolError(ValueError):
    """A message that fails validation; ``code`` names the reason."""

    def __init__(self, code: str, message: str, seq: Optional[int] = None):
        super().__init__(message)
        self.code = code
        self.seq = seq


def encode(message: dict) -> bytes:
    """Frame one message for the wire (compact JSON + newline)."""
    return (json.dumps(message, separators=(",", ":")) + "\n").encode("utf-8")


def decode(line) -> dict:
    """Parse one wire line into a message object (no semantic checks)."""
    if isinstance(line, (bytes, bytearray)):
        line = line.decode("utf-8", errors="replace")
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError("bad_json", f"not valid JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError("bad_json", "message must be a JSON object")
    return obj


def _check_envelope(msg: dict) -> Tuple[str, Optional[int]]:
    """Validate the ``v``/``type``/``seq`` envelope; return (type, seq)."""
    seq = msg.get("seq")
    if seq is not None and not isinstance(seq, int):
        raise ProtocolError("bad_request", "seq must be an integer")
    version = msg.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            "bad_version",
            f"unsupported protocol version {version!r} "
            f"(this sink speaks v{PROTOCOL_VERSION})",
            seq,
        )
    mtype = msg.get("type")
    if not isinstance(mtype, str):
        raise ProtocolError("bad_type", "missing message type", seq)
    return mtype, seq


def check_deployment(name, seq: Optional[int] = None) -> str:
    """Validate a deployment name; return it."""
    if not isinstance(name, str) or not DEPLOYMENT_RE.match(name):
        raise ProtocolError(
            "bad_deployment",
            f"deployment must match {DEPLOYMENT_RE.pattern}, got {name!r}",
            seq,
        )
    return name


def parse_packet(obj, seq: Optional[int] = None) -> Tuple[int, int, float, np.ndarray]:
    """Validate one wire packet into ``(node_id, epoch, generated_at, values)``.

    The tuple is exactly what
    :meth:`repro.core.streaming.StreamingDiagnosisSession.push_packet`
    takes.  Checks: integer ``node_id >= 0`` and ``epoch >= 0``, finite
    ``generated_at``, and a ``values`` list of exactly
    :data:`~repro.metrics.catalog.NUM_METRICS` finite numbers.
    """
    if not isinstance(obj, dict):
        raise ProtocolError("bad_packet", "packet must be a JSON object", seq)
    try:
        node_id = obj["node_id"]
        epoch = obj["epoch"]
        generated_at = obj["generated_at"]
        values = obj["values"]
    except KeyError as exc:
        raise ProtocolError("bad_packet", f"packet missing {exc}", seq) from exc
    if not isinstance(node_id, int) or isinstance(node_id, bool) or node_id < 0:
        raise ProtocolError(
            "bad_packet", f"node_id must be a non-negative integer, got {node_id!r}", seq
        )
    if not isinstance(epoch, int) or isinstance(epoch, bool) or epoch < 0:
        raise ProtocolError(
            "bad_packet", f"epoch must be a non-negative integer, got {epoch!r}", seq
        )
    if not isinstance(generated_at, (int, float)) or not math.isfinite(generated_at):
        raise ProtocolError(
            "bad_packet", f"generated_at must be a finite number, got {generated_at!r}", seq
        )
    if not isinstance(values, list) or len(values) != NUM_METRICS:
        got = len(values) if isinstance(values, list) else type(values).__name__
        raise ProtocolError(
            "bad_packet",
            f"values must list exactly {NUM_METRICS} catalog metrics, got {got}",
            seq,
        )
    array = np.asarray(values, dtype=float)
    if array.shape != (NUM_METRICS,) or not np.all(np.isfinite(array)):
        raise ProtocolError(
            "bad_packet", "values must be finite numbers", seq
        )
    return int(node_id), int(epoch), float(generated_at), array


def parse_ingest(msg: dict) -> Tuple[Optional[int], str, List[Tuple[int, int, float, np.ndarray]]]:
    """Validate a full ``ingest`` message → (seq, deployment, packets)."""
    _mtype, seq = _check_envelope(msg)
    deployment = check_deployment(msg.get("deployment"), seq)
    packets = msg.get("packets")
    if not isinstance(packets, list) or not packets:
        raise ProtocolError("bad_request", "packets must be a non-empty list", seq)
    if len(packets) > MAX_BATCH:
        raise ProtocolError(
            "bad_request", f"batch of {len(packets)} exceeds MAX_BATCH={MAX_BATCH}", seq
        )
    return seq, deployment, [parse_packet(p, seq) for p in packets]


# --------------------------------------------------------------------------
# message constructors (server side unless noted)
# --------------------------------------------------------------------------


def hello(server: str = "repro.service") -> dict:
    return {
        "v": PROTOCOL_VERSION,
        "type": "hello",
        "server": server,
        "n_metrics": NUM_METRICS,
    }


def ingest(deployment: str, packets: List[dict], seq: Optional[int] = None) -> dict:
    """(Client side.)  Build an ingest message from row objects."""
    msg = {"v": PROTOCOL_VERSION, "type": "ingest", "deployment": deployment,
           "packets": packets}
    if seq is not None:
        msg["seq"] = seq
    return msg


def subscribe(deployment: str, seq: Optional[int] = None) -> dict:
    """(Client side.)  Build a subscribe message."""
    msg = {"v": PROTOCOL_VERSION, "type": "subscribe", "deployment": deployment}
    if seq is not None:
        msg["seq"] = seq
    return msg


def ack(
    seq: Optional[int],
    accepted: int,
    queued: int,
    retry_after: Optional[float] = None,
) -> dict:
    msg = {"v": PROTOCOL_VERSION, "type": "ack", "seq": seq,
           "accepted": accepted, "queued": queued}
    if retry_after is not None:
        msg["retry_after"] = retry_after
        msg["reason"] = "queue_full"
    return msg


def subscribed(seq: Optional[int], deployment: str) -> dict:
    return {"v": PROTOCOL_VERSION, "type": "subscribed", "seq": seq,
            "deployment": deployment}


def error(code: str, message: str, seq: Optional[int] = None) -> dict:
    assert code in ERROR_CODES, code
    return {"v": PROTOCOL_VERSION, "type": "error", "seq": seq,
            "code": code, "message": message}


def incident_event_obj(event) -> dict:
    """One :class:`~repro.core.incidents.IncidentEvent` as a JSON object.

    The shared shape: ``vn2 watch --output`` lines, the service's
    ``event`` payloads and ``GET /incidents`` entries all use it, so the
    three surfaces stay comparable byte for byte.
    """
    incident = event.incident
    return {
        "kind": event.kind,
        "incident_id": event.incident_id,
        "time": event.time,
        **incident_obj(incident),
    }


def incident_obj(incident) -> dict:
    """One :class:`~repro.core.incidents.Incident` as a JSON object."""
    return {
        "hazard": incident.hazard,
        "node_ids": list(incident.node_ids),
        "start": incident.start,
        "end": incident.end,
        "peak_strength": incident.peak_strength,
        "total_strength": incident.total_strength,
        "n_observations": incident.n_observations,
    }


def event_message(deployment: str, event) -> dict:
    return {
        "v": PROTOCOL_VERSION,
        "type": "event",
        "deployment": deployment,
        "event": incident_event_obj(event),
    }


# --------------------------------------------------------------------------
# internal worker wire messages (cluster backend <-> shard workers)
# --------------------------------------------------------------------------
#
# The multi-process backend speaks a second, *internal* protocol over the
# worker pipes (:mod:`repro.runner.pool`).  These are pickled dicts, not
# NDJSON — numpy value vectors and registry dumps ride through unchanged —
# but they keep the same ``type``-tagged envelope discipline so both wire
# layers validate the same way.  Front door → worker types carry no
# prefix; worker → front door types are ``w_``-prefixed so a message's
# direction is readable in logs.

#: Front door → worker message types.
WORKER_DOWN_TYPES = (
    "assign",          # route a deployment's shard to this worker
    "ingest",          # one parsed packet batch for a deployment
    "drain",           # flush one shard (handoff): finish + report back
    "drain_all",       # graceful shutdown: finish every shard, then exit
    "metrics_query",   # request a registry dump + shard snapshots
    "incidents_query", # request the incidents document
    "model_update",    # rotate every session to a new fitted model
    "states_query",    # request retained exception states + drift scores
    "topology_query",  # request per-node summaries (dashboard topology)
)

#: Worker → front door message types.
WORKER_UP_TYPES = (
    "w_hello",      # first message after start: worker id + pid
    "w_heartbeat",  # periodic liveness + shard/packet counts
    "w_ack",        # one ingest batch fully diagnosed (+ emitted events)
    "w_drained",    # answer to drain: final events + session counters
    "w_metrics",    # answer to metrics_query
    "w_incidents",  # answer to incidents_query
    "w_model",      # answer to model_update: per-shard rotation boundaries
    "w_states",     # answer to states_query
    "w_topology",   # answer to topology_query
    "w_bye",        # answer to drain_all: final registry dump + spans
    "w_error",      # worker-side failure (shard kept alive if possible)
)


def check_worker_message(msg) -> str:
    """Validate a worker-pipe message envelope; return its type.

    Intentionally shallow — the pipe is a trusted in-process boundary, so
    this guards against version/shape drift between front door and
    worker, not against malicious input.
    """
    if not isinstance(msg, dict):
        raise ProtocolError("bad_request", "worker message must be a dict")
    if msg.get("v") != PROTOCOL_VERSION:
        raise ProtocolError(
            "bad_version",
            f"worker message version {msg.get('v')!r} != {PROTOCOL_VERSION}",
        )
    mtype = msg.get("type")
    if mtype not in WORKER_DOWN_TYPES and mtype not in WORKER_UP_TYPES:
        raise ProtocolError("bad_type", f"unknown worker message {mtype!r}")
    return mtype


def assign(deployment: str, worker: str) -> dict:
    return {"v": PROTOCOL_VERSION, "type": "assign",
            "deployment": deployment, "worker": worker}


def shard_ingest(deployment: str, batch_id: int, packets: list) -> dict:
    """``packets`` are parsed tuples from :func:`parse_packet` — the
    exact ``push_packet`` arguments, so the worker re-validates nothing."""
    return {"v": PROTOCOL_VERSION, "type": "ingest",
            "deployment": deployment, "batch_id": batch_id,
            "packets": packets}


def shard_drain(deployment: str) -> dict:
    return {"v": PROTOCOL_VERSION, "type": "drain", "deployment": deployment}


def drain_all() -> dict:
    return {"v": PROTOCOL_VERSION, "type": "drain_all"}


def metrics_query(req: int) -> dict:
    return {"v": PROTOCOL_VERSION, "type": "metrics_query", "req": req}


def incidents_query(req: int, deployment: Optional[str] = None) -> dict:
    return {"v": PROTOCOL_VERSION, "type": "incidents_query", "req": req,
            "deployment": deployment}


def model_update(req: int, tool, version: str) -> dict:
    """``tool`` is the fitted :class:`~repro.core.pipeline.VN2` itself —
    the pipe pickles it, and pipe FIFO order makes the rotation boundary
    deterministic per shard (strictly between two acked batches)."""
    return {"v": PROTOCOL_VERSION, "type": "model_update", "req": req,
            "tool": tool, "version": version}


def states_query(req: int) -> dict:
    return {"v": PROTOCOL_VERSION, "type": "states_query", "req": req}


def topology_query(req: int, deployment: Optional[str] = None) -> dict:
    return {"v": PROTOCOL_VERSION, "type": "topology_query", "req": req,
            "deployment": deployment}


def worker_hello(worker: str, pid: int) -> dict:
    return {"v": PROTOCOL_VERSION, "type": "w_hello",
            "worker": worker, "pid": pid}


def worker_heartbeat(
    worker: str, pid: int, ts: float, shards: int, packets: int
) -> dict:
    return {"v": PROTOCOL_VERSION, "type": "w_heartbeat", "worker": worker,
            "pid": pid, "ts": ts, "shards": shards, "packets": packets}


def worker_ack(
    deployment: str, batch_id: int, accepted: int,
    events: list, counters: dict,
) -> dict:
    """``events`` are :func:`incident_event_obj` dicts in emission order;
    ``counters`` is the shard session's live counter dict."""
    return {"v": PROTOCOL_VERSION, "type": "w_ack",
            "deployment": deployment, "batch_id": batch_id,
            "accepted": accepted, "events": events, "counters": counters}


def worker_drained(deployment: str, events: list, counters: dict) -> dict:
    return {"v": PROTOCOL_VERSION, "type": "w_drained",
            "deployment": deployment, "events": events, "counters": counters}


def worker_metrics(
    req: int, worker: str, dump: dict, shards: list
) -> dict:
    """``dump`` is a :meth:`repro.obs.MetricsRegistry.dump`; ``shards``
    lists per-deployment snapshot dicts (pending is front-door-side)."""
    return {"v": PROTOCOL_VERSION, "type": "w_metrics", "req": req,
            "worker": worker, "dump": dump, "shards": shards}


def worker_incidents(req: int, worker: str, incidents: dict) -> dict:
    return {"v": PROTOCOL_VERSION, "type": "w_incidents", "req": req,
            "worker": worker, "incidents": incidents}


def worker_model(req: int, worker: str, version: str, boundaries: dict) -> dict:
    """``boundaries`` maps deployment → ``{"packets", "states"}`` — each
    session's rotation point as returned by
    :meth:`~repro.core.streaming.StreamingDiagnosisSession.set_model`."""
    return {"v": PROTOCOL_VERSION, "type": "w_model", "req": req,
            "worker": worker, "version": version, "boundaries": boundaries}


def worker_states(req: int, worker: str, states: dict, drift: dict) -> dict:
    """``states`` maps deployment → pickled
    :class:`~repro.core.states.StateMatrix` of drained exception states;
    ``drift`` maps deployment → the session's drift score."""
    return {"v": PROTOCOL_VERSION, "type": "w_states", "req": req,
            "worker": worker, "states": states, "drift": drift}


def worker_topology(req: int, worker: str, nodes: dict) -> dict:
    """``nodes`` maps deployment → list of per-node summary dicts from
    :meth:`~repro.core.streaming.StreamingDiagnosisSession.node_summaries`."""
    return {"v": PROTOCOL_VERSION, "type": "w_topology", "req": req,
            "worker": worker, "nodes": nodes}


def worker_bye(worker: str, dump: dict, spans: Optional[list] = None) -> dict:
    return {"v": PROTOCOL_VERSION, "type": "w_bye", "worker": worker,
            "dump": dump, "spans": spans or []}


def worker_error(worker: str, message: str, deployment: Optional[str] = None) -> dict:
    return {"v": PROTOCOL_VERSION, "type": "w_error", "worker": worker,
            "message": message, "deployment": deployment}
