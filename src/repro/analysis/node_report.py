"""Per-node health reports over a trace.

The complement to per-state diagnosis: for every node, summarize how
reliably it reported (continuity against the expected epoch schedule),
how often it looked exceptional, and which root causes dominated its
exceptional states.  Sympathy's classic "insufficient data means failure"
heuristic appears here as the *silent window* list — gaps in a node's
reporting longer than a few periods, which state-delta diagnosis is
structurally blind to.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import List, Tuple, Union

import numpy as np

from repro.analysis.reporting import format_table
from repro.core.inference import sparsify_inferred
from repro.core.pipeline import VN2
from repro.core.states import build_states
from repro.traces.frame import TraceFrame, as_frame
from repro.traces.records import Trace

TraceLike = Union[Trace, TraceFrame]


@dataclass
class NodeHealth:
    """Health summary of one node."""

    node_id: int
    snapshots: int
    expected_epochs: int
    continuity: float  # received complete snapshots / expected epochs
    exception_fraction: float  # of the node's states
    top_causes: List[Tuple[str, int]]  # hazard -> exceptional-state count
    silent_windows: List[Tuple[float, float]]

    @property
    def healthy(self) -> bool:
        """A rough green/red verdict."""
        return (
            self.continuity >= 0.8
            and self.exception_fraction <= 0.2
            and not self.silent_windows
        )


@dataclass
class NodeReport:
    """Health summaries for every node of a trace."""

    nodes: List[NodeHealth]
    report_period_s: float

    def worst(self, k: int = 5) -> List[NodeHealth]:
        """The k least healthy nodes (by continuity, then exceptions)."""
        return sorted(
            self.nodes,
            key=lambda n: (n.continuity, -n.exception_fraction),
        )[:k]

    def to_text(self, limit: int = 10) -> str:
        rows = []
        for health in self.worst(limit):
            causes = ", ".join(
                f"{hazard} x{count}" for hazard, count in health.top_causes[:2]
            )
            rows.append(
                (
                    health.node_id,
                    f"{100 * health.continuity:.0f}%",
                    f"{100 * health.exception_fraction:.0f}%",
                    len(health.silent_windows),
                    causes or "-",
                    "ok" if health.healthy else "ATTENTION",
                )
            )
        return format_table(
            ["node", "continuity", "exceptional", "silences", "top causes", ""],
            rows,
        )


def node_health_report(
    tool: VN2,
    trace: TraceLike,
    exception_threshold: float = 0.01,
    min_strength: float = 0.2,
    silence_periods: float = 4.0,
) -> NodeReport:
    """Build per-node health summaries.

    Args:
        tool: Fitted VN2 model.
        trace: The trace to summarize.
        exception_threshold: ε/max(ε) ratio above which a state counts as
            exceptional for the node.
        min_strength: Sparsified NNLS strength above which a cause is
            attributed to an exceptional state.
        silence_periods: A reporting gap longer than this many periods
            counts as a silent window.
    """
    tool._require_fitted()
    frame = as_frame(trace)
    period = float(frame.metadata.get("report_period_s", 600.0))
    start, end = frame.time_span()
    span = max(end - start, period)
    expected = max(1, int(span / period))

    states = build_states(frame)

    nodes: List[NodeHealth] = []
    for node_id, rows in frame.node_slices():
        node_states = states.for_node(node_id)

        exception_flags = np.zeros(0, dtype=bool)
        cause_counter: Counter = Counter()
        if len(node_states) > 0:
            try:
                exception_flags = (
                    tool._exception_scores(node_states.values)
                    >= exception_threshold
                )
            except RuntimeError:
                exception_flags = np.zeros(len(node_states), dtype=bool)
            exceptional_idx = np.flatnonzero(exception_flags)
            if exceptional_idx.size:
                weights = sparsify_inferred(
                    tool.correlation_strengths(
                        node_states.select(exceptional_idx)
                    )
                )
                for j in np.nonzero(weights >= min_strength)[1]:
                    label = tool.labels[int(j)]
                    if label.is_baseline or label.primary_hazard is None:
                        continue
                    cause_counter[label.primary_hazard] += 1

        silent: List[Tuple[float, float]] = []
        times = frame.generated_at[rows]
        gap_limit = silence_periods * period
        for g in np.flatnonzero(np.diff(times) > gap_limit):
            silent.append((float(times[g]), float(times[g + 1])))
        if times.size and end - times[-1] > gap_limit:
            silent.append((float(times[-1]), end))

        nodes.append(
            NodeHealth(
                node_id=node_id,
                snapshots=int(times.size),
                expected_epochs=expected,
                continuity=min(1.0, times.size / expected),
                exception_fraction=(
                    float(exception_flags.mean()) if exception_flags.size else 0.0
                ),
                top_causes=cause_counter.most_common(),
                silent_windows=silent,
            )
        )
    return NodeReport(nodes=nodes, report_period_s=period)
