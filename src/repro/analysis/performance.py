"""Protocol performance estimation from diagnosed root causes.

The paper's future work asks for "protocol performance estimation": given
which root causes are active, estimate the network-performance impact.
This module learns, per root cause, a **PRR cost** — how much sink packet
reception the network loses per unit of that cause's correlation strength:

1. time is split into bins; each bin gets the sink PRR (from arrival
   accounting) and the mean sparsified NNLS strength of every Ψ row over
   the states observed in that bin;
2. the bin's *PRR deficit* (healthy baseline minus measured PRR) is
   regressed on the strengths with non-negative least squares, giving a
   per-cause cost vector;
3. :meth:`PerformanceModel.predict_prr` then estimates the PRR that a
   hypothetical strength profile would produce — e.g. "if this loop
   incident doubles, expect another 8 points of PRR loss".

Costs are non-negative by construction (a root cause never *improves*
PRR), which keeps the attribution additively interpretable, in the same
spirit as the NMF itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np
from scipy.optimize import nnls

from repro.analysis.reporting import format_table
from repro.core.inference import sparsify_inferred
from repro.core.pipeline import VN2
from repro.core.states import build_states
from repro.traces.prr import prr_series
from repro.traces.records import Trace


@dataclass
class CauseImpact:
    """One root cause's estimated PRR cost."""

    cause_index: int
    hazard: Optional[str]
    cost: float  # PRR deficit per unit strength
    mean_strength: float  # over the analysed bins


@dataclass
class PerformanceModel:
    """Fitted per-cause PRR cost model.

    Attributes:
        impacts: Per-cause costs, strongest contribution first.
        baseline_prr: The healthy PRR level deficits are measured against.
        r_squared: Fraction of deficit variance the model explains.
        bin_seconds: Bin width used to fit.
    """

    impacts: List[CauseImpact]
    baseline_prr: float
    r_squared: float
    bin_seconds: float
    _costs: np.ndarray = field(repr=False, default=None)

    def predict_deficit(self, strengths: np.ndarray) -> float:
        """Estimated PRR deficit for a strength profile (length r)."""
        strengths = np.asarray(strengths, dtype=float).ravel()
        return float(np.clip(strengths @ self._costs, 0.0, 1.0))

    def predict_prr(self, strengths: np.ndarray) -> float:
        """Estimated sink PRR under a strength profile."""
        return float(
            np.clip(self.baseline_prr - self.predict_deficit(strengths), 0.0, 1.0)
        )

    def to_text(self, top_k: int = 8) -> str:
        rows = [
            (
                f"Ψ{imp.cause_index + 1}",
                imp.hazard or "-",
                f"{imp.cost:.3f}",
                f"{imp.mean_strength:.3f}",
                f"{imp.cost * imp.mean_strength:.4f}",
            )
            for imp in self.impacts[:top_k]
        ]
        table = format_table(
            ["cause", "hazard", "PRR cost/unit", "mean strength", "mean impact"],
            rows,
        )
        return (
            f"{table}\nbaseline PRR={self.baseline_prr:.3f}  "
            f"R^2={self.r_squared:.2f}  bins={self.bin_seconds:.0f}s"
        )


def estimate_cause_costs(
    tool: VN2,
    trace: Trace,
    bin_seconds: float = 600.0,
    baseline_quantile: float = 0.9,
    retention: float = 0.9,
) -> PerformanceModel:
    """Fit per-root-cause PRR costs on a trace.

    Args:
        tool: Fitted VN2 model (defines the causes).
        trace: Trace with arrival accounting (for PRR) and snapshots (for
            states).
        bin_seconds: Time-bin width.
        baseline_quantile: The PRR quantile treated as "healthy".
        retention: Row-wise sparsification applied to inferred weights.

    Raises:
        ValueError: If the trace yields fewer than 4 usable bins.
    """
    tool._require_fitted()
    centers, prr = prr_series(trace, bin_seconds=bin_seconds)
    if len(centers) < 4:
        raise ValueError(
            f"need at least 4 PRR bins, got {len(centers)}; "
            "use a longer trace or smaller bins"
        )
    states = build_states(trace)
    if len(states) == 0:
        raise ValueError("trace has no states")
    weights = sparsify_inferred(
        tool.correlation_strengths(states), retention=retention
    )
    rank = weights.shape[1]

    # mean strength per bin
    edges = np.concatenate(
        [centers - bin_seconds / 2.0, [centers[-1] + bin_seconds / 2.0]]
    )
    times = states.times_to
    strengths = np.zeros((len(centers), rank))
    counts = np.zeros(len(centers))
    bin_index = np.searchsorted(edges, times, side="right") - 1
    for i, b in enumerate(bin_index):
        if 0 <= b < len(centers):
            strengths[b] += weights[i]
            counts[b] += 1
    usable = counts > 0
    strengths[usable] /= counts[usable, None]

    baseline = float(np.quantile(prr[usable], baseline_quantile))
    deficit = np.clip(baseline - prr, 0.0, 1.0)

    costs, _residual = nnls(strengths[usable], deficit[usable])
    predicted = strengths[usable] @ costs
    actual = deficit[usable]
    ss_res = float(((actual - predicted) ** 2).sum())
    ss_tot = float(((actual - actual.mean()) ** 2).sum())
    r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 0.0

    mean_strengths = strengths[usable].mean(axis=0)
    impacts = [
        CauseImpact(
            cause_index=j,
            hazard=tool.labels[j].primary_hazard if not tool.labels[j].is_baseline else "(baseline)",
            cost=float(costs[j]),
            mean_strength=float(mean_strengths[j]),
        )
        for j in range(rank)
    ]
    impacts.sort(key=lambda imp: -(imp.cost * imp.mean_strength))
    return PerformanceModel(
        impacts=impacts,
        baseline_prr=baseline,
        r_squared=r_squared,
        bin_seconds=bin_seconds,
        _costs=costs,
    )
