"""Experiment harnesses: one per table/figure of the paper, plus ablations.

Each harness returns a small result dataclass and renders the same rows or
series the paper's artifact shows (ASCII, no plotting dependency).  The
benchmark suite under ``benchmarks/`` drives these and asserts the shape
properties DESIGN.md lists.
"""

from repro.analysis.reporting import format_table, format_series, sparkline
from repro.analysis.table1 import exp_table1, Table1Result
from repro.analysis.figures34 import (
    exp_fig3a,
    exp_fig3b,
    exp_fig3c,
    exp_fig4,
    Fig3aResult,
    Fig3bResult,
    Fig3cResult,
    Fig4Result,
)
from repro.analysis.testbed_experiments import (
    exp_fig5b,
    exp_fig5cf,
    exp_fig5g,
    exp_fig5hi,
    Fig5bResult,
    Fig5cfResult,
    Fig5gResult,
    Fig5hiResult,
)
from repro.analysis.citysee_experiments import (
    exp_fig6a,
    exp_fig6b,
    exp_fig6c,
    Fig6aResult,
    Fig6bResult,
    Fig6cResult,
)
from repro.analysis.ablations import (
    exp_ablation_filter,
    exp_ablation_sparsify,
    FilterAblationResult,
    SparsifyAblationResult,
)
from repro.analysis.baseline_comparison import exp_baselines, BaselineComparisonResult
from repro.analysis.performance import (
    CauseImpact,
    PerformanceModel,
    estimate_cause_costs,
)
from repro.analysis.evaluation import (
    EvaluationResult,
    KindScore,
    evaluate_diagnoses,
    threshold_sweep,
)
from repro.analysis.node_report import NodeHealth, NodeReport, node_health_report
from repro.analysis.scorecard import (
    FAMILY_HAZARDS,
    ChaosScorecard,
    ChaosSuiteResult,
    FamilyScore,
    run_chaos_suite,
    score_frame,
    score_scenario_frame,
)

__all__ = [
    "format_table",
    "format_series",
    "sparkline",
    "exp_table1",
    "Table1Result",
    "exp_fig3a",
    "exp_fig3b",
    "exp_fig3c",
    "exp_fig4",
    "Fig3aResult",
    "Fig3bResult",
    "Fig3cResult",
    "Fig4Result",
    "exp_fig5b",
    "exp_fig5cf",
    "exp_fig5g",
    "exp_fig5hi",
    "Fig5bResult",
    "Fig5cfResult",
    "Fig5gResult",
    "Fig5hiResult",
    "exp_fig6a",
    "exp_fig6b",
    "exp_fig6c",
    "Fig6aResult",
    "Fig6bResult",
    "Fig6cResult",
    "exp_ablation_filter",
    "exp_ablation_sparsify",
    "FilterAblationResult",
    "SparsifyAblationResult",
    "exp_baselines",
    "BaselineComparisonResult",
    "CauseImpact",
    "PerformanceModel",
    "estimate_cause_costs",
    "EvaluationResult",
    "KindScore",
    "evaluate_diagnoses",
    "threshold_sweep",
    "NodeHealth",
    "NodeReport",
    "node_health_report",
    "FAMILY_HAZARDS",
    "ChaosScorecard",
    "ChaosSuiteResult",
    "FamilyScore",
    "run_chaos_suite",
    "score_frame",
    "score_scenario_frame",
]
