"""ASCII rendering of experiment outputs (tables, series, sparklines).

The harnesses print exactly the rows/series the paper's tables and figures
report; these helpers keep that output readable without any plotting
dependency.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

_SPARK_CHARS = " ▁▂▃▄▅▆▇█"


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Fixed-width table with a header rule."""
    rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(row: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
    lines = [fmt(list(headers)), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """A unicode sparkline of a numeric series."""
    values = np.asarray(list(values), dtype=float)
    if values.size == 0:
        return ""
    lo, hi = float(values.min()), float(values.max())
    span = hi - lo
    if span <= 0:
        return _SPARK_CHARS[4] * values.size
    idx = ((values - lo) / span * (len(_SPARK_CHARS) - 1)).round().astype(int)
    return "".join(_SPARK_CHARS[i] for i in idx)


def format_series(
    name: str, xs: Sequence[float], ys: Sequence[float], max_points: int = 24
) -> str:
    """A named series as a sparkline plus endpoint values."""
    xs = list(xs)
    ys = list(ys)
    if not ys:
        return f"{name}: (empty)"
    stride = max(1, len(ys) // max_points)
    sampled = ys[::stride]
    return (
        f"{name}: {sparkline(sampled)}  "
        f"[{min(ys):.3g} .. {max(ys):.3g}] ({len(ys)} pts)"
    )
