"""Ablations of VN2's two design choices DESIGN.md calls out.

* **Exception filtering** (paper IV-B): does pre-filtering to exception
  states actually protect rare-fault representability from being drowned
  by normal states?
* **Sparsification retention** (Algorithm 2's 0.9): how do accuracy and
  explanation sparsity trade off as the retained mass varies?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.analysis.reporting import format_table
from repro.core.exceptions import detect_exceptions
from repro.core.nmf import frobenius_loss, nmf
from repro.core.normalization import MinMaxNormalizer
from repro.core.pipeline import VN2, VN2Config
from repro.core.sparsify import sparsify_weights
from repro.core.states import build_states
from repro.traces.citysee import CitySeeProfile
from repro.traces.records import Trace


# ----------------------------------------------------------------------
# exception-filter ablation
# ----------------------------------------------------------------------


@dataclass
class FilterVariantStats:
    """One arm of the filter ablation."""

    name: str
    n_training_states: int
    distinct_hazards: int  # non-baseline hazards among Ψ labels
    exception_reconstruction_error: float  # on the held-aside exceptions


@dataclass
class FilterAblationResult:
    """Filter on vs off, trained at the same rank on the same trace."""

    with_filter: FilterVariantStats
    without_filter: FilterVariantStats

    def to_text(self) -> str:
        rows = [
            (
                v.name,
                v.n_training_states,
                v.distinct_hazards,
                f"{v.exception_reconstruction_error:.3f}",
            )
            for v in (self.with_filter, self.without_filter)
        ]
        return format_table(
            ["variant", "train states", "distinct hazards", "exception recon err"],
            rows,
        )


def _variant_stats(name: str, tool: VN2, exception_values: np.ndarray) -> FilterVariantStats:
    hazards = {
        label.primary_hazard
        for label in tool.labels
        if not label.is_baseline and label.primary_hazard
    }
    normalized = tool.normalizer_.transform(exception_values)
    weights = tool.correlation_strengths(exception_values)
    error = frobenius_loss(normalized, weights, tool.psi) / max(
        float(np.linalg.norm(normalized)), 1e-12
    )
    n_train = (
        len(tool.exceptions_.states) if tool.exceptions_ is not None
        else len(tool.states_)
    )
    return FilterVariantStats(
        name=name,
        n_training_states=n_train,
        distinct_hazards=len(hazards),
        exception_reconstruction_error=error,
    )


def exp_ablation_filter(trace: Trace, rank: int = 15) -> FilterAblationResult:
    """Train with and without the ε filter; score on the exception states."""
    states = build_states(trace)
    exceptions = detect_exceptions(states)
    exception_values = exceptions.states.values

    tool_filtered = VN2(VN2Config(rank=rank, filter_exceptions=True)).fit_states(states)
    tool_unfiltered = VN2(VN2Config(rank=rank, filter_exceptions=False)).fit_states(states)
    return FilterAblationResult(
        with_filter=_variant_stats("filter on", tool_filtered, exception_values),
        without_filter=_variant_stats("filter off", tool_unfiltered, exception_values),
    )


# ----------------------------------------------------------------------
# sparsification-retention ablation
# ----------------------------------------------------------------------


@dataclass
class RetentionPoint:
    """Sweep measurements at one retention level."""

    retention: float
    kept_fraction: float
    accuracy: float  # ‖E − W̄Ψ‖
    mean_active_causes: float  # nonzero W̄ entries per exception


@dataclass
class SparsifyAblationResult:
    """Accuracy/sparsity trade-off over the retention sweep."""

    points: List[RetentionPoint]
    dense_accuracy: float

    def to_text(self) -> str:
        rows = [
            (
                f"{p.retention:.2f}",
                f"{100 * p.kept_fraction:.1f}%",
                f"{p.accuracy:.3f}",
                f"{p.mean_active_causes:.2f}",
            )
            for p in self.points
        ]
        table = format_table(
            ["retention", "entries kept", "accuracy", "causes/exception"], rows
        )
        return f"{table}\ndense accuracy = {self.dense_accuracy:.3f}"


def exp_ablation_sparsify(
    trace: Trace,
    rank: int = 15,
    retentions: Sequence[float] = (0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1.0),
) -> SparsifyAblationResult:
    """Sweep Algorithm 2's retained-mass target on a fixed factorization."""
    states = build_states(trace)
    exceptions = detect_exceptions(states)
    normalizer = MinMaxNormalizer.fit(exceptions.states.values, pad_fraction=0.05)
    E = normalizer.transform(exceptions.states.values)
    result = nmf(E, min(rank, min(E.shape)), init="nndsvd")
    points: List[RetentionPoint] = []
    for retention in retentions:
        sparse = sparsify_weights(result.W, retention=retention)
        active = (sparse.W_sparse > 0).sum(axis=1)
        points.append(
            RetentionPoint(
                retention=retention,
                kept_fraction=sparse.kept_fraction,
                accuracy=frobenius_loss(E, sparse.W_sparse, result.Psi),
                mean_active_causes=float(active.mean()),
            )
        )
    return SparsifyAblationResult(points=points, dense_accuracy=result.loss)


# ----------------------------------------------------------------------
# multi-seed ablation suite (runner-driven)
# ----------------------------------------------------------------------


@dataclass
class AblationSuiteResult:
    """Both ablations over a seed sweep, one trace per derived seed."""

    seeds: List[int]
    filter_results: List[FilterAblationResult]
    sparsify_results: List[SparsifyAblationResult]

    def mean_filter_gap(self) -> float:
        """Mean (filter-off − filter-on) exception reconstruction error."""
        gaps = [
            r.without_filter.exception_reconstruction_error
            - r.with_filter.exception_reconstruction_error
            for r in self.filter_results
        ]
        return float(np.mean(gaps)) if gaps else 0.0

    def to_text(self) -> str:
        blocks = []
        for seed, filt, spar in zip(
            self.seeds, self.filter_results, self.sparsify_results
        ):
            blocks.append(f"--- seed {seed} ---")
            blocks.append(filt.to_text())
            blocks.append(spar.to_text())
        blocks.append(
            f"mean filter gap (off - on) over {len(self.seeds)} seeds: "
            f"{self.mean_filter_gap():+.3f}"
        )
        return "\n".join(blocks)


def exp_ablation_suite(
    profile: Optional[CitySeeProfile] = None,
    rank: int = 15,
    n_seeds: int = 2,
    jobs: int = 1,
    use_cache: bool = True,
) -> AblationSuiteResult:
    """Run both ablations across a seed sweep of CitySee traces.

    The per-seed traces are independent simulator runs; the grid is
    submitted to the scenario runner, so ``jobs=n_seeds`` generates them
    concurrently with bit-identical results.
    """
    from repro.runner import citysee_seed_sweep, run_jobs

    profile = profile or CitySeeProfile.small()
    sweep = citysee_seed_sweep(profile, n_seeds, namespace="ablation")
    report = run_jobs(sweep, n_workers=jobs, use_cache=use_cache)
    frames = report.frames()
    return AblationSuiteResult(
        seeds=[job.profile.seed for job in sweep],
        filter_results=[exp_ablation_filter(f, rank=rank) for f in frames],
        sparsify_results=[exp_ablation_sparsify(f, rank=rank) for f in frames],
    )
