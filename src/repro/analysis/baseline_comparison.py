"""VN2 vs the baselines on a multi-cause episode (DESIGN.md's B1).

The paper's central criticism of evidence-based tools: they assume one
root cause per symptom, while real failures are combinations.  This
harness constructs a window where three hazards act *simultaneously* — a
routing loop, an interference region and a traffic burst — and scores each
tool on the states of nodes affected by two or more hazards at once:

* **attribution recall** — of the hazard kinds truly acting on the state,
  what fraction did the tool name?  (VN2 can name several; Sympathy's
  tree stops at one; the detectors name none.)
* **detection rate** — fraction of multi-cause states flagged abnormal at
  all (the only score PCA and Agnostic Diagnosis can earn).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple, Union

import numpy as np

from repro.analysis.reporting import format_table
from repro.baselines.agnostic import AgnosticDiagnoser
from repro.baselines.pca import PCADetector
from repro.baselines.sympathy import SympathyDiagnoser
from repro.core.inference import active_causes
from repro.core.pipeline import VN2, VN2Config
from repro.core.states import build_states
from repro.simnet.faults import FaultInjector, ForcedLoop, Interference, TrafficBurst
from repro.simnet.network import Network, NetworkConfig
from repro.simnet.radio import RadioParams
from repro.simnet.topology import grid_topology
from repro.traces.frame import TraceFrame, frame_from_network
from repro.traces.records import Trace

# The canonical hazard -> fault-kind mapping lives in
# repro.analysis.evaluation; re-exported here for backwards compatibility.
from repro.analysis.evaluation import HAZARD_TO_FAULTS, truth_kinds_for_states

TraceLike = Union[Trace, TraceFrame]

#: Sympathy verdict -> ground-truth fault kinds.
SYMPATHY_TO_FAULTS: Dict[str, Tuple[str, ...]] = {
    "node_reboot": ("node_reboot",),
    "no_route": ("node_failure",),
    "routing_loop": ("routing_loop",),
    "queue_overflow": ("traffic_burst", "routing_loop"),
    "link_disconnection": ("node_failure",),
    "bad_link": ("interference", "link_degradation"),
    "contention": ("interference", "traffic_burst"),
    "parent_churn": ("link_degradation",),
    "low_battery": ("battery_drain",),
}


@dataclass
class MethodScore:
    """Scores of one diagnosis method."""

    method: str
    attribution_recall: float
    detection_rate: float
    mean_causes_named: float


@dataclass
class BaselineComparisonResult:
    """All methods on the multi-cause window."""

    scores: List[MethodScore]
    n_multicause_states: int
    truth_kinds: Tuple[str, ...]

    def score_of(self, method: str) -> MethodScore:
        for s in self.scores:
            if s.method == method:
                return s
        raise KeyError(method)

    def to_text(self) -> str:
        rows = [
            (
                s.method,
                f"{s.attribution_recall:.2f}",
                f"{s.detection_rate:.2f}",
                f"{s.mean_causes_named:.2f}",
            )
            for s in self.scores
        ]
        table = format_table(
            ["method", "attribution recall", "detection rate", "causes/state"],
            rows,
        )
        return (
            f"{table}\n{self.n_multicause_states} multi-cause states; "
            f"truth kinds: {', '.join(self.truth_kinds)}"
        )


def build_multicause_frame(seed: int = 21) -> TraceFrame:
    """A controlled frame whose middle window has three overlapping hazards."""
    topology = grid_topology(rows=6, cols=6, spacing=9.0)
    config = NetworkConfig(
        report_period_s=120.0,
        beacon_min_s=10.0,
        beacon_max_s=120.0,
        seed=seed,
        radio=RadioParams(tx_power_dbm=-10.0),
        max_range_m=40.0,
    )
    network = Network(topology, config)
    window = (2400.0, 4800.0)
    # The hazards run in intermittent pulses: continuous worst-case faults
    # would suppress the very report packets that carry their evidence
    # (few complete snapshots -> few evaluable states).
    faults: List[object] = []
    pulse = 300.0
    t = window[0]
    while t < window[1]:
        faults.append(ForcedLoop(21, 22, start=t, end=t + pulse))
        faults.append(
            Interference(center=(22.0, 22.0), radius=22.0, start=t,
                         end=t + pulse, delta_db=12.0)
        )
        faults.append(
            TrafficBurst(node_ids=(28, 29, 34), start=t, end=t + pulse,
                         interval_s=3.0)
        )
        t += 2 * pulse
    FaultInjector(faults).install(network)
    network.run(6600.0)
    return frame_from_network(
        network,
        metadata={
            "kind": "multicause",
            "window": list(window),
            "positions": {
                str(nid): list(pos) for nid, pos in topology.positions.items()
            },
        },
    )


def build_multicause_trace(seed: int = 21) -> Trace:
    """Legacy row-object view of :func:`build_multicause_frame`."""
    return build_multicause_frame(seed).to_trace()


def exp_baselines(
    trace: Optional[TraceLike] = None,
    rank: int = 12,
    min_weight_fraction: float = 0.15,
) -> BaselineComparisonResult:
    """Score VN2, Sympathy, Agnostic and PCA on the multi-cause window."""
    if trace is None:
        trace = build_multicause_frame()
    states = build_states(trace)

    # Identify the multi-cause evaluation states.
    eval_indices: List[int] = []
    truths: List[Set[str]] = []
    for i, kinds in enumerate(truth_kinds_for_states(states, trace)):
        if len(kinds) >= 2:
            eval_indices.append(i)
            truths.append(kinds)
    eval_states = states.select(eval_indices)
    all_truth_kinds = tuple(sorted(set().union(*truths))) if truths else ()

    scores: List[MethodScore] = []

    # ---- VN2: trained unsupervised on the full history (paper protocol).
    tool = VN2(VN2Config(rank=rank, filter_exceptions=True)).fit_states(states)
    weights = tool.correlation_strengths(eval_states)
    recalls, counts, detected = [], [], 0
    for row, truth in zip(weights, truths):
        active = active_causes(row, min_weight_fraction)
        named: Set[str] = set()
        for j in active:
            label = tool.labels[int(j)]
            if label.is_baseline:
                continue
            for hazard, _score in label.hazards[:3]:
                named.update(HAZARD_TO_FAULTS.get(hazard, ()))
        recalls.append(len(named & truth) / len(truth))
        counts.append(len([j for j in active if not tool.labels[int(j)].is_baseline]))
        if counts[-1] > 0:
            detected += 1
    scores.append(
        MethodScore(
            method="VN2",
            attribution_recall=float(np.mean(recalls)) if recalls else 0.0,
            detection_rate=detected / len(eval_indices) if eval_indices else 0.0,
            mean_causes_named=float(np.mean(counts)) if counts else 0.0,
        )
    )

    # ---- Sympathy: thresholds from the clean prefix, one cause per state.
    window = trace.metadata.get("window", [0.0, 0.0])
    clean = states.in_window(0.0, float(window[0]))
    sympathy = SympathyDiagnoser().fit(clean if len(clean) >= 2 else states)
    recalls, counts, detected = [], [], 0
    for values, truth in zip(eval_states.values, truths):
        verdict = sympathy.diagnose(values)
        named = set(SYMPATHY_TO_FAULTS.get(verdict.cause, ())) if verdict.cause else set()
        recalls.append(len(named & truth) / len(truth))
        counts.append(1 if verdict.cause else 0)
        if verdict.is_abnormal:
            detected += 1
    scores.append(
        MethodScore(
            method="Sympathy",
            attribution_recall=float(np.mean(recalls)) if recalls else 0.0,
            detection_rate=detected / len(eval_indices) if eval_indices else 0.0,
            mean_causes_named=float(np.mean(counts)) if counts else 0.0,
        )
    )

    # The detectors (Agnostic Diagnosis, PCA) cannot attribute causes, so
    # they are scored on detection over the whole fault window: did the
    # affected nodes' states get flagged abnormal at all?
    window_states = states.in_window(float(window[0]), float(window[1]) + 600.0)
    affected_nodes = {int(n) for n in states.node_ids[eval_indices]}

    # ---- Agnostic Diagnosis: per-node correlation drift.  Its natural
    # granularity is the *node* ("performs good or not"), so detection is
    # the fraction of affected nodes flagged abnormal at least once during
    # the fault window.
    agnostic_detect = 0.0
    try:
        agnostic = AgnosticDiagnoser(window=6, anomaly_factor=1.5).fit(
            clean if len(clean) >= 12 else states
        )
        flagged_nodes = {
            v.node_id
            for v in agnostic.diagnose_batch(window_states)
            if v.is_abnormal
        }
        if affected_nodes:
            agnostic_detect = len(flagged_nodes & affected_nodes) / len(
                affected_nodes
            )
    except ValueError:
        pass
    scores.append(
        MethodScore(
            method="AgnosticDiagnosis",
            attribution_recall=0.0,
            detection_rate=agnostic_detect,
            mean_causes_named=0.0,
        )
    )

    # ---- PCA: subspace residual, detection only.
    pca = PCADetector(n_components=8).fit(clean if len(clean) > 8 else states)
    verdicts = pca.diagnose_batch(eval_states)
    pca_detect = float(np.mean([v.is_abnormal for v in verdicts])) if verdicts else 0.0
    scores.append(
        MethodScore(
            method="PCA",
            attribution_recall=0.0,
            detection_rate=pca_detect,
            mean_causes_named=0.0,
        )
    )

    return BaselineComparisonResult(
        scores=scores,
        n_multicause_states=len(eval_indices),
        truth_kinds=all_truth_kinds,
    )
