"""Harnesses for the paper's Figure 6 (CitySee field study).

The paper's protocol: Ψ (25x43) is extracted from the training trace; a
later 14-day trace shows a clear PRR degradation (Sep 20-22); correlating
that window's states against Ψ reveals the responsible root causes —
network loops, contention and node failures.

Here the "later trace" is a 14-profile-day run with a concentrated episode
injected on days 6-8 (loops + wide interference + node failures), and the
harnesses check the same chain: the PRR series dips inside the episode
(6a), strength concentrates on a few Ψ rows (6b), and those rows decode to
the loop/contention/failure families (6c).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.analysis.reporting import format_series, format_table
from repro.core.interpretation import RootCauseLabel
from repro.core.pipeline import VN2, VN2Config
from repro.core.states import build_states
from repro.traces.citysee import CitySeeProfile
from repro.traces.frame import TraceFrame
from repro.traces.prr import degraded_windows, prr_series
from repro.traces.records import Trace

TraceLike = Union[Trace, TraceFrame]

#: Hazard names that satisfy each of the paper's three episode diagnoses.
EPISODE_FAMILIES: Dict[str, Tuple[str, ...]] = {
    "network_loop": ("routing_loop", "duplicate_storm", "queue_overflow"),
    "contention": ("contention", "noise_increase", "noack_retransmit"),
    "node_failure": ("node_failure", "parent_churn", "node_reboot",
                     "link_disconnection", "low_voltage"),
}


# ----------------------------------------------------------------------
# Fig 6(a)
# ----------------------------------------------------------------------


@dataclass
class Fig6aResult:
    """PRR time series with the detected degradation windows."""

    bin_centers: np.ndarray
    prr: np.ndarray
    degraded: List[Tuple[float, float]]
    episode_window: Tuple[float, float]
    dip_depth: float  # baseline PRR minus episode-minimum PRR

    def episode_detected(self) -> bool:
        """True if any degraded window overlaps the injected episode."""
        s, e = self.episode_window
        return any(ds < e and de > s for ds, de in self.degraded)

    def to_text(self) -> str:
        lines = [format_series("PRR", self.bin_centers, self.prr)]
        lines.append(
            f"episode window: [{self.episode_window[0]:.0f}, "
            f"{self.episode_window[1]:.0f}) s; dip depth={self.dip_depth:.2f}"
        )
        for s, e in self.degraded:
            lines.append(f"degraded: [{s:.0f}, {e:.0f}) s")
        return "\n".join(lines)


def exp_fig6a(
    trace: TraceLike,
    bin_fraction_of_day: float = 0.25,
) -> Fig6aResult:
    """Fig 6(a): the sink PRR series around the degradation episode."""
    profile = trace.metadata.get("profile", {})
    day_seconds = float(profile.get("day_seconds", 86400.0))
    episode_days = trace.metadata.get("episode_days", [6.0, 8.0])
    episode_window = (
        float(episode_days[0]) * day_seconds,
        float(episode_days[1]) * day_seconds,
    )
    centers, prr = prr_series(trace, bin_seconds=day_seconds * bin_fraction_of_day)
    degraded = degraded_windows(centers, prr)
    in_episode = (centers >= episode_window[0]) & (centers < episode_window[1])
    outside = ~in_episode
    if in_episode.any() and outside.any():
        dip = float(np.median(prr[outside]) - prr[in_episode].min())
    else:
        dip = 0.0
    return Fig6aResult(
        bin_centers=centers,
        prr=prr,
        degraded=degraded,
        episode_window=episode_window,
        dip_depth=dip,
    )


# ----------------------------------------------------------------------
# Fig 6(b)
# ----------------------------------------------------------------------


@dataclass
class Fig6bResult:
    """Strength of every Ψ row over the degradation window."""

    strengths: np.ndarray  # length r: mean weight over episode states
    top_rows: List[int]  # descending by strength
    n_states: int
    concentration: float  # share of total strength held by the top 4 rows
    tool: VN2

    def to_text(self) -> str:
        rows = [
            (f"Ψ{j + 1}", f"{self.strengths[j]:.4f}",
             self.tool.labels[j].primary_hazard or "-")
            for j in self.top_rows[:8]
        ]
        table = format_table(["root cause", "mean strength", "hazard"], rows)
        return (
            f"{table}\ntop-4 concentration={self.concentration:.2f} "
            f"over {self.n_states} episode states"
        )


def exp_fig6b(
    tool: VN2,
    episode_trace: TraceLike,
    window: Optional[Tuple[float, float]] = None,
) -> Fig6bResult:
    """Fig 6(b): correlate the degradation window's states against Ψ."""
    if window is None:
        profile = episode_trace.metadata.get("profile", {})
        day_seconds = float(profile.get("day_seconds", 86400.0))
        episode_days = episode_trace.metadata.get("episode_days", [6.0, 8.0])
        window = (
            float(episode_days[0]) * day_seconds,
            float(episode_days[1]) * day_seconds,
        )
    states = build_states(episode_trace).in_window(*window)
    if len(states) == 0:
        raise ValueError("no states inside the requested window")
    weights = tool.correlation_strengths(states)
    strengths = weights.mean(axis=0)
    top = list(np.argsort(strengths)[::-1])
    total = float(strengths.sum())
    concentration = float(strengths[top[:4]].sum()) / total if total > 0 else 0.0
    return Fig6bResult(
        strengths=strengths,
        top_rows=[int(j) for j in top],
        n_states=len(states),
        concentration=concentration,
        tool=tool,
    )


# ----------------------------------------------------------------------
# Fig 6(c)
# ----------------------------------------------------------------------


@dataclass
class Fig6cResult:
    """Interpretation of the top episode root causes."""

    rows: List[Tuple[int, RootCauseLabel]]
    families_found: Dict[str, bool]

    def all_families_found(self) -> bool:
        return all(self.families_found.values())

    def to_text(self) -> str:
        lines = []
        for index, label in self.rows:
            tops = ", ".join(
                f"{n}={v:+.2f}" for n, v in label.top_metrics[:4]
            )
            lines.append(f"Ψ{index + 1}: {tops}\n    -> {label.explanation}")
        found = ", ".join(
            f"{family}={'yes' if ok else 'NO'}"
            for family, ok in self.families_found.items()
        )
        lines.append(f"episode families: {found}")
        return "\n".join(lines)


def exp_fig6c(fig6b: Fig6bResult, top_k: int = 6) -> Fig6cResult:
    """Fig 6(c): decode the top rows; expect loop+contention+failure."""
    tool = fig6b.tool
    rows: List[Tuple[int, RootCauseLabel]] = []
    hazard_hits: List[str] = []
    for j in fig6b.top_rows[:top_k]:
        label = tool.labels[j]
        rows.append((j, label))
        hazard_hits.extend(name for name, _score in label.hazards[:3])
    families_found = {
        family: any(h in hazards for h in hazard_hits)
        for family, hazards in EPISODE_FAMILIES.items()
    }
    return Fig6cResult(rows=rows, families_found=families_found)


# ----------------------------------------------------------------------
# end-to-end convenience
# ----------------------------------------------------------------------


def run_citysee_study(
    profile: Optional[CitySeeProfile] = None,
    rank: int = 25,
    use_cache: bool = True,
    jobs: int = 1,
) -> Tuple[VN2, TraceFrame, Fig6aResult, Fig6bResult, Fig6cResult]:
    """The full Fig 6 chain: train on clean days, diagnose the episode.

    Runs entirely on the columnar frame path — no per-snapshot objects
    are materialized anywhere in the study.  The training and episode
    runs are independent simulations, submitted as a two-job grid to the
    scenario runner; ``jobs=2`` generates them concurrently with
    bit-identical results.
    """
    from repro.runner import citysee_study_jobs, run_jobs

    profile = profile or CitySeeProfile.medium()
    report = run_jobs(
        citysee_study_jobs(profile), n_workers=jobs, use_cache=use_cache
    )
    training, episode_trace = report.frames()
    tool = VN2(VN2Config(rank=rank)).fit(training)
    fig6a = exp_fig6a(episode_trace)
    fig6b = exp_fig6b(tool, episode_trace)
    fig6c = exp_fig6c(fig6b)
    return tool, episode_trace, fig6a, fig6b, fig6c
