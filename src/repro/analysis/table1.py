"""Table I validation: every cataloged hazard moves its trigger metrics.

The paper's Table I is a qualitative catalog ("a sampling of system-level
metrics that correlated hazard events in our system").  The reproduction
makes it executable: for each hazard we run two identical simulations —
one clean, one with the hazard injected — and verify that the hazard's
trigger counters move far more in the faulty run, at the affected nodes,
during the fault window.

This doubles as the causal-fidelity check of the whole substrate: if the
simulator's counters did not move for Table I's reasons, nothing VN2
learns from the simulator would transfer meaning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.analysis.reporting import format_table
from repro.simnet.faults import (
    FaultInjector,
    ForcedLoop,
    Interference,
    LinkDegradation,
    TrafficBurst,
    NodeFailure,
)
from repro.simnet.hardware import ClockParams
from repro.simnet.network import Network, NetworkConfig
from repro.simnet.radio import RadioParams
from repro.simnet.topology import grid_topology


@dataclass
class HazardCheck:
    """One validated Table I row."""

    hazard: str
    metric: str
    clean_delta: float
    faulty_delta: float
    amplification: float
    passed: bool


@dataclass
class Table1Result:
    """All hazard checks."""

    checks: List[HazardCheck]

    @property
    def all_passed(self) -> bool:
        return all(c.passed for c in self.checks)

    def to_text(self) -> str:
        rows = [
            (
                c.hazard,
                c.metric,
                f"{c.clean_delta:.4g}",
                f"{c.faulty_delta:.4g}",
                f"{c.amplification:.3g}x",
                "ok" if c.passed else "FAIL",
            )
            for c in self.checks
        ]
        return format_table(
            ["hazard", "trigger metric", "clean", "faulty", "amplification", ""],
            rows,
        )


def _fresh_network(seed: int) -> Network:
    """A small dense grid whose tree is a few hops deep."""
    topology = grid_topology(rows=5, cols=5, spacing=9.0)
    config = NetworkConfig(
        report_period_s=120.0,
        beacon_min_s=10.0,
        beacon_max_s=120.0,
        seed=seed,
        radio=RadioParams(tx_power_dbm=-10.0),
        max_range_m=40.0,
    )
    return Network(topology, config)


def _counter_sum(network: Network, node_ids: Sequence[int], metric: str) -> float:
    """Summed metric value over nodes (counters live on the node object)."""
    total = 0.0
    for nid in node_ids:
        node = network.nodes[nid]
        counters = node.counters.as_dict()
        if metric in counters:
            total += counters[metric]
        elif metric == "radio_on_time":
            total += node.hardware.radio_on_time
        else:
            raise KeyError(f"not a counter metric: {metric}")
    return total


def _run_pair(
    seed: int,
    faults: Sequence[object],
    observe_nodes: Sequence[int],
    metric: str,
    warmup_s: float = 900.0,
    window_s: float = 1200.0,
) -> Tuple[float, float]:
    """Delta of ``metric`` over the fault window, clean vs faulty run."""
    deltas = []
    for inject in (False, True):
        network = _fresh_network(seed)
        if inject:
            FaultInjector(list(faults)).install(network)
        network.run(warmup_s)
        before = _counter_sum(network, observe_nodes, metric)
        network.run(window_s)
        after = _counter_sum(network, observe_nodes, metric)
        deltas.append(after - before)
    return deltas[0], deltas[1]


def _check(
    hazard: str,
    metric: str,
    clean: float,
    faulty: float,
    min_amplification: float = 2.0,
    min_absolute: float = 3.0,
) -> HazardCheck:
    amplification = faulty / clean if clean > 0 else float("inf")
    passed = faulty >= max(min_absolute, clean * min_amplification)
    return HazardCheck(
        hazard=hazard,
        metric=metric,
        clean_delta=clean,
        faulty_delta=faulty,
        amplification=amplification if np.isfinite(amplification) else 999.0,
        passed=passed,
    )


def exp_table1(seed: int = 11, quick: bool = False) -> Table1Result:
    """Run the Table I validation suite.

    Args:
        seed: Simulation seed shared by each clean/faulty pair.
        quick: Run a 4-check subset (for unit tests).
    """
    checks: List[HazardCheck] = []
    t0 = 900.0
    t1 = 2100.0

    # Routing loop: loop/duplicate/transmit counters at the looped pair.
    loop_nodes = (12, 17)
    for metric in ("loop_counter", "duplicate_counter", "transmit_counter"):
        clean, faulty = _run_pair(
            seed,
            [ForcedLoop(loop_nodes[0], loop_nodes[1], start=t0, end=t1)],
            observe_nodes=loop_nodes,
            metric=metric,
        )
        checks.append(_check("routing_loop", metric, clean, faulty))

    # Contention: interference raises MAC backoffs and NOACK retransmits
    # inside the jammed region.
    region_nodes = [6, 7, 8, 11, 12, 13]
    for metric in ("mac_backoff_counter", "noack_retransmit_counter"):
        clean, faulty = _run_pair(
            seed,
            [Interference(center=(18.0, 18.0), radius=20.0, start=t0, end=t1,
                          delta_db=18.0)],
            observe_nodes=region_nodes,
            metric=metric,
        )
        checks.append(_check("contention", metric, clean, faulty))

    # Queue overflow: a traffic burst overruns the forwarding queues of
    # nodes on the hot path.
    burst_nodes = (21, 22, 23, 24)
    clean, faulty = _run_pair(
        seed,
        [TrafficBurst(node_ids=burst_nodes, start=t0, end=t1, interval_s=0.4)],
        observe_nodes=list(range(25)),
        metric="overflow_drop_counter",
    )
    checks.append(_check("queue_overflow", "overflow_drop_counter", clean, faulty))

    if not quick:
        # Link degradation: retransmits and parent churn in the shadowed area.
        degraded_nodes = [16, 17, 18, 21, 22, 23]
        for metric in ("noack_retransmit_counter", "parent_change_counter"):
            clean, faulty = _run_pair(
                seed,
                [LinkDegradation(center=(18.0, 36.0), radius=20.0, start=t0,
                                 end=t1, extra_db=14.0)],
                observe_nodes=degraded_nodes,
                metric=metric,
            )
            checks.append(_check("link_degradation", metric, clean, faulty,
                                 min_amplification=1.5))

        # Node failure: children of a dead relay retransmit without ACKs
        # and eventually change parent.  Probe the formed tree first so the
        # killed node really is somebody's parent.
        probe = _fresh_network(seed)
        probe.run(t0)
        children_of: Dict[int, List[int]] = {}
        for node in probe.nodes.values():
            parent = node.routing.parent
            if parent is not None and parent != probe.topology.sink_id:
                children_of.setdefault(parent, []).append(node.node_id)
        dead = max(children_of, key=lambda nid: len(children_of[nid]))
        children_zone = children_of[dead]
        # Children notice quickly and re-parent, so the NOACK surge is a
        # short burst on top of normal chatter: a modest amplification is
        # the physically correct signature here.
        for metric, min_amp in (
            ("noack_retransmit_counter", 1.2),
            ("parent_change_counter", 1.5),
        ):
            clean, faulty = _run_pair(
                seed,
                [NodeFailure(dead, at=t0)],
                observe_nodes=children_zone,
                metric=metric,
            )
            checks.append(_check("node_failure", metric, clean, faulty,
                                 min_amplification=min_amp, min_absolute=1.0))

        # Key node: killing the node with the largest subtree causes far
        # more packet loss than killing a leaf (Table I's NeighborNum row).
        leafs = [
            nid
            for nid in probe.topology.sensor_ids
            if nid not in children_of
        ]
        leaf = leafs[0] if leafs else probe.topology.sensor_ids[-1]

        def _delivery_with_failure(victim: int) -> float:
            network = _fresh_network(seed)
            FaultInjector([NodeFailure(victim, at=t0)]).install(network)
            network.run(t1)
            return network.delivery_ratio()

        loss_key = 1.0 - _delivery_with_failure(dead)
        loss_leaf = 1.0 - _delivery_with_failure(leaf)
        checks.append(
            HazardCheck(
                hazard="key_node",
                metric="delivery_loss",
                clean_delta=loss_leaf,
                faulty_delta=loss_key,
                amplification=(loss_key / loss_leaf) if loss_leaf > 0 else 999.0,
                passed=loss_key > loss_leaf,
            )
        )

        # Severe wide-band interference: packets dropped after 30 retries.
        clean, faulty = _run_pair(
            seed,
            [Interference(center=(18.0, 18.0), radius=60.0, start=t0, end=t1,
                          delta_db=40.0)],
            observe_nodes=list(range(25)),
            metric="drop_packet_counter",
            window_s=1800.0,
        )
        checks.append(_check("link_disconnection", "drop_packet_counter",
                             clean, faulty, min_absolute=1.0))

        # Battery drain: radio-on time unaffected but voltage sags — checked
        # via the battery model directly (voltage is a gauge, not a counter).
        from repro.simnet.hardware import Battery, EnergyParams

        rng = np.random.default_rng(seed)
        battery = Battery(EnergyParams(), rng)
        v_before = battery.voltage()
        battery.drain_multiplier = 60.0
        # ~1 fault-day of heavy transmit activity under the drain multiplier.
        for _ in range(20000):
            battery.consume(0.004)
        v_after = battery.voltage()
        checks.append(
            HazardCheck(
                hazard="energy_drain",
                metric="voltage",
                clean_delta=v_before,
                faulty_delta=v_after,
                amplification=1.0,
                passed=v_after < v_before - 0.01,
            )
        )

        # Clock instability: temperature bends the reporting period.
        hw_params = ClockParams()
        drift_25 = hw_params.base_ppm
        skew_cold = 1.0 + (hw_params.base_ppm + hw_params.curvature_ppm * 625) * 1e-6
        checks.append(
            HazardCheck(
                hazard="clock_instability",
                metric="temperature",
                clean_delta=1.0 + drift_25 * 1e-6,
                faulty_delta=skew_cold,
                amplification=skew_cold,
                passed=skew_cold > 1.0 + drift_25 * 1e-6,
            )
        )

    return Table1Result(checks=checks)
