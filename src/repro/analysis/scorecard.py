"""Per-fault-family accuracy scorecard for chaos scenario runs.

The kind-level evaluation in :mod:`repro.analysis.evaluation` asks "did the
diagnosis name *this exact fault kind*?".  Chaos runs mix families of
related faults (three interference primitives are all RF trouble; a duty
cycle and a gateway failure are both churn), so the scorecard asks the
operator's coarser question instead: **when family X was hurting the
network, did the tool point at family X — and how fast?**

Three numbers per family:

* **precision / recall** over faulted states, with truth and predictions
  both lifted from kinds/hazards to families;
* **detection rate** — the fraction of ground-truth *episodes* whose
  family was named on an affected node at least once inside the episode
  window (long-window faults such as firmware skew have tiny state-level
  recall but are trivially "detected" in this sense);
* **detection latency** — seconds from episode start to the end of the
  first state naming the family.

The CI gate (`vn2 chaos score --gate`) checks each preset's detection
rates against the conservative per-family floors in
:data:`repro.chaos.presets.PRESETS`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.analysis.evaluation import HAZARD_TO_FAULTS
from repro.analysis.reporting import format_table
from repro.chaos.dsl import FAMILIES, FAULT_FAMILIES
from repro.core.inference import sparsify_inferred
from repro.core.pipeline import VN2
from repro.core.states import StateMatrix, build_states
from repro.traces.frame import TraceFrame

#: Hazards whose Ψ signature points at a family beyond what the kind-level
#: hazard->fault table implies.  ``clock_instability`` is the paper's Table I
#: timing hazard; a firmware-skewed node's truncated neighbor table reads as
#: neighbor/parent dynamics, so those hazards also count toward "reporting".
_EXTRA_FAMILY_HAZARDS: Dict[str, Tuple[str, ...]] = {
    "clock_instability": ("timing",),
    "link_dynamics": ("reporting",),
    "parent_churn": ("reporting",),
}


def _build_family_hazards() -> Dict[str, Tuple[str, ...]]:
    table: Dict[str, Set[str]] = {}
    for hazard, kinds in HAZARD_TO_FAULTS.items():
        table[hazard] = {FAULT_FAMILIES[k] for k in kinds if k in FAULT_FAMILIES}
    for hazard, families in _EXTRA_FAMILY_HAZARDS.items():
        table.setdefault(hazard, set()).update(families)
    return {hazard: tuple(sorted(fams)) for hazard, fams in table.items()}


#: VN2 hazard name -> fault families it counts as naming.
FAMILY_HAZARDS: Dict[str, Tuple[str, ...]] = _build_family_hazards()


def predicted_families(
    tool: VN2,
    weights_row: np.ndarray,
    min_strength: float,
    hazards_per_cause: int = 3,
) -> Set[str]:
    """Fault families named by one state's (sparsified) weight vector."""
    named: Set[str] = set()
    for j in np.flatnonzero(weights_row >= min_strength):
        label = tool.labels[int(j)]
        if label.is_baseline:
            continue
        for hazard, _score in label.hazards[:hazards_per_cause]:
            named.update(FAMILY_HAZARDS.get(hazard, ()))
    return named


def truth_families_for_states(
    states: StateMatrix, frame: TraceFrame
) -> List[Set[str]]:
    """Per-state ground-truth families, computed columnar.

    Unlike the kind-level evaluation, *every* ground-truth episode with a
    node list participates — the chaos primitives all record affected
    nodes, so family truth covers the whole schedule.
    """
    families: List[Set[str]] = [set() for _ in range(len(states))]
    if len(states) == 0:
        return families
    for g in frame.ground_truth:
        family = FAULT_FAMILIES.get(g.kind)
        if family is None or not g.node_ids:
            continue
        overlap = (states.times_from <= g.end) & (states.times_to >= g.start)
        if not overlap.any():
            continue
        member = np.isin(
            states.node_ids, np.asarray(tuple(g.node_ids), dtype=np.int64)
        )
        for i in np.flatnonzero(overlap & member):
            families[int(i)].add(family)
    return families


@dataclass
class FamilyScore:
    """One family's row of the scorecard."""

    family: str
    true_positives: int = 0
    false_positives: int = 0
    false_negatives: int = 0
    episodes: int = 0
    detected: int = 0
    latencies_s: List[float] = field(default_factory=list)

    @property
    def precision(self) -> float:
        denom = self.true_positives + self.false_positives
        return self.true_positives / denom if denom else 0.0

    @property
    def recall(self) -> float:
        denom = self.true_positives + self.false_negatives
        return self.true_positives / denom if denom else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) > 0 else 0.0

    @property
    def support(self) -> int:
        return self.true_positives + self.false_negatives

    @property
    def detection_rate(self) -> float:
        return self.detected / self.episodes if self.episodes else 0.0

    @property
    def median_latency_s(self) -> Optional[float]:
        if not self.latencies_s:
            return None
        return float(np.median(self.latencies_s))

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "family": self.family,
            "precision": round(self.precision, 4),
            "recall": round(self.recall, 4),
            "f1": round(self.f1, 4),
            "support": self.support,
            "episodes": self.episodes,
            "detected": self.detected,
            "detection_rate": round(self.detection_rate, 4),
            "median_latency_s": self.median_latency_s,
        }


@dataclass
class ChaosScorecard:
    """Per-family accuracy of one chaos run."""

    scenario_name: str
    per_family: List[FamilyScore]
    n_states: int
    min_strength: float

    def family(self, name: str) -> FamilyScore:
        for score in self.per_family:
            if score.family == name:
                return score
        raise KeyError(name)

    def families(self) -> Tuple[str, ...]:
        return tuple(s.family for s in self.per_family)

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "scenario": self.scenario_name,
            "n_states": self.n_states,
            "min_strength": self.min_strength,
            "families": [s.to_json_dict() for s in self.per_family],
        }

    def to_text(self) -> str:
        rows = []
        for s in self.per_family:
            latency = (
                f"{s.median_latency_s:.0f}s"
                if s.median_latency_s is not None
                else "-"
            )
            rows.append(
                (
                    s.family,
                    f"{s.precision:.2f}",
                    f"{s.recall:.2f}",
                    f"{s.f1:.2f}",
                    s.support,
                    f"{s.detected}/{s.episodes}",
                    latency,
                )
            )
        table = format_table(
            ["family", "precision", "recall", "f1", "support",
             "detected", "median latency"],
            rows,
        )
        return (
            f"scorecard[{self.scenario_name}]\n{table}\n"
            f"({self.n_states} states, min_strength={self.min_strength})"
        )

    def check_gates(self, floors: Dict[str, float]) -> List[str]:
        """Gate failures: families whose detection rate is below its floor."""
        failures: List[str] = []
        for family, floor in sorted(floors.items()):
            try:
                score = self.family(family)
            except KeyError:
                failures.append(
                    f"{self.scenario_name}: family {family!r} has no ground-"
                    f"truth episodes but a gate floor of {floor:.2f}"
                )
                continue
            if score.detection_rate < floor:
                failures.append(
                    f"{self.scenario_name}: {family} detection rate "
                    f"{score.detection_rate:.2f} below floor {floor:.2f} "
                    f"({score.detected}/{score.episodes} episodes)"
                )
        return failures


def score_frame(
    tool: VN2,
    frame: TraceFrame,
    scenario_name: str = "chaos",
    min_strength: float = 0.2,
    retention: float = 0.9,
    exception_threshold: Optional[float] = 0.01,
) -> ChaosScorecard:
    """Score a fitted tool's diagnoses on one chaos frame, per family.

    State-level truth/prediction matching mirrors
    :func:`repro.analysis.evaluation.evaluate_diagnoses`, lifted from fault
    kinds to families; episode detection scans each ground-truth window for
    the first affected-node state naming the episode's family.
    """
    tool._require_fitted()
    states = build_states(frame)
    if len(states) == 0:
        raise ValueError("frame has no states to score")
    weights = sparsify_inferred(
        tool.correlation_strengths(states), retention=retention
    )
    exceptional = np.ones(len(states), dtype=bool)
    if exception_threshold is not None:
        try:
            exceptional = (
                tool._exception_scores(states.values) >= exception_threshold
            )
        except RuntimeError:
            pass  # loaded model without training stats: no gate

    predicted: List[Set[str]] = [
        predicted_families(tool, weights[i], min_strength)
        if exceptional[i]
        else set()
        for i in range(len(states))
    ]
    truth = truth_families_for_states(states, frame)

    scores: Dict[str, FamilyScore] = {}

    def bucket(family: str) -> FamilyScore:
        if family not in scores:
            scores[family] = FamilyScore(family)
        return scores[family]

    for pred, true in zip(predicted, truth):
        for family in pred & true:
            bucket(family).true_positives += 1
        for family in pred - true:
            bucket(family).false_positives += 1
        for family in true - pred:
            bucket(family).false_negatives += 1

    # Episode-level detection: first affected-node state inside the window
    # whose prediction names the episode's family.
    for g in frame.ground_truth:
        family = FAULT_FAMILIES.get(g.kind)
        if family is None or not g.node_ids:
            continue
        score = bucket(family)
        score.episodes += 1
        overlap = (states.times_from <= g.end) & (states.times_to >= g.start)
        member = np.isin(
            states.node_ids, np.asarray(tuple(g.node_ids), dtype=np.int64)
        )
        hit_times = [
            float(states.times_to[int(i)])
            for i in np.flatnonzero(overlap & member)
            if family in predicted[int(i)]
        ]
        if hit_times:
            score.detected += 1
            score.latencies_s.append(max(0.0, min(hit_times) - g.start))

    ordered = [scores[f] for f in FAMILIES if f in scores]
    extras = sorted(set(scores) - set(FAMILIES))
    ordered.extend(scores[f] for f in extras)
    return ChaosScorecard(
        scenario_name=scenario_name,
        per_family=ordered,
        n_states=len(states),
        min_strength=min_strength,
    )


def score_scenario_frame(
    frame: TraceFrame,
    scenario_name: str = "chaos",
    rank: Optional[int] = None,
    min_strength: float = 0.2,
) -> ChaosScorecard:
    """Fit VN2 on the chaos frame itself, then score it.

    Chaos runs are their own training data, like the seed-sweep
    evaluation: the NMF basis learns the run's dominant behaviours and the
    scorecard measures whether fault states decompose onto hazard-labelled
    causes.
    """
    from repro.core.pipeline import VN2Config

    tool = VN2(VN2Config(rank=rank)).fit(frame)
    return score_frame(
        tool, frame, scenario_name=scenario_name, min_strength=min_strength
    )


# ----------------------------------------------------------------------
# preset suite (runner-driven)
# ----------------------------------------------------------------------


@dataclass
class ChaosSuiteResult:
    """Scorecards for a set of presets, plus gate verdicts."""

    scorecards: List[ChaosScorecard]
    gate_failures: List[str]
    run_report: Optional[object] = None  # the runner's RunReport, for timings

    @property
    def ok(self) -> bool:
        return not self.gate_failures

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "presets": [card.to_json_dict() for card in self.scorecards],
            "gate_failures": list(self.gate_failures),
            "ok": self.ok,
        }

    def to_text(self) -> str:
        blocks = [card.to_text() for card in self.scorecards]
        if self.gate_failures:
            blocks.append(
                "GATE FAILURES:\n" + "\n".join(f"  {f}" for f in self.gate_failures)
            )
        else:
            blocks.append("all gates passed")
        return "\n\n".join(blocks)


def run_chaos_suite(
    names: Optional[Sequence[str]] = None,
    seed: int = 2011,
    scale: str = "tiny",
    jobs: int = 1,
    use_cache: bool = True,
    min_strength: float = 0.2,
    gate: bool = True,
) -> ChaosSuiteResult:
    """Run presets through the process pool, fit + score each one.

    Trace generation (the dominant cost) shards across ``jobs`` workers
    with bit-identical frames; fitting and scoring stay in the parent.
    """
    from repro.chaos.presets import PRESETS
    from repro.runner import chaos_preset_jobs, run_jobs

    job_specs = chaos_preset_jobs(names, seed=seed, scale=scale)
    report = run_jobs(job_specs, n_workers=jobs, use_cache=use_cache)
    scorecards: List[ChaosScorecard] = []
    failures: List[str] = []
    for job, result in zip(job_specs, report.results):
        name = job.scenario.name
        card = score_scenario_frame(
            result.frame(), scenario_name=name, min_strength=min_strength
        )
        scorecards.append(card)
        if gate:
            failures.extend(card.check_gates(dict(PRESETS[name].gate_floors)))
    return ChaosSuiteResult(
        scorecards=scorecards, gate_failures=failures, run_report=report
    )
