"""Harnesses for the paper's Figure 5 (testbed experiments).

The paper's protocol: 45 nodes, two-hour run, node-failure and node-reboot
events introduced every 10 minutes; the first hour trains Ψ (r = 10, no
exception filter — the trace is small), the second hour tests.  The four
sub-experiments reproduced here:

* Fig 5(b): correlation of all training states with Ψ rows;
* Fig 5(c-f): the signature profiles of the main correlated vectors;
* Fig 5(g): root-cause strength distribution for failure vs reboot events;
* Fig 5(h)/(i): train-vs-test strength profiles for the two scenarios —
  the paper's headline accuracy claim is that they are positively related,
  more so for the expansive scenario.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.analysis.reporting import format_table
from repro.core.inference import sparsify_inferred
from repro.core.pipeline import VN2, VN2Config
from repro.core.states import StateMatrix, build_states
from repro.metrics.catalog import METRIC_INDEX
from repro.traces.frame import TraceFrame
from repro.traces.records import Trace
from repro.traces.testbed import TestbedScenario

TESTBED_RANK = 10

TraceLike = Union[Trace, TraceFrame]


def generate_scenario_frames(
    scenarios: Sequence[TestbedScenario],
    seed: int = 7,
    jobs: int = 1,
    use_cache: bool = False,
) -> Dict[TestbedScenario, TraceFrame]:
    """Generate one testbed frame per scenario through the scenario runner.

    The scenarios are independent simulations, so they shard cleanly
    across ``jobs`` pool workers; output is bit-identical to serial
    generation either way.
    """
    from repro.runner import run_jobs, testbed_scenario_jobs

    report = run_jobs(
        testbed_scenario_jobs(scenarios, seed=seed),
        n_workers=jobs,
        use_cache=use_cache,
    )
    return dict(zip(scenarios, report.frames()))


def train_test_split(trace: TraceLike) -> Tuple[TraceLike, TraceLike]:
    """First experiment hour for training, second for testing (paper)."""
    warmup = float(trace.metadata.get("warmup_s", 1200.0))
    duration = float(trace.metadata.get("duration_s", 7200.0))
    half = warmup + duration / 2.0
    return trace.window(0.0, half), trace.window(half, warmup + duration)


def fit_testbed_tool(train: TraceLike, rank: int = TESTBED_RANK) -> VN2:
    """Train Ψ the way the paper does for testbed data (no ε filter)."""
    return VN2(VN2Config(rank=rank, filter_exceptions=False)).fit(train)


# ----------------------------------------------------------------------
# Fig 5(b)
# ----------------------------------------------------------------------


@dataclass
class Fig5bResult:
    """Training-state correlation scatter against the r=10 matrix."""

    weights: np.ndarray  # (n_states, r)
    points: List[Tuple[int, int]]
    top_rows: List[int]  # rows used by most states, descending
    tool: VN2

    def to_text(self) -> str:
        usage = (self.weights > 0).mean(axis=0)
        rows = [(f"Ψ{j + 1}", f"{100 * usage[j]:.1f}%") for j in range(len(usage))]
        return format_table(["root cause", "states using it"], rows)


def exp_fig5b(
    trace: TraceLike,
    rank: int = TESTBED_RANK,
    retention: float = 0.9,
) -> Fig5bResult:
    """Fig 5(b): extract Ψ from hour-1 states, correlate them against it.

    Inferred weights are sparsified row-wise (Algorithm 2 applied at
    inference) so the scatter keeps only each state's dominant causes.
    """
    train, _test = train_test_split(trace)
    tool = fit_testbed_tool(train, rank)
    weights = sparsify_inferred(
        tool.correlation_strengths(tool.states_), retention=retention
    )
    points: List[Tuple[int, int]] = []
    for i in range(weights.shape[0]):
        for j in np.flatnonzero(weights[i] > 0):
            points.append((i, int(j)))
    usage = weights.mean(axis=0)
    top_rows = [int(j) for j in np.argsort(usage)[::-1]]
    return Fig5bResult(weights=weights, points=points, top_rows=top_rows, tool=tool)


# ----------------------------------------------------------------------
# Fig 5(c-f)
# ----------------------------------------------------------------------


@dataclass
class SignatureMatch:
    """A Ψ row matched to one of the paper's four discussed signatures."""

    signature: str
    row_index: Optional[int]
    score: float
    profile: Optional[np.ndarray]


@dataclass
class Fig5cfResult:
    """The four signature vectors of Fig 5(c)-(f)."""

    matches: List[SignatureMatch]

    def found(self, signature: str) -> bool:
        return any(
            m.signature == signature and m.row_index is not None
            for m in self.matches
        )

    def to_text(self) -> str:
        rows = []
        for m in self.matches:
            row_name = f"Ψ{m.row_index + 1}" if m.row_index is not None else "-"
            rows.append((m.signature, row_name, f"{m.score:.3f}"))
        return format_table(["signature", "matched row", "score"], rows)


def _signature_score(display_row: np.ndarray, metric_names: Sequence[str]) -> float:
    """Mean |displayed movement| over the named metrics."""
    idx = [METRIC_INDEX[m] for m in metric_names]
    return float(np.mean(np.abs(display_row[idx])))


#: The paper's four discussed testbed signatures (Fig 5c-f):
#: Ψ1-type — parent unreachable (NOACK retransmits + parent change);
#: Ψ2/Ψ10-type — link dynamics (neighbor RSSI/ETX);
#: Ψ4-type — node reboot seen by neighbors (neighbor count jumps);
#: baseline — the normal-states vector (detected by usage, not metrics).
SIGNATURES: Dict[str, Tuple[str, ...]] = {
    "parent_unreachable": ("noack_retransmit_counter", "parent_change_counter"),
    "link_dynamics": tuple(f"rssi_{i}" for i in range(1, 11))
    + tuple(f"etx_{i}" for i in range(1, 11)),
    "neighbor_join": ("neighbor_num",),
}


def exp_fig5cf(tool: VN2, min_score: float = 0.15) -> Fig5cfResult:
    """Fig 5(c)-(f): locate the paper's four signature rows in Ψ."""
    display = tool.psi_display()
    matches: List[SignatureMatch] = []
    for signature, metrics in SIGNATURES.items():
        scores = np.array(
            [_signature_score(display[j], metrics) for j in range(display.shape[0])]
        )
        best = int(np.argmax(scores))
        if scores[best] >= min_score:
            matches.append(
                SignatureMatch(signature, best, float(scores[best]), display[best])
            )
        else:
            matches.append(SignatureMatch(signature, None, float(scores[best]), None))
    baseline_rows = [label.index for label in tool.labels if label.is_baseline]
    if baseline_rows:
        j = baseline_rows[0]
        matches.append(SignatureMatch("normal_states", j, 1.0, display[j]))
    else:
        matches.append(SignatureMatch("normal_states", None, 0.0, None))
    return Fig5cfResult(matches=matches)


# ----------------------------------------------------------------------
# Fig 5(g)
# ----------------------------------------------------------------------


@dataclass
class Fig5gResult:
    """Mean root-cause strengths under failure vs reboot ground truth."""

    failure_profile: np.ndarray  # length r
    reboot_profile: np.ndarray  # length r
    n_failure_states: int
    n_reboot_states: int
    profile_distance: float  # L1 distance between normalized profiles

    def to_text(self) -> str:
        rows = [
            (f"Ψ{j + 1}", f"{f:.4f}", f"{b:.4f}")
            for j, (f, b) in enumerate(
                zip(self.failure_profile, self.reboot_profile)
            )
        ]
        table = format_table(["root cause", "node failure", "node reboot"], rows)
        return (
            f"{table}\nprofiles differ by L1={self.profile_distance:.3f} "
            f"(failure n={self.n_failure_states}, reboot n={self.n_reboot_states})"
        )


def _event_states(
    states: StateMatrix,
    trace: TraceLike,
    kind: str,
    radius_m: float,
    slack_s: float,
) -> List[int]:
    """Indices of states observing an event of ``kind``.

    * ``node_reboot`` events are observed by the rebooted node itself —
      its next state shows every counter jumping back toward zero.
    * ``node_failure`` events are observed by the dead node's *neighbors*
      (the node itself goes silent): they see NOACK retransmits and parent
      changes.  Neighborhood comes from the trace's stored positions.

    One vectorized mask per event over the state columns.
    """
    positions = {
        int(k): tuple(v) for k, v in trace.metadata.get("positions", {}).items()
    }
    events = [g for g in trace.ground_truth if g.kind == kind]
    if positions:
        xs = np.array([positions[int(n)][0] for n in states.node_ids])
        ys = np.array([positions[int(n)][1] for n in states.node_ids])
    picked = np.zeros(len(states), dtype=bool)
    for event in events:
        in_time = (states.times_from - slack_s <= event.start) & (
            event.start <= states.times_to + slack_s
        )
        event_node = event.node_ids[0]
        if kind == "node_reboot":
            picked |= in_time & (states.node_ids == event_node)
            continue
        mask = in_time & (states.node_ids != event_node)
        if positions:  # the failed node's spatial neighborhood
            ex, ey = positions[event_node]
            mask &= (xs - ex) ** 2 + (ys - ey) ** 2 <= radius_m**2
        picked |= mask
    return [int(i) for i in np.flatnonzero(picked)]


def exp_fig5g(
    tool: VN2,
    trace: TraceLike,
    radius_m: float = 18.0,
    slack_s: float = 60.0,
) -> Fig5gResult:
    """Fig 5(g): strength distributions for the two ground-truth events."""
    states = build_states(trace)
    failure_idx = _event_states(states, trace, "node_failure", radius_m, slack_s)
    reboot_idx = _event_states(states, trace, "node_reboot", radius_m, slack_s)

    def profile(indices: List[int]) -> np.ndarray:
        if not indices:
            return np.zeros(tool.rank_)
        weights = sparsify_inferred(
            tool.correlation_strengths(states.select(indices))
        )
        return weights.mean(axis=0)

    failure_profile = profile(failure_idx)
    reboot_profile = profile(reboot_idx)

    # Distinguishability is judged on the *fault* rows: the baseline
    # (normal-states) vector soaks up similar mass in both profiles.
    fault_rows = np.array(
        [not label.is_baseline for label in tool.labels], dtype=bool
    )

    def normalize(v: np.ndarray) -> np.ndarray:
        masked = np.where(fault_rows, v, 0.0)
        total = masked.sum()
        return masked / total if total > 0 else masked

    distance = float(
        np.abs(normalize(failure_profile) - normalize(reboot_profile)).sum()
    )
    return Fig5gResult(
        failure_profile=failure_profile,
        reboot_profile=reboot_profile,
        n_failure_states=len(failure_idx),
        n_reboot_states=len(reboot_idx),
        profile_distance=distance,
    )


# ----------------------------------------------------------------------
# Fig 5(h) / 5(i)
# ----------------------------------------------------------------------


@dataclass
class Fig5hiResult:
    """Train-vs-test strength profiles for one scenario."""

    scenario: TestbedScenario
    train_profile: np.ndarray
    test_profile: np.ndarray
    profile_correlation: float  # Pearson r between the two profiles
    profile_distance: float  # L1 distance between sum-normalized profiles

    def to_text(self) -> str:
        rows = [
            (f"Ψ{j + 1}", f"{a:.4f}", f"{b:.4f}")
            for j, (a, b) in enumerate(zip(self.train_profile, self.test_profile))
        ]
        table = format_table(["root cause", "training", "testing"], rows)
        return (
            f"scenario={self.scenario.value}\n{table}\n"
            f"train/test correlation r={self.profile_correlation:.3f}"
        )


def exp_fig5hi(
    scenario: TestbedScenario,
    seed: int = 7,
    rank: int = TESTBED_RANK,
    trace: Optional[TraceLike] = None,
    jobs: int = 1,
) -> Fig5hiResult:
    """Fig 5(h) or 5(i): do test states reuse the training root causes?"""
    if trace is None:
        trace = generate_scenario_frames([scenario], seed=seed, jobs=jobs)[
            scenario
        ]
    train, test = train_test_split(trace)
    tool = fit_testbed_tool(train, rank)
    train_w = sparsify_inferred(tool.correlation_strengths(tool.states_))
    test_states = build_states(test)
    test_w = sparsify_inferred(tool.correlation_strengths(test_states))
    train_profile = train_w.mean(axis=0)
    test_profile = test_w.mean(axis=0)
    if train_profile.std() > 0 and test_profile.std() > 0:
        correlation = float(np.corrcoef(train_profile, test_profile)[0, 1])
    else:
        correlation = 0.0

    def normalize(v: np.ndarray) -> np.ndarray:
        total = v.sum()
        return v / total if total > 0 else v

    distance = float(
        np.abs(normalize(train_profile) - normalize(test_profile)).sum()
    )
    return Fig5hiResult(
        scenario=scenario,
        train_profile=train_profile,
        test_profile=test_profile,
        profile_correlation=correlation,
        profile_distance=distance,
    )


def exp_fig5hi_both(
    seed: int = 7,
    rank: int = TESTBED_RANK,
    jobs: int = 1,
) -> Dict[TestbedScenario, Fig5hiResult]:
    """Fig 5(h) *and* 5(i) from one two-scenario grid.

    Both scenario traces are generated through the scenario runner in a
    single submission, so ``jobs=2`` runs them concurrently.
    """
    frames = generate_scenario_frames(
        list(TestbedScenario), seed=seed, jobs=jobs
    )
    return {
        scenario: exp_fig5hi(scenario, seed=seed, rank=rank, trace=frame)
        for scenario, frame in frames.items()
    }
