"""Harnesses for the paper's Figures 3 and 4 (trace study on CitySee).

* Fig 3(a): metric variations over time, with exceptions as outlier points.
* Fig 3(b): approximation accuracy vs r, dense W vs sparse W̄.
* Fig 3(c): which Ψ rows each exception correlates with.
* Fig 4: six Ψ row profiles in three families.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.analysis.reporting import format_series, format_table
from repro.core.exceptions import detect_exceptions
from repro.core.interpretation import RootCauseLabel
from repro.core.normalization import MinMaxNormalizer
from repro.core.pipeline import VN2, VN2Config
from repro.core.rank_selection import choose_rank, rank_sweep
from repro.core.states import build_states
from repro.metrics.catalog import METRIC_INDEX
from repro.traces.frame import TraceFrame
from repro.traces.records import Trace

#: Harness inputs: the columnar frame is the fast path, a legacy Trace is
#: columnarized once inside build_states.
TraceLike = Union[Trace, TraceFrame]

DEFAULT_FIG3A_METRICS = ("voltage", "rssi_1", "radio_on_time", "receive_counter")


# ----------------------------------------------------------------------
# Fig 3(a)
# ----------------------------------------------------------------------


@dataclass
class MetricSeries:
    """Delta series of one metric across all states (time-ordered)."""

    metric: str
    times: np.ndarray
    deltas: np.ndarray
    is_exception: np.ndarray  # per-state flags from the ε rule


@dataclass
class Fig3aResult:
    """Metric variations over time with flagged exceptions."""

    series: List[MetricSeries]
    n_states: int
    n_exceptions: int

    @property
    def exception_fraction(self) -> float:
        return self.n_exceptions / self.n_states if self.n_states else 0.0

    def to_text(self) -> str:
        lines = [
            f"states={self.n_states}  exceptions={self.n_exceptions} "
            f"({100 * self.exception_fraction:.1f}%)"
        ]
        for s in self.series:
            lines.append(format_series(s.metric, s.times, s.deltas))
        return "\n".join(lines)


def exp_fig3a(
    trace: TraceLike,
    metrics: Sequence[str] = DEFAULT_FIG3A_METRICS,
    threshold_ratio: float = 0.01,
) -> Fig3aResult:
    """Fig 3(a): per-metric delta series + ε-rule exception flags."""
    states = build_states(trace)
    exceptions = detect_exceptions(states, threshold_ratio=threshold_ratio)
    flags = np.zeros(len(states), dtype=bool)
    flags[exceptions.indices] = True
    order = np.argsort(states.times_to, kind="stable")
    times = states.times_to[order]
    series = []
    for metric in metrics:
        idx = METRIC_INDEX[metric]
        series.append(
            MetricSeries(
                metric=metric,
                times=times,
                deltas=states.values[order, idx],
                is_exception=flags[order],
            )
        )
    return Fig3aResult(
        series=series, n_states=len(states), n_exceptions=len(exceptions)
    )


# ----------------------------------------------------------------------
# Fig 3(b)
# ----------------------------------------------------------------------


@dataclass
class Fig3bResult:
    """Rank sweep: dense vs sparse accuracy curves + the chosen r."""

    ranks: np.ndarray
    accuracy_dense: np.ndarray
    accuracy_sparse: np.ndarray
    chosen_rank: int
    n_exceptions: int

    def to_text(self) -> str:
        rows = [
            (int(r), f"{d:.3f}", f"{s:.3f}", f"{s - d:.3f}")
            for r, d, s in zip(self.ranks, self.accuracy_dense, self.accuracy_sparse)
        ]
        table = format_table(["r", "alpha (dense W)", "alpha (sparse W)", "gap"], rows)
        return f"{table}\nchosen r = {self.chosen_rank}"


def exp_fig3b(
    trace: TraceLike,
    ranks: Sequence[int] = tuple(range(5, 41, 5)),
    retention: float = 0.9,
    threshold_ratio: float = 0.01,
) -> Fig3bResult:
    """Fig 3(b): approximation accuracy vs r, dense and sparsified."""
    states = build_states(trace)
    exceptions = detect_exceptions(states, threshold_ratio=threshold_ratio)
    normalizer = MinMaxNormalizer.fit(exceptions.states.values, pad_fraction=0.05)
    E = normalizer.transform(exceptions.states.values)
    sweep = rank_sweep(E, ranks, retention=retention)
    chosen = choose_rank(sweep)
    r, dense, sparse = sweep.as_arrays()
    return Fig3bResult(
        ranks=r,
        accuracy_dense=dense,
        accuracy_sparse=sparse,
        chosen_rank=chosen,
        n_exceptions=len(exceptions),
    )


# ----------------------------------------------------------------------
# Fig 3(c)
# ----------------------------------------------------------------------


@dataclass
class Fig3cResult:
    """Exception x root-cause correlation scatter."""

    points: List[Tuple[int, int]]  # (exception index, Ψ row index)
    weights: np.ndarray  # (n_exceptions, r)
    mean_causes_per_exception: float
    max_causes_per_exception: int
    tool: VN2

    def to_text(self) -> str:
        r = self.weights.shape[1]
        usage = (self.weights > 0).mean(axis=0)
        rows = [(f"Ψ{j + 1}", f"{100 * usage[j]:.1f}%") for j in range(r)]
        table = format_table(["root cause", "used by exceptions"], rows)
        return (
            f"{table}\n"
            f"mean active causes/exception = {self.mean_causes_per_exception:.2f}"
            f" (max {self.max_causes_per_exception})"
        )


def exp_fig3c(
    trace: TraceLike,
    rank: Optional[int] = 25,
    retention: float = 0.9,
) -> Fig3cResult:
    """Fig 3(c): correlate each detected exception with Ψ rows via NNLS.

    Inferred weights are sparsified row-wise (Algorithm 2 at inference
    time) so each exception keeps only the few causes carrying 90 % of its
    explanation mass — the scatter's points.
    """
    from repro.core.inference import sparsify_inferred

    tool = VN2(VN2Config(rank=rank, filter_exceptions=True)).fit(trace)
    exceptions = tool.exceptions_
    weights = sparsify_inferred(
        tool.correlation_strengths(exceptions.states), retention=retention
    )
    points: List[Tuple[int, int]] = []
    causes_per_exception: List[int] = []
    for i in range(weights.shape[0]):
        active = np.flatnonzero(weights[i] > 0)
        causes_per_exception.append(len(active))
        points.extend((i, int(j)) for j in active)
    return Fig3cResult(
        points=points,
        weights=weights,
        mean_causes_per_exception=float(np.mean(causes_per_exception)),
        max_causes_per_exception=int(np.max(causes_per_exception)),
        tool=tool,
    )


# ----------------------------------------------------------------------
# Fig 4
# ----------------------------------------------------------------------


@dataclass
class Fig4Row:
    """One displayed root-cause vector."""

    index: int
    family: str
    profile: np.ndarray  # display units, length 43
    label: RootCauseLabel


@dataclass
class Fig4Result:
    """Six Ψ rows, two per family (environment / link / protocol)."""

    rows: List[Fig4Row]
    families_covered: Tuple[str, ...]

    def to_text(self) -> str:
        out = []
        for row in self.rows:
            tops = ", ".join(
                f"{name}={value:+.2f}" for name, value in row.label.top_metrics[:4]
            )
            out.append(
                f"Ψ{row.index + 1} [{row.family}]  {tops}\n"
                f"    -> {row.label.explanation}"
            )
        return "\n".join(out)


def exp_fig4(tool: VN2, per_family: int = 2) -> Fig4Result:
    """Fig 4: pick the strongest non-baseline rows of each family."""
    display = tool.psi_display()
    energies = np.linalg.norm(display, axis=1)
    by_family: Dict[str, List[int]] = {}
    for label in tool.labels:
        if label.is_baseline:
            continue
        by_family.setdefault(label.family, []).append(label.index)
    rows: List[Fig4Row] = []
    for family in ("environment", "link", "protocol"):
        candidates = by_family.get(family, [])
        candidates.sort(key=lambda j: -energies[j])
        for j in candidates[:per_family]:
            rows.append(
                Fig4Row(
                    index=j,
                    family=family,
                    profile=display[j],
                    label=tool.labels[j],
                )
            )
    families = tuple(sorted({r.family for r in rows}))
    return Fig4Result(rows=rows, families_covered=families)
