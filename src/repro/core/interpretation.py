"""Interpretation of Ψ rows: from root-cause vectors to explanations.

The paper labels every representative vector by hand ("Problem 2 ... label
these root causes with comprehensive network interpretation"), using the
metric/hazard knowledge of Table I.  This module mechanises that step:

* each Ψ row is displayed in signed [-1, 1] units (via the normalizer),
* its dominant metrics are extracted,
* hazards from the Table I knowledge base are scored by how strongly
  their trigger metrics move in the row,
* the row is assigned a *family* — environment (C1 metrics dominate),
  link (C2) or protocol (C3) — reproducing Fig 4's three categories.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.metrics.catalog import (
    HAZARDS,
    METRIC_NAMES,
    METRICS,
    PacketClass,
)

FAMILY_BY_PACKET = {
    PacketClass.C1: "environment",
    PacketClass.C2: "link",
    PacketClass.C3: "protocol",
}


@dataclass
class RootCauseLabel:
    """Human-readable interpretation of one Ψ row.

    Attributes:
        index: Row index in Ψ.
        family: ``environment`` / ``link`` / ``protocol`` (Fig 4's types).
        top_metrics: (metric, displayed value) pairs, strongest first.
        hazards: (hazard name, score) pairs, strongest first.
        explanation: Text built from the best-matching hazard.
        energy: Unnormalized row magnitude (low = near-baseline vector).
        is_baseline: True when the row mostly encodes normal behaviour.
    """

    index: int
    family: str
    top_metrics: List[Tuple[str, float]]
    hazards: List[Tuple[str, float]]
    explanation: str
    energy: float
    is_baseline: bool

    @property
    def primary_hazard(self) -> Optional[str]:
        """Name of the best-matching hazard, if any."""
        return self.hazards[0][0] if self.hazards else None


class RootCauseInterpreter:
    """Scores Ψ rows against the Table I hazard knowledge base."""

    def __init__(
        self,
        metric_names: Sequence[str] = METRIC_NAMES,
        top_k: int = 5,
        dominance: float = 0.35,
        baseline_quantile: float = 0.25,
    ):
        """
        Args:
            metric_names: Metric order of the Ψ columns.
            top_k: Max dominant metrics reported per row.
            dominance: A metric is "dominant" if its |displayed value| is at
                least this fraction of the row's maximum.
            baseline_quantile: Rows whose energy falls below this quantile
                of all rows' energies are flagged as baseline/normal.
        """
        self.metric_names = list(metric_names)
        self.top_k = top_k
        self.dominance = dominance
        self.baseline_quantile = baseline_quantile
        self._family_of_metric = {
            m.name: FAMILY_BY_PACKET[m.packet] for m in METRICS
        }
        # Precomputed column indices so scoring is pure array math.
        index_of = {name: i for i, name in enumerate(self.metric_names)}
        self._family_indices = {
            family: np.array(
                [
                    i
                    for i, name in enumerate(self.metric_names)
                    if self._family_of_metric[name] == family
                ],
                dtype=np.intp,
            )
            for family in ("environment", "link", "protocol")
        }
        self._counter_idx = self._family_indices["protocol"]
        self._gauge_idx = np.array(
            sorted(
                set(range(len(self.metric_names)))
                - set(self._counter_idx.tolist())
            ),
            dtype=np.intp,
        )
        #: (hazard name, trigger columns, trigger directions, specificity)
        self._hazard_triggers: List[
            Tuple[str, np.ndarray, np.ndarray, float]
        ] = []
        for hazard in HAZARDS:
            idx, directions = [], []
            for position, trigger in enumerate(hazard.triggers):
                column = index_of.get(trigger)
                if column is None:
                    continue
                idx.append(column)
                directions.append(hazard.direction_of(position))
            if not idx:
                continue
            specificity = float(np.sqrt(min(len(idx), 5) / 5.0))
            self._hazard_triggers.append(
                (
                    hazard.name,
                    np.array(idx, dtype=np.intp),
                    np.array(directions, dtype=float),
                    specificity,
                )
            )

    # ------------------------------------------------------------------
    # scoring primitives
    # ------------------------------------------------------------------

    def dominant_metrics(self, display_row: np.ndarray) -> List[Tuple[str, float]]:
        """Strongest metrics of a displayed ([-1, 1]) Ψ row."""
        magnitudes = np.abs(display_row)
        max_mag = float(magnitudes.max()) if magnitudes.size else 0.0
        if max_mag <= 0:
            return []
        order = np.argsort(magnitudes)[::-1]
        picked = [
            (self.metric_names[i], float(display_row[i]))
            for i in order[: self.top_k]
            if magnitudes[i] >= self.dominance * max_mag
        ]
        return picked

    def family_of(self, display_row: np.ndarray) -> str:
        """Which metric family (C1/C2/C3) carries most of the row's energy."""
        magnitudes = np.abs(np.asarray(display_row, dtype=float))
        sums: Dict[str, float] = {
            family: float(magnitudes[idx].sum())
            for family, idx in self._family_indices.items()
        }
        return max(sums, key=sums.get)

    def counter_reset_score(self, display_row: np.ndarray) -> float:
        """How strongly the row looks like a reboot's counter reset.

        A reboot zeroes every cumulative counter at once, so its state
        delta has *all* C3 counters strongly negative — and distinctly
        more negative than the gauge metrics, which a reboot barely moves.
        (The second condition guards against "dark" NMF rows where every
        metric sits below the rest point equally.)  Returns a positive
        reset score, or 0 when the row is not reset-like.
        """
        rows = np.atleast_2d(np.asarray(display_row, dtype=float))
        return float(self._counter_reset_batch(rows)[0])

    def _counter_reset_batch(self, rows: np.ndarray) -> np.ndarray:
        """Reset scores for every row of a displayed (n, m) matrix."""
        if self._counter_idx.size == 0 or self._gauge_idx.size == 0:
            return np.zeros(rows.shape[0])
        counter_mean = rows[:, self._counter_idx].mean(axis=1)
        gauge_mean = rows[:, self._gauge_idx].mean(axis=1)
        reset_like = (counter_mean < -0.5) & (counter_mean < gauge_mean - 0.25)
        return np.where(reset_like, -counter_mean, 0.0)

    def hazard_scores(self, display_row: np.ndarray) -> List[Tuple[str, float]]:
        """Hazards ranked by mean |movement| of their trigger metrics.

        A strong whole-counter reset overrides trigger matching: the row
        is a reboot signature, and per-counter hazards (which also see
        "movement" in the reset) would otherwise shadow it.
        """
        rows = np.atleast_2d(np.asarray(display_row, dtype=float))
        return self._hazard_scores_batch(rows)[0]

    def _hazard_scores_batch(
        self, rows: np.ndarray
    ) -> List[List[Tuple[str, float]]]:
        """Ranked hazard lists for every row of a displayed (n, m) matrix."""
        scored: List[List[Tuple[str, float]]] = [[] for _ in range(len(rows))]
        for name, idx, directions, specificity in self._hazard_triggers:
            sub = rows[:, idx]
            # Directional triggers: only movement in the expected direction
            # counts as evidence; undirected ones count |movement|.
            contrib = np.where(
                directions == 0, np.abs(sub), np.maximum(0.0, sub * directions)
            )
            # Specificity weighting: consistent movement across many
            # trigger metrics is far stronger evidence than one large
            # metric (which any noisy row can produce by chance).
            scores = contrib.mean(axis=1) * specificity
            for i in np.flatnonzero(scores > 0):
                scored[int(i)].append((name, float(scores[i])))
        resets = self._counter_reset_batch(rows)
        for i in np.flatnonzero(resets > 0.0):
            row_scores = [(n, s) for n, s in scored[i] if n != "node_reboot"]
            row_scores.append(("node_reboot", 1.0 + float(resets[i])))
            scored[i] = row_scores
        for row_scores in scored:
            row_scores.sort(key=lambda pair: pair[1], reverse=True)
        return scored

    # ------------------------------------------------------------------
    # labelling
    # ------------------------------------------------------------------

    def label_row(
        self,
        index: int,
        display_row: np.ndarray,
        energy: float,
        is_baseline: bool,
        hazards: Optional[List[Tuple[str, float]]] = None,
    ) -> RootCauseLabel:
        """Build the label for one displayed Ψ row.

        ``hazards`` may carry pre-computed scores (from the batch path);
        when omitted they are computed for this row alone.
        """
        if hazards is None:
            hazards = self.hazard_scores(display_row)
        top_metrics = self.dominant_metrics(display_row)
        if is_baseline:
            explanation = (
                "Near-baseline vector: it mostly reassembles normal network "
                "states rather than a fault."
            )
        elif hazards:
            best = next(h for h in HAZARDS if h.name == hazards[0][0])
            explanation = f"{best.event} {best.impact}"
        else:
            explanation = "No known hazard signature matches this vector."
        return RootCauseLabel(
            index=index,
            family=self.family_of(display_row),
            top_metrics=top_metrics,
            hazards=hazards,
            explanation=explanation,
            energy=energy,
            is_baseline=is_baseline,
        )

    def interpret(
        self,
        psi_display: np.ndarray,
        energies: Optional[np.ndarray] = None,
        usage: Optional[np.ndarray] = None,
        baseline_usage_factor: float = 2.0,
    ) -> List[RootCauseLabel]:
        """Label every row of a displayed Ψ matrix.

        Args:
            psi_display: (r, m) matrix in signed display units.
            energies: Optional unnormalized row magnitudes (reported on the
                labels for reference).
            usage: Optional per-row mean correlation strength over the
                training states.  The paper identifies the *normal states*
                vector by usage ("Ψ7 is used much more times than any other
                feature"): a row whose usage share exceeds
                ``baseline_usage_factor / r`` is flagged as baseline.
            baseline_usage_factor: Multiple of the uniform share (1/r) a
                row's usage must exceed to be considered baseline.
        """
        psi_display = np.atleast_2d(np.asarray(psi_display, dtype=float))
        r = psi_display.shape[0]
        if energies is None:
            energies = np.linalg.norm(psi_display, axis=1)
        energies = np.asarray(energies, dtype=float).ravel()

        baseline_flags = np.zeros(r, dtype=bool)
        if usage is not None and r > 1:
            usage = np.asarray(usage, dtype=float).ravel()
            total = usage.sum()
            if total > 0:
                share = usage / total
                baseline_flags = share > baseline_usage_factor / r

        all_hazards = self._hazard_scores_batch(psi_display)
        labels = []
        for j in range(r):
            labels.append(
                self.label_row(
                    index=j,
                    display_row=psi_display[j],
                    energy=float(energies[j]),
                    is_baseline=bool(baseline_flags[j]),
                    hazards=all_hazards[j],
                )
            )
        return labels
