"""Sparsification of the correlation-strength matrix W (Algorithm 2).

Occam's razor, applied to diagnosis: each exception should be explained by
*few* root causes.  Algorithm 2 normalizes W, sorts its entries in
descending order, and keeps moving the largest entries into a sparse
matrix W̄ until W̄ retains 90 % of W's mass; everything else becomes zero.

The retained-mass criterion here uses the L1 norm (sum of magnitudes),
which makes "90 % of the information" exact and monotone under the
greedy element moves the algorithm performs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class SparsifyResult:
    """Outcome of Algorithm 2.

    Attributes:
        W_sparse: W with the smallest entries zeroed.
        mask: Boolean array, True where entries were kept.
        kept_fraction: Fraction of entries kept.
        retained_mass: Fraction of L1 mass actually retained (>= target).
    """

    W_sparse: np.ndarray
    mask: np.ndarray
    kept_fraction: float
    retained_mass: float


def sparsify_weights(
    W: np.ndarray,
    retention: float = 0.9,
    row_normalize: bool = False,
) -> SparsifyResult:
    """Keep the largest entries of W covering ``retention`` of its L1 mass.

    Args:
        W: (n, r) non-negative correlation-strength matrix.
        retention: Target retained mass fraction (paper: 0.9).
        row_normalize: Measure mass per *row* instead of globally, so every
            exception keeps ~90 % of its own explanation mass.  The paper's
            "normalization W" step is ambiguous; global is the default and
            the row variant is exercised by the ablation bench.

    Returns:
        A :class:`SparsifyResult`; ``W_sparse`` has the same shape as W.
    """
    W = np.asarray(W, dtype=float)
    if W.ndim != 2:
        raise ValueError(f"W must be 2-D, got shape {W.shape}")
    if not (0.0 < retention <= 1.0):
        raise ValueError(f"retention must be in (0, 1], got {retention}")
    if np.any(W < 0):
        raise ValueError("W must be non-negative (it comes from NMF)")

    if row_normalize:
        mask = np.zeros(W.shape, dtype=bool)
        for i in range(W.shape[0]):
            mask[i] = _mass_mask(W[i], retention)
    else:
        mask = _mass_mask(W.ravel(), retention).reshape(W.shape)

    W_sparse = np.where(mask, W, 0.0)
    total = float(np.abs(W).sum())
    retained = float(np.abs(W_sparse).sum()) / total if total > 0 else 1.0
    return SparsifyResult(
        W_sparse=W_sparse,
        mask=mask,
        kept_fraction=float(mask.mean()) if mask.size else 1.0,
        retained_mass=retained,
    )


def _mass_mask(values: np.ndarray, retention: float) -> np.ndarray:
    """Boolean mask keeping the largest values covering ``retention`` mass."""
    flat = np.abs(values.ravel())
    total = flat.sum()
    mask = np.zeros(flat.shape, dtype=bool)
    if total <= 0:
        return mask.reshape(values.shape)
    order = np.argsort(flat)[::-1]
    cumulative = np.cumsum(flat[order])
    # Number of entries needed to reach the target mass (at least one).
    needed = int(np.searchsorted(cumulative, retention * total) + 1)
    needed = min(needed, flat.size)
    mask[order[:needed]] = True
    return mask.reshape(values.shape)
