"""Min-max normalization of state matrices for NMF.

NMF requires a non-negative input, but network-state vectors are *signed*
deltas (voltage can fall, RSSI can drop, counters reset on reboot).  The
paper glosses over this ("all metrics are positively grown over time");
its own Ψ plots nevertheless span [-1, 1].  We make the step explicit: an
affine per-metric map onto [0, 1], fit on the training exceptions, with an
exact inverse for display and interpretation.

Under this map a zero delta lands at a metric-specific *rest point* in
[0, 1]; Ψ rows are displayed re-centred at that rest point and scaled to
[-1, 1] (:meth:`MinMaxNormalizer.display`), which is the convention of the
paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class MinMaxNormalizer:
    """Per-column affine map onto [0, 1] with exact inverse.

    Attributes:
        lo: Per-metric minimum seen at fit time.
        hi: Per-metric maximum seen at fit time.
        method: How the ranges were fit (``"robust"`` or ``"minmax"``) —
            recorded so a saved model round-trips its full recipe.
        robust_quantile: The deviation quantile used by ``"robust"``.
    """

    lo: np.ndarray
    hi: np.ndarray
    method: str = "robust"
    robust_quantile: float = 0.98

    _MIN_SPAN = 1e-9

    @classmethod
    def fit(
        cls,
        matrix: np.ndarray,
        pad_fraction: float = 0.0,
        method: str = "robust",
        robust_quantile: float = 0.98,
    ) -> "MinMaxNormalizer":
        """Fit column ranges on a (n, m) matrix.

        Args:
            matrix: Training data (signed deltas).
            pad_fraction: Widen each range by this fraction on both sides,
                so mildly out-of-range future states still map inside (0,1).
            method: ``"robust"`` (default) centers each column at its
                median and scales by the ``robust_quantile`` of absolute
                deviations; extreme outliers clip to the range edges.
                ``"minmax"`` uses the raw column min/max.

                Robust scaling matters for counter metrics: a reboot's
                counter reset is a delta of minus-everything-accumulated
                (often 10^4-10^5), while a routing loop inflates the same
                counter by a few thousand.  Raw min-max would let the
                reset stretch the range so far that the inflation becomes
                numerically invisible; robust scaling saturates both
                tails instead.
            robust_quantile: Which quantile of |x - median| sets the scale.
        """
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] == 0:
            raise ValueError("need a non-empty 2-D matrix to fit")
        if method == "minmax":
            lo = matrix.min(axis=0)
            hi = matrix.max(axis=0)
        elif method == "robust":
            median = np.median(matrix, axis=0)
            deviations = np.abs(matrix - median)
            scale = np.quantile(deviations, robust_quantile, axis=0)
            # Floor the scale so constant-in-training columns still get a
            # sane range (2 % of the most extreme deviation seen).
            scale = np.maximum(scale, 0.02 * deviations.max(axis=0))
            scale = np.maximum(scale, cls._MIN_SPAN)
            lo = median - scale
            hi = median + scale
        else:
            raise ValueError(f"unknown method {method!r}; use 'robust' or 'minmax'")
        if pad_fraction:
            span = hi - lo
            lo = lo - pad_fraction * span
            hi = hi + pad_fraction * span
        return cls(lo=lo, hi=hi, method=method, robust_quantile=robust_quantile)

    def _span(self) -> np.ndarray:
        return np.maximum(self.hi - self.lo, self._MIN_SPAN)

    def transform(self, matrix: np.ndarray, clip: bool = True) -> np.ndarray:
        """Map signed deltas into [0, 1] (clipping out-of-range values)."""
        matrix = np.asarray(matrix, dtype=float)
        scaled = (matrix - self.lo) / self._span()
        if clip:
            scaled = np.clip(scaled, 0.0, 1.0)
        return scaled

    def inverse(self, matrix: np.ndarray) -> np.ndarray:
        """Map normalized values back to signed-delta units."""
        return np.asarray(matrix, dtype=float) * self._span() + self.lo

    def rest_point(self) -> np.ndarray:
        """Where a zero delta lands in normalized space, per metric."""
        zero = np.zeros((1, self.lo.shape[0]))
        return self.transform(zero, clip=True)[0]

    def display(self, psi: np.ndarray) -> np.ndarray:
        """Re-centre Ψ rows at the zero-delta rest point, scaled to [-1, 1].

        This is the paper's figure convention: a metric that does not move
        under a root cause sits at 0; positive/negative excursions keep
        their sign and are scaled by the largest excursion in the row.
        """
        psi = np.atleast_2d(np.asarray(psi, dtype=float))
        centred = psi - self.rest_point()
        max_abs = np.abs(centred).max(axis=1, keepdims=True)
        max_abs = np.maximum(max_abs, self._MIN_SPAN)
        return centred / max_abs
