"""Exception detection: which states feed the NMF.

Most of a healthy network's states are boring; feeding them all to NMF
makes normal behaviour "conceal representability of network exceptions"
(paper, Section IV-B).  The paper's rule: compute each metric's mean,
measure every state's deviation ``ε_u`` from the mean, and flag the state
as an exception when ``ε_u / max(ε) >= 0.01``.

Deviation here is the squared z-score sum (deviation from the mean in
units of each metric's own spread) — without per-metric scaling, a large-
magnitude metric such as ``light`` would drown out every counter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.states import StateMatrix


@dataclass
class ExceptionSet:
    """The detected exception states.

    Attributes:
        states: The exception rows (a view-like :class:`StateMatrix`).
        indices: Row indices into the original state matrix.
        epsilon: Deviation score of every original state (not just
            exceptions), for plotting Fig 3(a)-style series.
        threshold_ratio: The ``ε/max(ε)`` cutoff used.
    """

    states: StateMatrix
    indices: np.ndarray
    epsilon: np.ndarray
    threshold_ratio: float

    def __len__(self) -> int:
        return len(self.states)

    @property
    def exception_fraction(self) -> float:
        """Share of all states flagged as exceptions."""
        if self.epsilon.size == 0:
            return 0.0
        return len(self.states) / self.epsilon.size


def deviation_scores(values: np.ndarray) -> np.ndarray:
    """Per-state deviation ``ε_u``: sum of squared z-scores vs column means."""
    values = np.asarray(values, dtype=float)
    if values.ndim != 2:
        raise ValueError("expected a 2-D state matrix")
    if values.shape[0] == 0:
        return np.zeros(0)
    mean = values.mean(axis=0)
    std = values.std(axis=0)
    std = np.where(std < 1e-12, 1.0, std)
    z = (values - mean) / std
    return (z * z).sum(axis=1)


def detect_exceptions(
    states,
    threshold_ratio: float = 0.01,
    min_exceptions: int = 2,
    epsilon: Optional[np.ndarray] = None,
) -> ExceptionSet:
    """Flag exception states by the paper's ``ε/max(ε)`` rule.

    Args:
        states: All network states — a :class:`StateMatrix`, or a
            :class:`~repro.traces.frame.TraceFrame` / ``Trace`` that is
            differenced with :func:`repro.core.states.build_states` first.
        threshold_ratio: A state is an exception when its deviation is at
            least this fraction of the maximum deviation (paper: 0.01).
        min_exceptions: If the rule selects fewer rows than this, the
            top-``min_exceptions`` states by deviation are taken instead
            (degenerate traces otherwise produce an empty training set).
        epsilon: Pre-computed :func:`deviation_scores` of ``states`` (the
            pipeline computes them once for its online scoring stats and
            passes them here to avoid a second pass).
    """
    if not isinstance(states, StateMatrix):
        from repro.core.states import build_states

        states = build_states(states)
    if epsilon is None:
        epsilon = deviation_scores(states.values)
    epsilon = np.asarray(epsilon, dtype=float)
    if epsilon.size == 0:
        return ExceptionSet(
            states=states,
            indices=np.zeros(0, dtype=int),
            epsilon=epsilon,
            threshold_ratio=threshold_ratio,
        )
    max_eps = float(epsilon.max())
    if max_eps <= 0.0:
        indices = np.zeros(0, dtype=int)
    else:
        indices = np.flatnonzero(epsilon / max_eps >= threshold_ratio)
    if len(indices) < min_exceptions:
        indices = np.argsort(epsilon)[::-1][:min_exceptions]
        indices = np.sort(indices)
    return ExceptionSet(
        states=states.select(indices.tolist()),
        indices=indices,
        epsilon=epsilon,
        threshold_ratio=threshold_ratio,
    )
