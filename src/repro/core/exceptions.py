"""Exception detection: which states feed the NMF.

Most of a healthy network's states are boring; feeding them all to NMF
makes normal behaviour "conceal representability of network exceptions"
(paper, Section IV-B).  The paper's rule: compute each metric's mean,
measure every state's deviation ``ε_u`` from the mean, and flag the state
as an exception when ``ε_u / max(ε) >= 0.01``.

Deviation here is the squared z-score sum (deviation from the mean in
units of each metric's own spread) — without per-metric scaling, a large-
magnitude metric such as ``light`` would drown out every counter.

The rule is implemented once, incrementally, in
:class:`StreamingExceptionDetector`: states are ingested one packet (or
one chunk) at a time, Welford/Chan accumulators maintain running
mean/variance for O(1) online scoring, and :meth:`~
StreamingExceptionDetector.finalize` applies the paper's batch rule over
everything ingested.  The batch :func:`detect_exceptions` is a thin
replay — feed all states, finalize — and a packet-at-a-time replay
produces a bit-identical :class:`ExceptionSet` (finalization reduces the
same buffered rows with the same exact two-pass statistics; the Welford
running stats serve only the *online* scores, where no finished trace
exists to take a mean over).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

import numpy as np

from repro.core.states import StateMatrix
from repro.metrics.catalog import NUM_METRICS


@dataclass
class ExceptionSet:
    """The detected exception states.

    Attributes:
        states: The exception rows (a view-like :class:`StateMatrix`).
        indices: Row indices into the original state matrix.
        epsilon: Deviation score of every original state (not just
            exceptions), for plotting Fig 3(a)-style series.
        threshold_ratio: The ``ε/max(ε)`` cutoff used.
    """

    states: StateMatrix
    indices: np.ndarray
    epsilon: np.ndarray
    threshold_ratio: float

    def __len__(self) -> int:
        return len(self.states)

    @property
    def exception_fraction(self) -> float:
        """Share of all states flagged as exceptions."""
        if self.epsilon.size == 0:
            return 0.0
        return len(self.states) / self.epsilon.size


def deviation_scores(values: np.ndarray) -> np.ndarray:
    """Per-state deviation ``ε_u``: sum of squared z-scores vs column means."""
    values = np.asarray(values, dtype=float)
    if values.ndim != 2:
        raise ValueError("expected a 2-D state matrix")
    if values.shape[0] == 0:
        return np.zeros(0)
    mean = values.mean(axis=0)
    std = values.std(axis=0)
    std = np.where(std < 1e-12, 1.0, std)
    z = (values - mean) / std
    return (z * z).sum(axis=1)


class StreamingExceptionDetector:
    """Incremental exception detection over an unbounded state stream.

    Two faces, one accumulator:

    * **Online** — :meth:`update` folds each arriving state into Welford
      (growing window) or windowed (sliding window) mean/variance
      accumulators in O(metrics) time and tracks the running maximum
      deviation, so :meth:`score` / :meth:`is_exception` give the paper's
      ``ε/max(ε)`` ratio *as of now*, with memory independent of how many
      states have streamed past (when ``keep_states=False``).
    * **Replay** — with ``keep_states=True`` (the default) ingested rows
      are also buffered, and :meth:`finalize` applies the exact batch
      rule over them: two-pass mean/std (not the running estimates), the
      ``ε/max(ε)`` cutoff and the ``min_exceptions`` floor.  Feeding one
      chunk or one packet at a time buffers identical rows, so finalize
      is bit-identical either way — this is what makes the batch
      :func:`detect_exceptions` a thin replay over this class.

    Args:
        threshold_ratio: The ``ε/max(ε)`` cutoff (paper: 0.01).
        min_exceptions: Floor on the finalized exception count.
        window: Sliding-window length for the online statistics; ``None``
            (default) grows forever (pure Welford).
        keep_states: Buffer ingested rows for :meth:`finalize`.  Set to
            False for pure online monitoring with bounded memory (then
            only :meth:`score` / :meth:`is_exception` are available).
    """

    def __init__(
        self,
        threshold_ratio: float = 0.01,
        min_exceptions: int = 2,
        window: Optional[int] = None,
        keep_states: bool = True,
    ):
        if window is not None and window < 2:
            raise ValueError(f"window must be >= 2, got {window}")
        self.threshold_ratio = threshold_ratio
        self.min_exceptions = min_exceptions
        self.window = window
        self.keep_states = keep_states
        self.count = 0
        self._mean: Optional[np.ndarray] = None
        self._m2: Optional[np.ndarray] = None
        self._max_eps = 0.0
        self._buffer: List[np.ndarray] = []
        self._window_rows: Optional[Deque[np.ndarray]] = (
            deque() if window is not None else None
        )

    # -- online accumulation ------------------------------------------

    @property
    def mean(self) -> Optional[np.ndarray]:
        """Running per-metric mean (None before the first update)."""
        return None if self._mean is None else self._mean.copy()

    @property
    def std(self) -> Optional[np.ndarray]:
        """Running per-metric standard deviation (floored like the batch
        rule: constant metrics get spread 1.0)."""
        if self._mean is None or self.count == 0:
            return None
        var = np.maximum(self._m2 / self.count, 0.0)
        std = np.sqrt(var)
        return np.where(std < 1e-12, 1.0, std)

    def _welford_add(self, row: np.ndarray) -> None:
        if self._mean is None:
            self._mean = np.zeros_like(row)
            self._m2 = np.zeros_like(row)
        self.count += 1
        delta = row - self._mean
        self._mean = self._mean + delta / self.count
        self._m2 = self._m2 + delta * (row - self._mean)

    def _welford_remove(self, row: np.ndarray) -> None:
        if self.count <= 1:
            self.count = 0
            self._mean = np.zeros_like(row)
            self._m2 = np.zeros_like(row)
            return
        mean_after = (self.count * self._mean - row) / (self.count - 1)
        self._m2 = self._m2 - (row - mean_after) * (row - self._mean)
        self._m2 = np.maximum(self._m2, 0.0)  # guard round-off
        self._mean = mean_after
        self.count -= 1

    def _merge_chunk(self, chunk: np.ndarray) -> None:
        """Chan's parallel update: fold a whole chunk's statistics in."""
        k = chunk.shape[0]
        chunk_mean = chunk.mean(axis=0)
        chunk_m2 = ((chunk - chunk_mean) ** 2).sum(axis=0)
        if self._mean is None or self.count == 0:
            # First chunk: adopt its statistics verbatim, so a single
            # whole-trace chunk reproduces numpy's mean/var bit-for-bit.
            self._mean = chunk_mean
            self._m2 = chunk_m2
            self.count = k
            return
        total = self.count + k
        delta = chunk_mean - self._mean
        self._m2 = (
            self._m2 + chunk_m2 + delta * delta * (self.count * k / total)
        )
        self._mean = self._mean + delta * (k / total)
        self.count = total

    def update(self, values: np.ndarray) -> None:
        """Ingest one state row or a (n, m) chunk of them."""
        values = np.asarray(values, dtype=float)
        rows = np.atleast_2d(values)
        if rows.shape[0] == 0:
            return
        if self._window_rows is not None:
            for row in rows:
                row = np.array(row, dtype=float)
                self._welford_add(row)
                self._window_rows.append(row)
                while len(self._window_rows) > self.window:
                    self._welford_remove(self._window_rows.popleft())
        elif rows.shape[0] == 1:
            self._welford_add(np.array(rows[0], dtype=float))
        else:
            self._merge_chunk(rows)
        if self.keep_states:
            self._buffer.append(np.array(rows, dtype=float))
        # Track the running deviation maximum against the updated stats,
        # the online stand-in for the batch rule's max(ε).
        eps = self._epsilon_online(rows)
        if eps.size:
            self._max_eps = max(self._max_eps, float(eps.max()))

    def _epsilon_online(self, rows: np.ndarray) -> np.ndarray:
        std = self.std
        if std is None:
            return np.zeros(0)
        z = (rows - self._mean) / std
        return (z * z).sum(axis=1)

    def score(self, state: np.ndarray) -> float:
        """Online ``ε/max(ε)`` of one state against the stats *so far*."""
        state = np.asarray(state, dtype=float).ravel()
        eps = self._epsilon_online(state[None, :])
        if eps.size == 0 or self._max_eps <= 0.0:
            return 0.0
        return float(eps[0]) / self._max_eps

    def is_exception(self, state: np.ndarray) -> bool:
        """True when the online score reaches the threshold."""
        return self.score(state) >= self.threshold_ratio

    # -- exact batch replay -------------------------------------------

    def finalize(
        self,
        states: Optional[StateMatrix] = None,
        epsilon: Optional[np.ndarray] = None,
    ) -> ExceptionSet:
        """Apply the exact batch rule over everything ingested.

        Args:
            states: The :class:`StateMatrix` the ingested rows came from
                (used for provenance in the returned exception set).  If
                omitted, a provenance-free matrix is rebuilt from the
                buffer.
            epsilon: Pre-computed :func:`deviation_scores` of the ingested
                rows, if the caller already has them.
        """
        if states is None:
            if not self.keep_states:
                raise RuntimeError(
                    "finalize() needs buffered states; construct the "
                    "detector with keep_states=True or pass states="
                )
            values = (
                np.vstack(self._buffer)
                if self._buffer
                else np.zeros((0, NUM_METRICS))
            )
            states = StateMatrix(
                values=values,
                node_ids=np.zeros(len(values), dtype=np.int64),
                epochs_from=np.zeros(len(values), dtype=np.int64),
                epochs_to=np.zeros(len(values), dtype=np.int64),
                times_from=np.zeros(len(values), dtype=float),
                times_to=np.zeros(len(values), dtype=float),
            )
        if epsilon is None:
            epsilon = deviation_scores(states.values)
        epsilon = np.asarray(epsilon, dtype=float)
        if epsilon.size == 0:
            return ExceptionSet(
                states=states,
                indices=np.zeros(0, dtype=int),
                epsilon=epsilon,
                threshold_ratio=self.threshold_ratio,
            )
        max_eps = float(epsilon.max())
        if max_eps <= 0.0:
            indices = np.zeros(0, dtype=int)
        else:
            indices = np.flatnonzero(epsilon / max_eps >= self.threshold_ratio)
        if len(indices) < self.min_exceptions:
            indices = np.argsort(epsilon)[::-1][: self.min_exceptions]
            indices = np.sort(indices)
        return ExceptionSet(
            states=states.select(indices.tolist()),
            indices=indices,
            epsilon=epsilon,
            threshold_ratio=self.threshold_ratio,
        )


def detect_exceptions(
    states,
    threshold_ratio: float = 0.01,
    min_exceptions: int = 2,
    epsilon: Optional[np.ndarray] = None,
) -> ExceptionSet:
    """Flag exception states by the paper's ``ε/max(ε)`` rule.

    A thin replay over :class:`StreamingExceptionDetector`: ingest all
    states as one chunk, finalize.  Feeding the same states one packet at
    a time gives a bit-identical exception set.

    Args:
        states: All network states — a :class:`StateMatrix`, or a
            :class:`~repro.traces.frame.TraceFrame` / ``Trace`` that is
            differenced with :func:`repro.core.states.build_states` first.
        threshold_ratio: A state is an exception when its deviation is at
            least this fraction of the maximum deviation (paper: 0.01).
        min_exceptions: If the rule selects fewer rows than this, the
            top-``min_exceptions`` states by deviation are taken instead
            (degenerate traces otherwise produce an empty training set).
        epsilon: Pre-computed :func:`deviation_scores` of ``states`` (the
            pipeline computes them once for its online scoring stats and
            passes them here to avoid a second pass).
    """
    if not isinstance(states, StateMatrix):
        from repro.core.states import build_states

        states = build_states(states)
    detector = StreamingExceptionDetector(
        threshold_ratio=threshold_ratio,
        min_exceptions=min_exceptions,
        keep_states=False,  # the caller's StateMatrix is the buffer
    )
    if len(states):
        detector.update(states.values)
    return detector.finalize(states, epsilon=epsilon)
