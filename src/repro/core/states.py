"""Network-state construction: differences of successive snapshots.

The paper defines a node's *network state* as the element-wise difference
between two successive report packets, ``S^v_i = P^v_i - P^v_{i-1}``.
Counters therefore yield "activity during the interval" (and a large
negative jump after a reboot), while gauges yield drift.

:func:`build_states` applies this across a whole trace, keeping provenance
(which node, which epoch pair, when) so diagnoses can be mapped back to
nodes and compared with ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.metrics.catalog import NUM_METRICS
from repro.traces.records import Trace


@dataclass
class StateProvenance:
    """Where one state vector came from."""

    node_id: int
    epoch_from: int
    epoch_to: int
    time_from: float
    time_to: float


@dataclass
class StateMatrix:
    """A stack of network-state vectors with provenance.

    Attributes:
        values: (n_states, 43) array of raw (signed) metric deltas.
        provenance: One entry per row of ``values``.
    """

    values: np.ndarray
    provenance: List[StateProvenance]

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=float)
        if self.values.ndim != 2 or self.values.shape[1] != NUM_METRICS:
            raise ValueError(
                f"state matrix must be (n, {NUM_METRICS}), got {self.values.shape}"
            )
        if len(self.provenance) != self.values.shape[0]:
            raise ValueError("provenance length must match state count")

    def __len__(self) -> int:
        return self.values.shape[0]

    def select(self, indices: Sequence[int]) -> "StateMatrix":
        """Sub-matrix of the given row indices (provenance preserved)."""
        indices = list(indices)
        return StateMatrix(
            values=self.values[indices],
            provenance=[self.provenance[i] for i in indices],
        )

    def for_node(self, node_id: int) -> "StateMatrix":
        """Only this node's states."""
        idx = [i for i, p in enumerate(self.provenance) if p.node_id == node_id]
        return StateMatrix(self.values[idx], [self.provenance[i] for i in idx])

    def in_window(self, start: float, end: float) -> "StateMatrix":
        """States whose *ending* snapshot falls in [start, end)."""
        idx = [
            i
            for i, p in enumerate(self.provenance)
            if start <= p.time_to < end
        ]
        return StateMatrix(self.values[idx], [self.provenance[i] for i in idx])


def build_states(
    trace: Trace,
    max_epoch_gap: Optional[int] = None,
    per_epoch_rate: bool = False,
) -> StateMatrix:
    """Differencing pass over a trace.

    Args:
        trace: Sink-side trace of complete snapshots.
        max_epoch_gap: Skip snapshot pairs more than this many epochs
            apart (packet loss can separate "successive" received packets
            by hours; a large gap makes counter deltas incomparable).
            ``None`` keeps every successive pair, as the paper does.
        per_epoch_rate: Divide each delta by the epoch gap, turning deltas
            into per-epoch rates.  Off by default (paper semantics).

    Returns:
        A :class:`StateMatrix` with one row per successive snapshot pair.
    """
    rows: List[np.ndarray] = []
    provenance: List[StateProvenance] = []
    for node_id, snaps in sorted(trace.per_node().items()):
        for prev, curr in zip(snaps, snaps[1:]):
            gap = curr.epoch - prev.epoch
            if gap <= 0:
                continue  # duplicate or out-of-order epoch; skip defensively
            if max_epoch_gap is not None and gap > max_epoch_gap:
                continue
            delta = curr.values - prev.values
            if per_epoch_rate:
                delta = delta / gap
            rows.append(delta)
            provenance.append(
                StateProvenance(
                    node_id=node_id,
                    epoch_from=prev.epoch,
                    epoch_to=curr.epoch,
                    time_from=prev.generated_at,
                    time_to=curr.generated_at,
                )
            )
    if rows:
        values = np.vstack(rows)
    else:
        values = np.zeros((0, NUM_METRICS))
    return StateMatrix(values=values, provenance=provenance)
