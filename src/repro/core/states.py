"""Network-state construction: differences of successive snapshots.

The paper defines a node's *network state* as the element-wise difference
between two successive report packets, ``S^v_i = P^v_i - P^v_{i-1}``.
Counters therefore yield "activity during the interval" (and a large
negative jump after a reboot), while gauges yield drift.

The differencer is implemented once, incrementally, in
:class:`StreamingStateBuilder`: a per-node last-report cache that emits a
state vector (with provenance) the moment the packet completing the pair
arrives.  :func:`build_states` — the batch API — is a replay over that
core: one vectorized :meth:`StreamingStateBuilder.push_frame` call over
the whole (node, epoch)-sorted frame, which reduces to exactly the
adjacent-row differencing pass the columnar backbone introduced.
Per-packet :meth:`~StreamingStateBuilder.push` and chunked/whole-frame
:meth:`~StreamingStateBuilder.push_frame` are bit-identical: the same
float64 subtraction on the same operands, so online diagnosis and batch
training see the same numbers.

Provenance (which node, which epoch pair, when) travels as parallel
columns; the object view (:attr:`StateMatrix.provenance`) is materialized
lazily for legacy consumers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.metrics.catalog import NUM_METRICS
from repro.traces.frame import TraceFrame, as_frame
from repro.traces.records import Trace


@dataclass
class StateProvenance:
    """Where one state vector came from."""

    node_id: int
    epoch_from: int
    epoch_to: int
    time_from: float
    time_to: float


class StateMatrix:
    """A stack of network-state vectors with columnar provenance.

    Attributes:
        values: (n_states, 43) array of raw (signed) metric deltas.
        node_ids: (n,) int64 — originating node per state.
        epochs_from / epochs_to: (n,) int64 — differenced epoch pair.
        times_from / times_to: (n,) float64 — generation times of the pair.

    ``provenance`` (the list-of-objects view the seed API exposed) is
    materialized on first access and cached, so identity-based lookups
    against it keep working.
    """

    def __init__(
        self,
        values: np.ndarray,
        provenance: Optional[List[StateProvenance]] = None,
        *,
        node_ids: Optional[np.ndarray] = None,
        epochs_from: Optional[np.ndarray] = None,
        epochs_to: Optional[np.ndarray] = None,
        times_from: Optional[np.ndarray] = None,
        times_to: Optional[np.ndarray] = None,
    ):
        self.values = np.asarray(values, dtype=float)
        if self.values.ndim != 2 or self.values.shape[1] != NUM_METRICS:
            raise ValueError(
                f"state matrix must be (n, {NUM_METRICS}), got {self.values.shape}"
            )
        n = self.values.shape[0]
        self._provenance: Optional[List[StateProvenance]] = None
        if provenance is not None:
            if len(provenance) != n:
                raise ValueError("provenance length must match state count")
            self.node_ids = np.array([p.node_id for p in provenance], dtype=np.int64)
            self.epochs_from = np.array(
                [p.epoch_from for p in provenance], dtype=np.int64
            )
            self.epochs_to = np.array([p.epoch_to for p in provenance], dtype=np.int64)
            self.times_from = np.array([p.time_from for p in provenance], dtype=float)
            self.times_to = np.array([p.time_to for p in provenance], dtype=float)
            self._provenance = list(provenance)
        else:
            self.node_ids = _column(node_ids, n, np.int64, "node_ids")
            self.epochs_from = _column(epochs_from, n, np.int64, "epochs_from")
            self.epochs_to = _column(epochs_to, n, np.int64, "epochs_to")
            self.times_from = _column(times_from, n, float, "times_from")
            self.times_to = _column(times_to, n, float, "times_to")

    @property
    def provenance(self) -> List[StateProvenance]:
        """Per-row :class:`StateProvenance` objects (lazy, cached)."""
        if self._provenance is None:
            self._provenance = [
                StateProvenance(
                    node_id=int(self.node_ids[i]),
                    epoch_from=int(self.epochs_from[i]),
                    epoch_to=int(self.epochs_to[i]),
                    time_from=float(self.times_from[i]),
                    time_to=float(self.times_to[i]),
                )
                for i in range(len(self))
            ]
        return self._provenance

    def __len__(self) -> int:
        return self.values.shape[0]

    def _take(self, indices: np.ndarray) -> "StateMatrix":
        sub = StateMatrix(
            values=self.values[indices],
            node_ids=self.node_ids[indices],
            epochs_from=self.epochs_from[indices],
            epochs_to=self.epochs_to[indices],
            times_from=self.times_from[indices],
            times_to=self.times_to[indices],
        )
        if self._provenance is not None:
            sub._provenance = [self._provenance[int(i)] for i in indices]
        return sub

    def select(self, indices: Sequence[int]) -> "StateMatrix":
        """Sub-matrix of the given row indices (provenance preserved)."""
        return self._take(np.asarray(list(indices), dtype=np.intp))

    def for_node(self, node_id: int) -> "StateMatrix":
        """Only this node's states."""
        return self._take(np.flatnonzero(self.node_ids == node_id))

    def in_window(self, start: float, end: float) -> "StateMatrix":
        """States whose *ending* snapshot falls in [start, end)."""
        return self._take(
            np.flatnonzero((self.times_to >= start) & (self.times_to < end))
        )


def _column(
    data: Optional[np.ndarray], n: int, dtype, name: str
) -> np.ndarray:
    if data is None:
        if n != 0:
            raise ValueError(f"state column {name} missing for {n} states")
        return np.zeros(0, dtype=dtype)
    column = np.asarray(data, dtype=dtype).ravel()
    if column.shape[0] != n:
        raise ValueError(
            f"state column {name} has {column.shape[0]} entries for {n} states"
        )
    return column


@dataclass
class StreamedState:
    """One state vector emitted by :class:`StreamingStateBuilder`.

    The streaming twin of one :class:`StateMatrix` row: the signed metric
    delta plus the provenance of the snapshot pair that produced it.
    """

    values: np.ndarray
    node_id: int
    epoch_from: int
    epoch_to: int
    time_from: float
    time_to: float

    @property
    def provenance(self) -> StateProvenance:
        """The :class:`StateProvenance` view of this state."""
        return StateProvenance(
            node_id=self.node_id,
            epoch_from=self.epoch_from,
            epoch_to=self.epoch_to,
            time_from=self.time_from,
            time_to=self.time_to,
        )


def stack_states(streamed: Sequence[StreamedState]) -> StateMatrix:
    """Collect streamed states into a :class:`StateMatrix` (order kept)."""
    if not streamed:
        return StateMatrix(values=np.zeros((0, NUM_METRICS)))
    return StateMatrix(
        values=np.vstack([s.values for s in streamed]),
        node_ids=np.array([s.node_id for s in streamed], dtype=np.int64),
        epochs_from=np.array([s.epoch_from for s in streamed], dtype=np.int64),
        epochs_to=np.array([s.epoch_to for s in streamed], dtype=np.int64),
        times_from=np.array([s.time_from for s in streamed], dtype=float),
        times_to=np.array([s.time_to for s in streamed], dtype=float),
    )


class StreamingStateBuilder:
    """Incremental network-state construction from a live packet stream.

    Keeps one cached last report per node and emits the state vector
    ``P_i - P_{i-1}`` the moment packet ``P_i`` arrives.  Semantics match
    the batch differencer exactly:

    * every arriving packet **replaces** the node's cache entry (a
      duplicate epoch refreshes the baseline without emitting, exactly as
      the batch pass skips ``gap <= 0`` pairs but differences against the
      later duplicate);
    * a state is emitted only for ``0 < epoch gap <= max_epoch_gap``;
    * reboots / counter resets need no special casing — the raw signed
      delta (a large negative jump) passes through untouched, which is
      what the exception detector keys on.

    Memory is bounded by the node population: one 43-metric row per node,
    independent of trace length.

    Per-packet :meth:`push` and vectorized :meth:`push_frame` produce
    bit-identical values (same float64 operands, same elementwise ops),
    so the batch path (:func:`build_states` = one ``push_frame`` over the
    sorted frame) and a packet-at-a-time replay agree to the last bit.

    Args:
        max_epoch_gap: Emit nothing for snapshot pairs more than this many
            epochs apart (``None`` keeps every pair, as the paper does).
        per_epoch_rate: Divide each delta by its epoch gap.
    """

    def __init__(
        self,
        max_epoch_gap: Optional[int] = None,
        per_epoch_rate: bool = False,
    ):
        self.max_epoch_gap = max_epoch_gap
        self.per_epoch_rate = per_epoch_rate
        self._last: Dict[int, Tuple[int, float, np.ndarray]] = {}
        self.n_packets = 0
        self.n_states = 0

    def __len__(self) -> int:
        """Number of nodes currently cached."""
        return len(self._last)

    def reset(self) -> None:
        """Drop every cached report (e.g. on trace rollover)."""
        self._last.clear()

    def push(
        self,
        node_id: int,
        epoch: int,
        generated_at: float,
        values: np.ndarray,
    ) -> Optional[StreamedState]:
        """Ingest one report packet; return the completed state, if any."""
        node_id = int(node_id)
        epoch = int(epoch)
        generated_at = float(generated_at)
        values = np.array(values, dtype=float).ravel()
        self.n_packets += 1
        prev = self._last.get(node_id)
        self._last[node_id] = (epoch, generated_at, values)
        if prev is None:
            return None
        prev_epoch, prev_time, prev_values = prev
        gap = epoch - prev_epoch
        if gap <= 0:
            return None
        if self.max_epoch_gap is not None and gap > self.max_epoch_gap:
            return None
        delta = values - prev_values
        if self.per_epoch_rate:
            delta = delta / gap
        self.n_states += 1
        return StreamedState(
            values=delta,
            node_id=node_id,
            epoch_from=prev_epoch,
            epoch_to=epoch,
            time_from=prev_time,
            time_to=generated_at,
        )

    def push_frame(self, frame: Union[Trace, TraceFrame]) -> StateMatrix:
        """Vectorized chunk ingestion: one differencing pass per chunk.

        Equivalent to calling :meth:`push` row by row (states come back in
        the same order, with bit-identical values) but the within-chunk
        pairs are differenced as one matrix operation; only the per-node
        chunk boundaries touch the Python-level cache.  Feeding a whole
        sorted frame reproduces the batch differencer; feeding successive
        chunks of it gives the same states with bounded memory.
        """
        frame = as_frame(frame)
        n = len(frame)
        if n == 0:
            return StateMatrix(values=np.zeros((0, NUM_METRICS)))
        self.n_packets += n
        node_ids = frame.node_ids
        # Group rows by node, preserving arrival order within each node.
        # Frames honour the (node_id, epoch) sort invariant so the stable
        # argsort is the identity permutation; the general path only runs
        # for hand-built chunks.
        if n > 1 and np.any(node_ids[1:] < node_ids[:-1]):
            order = np.argsort(node_ids, kind="stable")
            sn = node_ids[order]
            se = frame.epochs[order]
            sg = frame.generated_at[order]
            sv = frame.values[order]
        else:
            order = None
            sn, se, sg, sv = node_ids, frame.epochs, frame.generated_at, frame.values

        run_start = np.ones(n, dtype=bool)
        run_start[1:] = sn[1:] != sn[:-1]
        inner = np.flatnonzero(~run_start)
        has_prev = ~run_start
        prev_epochs = np.zeros(n, dtype=np.int64)
        prev_times = np.zeros(n, dtype=float)
        prev_values = np.zeros((n, sv.shape[1]), dtype=float)
        prev_epochs[inner] = se[inner - 1]
        prev_times[inner] = sg[inner - 1]
        prev_values[inner] = sv[inner - 1]
        for i in np.flatnonzero(run_start):  # one lookup per distinct node
            cached = self._last.get(int(sn[i]))
            if cached is not None:
                has_prev[i] = True
                prev_epochs[i], prev_times[i], prev_values[i] = cached

        gaps = se - prev_epochs
        mask = has_prev & (gaps > 0)
        if self.max_epoch_gap is not None:
            mask &= gaps <= self.max_epoch_gap
        emit = np.flatnonzero(mask)
        values = sv[emit] - prev_values[emit]
        if self.per_epoch_rate:
            values = values / gaps[emit][:, None]
        states = StateMatrix(
            values=values,
            node_ids=sn[emit],
            epochs_from=prev_epochs[emit],
            epochs_to=se[emit],
            times_from=prev_times[emit],
            times_to=sg[emit],
        )
        if order is not None and len(states) > 1:
            # Emission order is defined by packet arrival: re-interleave.
            states = states._take(np.argsort(order[emit], kind="stable"))
        # Cache the last arrival of every node in the chunk (row copies,
        # so chunk buffers can be freed between push_frame calls).
        run_end = np.flatnonzero(np.append(run_start[1:], True))
        for i in run_end:
            self._last[int(sn[i])] = (int(se[i]), float(sg[i]), sv[i].copy())
        self.n_states += len(states)
        return states


def build_states(
    trace: Union[Trace, TraceFrame],
    max_epoch_gap: Optional[int] = None,
    per_epoch_rate: bool = False,
) -> StateMatrix:
    """Batch differencing: a whole-frame replay over the streaming core.

    Because frame rows are sorted by (node_id, epoch), "successive
    snapshots of one node" are exactly the adjacent row pairs that share a
    node id — a single :meth:`StreamingStateBuilder.push_frame` call over
    the full frame performs the same one-mask vectorized pass the columnar
    backbone introduced, and a packet-at-a-time replay through
    :meth:`StreamingStateBuilder.push` produces bit-identical states.

    Args:
        trace: Sink-side trace (object or frame) of complete snapshots.
        max_epoch_gap: Skip snapshot pairs more than this many epochs
            apart (packet loss can separate "successive" received packets
            by hours; a large gap makes counter deltas incomparable).
            ``None`` keeps every successive pair, as the paper does.
        per_epoch_rate: Divide each delta by the epoch gap, turning deltas
            into per-epoch rates.  Off by default (paper semantics).

    Returns:
        A :class:`StateMatrix` with one row per successive snapshot pair.
    """
    builder = StreamingStateBuilder(
        max_epoch_gap=max_epoch_gap, per_epoch_rate=per_epoch_rate
    )
    return builder.push_frame(as_frame(trace))


def build_states_python(
    trace: Trace,
    max_epoch_gap: Optional[int] = None,
    per_epoch_rate: bool = False,
) -> StateMatrix:
    """The seed's per-object differencing loop, kept as the reference
    implementation (and the legacy side of the benchmark pairing).

    Semantically identical to :func:`build_states`.
    """
    rows: List[np.ndarray] = []
    provenance: List[StateProvenance] = []
    for node_id, snaps in sorted(trace.per_node().items()):
        for prev, curr in zip(snaps, snaps[1:]):
            gap = curr.epoch - prev.epoch
            if gap <= 0:
                continue  # duplicate or out-of-order epoch; skip defensively
            if max_epoch_gap is not None and gap > max_epoch_gap:
                continue
            delta = curr.values - prev.values
            if per_epoch_rate:
                delta = delta / gap
            rows.append(delta)
            provenance.append(
                StateProvenance(
                    node_id=node_id,
                    epoch_from=prev.epoch,
                    epoch_to=curr.epoch,
                    time_from=prev.generated_at,
                    time_to=curr.generated_at,
                )
            )
    if rows:
        values = np.vstack(rows)
    else:
        values = np.zeros((0, NUM_METRICS))
    return StateMatrix(values=values, provenance=provenance)
