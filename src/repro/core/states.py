"""Network-state construction: differences of successive snapshots.

The paper defines a node's *network state* as the element-wise difference
between two successive report packets, ``S^v_i = P^v_i - P^v_{i-1}``.
Counters therefore yield "activity during the interval" (and a large
negative jump after a reboot), while gauges yield drift.

:func:`build_states` applies this across a whole trace in one vectorized
pass over the columnar :class:`~repro.traces.frame.TraceFrame` layout,
keeping provenance (which node, which epoch pair, when) as parallel
columns so diagnoses can be mapped back to nodes and compared with ground
truth.  The provenance *columns* are the fast path; the object view
(:attr:`StateMatrix.provenance`) is materialized lazily for legacy
consumers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.metrics.catalog import NUM_METRICS
from repro.traces.frame import TraceFrame, as_frame
from repro.traces.records import Trace


@dataclass
class StateProvenance:
    """Where one state vector came from."""

    node_id: int
    epoch_from: int
    epoch_to: int
    time_from: float
    time_to: float


class StateMatrix:
    """A stack of network-state vectors with columnar provenance.

    Attributes:
        values: (n_states, 43) array of raw (signed) metric deltas.
        node_ids: (n,) int64 — originating node per state.
        epochs_from / epochs_to: (n,) int64 — differenced epoch pair.
        times_from / times_to: (n,) float64 — generation times of the pair.

    ``provenance`` (the list-of-objects view the seed API exposed) is
    materialized on first access and cached, so identity-based lookups
    against it keep working.
    """

    def __init__(
        self,
        values: np.ndarray,
        provenance: Optional[List[StateProvenance]] = None,
        *,
        node_ids: Optional[np.ndarray] = None,
        epochs_from: Optional[np.ndarray] = None,
        epochs_to: Optional[np.ndarray] = None,
        times_from: Optional[np.ndarray] = None,
        times_to: Optional[np.ndarray] = None,
    ):
        self.values = np.asarray(values, dtype=float)
        if self.values.ndim != 2 or self.values.shape[1] != NUM_METRICS:
            raise ValueError(
                f"state matrix must be (n, {NUM_METRICS}), got {self.values.shape}"
            )
        n = self.values.shape[0]
        self._provenance: Optional[List[StateProvenance]] = None
        if provenance is not None:
            if len(provenance) != n:
                raise ValueError("provenance length must match state count")
            self.node_ids = np.array([p.node_id for p in provenance], dtype=np.int64)
            self.epochs_from = np.array(
                [p.epoch_from for p in provenance], dtype=np.int64
            )
            self.epochs_to = np.array([p.epoch_to for p in provenance], dtype=np.int64)
            self.times_from = np.array([p.time_from for p in provenance], dtype=float)
            self.times_to = np.array([p.time_to for p in provenance], dtype=float)
            self._provenance = list(provenance)
        else:
            self.node_ids = _column(node_ids, n, np.int64, "node_ids")
            self.epochs_from = _column(epochs_from, n, np.int64, "epochs_from")
            self.epochs_to = _column(epochs_to, n, np.int64, "epochs_to")
            self.times_from = _column(times_from, n, float, "times_from")
            self.times_to = _column(times_to, n, float, "times_to")

    @property
    def provenance(self) -> List[StateProvenance]:
        """Per-row :class:`StateProvenance` objects (lazy, cached)."""
        if self._provenance is None:
            self._provenance = [
                StateProvenance(
                    node_id=int(self.node_ids[i]),
                    epoch_from=int(self.epochs_from[i]),
                    epoch_to=int(self.epochs_to[i]),
                    time_from=float(self.times_from[i]),
                    time_to=float(self.times_to[i]),
                )
                for i in range(len(self))
            ]
        return self._provenance

    def __len__(self) -> int:
        return self.values.shape[0]

    def _take(self, indices: np.ndarray) -> "StateMatrix":
        sub = StateMatrix(
            values=self.values[indices],
            node_ids=self.node_ids[indices],
            epochs_from=self.epochs_from[indices],
            epochs_to=self.epochs_to[indices],
            times_from=self.times_from[indices],
            times_to=self.times_to[indices],
        )
        if self._provenance is not None:
            sub._provenance = [self._provenance[int(i)] for i in indices]
        return sub

    def select(self, indices: Sequence[int]) -> "StateMatrix":
        """Sub-matrix of the given row indices (provenance preserved)."""
        return self._take(np.asarray(list(indices), dtype=np.intp))

    def for_node(self, node_id: int) -> "StateMatrix":
        """Only this node's states."""
        return self._take(np.flatnonzero(self.node_ids == node_id))

    def in_window(self, start: float, end: float) -> "StateMatrix":
        """States whose *ending* snapshot falls in [start, end)."""
        return self._take(
            np.flatnonzero((self.times_to >= start) & (self.times_to < end))
        )


def _column(
    data: Optional[np.ndarray], n: int, dtype, name: str
) -> np.ndarray:
    if data is None:
        if n != 0:
            raise ValueError(f"state column {name} missing for {n} states")
        return np.zeros(0, dtype=dtype)
    column = np.asarray(data, dtype=dtype).ravel()
    if column.shape[0] != n:
        raise ValueError(
            f"state column {name} has {column.shape[0]} entries for {n} states"
        )
    return column


def build_states(
    trace: Union[Trace, TraceFrame],
    max_epoch_gap: Optional[int] = None,
    per_epoch_rate: bool = False,
) -> StateMatrix:
    """Vectorized differencing pass over a trace or frame.

    Because frame rows are sorted by (node_id, epoch), "successive
    snapshots of one node" are exactly the adjacent row pairs that share a
    node id — one boolean mask replaces the per-node Python loop.

    Args:
        trace: Sink-side trace (object or frame) of complete snapshots.
        max_epoch_gap: Skip snapshot pairs more than this many epochs
            apart (packet loss can separate "successive" received packets
            by hours; a large gap makes counter deltas incomparable).
            ``None`` keeps every successive pair, as the paper does.
        per_epoch_rate: Divide each delta by the epoch gap, turning deltas
            into per-epoch rates.  Off by default (paper semantics).

    Returns:
        A :class:`StateMatrix` with one row per successive snapshot pair.
    """
    frame = as_frame(trace)
    n = len(frame)
    if n < 2:
        return StateMatrix(values=np.zeros((0, NUM_METRICS)))
    same_node = frame.node_ids[1:] == frame.node_ids[:-1]
    gaps = frame.epochs[1:] - frame.epochs[:-1]
    mask = same_node & (gaps > 0)  # gap <= 0: duplicate/out-of-order epoch
    if max_epoch_gap is not None:
        mask &= gaps <= max_epoch_gap
    prev = np.flatnonzero(mask)
    values = frame.values[prev + 1] - frame.values[prev]
    if per_epoch_rate:
        values = values / gaps[prev][:, None]
    return StateMatrix(
        values=values,
        node_ids=frame.node_ids[prev],
        epochs_from=frame.epochs[prev],
        epochs_to=frame.epochs[prev + 1],
        times_from=frame.generated_at[prev],
        times_to=frame.generated_at[prev + 1],
    )


def build_states_python(
    trace: Trace,
    max_epoch_gap: Optional[int] = None,
    per_epoch_rate: bool = False,
) -> StateMatrix:
    """The seed's per-object differencing loop, kept as the reference
    implementation (and the legacy side of the benchmark pairing).

    Semantically identical to :func:`build_states`.
    """
    rows: List[np.ndarray] = []
    provenance: List[StateProvenance] = []
    for node_id, snaps in sorted(trace.per_node().items()):
        for prev, curr in zip(snaps, snaps[1:]):
            gap = curr.epoch - prev.epoch
            if gap <= 0:
                continue  # duplicate or out-of-order epoch; skip defensively
            if max_epoch_gap is not None and gap > max_epoch_gap:
                continue
            delta = curr.values - prev.values
            if per_epoch_rate:
                delta = delta / gap
            rows.append(delta)
            provenance.append(
                StateProvenance(
                    node_id=node_id,
                    epoch_from=prev.epoch,
                    epoch_to=curr.epoch,
                    time_from=prev.generated_at,
                    time_to=curr.generated_at,
                )
            )
    if rows:
        values = np.vstack(rows)
    else:
        values = np.zeros((0, NUM_METRICS))
    return StateMatrix(values=values, provenance=provenance)
