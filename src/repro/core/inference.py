"""Root-cause inference for new states (the paper's Problem 3).

Given the representative matrix Ψ and an incoming state ``s``, find the
non-negative correlation strengths ``w`` minimising ``‖s - wΨ‖`` — a convex
non-negative least-squares problem, solved exactly with Lawson-Hanson NNLS
(scipy).  ``w_j > 0`` means root cause j is active; its magnitude
quantifies influence, which is what lets an exception be attributed to
*several* root causes at once (the paper's core claim against
single-cause diagnosis trees).
"""

from __future__ import annotations

import time
from typing import Optional, Tuple

import numpy as np
from scipy.linalg import cho_factor, cho_solve
from scipy.optimize import nnls

from repro.obs import get_registry


def infer_single(Psi: np.ndarray, state: np.ndarray) -> Tuple[np.ndarray, float]:
    """Solve ``argmin_w ‖s - wΨ‖  s.t. w >= 0`` for one state.

    Args:
        Psi: (r, m) representative matrix.
        state: Length-m state vector (same normalization as Ψ's training).

    Returns:
        (w, residual): the length-r weight vector and the Euclidean
        residual ``‖s - wΨ‖``.
    """
    Psi = np.asarray(Psi, dtype=float)
    state = np.asarray(state, dtype=float).ravel()
    if Psi.ndim != 2:
        raise ValueError(f"Psi must be 2-D, got shape {Psi.shape}")
    if state.shape[0] != Psi.shape[1]:
        raise ValueError(
            f"state has {state.shape[0]} metrics but Psi has {Psi.shape[1]}"
        )
    weights, residual = nnls(Psi.T, state)
    return weights, float(residual)


def infer_weights(
    Psi: np.ndarray,
    states: np.ndarray,
    *,
    warm_start: np.ndarray = None,
    solver_cache: "Optional[NNLSSolverCache]" = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Batch NNLS: one weight vector per state row.

    Delegates to the vectorized :func:`infer_weights_batch`; kept as the
    stable name the seed API exposed.

    Args:
        Psi: (r, m) representative matrix.
        states: (n, m) states.
        warm_start: Optional (n, r) previous weights seeding each row's
            initial passive set (see :func:`infer_weights_batch`).
        solver_cache: Optional cross-call factorization cache (see
            :class:`NNLSSolverCache`).

    Returns:
        (W, residuals): (n, r) weights and length-n residuals.
    """
    return infer_weights_batch(
        Psi, states, warm_start=warm_start, solver_cache=solver_cache
    )


class NNLSSolverCache:
    """Per-model cache of passive-set factorizations across solves.

    The factorization solved in every pivoting round depends only on Ψ
    and the passive-set pattern — not on the state — so a streaming
    session diagnosing packet after packet against one model keeps
    recomputing the same handful of Cholesky factors (supports cluster
    around the model's active causes).  A warm-started session hands this
    cache to :func:`infer_weights_batch` so repeat patterns skip straight
    to the triangular solves.

    A cached factor is byte-for-byte the factor a cold call would have
    computed from the same Ψ, so the cache changes solve *speed*, never
    solved values: sessions with and without it stay bit-identical.  It
    must be dropped when the model rotates (factors are meaningless
    against a new Ψ) — :meth:`StreamingDiagnosisSession.set_model` does.

    ``max_patterns`` bounds memory against adversarial support churn; on
    overflow the cache is simply cleared (deterministic, and harmless —
    entries rebuild on the next solve).  Hits are counted on
    ``repro_core_nnls_factor_cache_hits_total``.
    """

    __slots__ = ("max_patterns", "factors", "hits", "misses", "_m_hits")

    def __init__(self, max_patterns: int = 2048, registry=None, labels=None):
        if max_patterns < 1:
            raise ValueError(
                f"max_patterns must be >= 1, got {max_patterns}"
            )
        self.max_patterns = max_patterns
        self.factors: dict = {}
        self.hits = 0
        self.misses = 0
        reg = get_registry() if registry is None else registry
        self._m_hits = reg.counter(
            "repro_core_nnls_factor_cache_hits_total",
            "Passive-set factorizations reused from the solver cache",
            dict(labels) if labels else None,
        )

    def __len__(self) -> int:
        return len(self.factors)

    def clear(self) -> None:
        """Drop every factor (model rotation: Ψ changed)."""
        self.factors.clear()


def _pattern_factor(AtA: np.ndarray, passive: np.ndarray):
    """Factor one passive set's normal-equations Gram block.

    Returns ``("chol", factor)``, or ``("lstsq", None)`` when the block
    is not numerically positive definite (a rank-deficient pattern, e.g.
    duplicate Ψ rows) and the solve must fall back to least squares on
    the design matrix.  Both outcomes are deterministic in the pattern,
    so cached and fresh factors solve to identical bits.
    """
    try:
        return "chol", cho_factor(
            AtA[np.ix_(passive, passive)], check_finite=False
        )
    except np.linalg.LinAlgError:
        return "lstsq", None


def _solve_passive_sets(
    A: np.ndarray,
    B: np.ndarray,
    F: np.ndarray,
    AtA: np.ndarray,
    AtB: np.ndarray,
    cache: Optional[NNLSSolverCache] = None,
) -> np.ndarray:
    """Least-squares solve of every column restricted to its passive set.

    Columns sharing a passive-set pattern are solved together through the
    pattern's normal equations ``AtA[S,S] x = AtB[S]`` with one Cholesky
    factorization (patterns repeat heavily in practice: most states
    activate the same few causes), falling back to ``lstsq`` on the
    design matrix for rank-deficient patterns.  With a ``cache``, factors
    persist across calls — the cross-packet half of warm-starting — and
    reuse is bit-identical to recomputation.
    """
    r = F.shape[0]
    k = F.shape[1]
    X = np.zeros((r, k))
    if k == 0 or not F.any():
        return X
    if k == 1:
        # Streaming's per-state shape: one column, one pattern — skip the
        # (comparatively costly) pattern grouping.  Same solve, same bits.
        patterns = F.T
        inverse = np.zeros(1, dtype=np.intp)
    else:
        patterns, inverse = np.unique(F.T, axis=0, return_inverse=True)
    for g in range(patterns.shape[0]):
        passive = np.flatnonzero(patterns[g])
        if passive.size == 0:
            continue
        cols = np.flatnonzero(inverse == g)
        if cache is None:
            kind, factor = _pattern_factor(AtA, passive)
        else:
            key = patterns[g].tobytes()
            entry = cache.factors.get(key)
            if entry is None:
                cache.misses += 1
                entry = _pattern_factor(AtA, passive)
                if len(cache.factors) >= cache.max_patterns:
                    cache.factors.clear()
                cache.factors[key] = entry
            else:
                cache.hits += 1
                cache._m_hits.inc()
            kind, factor = entry
        if kind == "chol":
            solution = cho_solve(
                factor, AtB[np.ix_(passive, cols)], check_finite=False
            )
        else:
            solution = np.linalg.lstsq(
                A[:, passive], B[:, cols], rcond=None
            )[0]
        X[np.ix_(passive, cols)] = solution
    return X


def infer_weights_batch(
    Psi: np.ndarray,
    states: np.ndarray,
    max_iter: int = 100,
    tol: float = 1e-12,
    *,
    warm_start: np.ndarray = None,
    solver_cache: "Optional[NNLSSolverCache]" = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Solve every NNLS problem of a state matrix in one vectorized sweep.

    Implements block principal pivoting (Kim & Park, 2011): all columns
    share the precomputed Grams ``ΨΨᵀ`` / ``ΨSᵀ``, passive/active sets are
    exchanged simultaneously across columns, and columns with identical
    passive sets share one Cholesky factorization of the pattern's Gram
    block.  Finite termination is enforced with the standard backup
    (Murty) rule; the rare column that still has not converged after
    ``max_iter`` exchanges falls back to per-column Lawson-Hanson.  The
    result satisfies the same KKT conditions scipy's ``nnls`` solves to,
    so weights agree with :func:`infer_single` to within solver round-off.

    Warm-starting has two independent, bit-transparent halves:

    * ``warm_start`` seeds each column's initial passive set from the
      support of a previous solution (e.g. the same node's last
      diagnosis) instead of the empty set.  Pivoting still runs to the
      exact same KKT conditions — the final weights are the unique NNLS
      solution either way, computed by the same passive-set solve — so
      the seed changes how *fast* a column converges, never what it
      converges to.
    * ``solver_cache`` carries passive-set factorizations across calls
      (they depend only on Ψ and the pattern, and supports repeat
      heavily within a stream).  A cache hit reuses the exact factor a
      cold call would recompute, so cached and uncached solves are
      bit-identical.

    Args:
        Psi: (r, m) representative matrix.
        states: (n, m) states.
        max_iter: Pivoting-sweep cap before the scipy fallback.
        tol: Infeasibility tolerance on primal/dual variables.
        warm_start: Optional (n, r) previous weights; rows of zeros (or
            ``None``) leave the matching column cold-started.
        solver_cache: Optional :class:`NNLSSolverCache` shared across
            calls against the same Ψ (drop it when the model changes).

    Returns:
        (W, residuals): (n, r) weights and length-n residuals
        ``‖s_i - w_iΨ‖``.
    """
    Psi = np.asarray(Psi, dtype=float)
    states = np.atleast_2d(np.asarray(states, dtype=float))
    if Psi.ndim != 2:
        raise ValueError(f"Psi must be 2-D, got shape {Psi.shape}")
    if states.shape[1] != Psi.shape[1]:
        raise ValueError(
            f"states have {states.shape[1]} metrics but Psi has {Psi.shape[1]}"
        )
    r = Psi.shape[0]
    n = states.shape[0]
    if n == 0 or r == 0:
        return np.zeros((n, r)), np.linalg.norm(states, axis=1)
    _t0 = time.perf_counter()

    A = Psi.T  # (m, r): the design matrix of min ‖A x - b‖, x >= 0
    B = states.T  # (m, n)
    AtA = A.T @ A
    AtB = A.T @ B

    X = np.zeros((r, n))
    Y = -AtB.copy()  # dual: Y = AtA X - AtB
    F = np.zeros((r, n), dtype=bool)  # passive (unconstrained) sets
    if warm_start is not None:
        ws = np.atleast_2d(np.asarray(warm_start, dtype=float))
        if ws.shape != (n, r):
            raise ValueError(
                f"warm_start must be ({n}, {r}) to match states x Psi, "
                f"got {ws.shape}"
            )
        F = (ws.T > 0.0)
        warm_cols = np.flatnonzero(F.any(axis=0))
        if warm_cols.size:
            X[:, warm_cols] = _solve_passive_sets(
                A,
                B[:, warm_cols],
                F[:, warm_cols],
                AtA,
                AtB[:, warm_cols],
                solver_cache,
            )
            X[~F] = 0.0
            Y[:, warm_cols] = AtA @ X[:, warm_cols] - AtB[:, warm_cols]
            registry = get_registry()
            if registry.enabled:
                registry.counter(
                    "repro_core_nnls_warm_starts_total",
                    "NNLS columns seeded from a previous solution",
                ).inc(int(warm_cols.size))
    # Backup-rule bookkeeping (per column): full exchanges are allowed
    # while they shrink the infeasible count; otherwise fall back to
    # flipping only the largest infeasible index, which provably
    # terminates.
    alpha = np.full(n, 3, dtype=int)
    beta = np.full(n, r + 1, dtype=int)
    converged = np.zeros(n, dtype=bool)

    for _ in range(max_iter):
        infeasible = (F & (X < -tol)) | (~F & (Y < -tol))
        n_infeasible = infeasible.sum(axis=0)
        converged |= n_infeasible == 0
        active = np.flatnonzero(~converged)
        if active.size == 0:
            break
        improved = np.zeros(n, dtype=bool)
        improved[active] = n_infeasible[active] < beta[active]
        beta[improved] = n_infeasible[improved]
        alpha[improved] = 3
        budgeted = np.zeros(n, dtype=bool)
        budgeted[active] = ~improved[active] & (alpha[active] >= 1)
        alpha[budgeted] -= 1
        full_exchange = improved | budgeted
        F ^= infeasible & full_exchange[None, :]
        for j in active[~full_exchange[active]]:  # Murty's rule (rare)
            k = int(np.max(np.flatnonzero(infeasible[:, j])))
            F[k, j] = ~F[k, j]
        X[:, active] = _solve_passive_sets(
            A, B[:, active], F[:, active], AtA, AtB[:, active], solver_cache
        )
        X[~F] = 0.0
        Y[:, active] = AtA @ X[:, active] - AtB[:, active]

    for j in np.flatnonzero(~converged):  # pathological columns only
        X[:, j], _ = nnls(A, B[:, j])

    X = np.maximum(X, 0.0)
    residuals = np.linalg.norm(B - A @ X, axis=0)
    registry = get_registry()
    if registry.enabled:
        registry.counter(
            "repro_core_nnls_batches_total", "Batch NNLS sweeps solved"
        ).inc()
        registry.counter(
            "repro_core_nnls_states_total",
            "States diagnosed through batch NNLS",
        ).inc(n)
        registry.histogram(
            "repro_core_nnls_batch_seconds",
            "Wall time of one batch NNLS sweep",
        ).observe(time.perf_counter() - _t0)
    return X.T, residuals


def sparsify_inferred(weights: np.ndarray, retention: float = 0.9) -> np.ndarray:
    """Row-wise Algorithm 2 applied to inferred weights.

    Keeps, per state, only the largest weights covering ``retention`` of
    that state's explanation mass — the same Occam's-razor step the paper
    applies to the training W, reused at inference time so diagnoses stay
    sparse.
    """
    from repro.core.sparsify import sparsify_weights

    weights = np.atleast_2d(np.asarray(weights, dtype=float))
    return sparsify_weights(weights, retention=retention, row_normalize=True).W_sparse


def active_causes(
    weights: np.ndarray, min_fraction: float = 0.1
) -> np.ndarray:
    """Indices of causes whose weight is >= ``min_fraction`` of the max.

    A simple significance filter for reporting: NNLS often assigns tiny
    residual-mopping weights that are not diagnostically meaningful.
    """
    weights = np.asarray(weights, dtype=float).ravel()
    if weights.size == 0 or weights.max() <= 0:
        return np.zeros(0, dtype=int)
    return np.flatnonzero(weights >= min_fraction * weights.max())
