"""Root-cause inference for new states (the paper's Problem 3).

Given the representative matrix Ψ and an incoming state ``s``, find the
non-negative correlation strengths ``w`` minimising ``‖s - wΨ‖`` — a convex
non-negative least-squares problem, solved exactly with Lawson-Hanson NNLS
(scipy).  ``w_j > 0`` means root cause j is active; its magnitude
quantifies influence, which is what lets an exception be attributed to
*several* root causes at once (the paper's core claim against
single-cause diagnosis trees).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy.optimize import nnls


def infer_single(Psi: np.ndarray, state: np.ndarray) -> Tuple[np.ndarray, float]:
    """Solve ``argmin_w ‖s - wΨ‖  s.t. w >= 0`` for one state.

    Args:
        Psi: (r, m) representative matrix.
        state: Length-m state vector (same normalization as Ψ's training).

    Returns:
        (w, residual): the length-r weight vector and the Euclidean
        residual ``‖s - wΨ‖``.
    """
    Psi = np.asarray(Psi, dtype=float)
    state = np.asarray(state, dtype=float).ravel()
    if Psi.ndim != 2:
        raise ValueError(f"Psi must be 2-D, got shape {Psi.shape}")
    if state.shape[0] != Psi.shape[1]:
        raise ValueError(
            f"state has {state.shape[0]} metrics but Psi has {Psi.shape[1]}"
        )
    weights, residual = nnls(Psi.T, state)
    return weights, float(residual)


def infer_weights(Psi: np.ndarray, states: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Batch NNLS: one weight vector per state row.

    Args:
        Psi: (r, m) representative matrix.
        states: (n, m) states.

    Returns:
        (W, residuals): (n, r) weights and length-n residuals.
    """
    states = np.atleast_2d(np.asarray(states, dtype=float))
    n = states.shape[0]
    r = Psi.shape[0]
    W = np.zeros((n, r))
    residuals = np.zeros(n)
    for i in range(n):
        W[i], residuals[i] = infer_single(Psi, states[i])
    return W, residuals


def sparsify_inferred(weights: np.ndarray, retention: float = 0.9) -> np.ndarray:
    """Row-wise Algorithm 2 applied to inferred weights.

    Keeps, per state, only the largest weights covering ``retention`` of
    that state's explanation mass — the same Occam's-razor step the paper
    applies to the training W, reused at inference time so diagnoses stay
    sparse.
    """
    from repro.core.sparsify import sparsify_weights

    weights = np.atleast_2d(np.asarray(weights, dtype=float))
    return sparsify_weights(weights, retention=retention, row_normalize=True).W_sparse


def active_causes(
    weights: np.ndarray, min_fraction: float = 0.1
) -> np.ndarray:
    """Indices of causes whose weight is >= ``min_fraction`` of the max.

    A simple significance filter for reporting: NNLS often assigns tiny
    residual-mopping weights that are not diagnostically meaningful.
    """
    weights = np.asarray(weights, dtype=float).ravel()
    if weights.size == 0 or weights.max() <= 0:
        return np.zeros(0, dtype=int)
    return np.flatnonzero(weights >= min_fraction * weights.max())
