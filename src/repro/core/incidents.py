"""Incident aggregation: from per-state diagnoses to network-level events.

The paper's future work asks for "combination diagnosis" — explaining a
*network-level* situation rather than one node-state at a time.  This
module provides it: every state's NNLS diagnosis yields observations
``(node, interval, hazard, strength)``; observations of the same hazard
that overlap in time (within a gap) and space (within a radius) are
clustered into :class:`Incident` records — "a routing loop involving
nodes {21, 22} from t=2400 to t=4800, peak strength 0.41".

This is what an operator actually wants from a 300-node deployment: a
handful of incidents, not thousands of per-state reports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.inference import sparsify_inferred
from repro.core.pipeline import VN2
from repro.core.states import StateMatrix


@dataclass
class Observation:
    """One (state, cause) pair worth aggregating."""

    node_id: int
    time_from: float
    time_to: float
    cause_index: int
    hazard: str
    strength: float


@dataclass
class Incident:
    """A clustered network-level event.

    Attributes:
        hazard: The shared hazard interpretation of the cluster.
        node_ids: Nodes whose states contributed observations.
        start, end: Union of the contributing state intervals.
        peak_strength: Largest contributing strength.
        total_strength: Sum of contributing strengths (a size proxy).
        n_observations: Number of contributing (state, cause) pairs.
    """

    hazard: str
    node_ids: Tuple[int, ...]
    start: float
    end: float
    peak_strength: float
    total_strength: float
    n_observations: int

    def overlaps(self, start: float, end: float) -> bool:
        """True if the incident intersects [start, end)."""
        return self.start < end and self.end > start

    def describe(self) -> str:
        """One-line operator summary."""
        nodes = ", ".join(str(n) for n in self.node_ids[:6])
        if len(self.node_ids) > 6:
            nodes += f", ... (+{len(self.node_ids) - 6})"
        return (
            f"{self.hazard}: nodes [{nodes}] over "
            f"[{self.start:.0f}, {self.end:.0f})s — "
            f"{self.n_observations} observations, peak {self.peak_strength:.2f}"
        )


class IncidentAggregator:
    """Clusters per-state diagnoses into incidents.

    Args:
        tool: A fitted :class:`VN2` model.
        positions: Optional node_id -> (x, y) map; with it, observations
            only merge when within ``radius_m`` of the cluster.  Without
            it, clustering is temporal only.
        time_gap_s: Observations merge into an open cluster if they start
            no later than this after the cluster's current end.
        radius_m: Spatial merge radius.
        min_strength: Observations below this NNLS strength are ignored.
        retention: Row-wise Algorithm 2 retention applied to the inferred
            weights before extracting observations.
    """

    def __init__(
        self,
        tool: VN2,
        positions: Optional[Dict[int, Tuple[float, float]]] = None,
        time_gap_s: float = 600.0,
        radius_m: float = 60.0,
        min_strength: float = 0.2,
        retention: float = 0.9,
        exception_threshold: Optional[float] = 0.01,
    ):
        tool._require_fitted()
        self.tool = tool
        self.positions = positions
        self.time_gap_s = time_gap_s
        self.radius_m = radius_m
        self.min_strength = min_strength
        self.retention = retention
        #: Only states whose ε/max(ε) exception score reaches this produce
        #: observations (None disables the gate).  Normal-churn states
        #: weakly activate link-quality rows all the time; without the
        #: gate they fuse everything into one trace-long pseudo-incident.
        self.exception_threshold = exception_threshold

    # ------------------------------------------------------------------
    # observation extraction
    # ------------------------------------------------------------------

    def observations(self, states: StateMatrix) -> List[Observation]:
        """Per-state, per-cause observations above the strength floor."""
        if len(states) == 0:
            return []
        if self.exception_threshold is not None:
            try:
                keep = np.flatnonzero(
                    self.tool._exception_scores(states.values)
                    >= self.exception_threshold
                )
                states = states.select(keep)
            except RuntimeError:
                pass  # loaded model: no stats, no gate
            if len(states) == 0:
                return []
        weights = sparsify_inferred(
            self.tool.correlation_strengths(states), retention=self.retention
        )
        labels = self.tool.labels
        out: List[Observation] = []
        for i, j in zip(*np.nonzero(weights >= self.min_strength)):
            label = labels[int(j)]
            if label.is_baseline or label.primary_hazard is None:
                continue
            out.append(
                Observation(
                    node_id=int(states.node_ids[i]),
                    time_from=float(states.times_from[i]),
                    time_to=float(states.times_to[i]),
                    cause_index=int(j),
                    hazard=label.primary_hazard,
                    strength=float(weights[i, j]),
                )
            )
        out.sort(key=lambda o: (o.hazard, o.time_from))
        return out

    # ------------------------------------------------------------------
    # clustering
    # ------------------------------------------------------------------

    def _near_cluster(self, node_id: int, cluster_nodes: Sequence[int]) -> bool:
        if self.positions is None:
            return True
        pos = self.positions.get(node_id)
        if pos is None:
            return True
        for other in cluster_nodes:
            opos = self.positions.get(other)
            if opos is None:
                continue
            if math.hypot(pos[0] - opos[0], pos[1] - opos[1]) <= self.radius_m:
                return True
        return False

    def cluster(self, observations: Sequence[Observation]) -> List[Incident]:
        """Greedy spatio-temporal clustering of same-hazard observations."""
        incidents: List[Incident] = []
        open_clusters: List[dict] = []
        current_hazard: Optional[str] = None

        def close_all() -> None:
            for cluster in open_clusters:
                incidents.append(
                    Incident(
                        hazard=cluster["hazard"],
                        node_ids=tuple(sorted(cluster["nodes"])),
                        start=cluster["start"],
                        end=cluster["end"],
                        peak_strength=cluster["peak"],
                        total_strength=cluster["total"],
                        n_observations=cluster["count"],
                    )
                )
            open_clusters.clear()

        for obs in observations:
            if obs.hazard != current_hazard:
                close_all()
                current_hazard = obs.hazard
            # expire clusters this observation can no longer join
            still_open = []
            for cluster in open_clusters:
                if obs.time_from > cluster["end"] + self.time_gap_s:
                    incidents.append(
                        Incident(
                            hazard=cluster["hazard"],
                            node_ids=tuple(sorted(cluster["nodes"])),
                            start=cluster["start"],
                            end=cluster["end"],
                            peak_strength=cluster["peak"],
                            total_strength=cluster["total"],
                            n_observations=cluster["count"],
                        )
                    )
                else:
                    still_open.append(cluster)
            open_clusters[:] = still_open

            home = None
            for cluster in open_clusters:
                if self._near_cluster(obs.node_id, tuple(cluster["nodes"])):
                    home = cluster
                    break
            if home is None:
                open_clusters.append(
                    {
                        "hazard": obs.hazard,
                        "nodes": {obs.node_id},
                        "start": obs.time_from,
                        "end": obs.time_to,
                        "peak": obs.strength,
                        "total": obs.strength,
                        "count": 1,
                    }
                )
            else:
                home["nodes"].add(obs.node_id)
                home["start"] = min(home["start"], obs.time_from)
                home["end"] = max(home["end"], obs.time_to)
                home["peak"] = max(home["peak"], obs.strength)
                home["total"] += obs.strength
                home["count"] += 1

        close_all()
        incidents.sort(key=lambda inc: (-inc.total_strength, inc.start))
        return incidents

    def extract(self, states: StateMatrix) -> List[Incident]:
        """Full pipeline: states -> observations -> incidents."""
        return self.cluster(self.observations(states))


def incidents_from_trace(
    tool: VN2,
    trace,
    min_observations: int = 2,
    **aggregator_kwargs,
) -> List[Incident]:
    """Convenience: build states from a trace and extract its incidents.

    Args:
        tool: Fitted VN2 model.
        trace: A :class:`repro.traces.records.Trace` (its stored node
            positions, if any, enable spatial clustering).
        min_observations: Drop incidents with fewer observations (noise).
        **aggregator_kwargs: Forwarded to :class:`IncidentAggregator`.
    """
    from repro.core.states import build_states

    positions = {
        int(k): tuple(v)
        for k, v in trace.metadata.get("positions", {}).items()
    } or None
    aggregator = IncidentAggregator(tool, positions=positions, **aggregator_kwargs)
    incidents = aggregator.extract(build_states(trace))
    return [inc for inc in incidents if inc.n_observations >= min_observations]
