"""Incident aggregation: from per-state diagnoses to network-level events.

The paper's future work asks for "combination diagnosis" — explaining a
*network-level* situation rather than one node-state at a time.  This
module provides it: every state's NNLS diagnosis yields observations
``(node, interval, hazard, strength)``; observations of the same hazard
that overlap in time (within a gap) and space (within a radius) are
clustered into :class:`Incident` records — "a routing loop involving
nodes {21, 22} from t=2400 to t=4800, peak strength 0.41".

This is what an operator actually wants from a 300-node deployment: a
handful of incidents, not thousands of per-state reports.

Clustering is implemented once, incrementally, in
:class:`IncidentTracker`: observations are ingested one at a time (in
diagnosis order — the moment each state's completing packet arrives),
open incidents are maintained per hazard, and gap/radius expiry closes
them as the stream moves on, emitting open/update/close
:class:`IncidentEvent` records a live ``vn2 watch`` can print.  The batch
:meth:`IncidentAggregator.cluster` is a replay — sort the observations
into the canonical stream order, feed them, flush.

Observation *extraction* is also defined per state
(:func:`observations_for_state`): one NNLS solve per state, the same call
the streaming path makes, so batch and packet-at-a-time runs produce
bit-identical strengths (the vectorized batch NNLS solver's results vary
at the ULP level with batch composition, which would otherwise leak into
incident peak/total strengths).
"""

from __future__ import annotations

import math
import weakref
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.obs import MetricsRegistry, get_registry
from repro.core.inference import infer_weights_batch, sparsify_inferred
from repro.core.pipeline import VN2
from repro.core.states import StateMatrix


@dataclass
class Observation:
    """One (state, cause) pair worth aggregating."""

    node_id: int
    time_from: float
    time_to: float
    cause_index: int
    hazard: str
    strength: float


@dataclass
class Incident:
    """A clustered network-level event.

    Attributes:
        hazard: The shared hazard interpretation of the cluster.
        node_ids: Nodes whose states contributed observations.
        start, end: Union of the contributing state intervals.
        peak_strength: Largest contributing strength.
        total_strength: Sum of contributing strengths (a size proxy).
        n_observations: Number of contributing (state, cause) pairs.
    """

    hazard: str
    node_ids: Tuple[int, ...]
    start: float
    end: float
    peak_strength: float
    total_strength: float
    n_observations: int

    def overlaps(self, start: float, end: float) -> bool:
        """True if the incident intersects [start, end)."""
        return self.start < end and self.end > start

    def describe(self) -> str:
        """One-line operator summary."""
        nodes = ", ".join(str(n) for n in self.node_ids[:6])
        if len(self.node_ids) > 6:
            nodes += f", ... (+{len(self.node_ids) - 6})"
        return (
            f"{self.hazard}: nodes [{nodes}] over "
            f"[{self.start:.0f}, {self.end:.0f})s — "
            f"{self.n_observations} observations, peak {self.peak_strength:.2f}"
        )


def observation_sort_key(obs: Observation) -> Tuple[float, int, float, int]:
    """The canonical stream order of observations.

    Diagnoses become available when the state's completing packet arrives
    (``time_to``); ties across nodes break by node id, states of one node
    by interval start, and ties within a state by cause index.  Batch
    clustering sorts into this exact order before replaying the tracker,
    so it matches a live feed — packets sorted by (generated_at, node_id,
    epoch) — bit for bit.
    """
    return (obs.time_to, obs.node_id, obs.time_from, obs.cause_index)


def observation_weights(
    tool: VN2, values: np.ndarray, retention: float = 0.9
) -> np.ndarray:
    """Sparsified NNLS weights of ONE state — the canonical per-state solve.

    Both the batch aggregator and the streaming session call this, one
    state at a time, so incident strengths are bit-identical across the
    two paths regardless of how states are batched.
    """
    normalized = tool._normalize_states(np.asarray(values, dtype=float).ravel())
    weights, _residuals = infer_weights_batch(tool.nmf_.Psi, normalized)
    return sparsify_inferred(weights, retention=retention)[0]


def observations_for_state(
    tool: VN2,
    values: np.ndarray,
    node_id: int,
    time_from: float,
    time_to: float,
    min_strength: float = 0.2,
    retention: float = 0.9,
    weights: Optional[np.ndarray] = None,
) -> List[Observation]:
    """Extract one state's hazard observations (cause-index order).

    Args:
        tool: Fitted VN2 model.
        values: The 43-metric signed state delta.
        node_id, time_from, time_to: The state's provenance.
        min_strength: Observations below this NNLS strength are dropped.
        retention: Row-wise Algorithm 2 retention for the weights.
        weights: Pre-computed :func:`observation_weights` of the state, if
            the caller already solved it (the streaming session reuses one
            solve for the diagnosis report and the observations).
    """
    if weights is None:
        weights = observation_weights(tool, values, retention=retention)
    labels = tool.labels
    out: List[Observation] = []
    for j in np.flatnonzero(weights >= min_strength):
        label = labels[int(j)]
        if label.is_baseline or label.primary_hazard is None:
            continue
        out.append(
            Observation(
                node_id=int(node_id),
                time_from=float(time_from),
                time_to=float(time_to),
                cause_index=int(j),
                hazard=label.primary_hazard,
                strength=float(weights[int(j)]),
            )
        )
    return out


@dataclass
class IncidentEvent:
    """One transition of the incident stream.

    Attributes:
        kind: ``"open"`` (first observation of a new cluster),
            ``"update"`` (an observation joined an open cluster) or
            ``"close"`` (gap expiry, or a final flush).
        incident: Snapshot of the cluster *after* the transition.
        incident_id: Stable id tying open/update/close of one cluster
            together across events.
        time: Stream time of the driving observation (``time_to``); for
            flush-closes, the cluster's own end.
    """

    kind: str
    incident: Incident
    incident_id: int
    time: float

    def describe(self) -> str:
        """One-line operator summary, e.g. for ``vn2 watch`` output."""
        return f"[{self.time:10.0f}s] {self.kind.upper():<6s} #{self.incident_id} {self.incident.describe()}"


class IncidentTracker:
    """Incremental spatio-temporal clustering of hazard observations.

    Ingests ``(node, interval, hazard, strength)`` observations one at a
    time — in stream order, i.e. sorted by :func:`observation_sort_key` —
    maintains the open incidents per hazard, and closes an incident when
    the stream has moved ``time_gap_s`` past its end.  Batch clustering
    (:meth:`IncidentAggregator.cluster`) is "feed all observations,
    flush"; a live feed sees open/update/close events as they happen.

    Memory is bounded by the number of *open* incidents plus the closed
    ones retained in :attr:`incidents`.  For unbounded runs (a long-lived
    sink service), pass ``max_closed``: once more than that many closed
    incidents are retained, the oldest are evicted (counted in
    :attr:`n_evicted`; :attr:`n_closed_total` keeps the lifetime total).
    The default is unlimited so batch replays stay bit-identical.

    Args:
        positions: Optional node_id -> (x, y) map; with it, observations
            only join an incident when within ``radius_m`` of one of its
            nodes.  Without it, clustering is temporal only.
        time_gap_s: Observations join an open incident only if they start
            no later than this after its current end; later ones close it.
        radius_m: Spatial merge radius.
        max_closed: Retention cap on :attr:`incidents` (``None`` =
            unlimited).  Eviction is close-order (oldest first) and never
            touches *open* incidents or the event stream.
        registry: Metrics registry for the opened/closed/evicted counters
            and the ``repro_incidents_open`` gauge; defaults to
            :func:`repro.obs.get_registry`.
        metric_labels: Constant labels stamped on those metrics.
    """

    def __init__(
        self,
        positions: Optional[Dict[int, Tuple[float, float]]] = None,
        time_gap_s: float = 600.0,
        radius_m: float = 60.0,
        max_closed: Optional[int] = None,
        registry: Optional[MetricsRegistry] = None,
        metric_labels: Optional[Mapping[str, str]] = None,
    ):
        if max_closed is not None and max_closed < 0:
            raise ValueError(f"max_closed must be >= 0, got {max_closed}")
        self.positions = positions
        self.time_gap_s = time_gap_s
        self.radius_m = radius_m
        self.max_closed = max_closed
        self._open: Dict[str, List[dict]] = {}
        self._next_id = 1
        #: Closed incidents, in close order (oldest may be evicted under
        #: ``max_closed``).
        self.incidents: List[Incident] = []
        #: Closed incidents evicted by the ``max_closed`` retention cap.
        self.n_evicted = 0
        #: Lifetime closed-incident count (evicted ones included).
        self.n_closed_total = 0
        reg = get_registry() if registry is None else registry
        self.registry = reg
        labels = dict(metric_labels) if metric_labels else None
        self._m_opened = reg.counter(
            "repro_incidents_opened_total", "Incident clusters opened", labels
        )
        self._m_closed = reg.counter(
            "repro_incidents_closed_total",
            "Incident clusters closed (lifetime, evicted included)",
            labels,
        )
        self._m_evicted = reg.counter(
            "repro_incidents_evicted_total",
            "Closed incidents evicted by the max_closed retention cap",
            labels,
        )
        if reg.enabled:
            # Callback gauge bound through a weakref: the registry never
            # keeps a dead tracker alive, and re-registration (a new
            # tracker with the same labels) simply takes over the gauge.
            def _open_count(ref=weakref.ref(self)):
                tracker = ref()
                return float(tracker.n_open) if tracker is not None else 0.0

            reg.gauge(
                "repro_incidents_open",
                "Currently open incident clusters",
                labels,
                fn=_open_count,
            )

    @property
    def n_open(self) -> int:
        """Number of currently open incident clusters (all hazards)."""
        return sum(len(c) for c in self._open.values())

    def _retain(self, incident: Incident) -> None:
        self.incidents.append(incident)
        self.n_closed_total += 1
        self._m_closed.inc()
        if self.max_closed is not None and len(self.incidents) > self.max_closed:
            drop = len(self.incidents) - self.max_closed
            del self.incidents[:drop]
            self.n_evicted += drop
            self._m_evicted.inc(drop)

    def _near(self, node_id: int, cluster_nodes: Sequence[int]) -> bool:
        if self.positions is None:
            return True
        pos = self.positions.get(node_id)
        if pos is None:
            return True
        for other in cluster_nodes:
            opos = self.positions.get(other)
            if opos is None:
                continue
            if math.hypot(pos[0] - opos[0], pos[1] - opos[1]) <= self.radius_m:
                return True
        return False

    @staticmethod
    def _snapshot(cluster: dict) -> Incident:
        return Incident(
            hazard=cluster["hazard"],
            node_ids=tuple(sorted(cluster["nodes"])),
            start=cluster["start"],
            end=cluster["end"],
            peak_strength=cluster["peak"],
            total_strength=cluster["total"],
            n_observations=cluster["count"],
        )

    def open_incidents(self) -> List[Incident]:
        """Snapshots of the currently open clusters (all hazards)."""
        return [
            self._snapshot(c)
            for clusters in self._open.values()
            for c in clusters
        ]

    def add(self, obs: Observation) -> List[IncidentEvent]:
        """Ingest one observation; return the transitions it caused."""
        events: List[IncidentEvent] = []
        clusters = self._open.setdefault(obs.hazard, [])
        still_open: List[dict] = []
        for cluster in clusters:
            if obs.time_from > cluster["end"] + self.time_gap_s:
                incident = self._snapshot(cluster)
                self._retain(incident)
                events.append(
                    IncidentEvent("close", incident, cluster["id"], obs.time_to)
                )
            else:
                still_open.append(cluster)
        clusters[:] = still_open

        home = None
        for cluster in clusters:
            if self._near(obs.node_id, tuple(cluster["nodes"])):
                home = cluster
                break
        if home is None:
            home = {
                "id": self._next_id,
                "hazard": obs.hazard,
                "nodes": {obs.node_id},
                "start": obs.time_from,
                "end": obs.time_to,
                "peak": obs.strength,
                "total": obs.strength,
                "count": 1,
            }
            self._next_id += 1
            self._m_opened.inc()
            clusters.append(home)
            events.append(
                IncidentEvent("open", self._snapshot(home), home["id"], obs.time_to)
            )
        else:
            home["nodes"].add(obs.node_id)
            home["start"] = min(home["start"], obs.time_from)
            home["end"] = max(home["end"], obs.time_to)
            home["peak"] = max(home["peak"], obs.strength)
            home["total"] += obs.strength
            home["count"] += 1
            events.append(
                IncidentEvent("update", self._snapshot(home), home["id"], obs.time_to)
            )
        return events

    def flush(self) -> List[IncidentEvent]:
        """Close every open incident (end of stream / end of batch)."""
        events: List[IncidentEvent] = []
        for hazard in list(self._open):
            for cluster in self._open[hazard]:
                incident = self._snapshot(cluster)
                self._retain(incident)
                events.append(
                    IncidentEvent(
                        "close", incident, cluster["id"], cluster["end"]
                    )
                )
            del self._open[hazard]
        return events

    def sorted_incidents(self) -> List[Incident]:
        """Closed incidents in report order (strongest first)."""
        return sorted(
            self.incidents, key=lambda inc: (-inc.total_strength, inc.start)
        )


class IncidentAggregator:
    """Clusters per-state diagnoses into incidents.

    Args:
        tool: A fitted :class:`VN2` model.
        positions: Optional node_id -> (x, y) map; with it, observations
            only merge when within ``radius_m`` of the cluster.  Without
            it, clustering is temporal only.
        time_gap_s: Observations merge into an open cluster if they start
            no later than this after the cluster's current end.
        radius_m: Spatial merge radius.
        min_strength: Observations below this NNLS strength are ignored.
        retention: Row-wise Algorithm 2 retention applied to the inferred
            weights before extracting observations.
    """

    def __init__(
        self,
        tool: VN2,
        positions: Optional[Dict[int, Tuple[float, float]]] = None,
        time_gap_s: float = 600.0,
        radius_m: float = 60.0,
        min_strength: float = 0.2,
        retention: float = 0.9,
        exception_threshold: Optional[float] = 0.01,
    ):
        tool._require_fitted()
        self.tool = tool
        self.positions = positions
        self.time_gap_s = time_gap_s
        self.radius_m = radius_m
        self.min_strength = min_strength
        self.retention = retention
        #: Only states whose ε/max(ε) exception score reaches this produce
        #: observations (None disables the gate).  Normal-churn states
        #: weakly activate link-quality rows all the time; without the
        #: gate they fuse everything into one trace-long pseudo-incident.
        self.exception_threshold = exception_threshold

    # ------------------------------------------------------------------
    # observation extraction
    # ------------------------------------------------------------------

    def observations(self, states: StateMatrix) -> List[Observation]:
        """Per-state, per-cause observations above the strength floor.

        Exception gating is vectorized, but the NNLS solves run one state
        at a time through :func:`observations_for_state` — the identical
        call the streaming session makes — so observation strengths don't
        depend on how the states were batched.  Returned in canonical
        stream order (:func:`observation_sort_key`).
        """
        if len(states) == 0:
            return []
        if self.exception_threshold is not None:
            try:
                keep = np.flatnonzero(
                    self.tool._exception_scores(states.values)
                    >= self.exception_threshold
                )
                states = states.select(keep)
            except RuntimeError:
                pass  # loaded model: no stats, no gate
            if len(states) == 0:
                return []
        out: List[Observation] = []
        for i in range(len(states)):
            out.extend(
                observations_for_state(
                    self.tool,
                    states.values[i],
                    node_id=int(states.node_ids[i]),
                    time_from=float(states.times_from[i]),
                    time_to=float(states.times_to[i]),
                    min_strength=self.min_strength,
                    retention=self.retention,
                )
            )
        out.sort(key=observation_sort_key)
        return out

    # ------------------------------------------------------------------
    # clustering
    # ------------------------------------------------------------------

    def cluster(self, observations: Sequence[Observation]) -> List[Incident]:
        """Greedy spatio-temporal clustering of same-hazard observations.

        A replay over :class:`IncidentTracker`: sort into the canonical
        stream order, feed one observation at a time, flush.
        """
        tracker = IncidentTracker(
            positions=self.positions,
            time_gap_s=self.time_gap_s,
            radius_m=self.radius_m,
        )
        for obs in sorted(observations, key=observation_sort_key):
            tracker.add(obs)
        tracker.flush()
        return tracker.sorted_incidents()

    def extract(self, states: StateMatrix) -> List[Incident]:
        """Full pipeline: states -> observations -> incidents."""
        return self.cluster(self.observations(states))


def incidents_from_trace(
    tool: VN2,
    trace,
    min_observations: int = 2,
    **aggregator_kwargs,
) -> List[Incident]:
    """Convenience: build states from a trace and extract its incidents.

    Args:
        tool: Fitted VN2 model.
        trace: A :class:`repro.traces.records.Trace` (its stored node
            positions, if any, enable spatial clustering).
        min_observations: Drop incidents with fewer observations (noise).
        **aggregator_kwargs: Forwarded to :class:`IncidentAggregator`.
    """
    from repro.core.states import build_states

    positions = {
        int(k): tuple(v)
        for k, v in trace.metadata.get("positions", {}).items()
    } or None
    aggregator = IncidentAggregator(tool, positions=positions, **aggregator_kwargs)
    incidents = aggregator.extract(build_states(trace))
    return [inc for inc in incidents if inc.n_observations >= min_observations]
