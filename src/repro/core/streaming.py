"""Streaming diagnosis session: report packets in, incident events out.

This is the online assembly of the incremental engine — the deployed loop
of the paper's Fig 1 run packet by packet instead of trace by trace:

1. :class:`~repro.core.states.StreamingStateBuilder` turns each arriving
   report packet into a network state the moment its pair completes;
2. the state is screened with the ε exception rule against the model's
   training statistics (one O(metrics) check);
3. exceptional states get ONE per-state NNLS solve, reused for both the
   operator-facing :class:`~repro.core.pipeline.DiagnosisReport` and the
   hazard :class:`~repro.core.incidents.Observation` extraction;
4. observations feed the :class:`~repro.core.incidents.IncidentTracker`,
   whose open/update/close :class:`~repro.core.incidents.IncidentEvent`
   records are what ``vn2 watch`` prints.

Memory is bounded: one cached report per node, O(metrics) screening
statistics, and the open incidents — nothing grows with trace length.
Closed incidents accumulate in ``tracker.incidents`` by default (so batch
replays stay bit-identical); pass ``max_closed_incidents`` to cap that
retention for unbounded runs (the sink service does).

Bit-identity with the batch path holds by construction: the builder's
per-packet differencing, the per-row ε screen, and the per-state NNLS
solve are the very calls the batch replays make, and feeding packets in
the canonical arrival order (``generated_at``, then node id, then epoch —
what :func:`iter_packets` yields) reproduces the batch observation order
exactly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.obs import LATENCY_BUCKETS, MetricsRegistry, get_registry
from repro.core.exceptions import StreamingExceptionDetector
from repro.core.incidents import (
    IncidentEvent,
    IncidentTracker,
    Observation,
    observations_for_state,
)
from repro.core.inference import infer_weights_batch, sparsify_inferred
from repro.core.pipeline import VN2, DiagnosisReport
from repro.core.states import StreamedState, StreamingStateBuilder
from repro.traces.frame import TraceFrame, as_frame
from repro.traces.records import SnapshotRow, Trace

#: One report packet: (node_id, epoch, generated_at, values).
Packet = Tuple[int, int, float, np.ndarray]


def iter_packets(
    source: Union[Trace, TraceFrame, Iterable],
) -> Iterator[Packet]:
    """Yield ``(node_id, epoch, generated_at, values)`` in arrival order.

    A :class:`~repro.traces.frame.TraceFrame` (or legacy ``Trace``) is
    stored node-major; a live sink sees packets in *time* order.  This
    helper yields frame rows sorted by (generated_at, node_id, epoch) —
    the canonical arrival order the streaming engine's bit-identity
    guarantees assume.  Iterables of :class:`SnapshotRow` or packet
    tuples are passed through untouched (a tailed JSONL file is already
    in arrival order).
    """
    if isinstance(source, (Trace, TraceFrame)):
        frame = as_frame(source)
        order = np.lexsort((frame.epochs, frame.node_ids, frame.generated_at))
        for i in order:
            yield (
                int(frame.node_ids[i]),
                int(frame.epochs[i]),
                float(frame.generated_at[i]),
                frame.values[i],
            )
        return
    for item in source:
        if isinstance(item, SnapshotRow):
            yield (item.node_id, item.epoch, item.generated_at, item.values)
        else:
            node_id, epoch, generated_at, values = item
            yield (
                int(node_id),
                int(epoch),
                float(generated_at),
                np.asarray(values, dtype=float),
            )


@dataclass
class StreamUpdate:
    """Everything one completed state produced.

    Attributes:
        state: The emitted network state (``None`` only on the final
            flush update of :meth:`VN2.diagnose_stream`).
        score: The ε/max(ε) exception score (``None`` when the model
            carries no training statistics).
        is_exception: Whether the state passed the exception screen (and
            was therefore diagnosed).
        report: Root-cause diagnosis of the state; ``None`` for screened-
            out states.
        observations: Hazard observations the state contributed.
        events: Incident open/update/close transitions those caused.
    """

    state: Optional[StreamedState]
    score: Optional[float]
    is_exception: bool
    report: Optional[DiagnosisReport]
    observations: List[Observation]
    events: List[IncidentEvent]


class StreamingDiagnosisSession:
    """Stateful packet-at-a-time diagnosis against a fitted model.

    Args:
        tool: A fitted (or loaded) :class:`VN2` model.
        positions: Optional node positions for spatial incident clustering.
        threshold_ratio: ε screen cutoff; defaults to the model config's
            ``exception_threshold``.
        max_epoch_gap / per_epoch_rate: Forwarded to the state builder.
        min_strength / retention: Observation extraction knobs (defaults
            match :class:`~repro.core.incidents.IncidentAggregator`).
        time_gap_s / radius_m: Incident clustering knobs.
        max_closed_incidents: Retention cap on closed incidents kept in
            ``tracker.incidents`` (``None`` = keep all; see
            :class:`~repro.core.incidents.IncidentTracker`).
        registry: Metrics registry to report into; defaults to the
            process-wide :func:`repro.obs.get_registry`.  The sink
            service passes its own private registry per shard.
        metric_labels: Constant labels stamped on every metric this
            session (and its tracker) emits, e.g. ``{"deployment": name}``.

    A model without training statistics (saved by an older version)
    cannot screen, so — exactly like the batch aggregator's fallback —
    every state is diagnosed; an online Welford screen still supplies an
    informational score.
    """

    def __init__(
        self,
        tool: VN2,
        positions=None,
        threshold_ratio: Optional[float] = None,
        max_epoch_gap: Optional[int] = None,
        per_epoch_rate: bool = False,
        min_strength: float = 0.2,
        retention: float = 0.9,
        time_gap_s: float = 600.0,
        radius_m: float = 60.0,
        max_closed_incidents: Optional[int] = None,
        registry: Optional[MetricsRegistry] = None,
        metric_labels: Optional[Mapping[str, str]] = None,
    ):
        tool._require_fitted()
        self.tool = tool
        self.threshold_ratio = (
            tool.config.exception_threshold
            if threshold_ratio is None
            else threshold_ratio
        )
        self.min_strength = min_strength
        self.retention = retention
        self.builder = StreamingStateBuilder(
            max_epoch_gap=max_epoch_gap, per_epoch_rate=per_epoch_rate
        )
        self.registry = get_registry() if registry is None else registry
        labels = dict(metric_labels) if metric_labels else None
        self.tracker = IncidentTracker(
            positions=positions,
            time_gap_s=time_gap_s,
            radius_m=radius_m,
            max_closed=max_closed_incidents,
            registry=self.registry,
            metric_labels=labels,
        )
        reg = self.registry
        # ``_obs_on`` gates the per-packet perf_counter pair; the metric
        # handles themselves are no-op singletons when the registry is
        # disabled, so inc() stays safe either way.
        self._obs_on = reg.enabled
        self._m_packets = reg.counter(
            "repro_streaming_packets_total", "Report packets ingested", labels
        )
        self._m_states = reg.counter(
            "repro_streaming_states_total", "Network states completed", labels
        )
        self._m_exceptions = reg.counter(
            "repro_streaming_exceptions_total",
            "States flagged by the ε exception screen",
            labels,
        )
        self._m_observations = reg.counter(
            "repro_streaming_observations_total",
            "Hazard observations extracted from exception states",
            labels,
        )
        self._m_events = reg.counter(
            "repro_streaming_incident_events_total",
            "Incident open/update/close transitions emitted",
            labels,
        )
        self._m_latency = reg.histogram(
            "repro_streaming_packet_seconds",
            "Per-packet ingest latency (push_packet wall time)",
            labels,
            buckets=LATENCY_BUCKETS,
        )
        self._has_stats = getattr(tool, "_train_mean", None) is not None
        self._fallback: Optional[StreamingExceptionDetector] = (
            None
            if self._has_stats
            else StreamingExceptionDetector(
                threshold_ratio=self.threshold_ratio, keep_states=False
            )
        )
        self.n_exceptions = 0
        self._finished = False

    @property
    def n_packets(self) -> int:
        """Packets ingested so far."""
        return self.builder.n_packets

    @property
    def n_states(self) -> int:
        """States completed so far."""
        return self.builder.n_states

    def counters(self) -> dict:
        """Per-update metrics snapshot (the sink service's ``/metrics`` hook).

        O(open incidents) — cheap enough to call after every packet.
        """
        tracker = self.tracker
        return {
            "packets": self.n_packets,
            "states": self.n_states,
            "exceptions": self.n_exceptions,
            "incidents_open": tracker.n_open,
            "incidents_closed": tracker.n_closed_total,
            "incidents_evicted": tracker.n_evicted,
        }

    def push_packet(
        self,
        node_id: int,
        epoch: int,
        generated_at: float,
        values: np.ndarray,
    ) -> Optional[StreamUpdate]:
        """Ingest one report packet; return the update it completed, if any."""
        if not self._obs_on:
            state = self.builder.push(node_id, epoch, generated_at, values)
            if state is None:
                return None
            return self.push_state(state)
        t0 = time.perf_counter()
        self._m_packets.inc()
        state = self.builder.push(node_id, epoch, generated_at, values)
        update = None if state is None else self.push_state(state)
        self._m_latency.observe(time.perf_counter() - t0)
        return update

    def push_state(self, state: StreamedState) -> StreamUpdate:
        """Screen, diagnose and cluster one completed state."""
        self._m_states.inc()
        if self._has_stats:
            score = float(self.tool._exception_scores(state.values)[0])
            flagged = score >= self.threshold_ratio
        else:
            # Stat-less legacy model: match the batch aggregator's
            # fallback (diagnose everything), Welford score for display.
            score = self._fallback.score(state.values)
            self._fallback.update(state.values)
            flagged = True
        if not flagged:
            return StreamUpdate(
                state=state,
                score=score,
                is_exception=False,
                report=None,
                observations=[],
                events=[],
            )
        self.n_exceptions += 1
        self._m_exceptions.inc()
        # ONE per-state solve — identical to observation_weights(), reused
        # for the report so batch and stream agree bit for bit on
        # observation strengths without a second NNLS.
        normalized = self.tool._normalize_states(state.values)
        weights, residuals = infer_weights_batch(self.tool.nmf_.Psi, normalized)
        report = self.tool._build_report(
            weights[0], float(residuals[0]), float(np.linalg.norm(normalized[0]))
        )
        sparse = sparsify_inferred(weights, retention=self.retention)[0]
        observations = observations_for_state(
            self.tool,
            state.values,
            node_id=state.node_id,
            time_from=state.time_from,
            time_to=state.time_to,
            min_strength=self.min_strength,
            retention=self.retention,
            weights=sparse,
        )
        events = [e for obs in observations for e in self.tracker.add(obs)]
        if observations:
            self._m_observations.inc(len(observations))
        if events:
            self._m_events.inc(len(events))
        return StreamUpdate(
            state=state,
            score=score,
            is_exception=True,
            report=report,
            observations=observations,
            events=events,
        )

    def process(self, packets) -> Iterator[StreamUpdate]:
        """Stream updates for every state a packet source completes.

        Accepts anything :func:`iter_packets` does.  Does NOT flush open
        incidents — call :meth:`finish` when the stream truly ends.
        """
        for packet in iter_packets(packets):
            update = self.push_packet(*packet)
            if update is not None:
                yield update

    def finish(self) -> List[IncidentEvent]:
        """Close every open incident (idempotent end-of-stream flush)."""
        if self._finished:
            return []
        self._finished = True
        return self.tracker.flush()
