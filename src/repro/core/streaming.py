"""Streaming diagnosis session: report packets in, incident events out.

This is the online assembly of the incremental engine — the deployed loop
of the paper's Fig 1 run packet by packet instead of trace by trace:

1. :class:`~repro.core.states.StreamingStateBuilder` turns each arriving
   report packet into a network state the moment its pair completes;
2. the state is screened with the ε exception rule against the model's
   training statistics (one O(metrics) check);
3. exceptional states get ONE per-state NNLS solve, reused for both the
   operator-facing :class:`~repro.core.pipeline.DiagnosisReport` and the
   hazard :class:`~repro.core.incidents.Observation` extraction;
4. observations feed the :class:`~repro.core.incidents.IncidentTracker`,
   whose open/update/close :class:`~repro.core.incidents.IncidentEvent`
   records are what ``vn2 watch`` prints.

Memory is bounded: one cached report per node, one small health summary
per node (:meth:`StreamingDiagnosisSession.node_summaries` — the
dashboard's topology feed), O(metrics) screening statistics, and the
open incidents — nothing grows with trace length.
Closed incidents accumulate in ``tracker.incidents`` by default (so batch
replays stay bit-identical); pass ``max_closed_incidents`` to cap that
retention for unbounded runs (the sink service does).

Bit-identity with the batch path holds by construction: the builder's
per-packet differencing, the per-row ε screen, and the per-state NNLS
solve are the very calls the batch replays make, and feeding packets in
the canonical arrival order (``generated_at``, then node id, then epoch —
what :func:`iter_packets` yields) reproduces the batch observation order
exactly.
"""

from __future__ import annotations

import time
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

import numpy as np

from repro.obs import LATENCY_BUCKETS, MetricsRegistry, get_registry
from repro.metrics.catalog import METRIC_INDEX
from repro.core.exceptions import StreamingExceptionDetector
from repro.core.incidents import (
    IncidentEvent,
    IncidentTracker,
    Observation,
    observations_for_state,
)
from repro.core.inference import (
    NNLSSolverCache,
    infer_weights_batch,
    sparsify_inferred,
)
from repro.core.pipeline import VN2, DiagnosisReport
from repro.core.states import (
    StateMatrix,
    StreamedState,
    StreamingStateBuilder,
    stack_states,
)
from repro.traces.frame import TraceFrame, as_frame
from repro.traces.records import SnapshotRow, Trace

#: One report packet: (node_id, epoch, generated_at, values).
Packet = Tuple[int, int, float, np.ndarray]

#: Raw catalog metrics captured into per-node summaries — the dashboard's
#: topology/health feed: routing position (hop count), path quality,
#: energy, and neighbor-table degree.
SUMMARY_METRICS = ("path_length", "path_etx", "voltage", "neighbor_num")
_SUMMARY_KEYS = ("hop", "path_etx", "voltage", "neighbors")
_SUMMARY_IDX = tuple(METRIC_INDEX[name] for name in SUMMARY_METRICS)


def iter_packets(
    source: Union[Trace, TraceFrame, Iterable],
) -> Iterator[Packet]:
    """Yield ``(node_id, epoch, generated_at, values)`` in arrival order.

    A :class:`~repro.traces.frame.TraceFrame` (or legacy ``Trace``) is
    stored node-major; a live sink sees packets in *time* order.  This
    helper yields frame rows sorted by (generated_at, node_id, epoch) —
    the canonical arrival order the streaming engine's bit-identity
    guarantees assume.  Iterables of :class:`SnapshotRow` or packet
    tuples are passed through untouched (a tailed JSONL file is already
    in arrival order).
    """
    if isinstance(source, (Trace, TraceFrame)):
        frame = as_frame(source)
        order = np.lexsort((frame.epochs, frame.node_ids, frame.generated_at))
        for i in order:
            yield (
                int(frame.node_ids[i]),
                int(frame.epochs[i]),
                float(frame.generated_at[i]),
                frame.values[i],
            )
        return
    for item in source:
        if isinstance(item, SnapshotRow):
            yield (item.node_id, item.epoch, item.generated_at, item.values)
        else:
            node_id, epoch, generated_at, values = item
            yield (
                int(node_id),
                int(epoch),
                float(generated_at),
                np.asarray(values, dtype=float),
            )


class WarmStartCache:
    """Bounded per-node LRU of previous NNLS weight vectors.

    A node's successive exception states activate largely the same root
    causes, so its previous solution's support is an excellent initial
    passive set for the next solve (see
    :func:`~repro.core.inference.infer_weights_batch` — the warm start
    changes convergence speed, never the solution).  Two bounds keep the
    cache honest on long-lived sinks:

    * ``max_nodes`` — least-recently-solved nodes are evicted first;
    * ``max_age_epochs`` — an entry older than this many epochs *in the
      node's own epoch counting* is discarded on lookup, so a node that
      fell silent and came back gets a cold solve (stale supports would
      only slow pivoting down).

    Every eviction — capacity or staleness — increments
    ``repro_warmstart_evictions_total``.
    """

    def __init__(
        self,
        max_nodes: int = 1024,
        max_age_epochs: int = 32,
        registry: Optional[MetricsRegistry] = None,
        labels: Optional[Mapping[str, str]] = None,
    ):
        if max_nodes < 1:
            raise ValueError(f"max_nodes must be >= 1, got {max_nodes}")
        if max_age_epochs < 1:
            raise ValueError(
                f"max_age_epochs must be >= 1, got {max_age_epochs}"
            )
        self.max_nodes = max_nodes
        self.max_age_epochs = max_age_epochs
        self._entries: "OrderedDict[int, Tuple[np.ndarray, int]]" = (
            OrderedDict()
        )
        reg = get_registry() if registry is None else registry
        self._m_evictions = reg.counter(
            "repro_warmstart_evictions_total",
            "Warm-start cache entries evicted (capacity or staleness)",
            dict(labels) if labels else None,
        )

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, node_id: int, epoch: int) -> Optional[np.ndarray]:
        """Previous weights for ``node_id``, or None (cold) when absent
        for more than ``max_age_epochs`` epochs."""
        entry = self._entries.get(node_id)
        if entry is None:
            return None
        weights, last_epoch = entry
        if epoch - last_epoch > self.max_age_epochs:
            del self._entries[node_id]
            self._m_evictions.inc()
            return None
        return weights

    def put(self, node_id: int, epoch: int, weights: np.ndarray) -> None:
        """Record a node's latest solution (evicting LRU past capacity)."""
        if node_id in self._entries:
            self._entries.move_to_end(node_id)
        self._entries[node_id] = (
            np.array(weights, dtype=float).ravel(),
            int(epoch),
        )
        while len(self._entries) > self.max_nodes:
            self._entries.popitem(last=False)
            self._m_evictions.inc()

    def clear(self) -> None:
        """Drop every entry (model rotation: old supports are meaningless
        against a new Ψ).  Not counted as evictions."""
        self._entries.clear()


@dataclass
class StreamUpdate:
    """Everything one completed state produced.

    Attributes:
        state: The emitted network state (``None`` only on the final
            flush update of :meth:`VN2.diagnose_stream`).
        score: The ε/max(ε) exception score (``None`` when the model
            carries no training statistics).
        is_exception: Whether the state passed the exception screen (and
            was therefore diagnosed).
        report: Root-cause diagnosis of the state; ``None`` for screened-
            out states.
        observations: Hazard observations the state contributed.
        events: Incident open/update/close transitions those caused.
    """

    state: Optional[StreamedState]
    score: Optional[float]
    is_exception: bool
    report: Optional[DiagnosisReport]
    observations: List[Observation]
    events: List[IncidentEvent]


class StreamingDiagnosisSession:
    """Stateful packet-at-a-time diagnosis against a fitted model.

    Args:
        tool: A fitted (or loaded) :class:`VN2` model.
        positions: Optional node positions for spatial incident clustering.
        threshold_ratio: ε screen cutoff; defaults to the model config's
            ``exception_threshold``.
        max_epoch_gap / per_epoch_rate: Forwarded to the state builder.
        min_strength / retention: Observation extraction knobs (defaults
            match :class:`~repro.core.incidents.IncidentAggregator`).
        time_gap_s / radius_m: Incident clustering knobs.
        max_closed_incidents: Retention cap on closed incidents kept in
            ``tracker.incidents`` (``None`` = keep all; see
            :class:`~repro.core.incidents.IncidentTracker`).
        registry: Metrics registry to report into; defaults to the
            process-wide :func:`repro.obs.get_registry`.  The sink
            service passes its own private registry per shard.
        metric_labels: Constant labels stamped on every metric this
            session (and its tracker) emits, e.g. ``{"deployment": name}``.
            A ``model_version`` label, when present, is re-stamped by
            :meth:`set_model` on every rotation.
        warm_start: Seed each node's NNLS solve from its previous solution
            (on by default — same weights, fewer pivoting sweeps; see
            :class:`WarmStartCache`).
        warm_cache_nodes / warm_max_age: Warm-start cache bounds (LRU node
            capacity; staleness in the node's own epochs before a cold
            solve).
        keep_exception_states: Retain up to this many recent exception
            states for :meth:`drain_exception_states` (0 = keep none) —
            the feedstock of incremental refits.
        drift_window: Relative-residual samples behind :attr:`drift_score`.

    A model without training statistics (saved by an older version)
    cannot screen, so — exactly like the batch aggregator's fallback —
    every state is diagnosed; an online Welford screen still supplies an
    informational score.
    """

    def __init__(
        self,
        tool: VN2,
        positions=None,
        threshold_ratio: Optional[float] = None,
        max_epoch_gap: Optional[int] = None,
        per_epoch_rate: bool = False,
        min_strength: float = 0.2,
        retention: float = 0.9,
        time_gap_s: float = 600.0,
        radius_m: float = 60.0,
        max_closed_incidents: Optional[int] = None,
        registry: Optional[MetricsRegistry] = None,
        metric_labels: Optional[Mapping[str, str]] = None,
        warm_start: bool = True,
        warm_cache_nodes: int = 1024,
        warm_max_age: int = 32,
        keep_exception_states: int = 0,
        drift_window: int = 256,
    ):
        tool._require_fitted()
        self.tool = tool
        self.threshold_ratio = (
            tool.config.exception_threshold
            if threshold_ratio is None
            else threshold_ratio
        )
        self.min_strength = min_strength
        self.retention = retention
        self.builder = StreamingStateBuilder(
            max_epoch_gap=max_epoch_gap, per_epoch_rate=per_epoch_rate
        )
        self.registry = get_registry() if registry is None else registry
        labels = dict(metric_labels) if metric_labels else None
        self.tracker = IncidentTracker(
            positions=positions,
            time_gap_s=time_gap_s,
            radius_m=radius_m,
            max_closed=max_closed_incidents,
            registry=self.registry,
            metric_labels=labels,
        )
        self._labels: Optional[Dict[str, str]] = labels
        # ``_obs_on`` gates the per-packet perf_counter pair; the metric
        # handles themselves are no-op singletons when the registry is
        # disabled, so inc() stays safe either way.
        self._obs_on = self.registry.enabled
        self._bind_metrics()
        self._warm: Optional[WarmStartCache] = (
            WarmStartCache(
                max_nodes=warm_cache_nodes,
                max_age_epochs=warm_max_age,
                registry=self.registry,
                labels=labels,
            )
            if warm_start
            else None
        )
        # The other half of warm-starting: passive-set factorizations are
        # functions of Ψ alone, so they survive from packet to packet
        # (cleared on model rotation).  Reuse is bit-identical to
        # recomputation — see NNLSSolverCache.
        self._solver_cache: Optional[NNLSSolverCache] = (
            NNLSSolverCache(registry=self.registry, labels=labels)
            if warm_start
            else None
        )
        self._reservoir: Optional["deque[StreamedState]"] = (
            deque(maxlen=keep_exception_states)
            if keep_exception_states > 0
            else None
        )
        self._drift: "deque[float]" = deque(maxlen=drift_window)
        #: node_id -> small plain dict of last-packet/last-state facts —
        #: O(nodes), no frames or arrays retained (the dashboard's feed).
        self._node_summaries: Dict[int, dict] = {}
        self._bind_model(tool)
        self.n_exceptions = 0
        self._finished = False

    def _bind_metrics(self) -> None:
        reg = self.registry
        labels = self._labels
        self._m_packets = reg.counter(
            "repro_streaming_packets_total", "Report packets ingested", labels
        )
        self._m_states = reg.counter(
            "repro_streaming_states_total", "Network states completed", labels
        )
        self._m_exceptions = reg.counter(
            "repro_streaming_exceptions_total",
            "States flagged by the ε exception screen",
            labels,
        )
        self._m_observations = reg.counter(
            "repro_streaming_observations_total",
            "Hazard observations extracted from exception states",
            labels,
        )
        self._m_events = reg.counter(
            "repro_streaming_incident_events_total",
            "Incident open/update/close transitions emitted",
            labels,
        )
        self._m_latency = reg.histogram(
            "repro_streaming_packet_seconds",
            "Per-packet ingest latency (push_packet wall time)",
            labels,
            buckets=LATENCY_BUCKETS,
        )

    def _bind_model(self, tool: VN2) -> None:
        self.tool = tool
        self._has_stats = getattr(tool, "_train_mean", None) is not None
        self._fallback: Optional[StreamingExceptionDetector] = (
            None
            if self._has_stats
            else StreamingExceptionDetector(
                threshold_ratio=self.threshold_ratio, keep_states=False
            )
        )

    @property
    def n_packets(self) -> int:
        """Packets ingested so far."""
        return self.builder.n_packets

    @property
    def n_states(self) -> int:
        """States completed so far."""
        return self.builder.n_states

    def counters(self) -> dict:
        """Per-update metrics snapshot (the sink service's ``/metrics`` hook).

        O(open incidents) — cheap enough to call after every packet.
        """
        tracker = self.tracker
        return {
            "packets": self.n_packets,
            "states": self.n_states,
            "exceptions": self.n_exceptions,
            "incidents_open": tracker.n_open,
            "incidents_closed": tracker.n_closed_total,
            "incidents_evicted": tracker.n_evicted,
        }

    def _summary(self, node_id: int) -> dict:
        summary = self._node_summaries.get(node_id)
        if summary is None:
            summary = self._node_summaries[node_id] = {
                "node_id": int(node_id),
                "epoch": None,
                "last_seen": None,
                "hop": None,
                "path_etx": None,
                "voltage": None,
                "neighbors": None,
                "packets": 0,
                "states": 0,
                "score": None,
                "exception": False,
                "hazard": None,
                "family": None,
                "strength": None,
            }
        return summary

    def node_summaries(self) -> List[dict]:
        """Per-node last-packet/health summaries, in node-id order.

        Each entry is a small plain dict — last epoch and arrival time,
        the raw routing/energy metrics of :data:`SUMMARY_METRICS` (as
        ``hop``/``path_etx``/``voltage``/``neighbors``), packet/state
        counts, and the last exception screen outcome (``score``,
        ``exception``, top ``hazard``/``family``/``strength``).  O(nodes)
        and frame-free by construction, so it is safe to ship over the
        cluster's worker pipes or serialize as JSON after every packet:
        this is what ``GET /api/topology`` renders.  Summaries survive
        :meth:`set_model` (they are positional state, like the tracker).
        """
        return [
            dict(self._node_summaries[node_id])
            for node_id in sorted(self._node_summaries)
        ]

    def push_packet(
        self,
        node_id: int,
        epoch: int,
        generated_at: float,
        values: np.ndarray,
    ) -> Optional[StreamUpdate]:
        """Ingest one report packet; return the update it completed, if any."""
        summary = self._summary(node_id)
        summary["epoch"] = int(epoch)
        summary["last_seen"] = float(generated_at)
        summary["packets"] += 1
        for key, idx in zip(_SUMMARY_KEYS, _SUMMARY_IDX):
            summary[key] = float(values[idx])
        if not self._obs_on:
            state = self.builder.push(node_id, epoch, generated_at, values)
            if state is None:
                return None
            return self.push_state(state)
        t0 = time.perf_counter()
        self._m_packets.inc()
        state = self.builder.push(node_id, epoch, generated_at, values)
        update = None if state is None else self.push_state(state)
        self._m_latency.observe(time.perf_counter() - t0)
        return update

    def push_state(self, state: StreamedState) -> StreamUpdate:
        """Screen, diagnose and cluster one completed state."""
        self._m_states.inc()
        if self._has_stats:
            score = float(self.tool._exception_scores(state.values)[0])
            flagged = score >= self.threshold_ratio
        else:
            # Stat-less legacy model: match the batch aggregator's
            # fallback (diagnose everything), Welford score for display.
            score = self._fallback.score(state.values)
            self._fallback.update(state.values)
            flagged = True
        summary = self._summary(state.node_id)
        summary["states"] += 1
        summary["score"] = None if score is None else float(score)
        summary["exception"] = bool(flagged)
        if not flagged:
            return StreamUpdate(
                state=state,
                score=score,
                is_exception=False,
                report=None,
                observations=[],
                events=[],
            )
        self.n_exceptions += 1
        self._m_exceptions.inc()
        if self._reservoir is not None:
            self._reservoir.append(state)
        # ONE per-state solve — identical to observation_weights(), reused
        # for the report so batch and stream agree bit for bit on
        # observation strengths without a second NNLS.  The node's last
        # solution warm-starts the pivoting (same solution, fewer sweeps).
        normalized = self.tool._normalize_states(state.values)
        previous = (
            self._warm.get(state.node_id, state.epoch_to)
            if self._warm is not None
            else None
        )
        weights, residuals = infer_weights_batch(
            self.tool.nmf_.Psi,
            normalized,
            warm_start=None if previous is None else previous[None, :],
            solver_cache=self._solver_cache,
        )
        if self._warm is not None:
            self._warm.put(state.node_id, state.epoch_to, weights[0])
        report = self.tool._build_report(
            weights[0], float(residuals[0]), float(np.linalg.norm(normalized[0]))
        )
        self._drift.append(report.relative_residual)
        sparse = sparsify_inferred(weights, retention=self.retention)[0]
        observations = observations_for_state(
            self.tool,
            state.values,
            node_id=state.node_id,
            time_from=state.time_from,
            time_to=state.time_to,
            min_strength=self.min_strength,
            retention=self.retention,
            weights=sparse,
        )
        if observations:
            top = max(observations, key=lambda o: o.strength)
            summary["hazard"] = top.hazard
            summary["strength"] = float(top.strength)
        if report.primary is not None:
            summary["family"] = report.primary.label.family
        events = [e for obs in observations for e in self.tracker.add(obs)]
        if observations:
            self._m_observations.inc(len(observations))
        if events:
            self._m_events.inc(len(events))
        return StreamUpdate(
            state=state,
            score=score,
            is_exception=True,
            report=report,
            observations=observations,
            events=events,
        )

    @property
    def drift_score(self) -> float:
        """Mean relative residual of recently diagnosed exception states.

        0 when nothing has been diagnosed yet.  Values climbing toward 1
        mean the serving model can no longer explain what it flags — the
        refit trigger :class:`~repro.core.lifecycle.OnlineVN2Updater`
        formalizes (here surfaced per shard so the sink's
        :class:`~repro.service.models.ModelManager` can poll it).
        """
        if not self._drift:
            return 0.0
        return float(np.mean(self._drift))

    def drain_exception_states(self) -> StateMatrix:
        """Pop the retained exception states (for an incremental refit).

        Only retains anything when the session was constructed with
        ``keep_exception_states > 0``; draining empties the reservoir, so
        successive refits never absorb the same state twice.
        """
        if not self._reservoir:
            return stack_states([])
        states = list(self._reservoir)
        self._reservoir.clear()
        return stack_states(states)

    def set_model(self, tool: VN2) -> Dict[str, int]:
        """Atomically swap the serving model (zero-downtime rotation).

        Everything *positional* survives — the state builder's per-node
        packet cache, the incident tracker with its open incidents, and
        every counter — so the packet stream continues seamlessly: the
        next completed state is diagnosed by the new model.  Everything
        *model-derived* is reset: the warm-start cache (old supports are
        meaningless against a new Ψ), the solver's factorization cache
        (old factors are *wrong* against a new Ψ) and the drift window
        (the new model gets a clean slate).

        The screening threshold chosen at construction is kept — rotation
        changes the model, not the session's operating point.  When the
        session's metric labels carry a ``model_version``, the label is
        re-stamped with the new model's version so per-version series
        split at the rotation (the incident tracker keeps its original
        labels: incidents span rotations).

        Returns the rotation boundary ``{"packets": ..., "states": ...}``
        — replaying the same packets through ``diagnose_stream`` with the
        old model up to ``states`` and the new model after it reproduces
        this session's output exactly.
        """
        tool._require_fitted()
        boundary = {"packets": self.n_packets, "states": self.n_states}
        self._bind_model(tool)
        if self._warm is not None:
            self._warm.clear()
        if self._solver_cache is not None:
            self._solver_cache.clear()
        self._drift.clear()
        if self._labels is not None and "model_version" in self._labels:
            self._labels = {**self._labels, "model_version": tool.model_version}
            self._bind_metrics()
        return boundary

    def process(self, packets) -> Iterator[StreamUpdate]:
        """Stream updates for every state a packet source completes.

        Accepts anything :func:`iter_packets` does.  Does NOT flush open
        incidents — call :meth:`finish` when the stream truly ends.
        """
        for packet in iter_packets(packets):
            update = self.push_packet(*packet)
            if update is not None:
                yield update

    def finish(self) -> List[IncidentEvent]:
        """Close every open incident (idempotent end-of-stream flush)."""
        if self._finished:
            return []
        self._finished = True
        return self.tracker.flush()
