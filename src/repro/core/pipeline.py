"""The VN2 facade: train the representative matrix, diagnose new states.

Typical use::

    from repro import VN2, VN2Config
    from repro.traces import generate_citysee_trace

    trace = generate_citysee_trace()
    tool = VN2(VN2Config(rank=25)).fit(trace)

    report = tool.diagnose(state_vector)   # one 43-metric delta
    for cause in report.ranked:
        print(cause.strength, cause.label.explanation)

``fit`` performs the whole training pipeline of the paper's Fig 1:
states -> exception extraction -> normalization -> NMF -> sparsification,
with the compression factor chosen automatically from a rank sweep when
``config.rank`` is None.  Models can be saved and re-loaded.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.obs import get_registry, span
from repro.core.exceptions import ExceptionSet, detect_exceptions
from repro.core.inference import (
    active_causes,
    infer_single,
    infer_weights_batch,
)
from repro.core.interpretation import RootCauseInterpreter, RootCauseLabel
from repro.core.nmf import NMFResult, nmf
from repro.core.normalization import MinMaxNormalizer
from repro.core.rank_selection import RankSweepResult, choose_rank, rank_sweep
from repro.core.sparsify import SparsifyResult, sparsify_weights
from repro.core.states import StateMatrix, build_states
from repro.metrics.catalog import NUM_METRICS
from repro.traces.frame import TraceFrame
from repro.traces.records import Trace


class ModelIntegrityError(ValueError):
    """A saved model's payload does not match its recorded ``model_version``.

    Raised by :meth:`VN2.load` when the content hash recomputed over the
    ``.npz`` arrays and ``.json`` sidecar disagrees with the
    ``model_version`` the sidecar records — i.e. the files were edited (or
    corrupted) after :meth:`VN2.save` wrote them.  Saves from versions
    that predate ``model_version`` carry no recorded hash and load
    unchecked.
    """


def _model_fingerprint(
    arrays: Mapping[str, np.ndarray], meta: Mapping[str, object]
) -> str:
    """Content hash of a model payload: every array plus the sidecar meta.

    Deterministic across save/load round trips: arrays are hashed in
    sorted name order as (name, shape, raw float64 bytes), and the meta
    document — minus any ``model_version`` entry, so the hash can be
    stored inside the document it covers — as canonical JSON.
    """
    digest = hashlib.sha256()
    for name in sorted(arrays):
        arr = np.ascontiguousarray(np.asarray(arrays[name], dtype=float))
        digest.update(name.encode())
        digest.update(str(arr.shape).encode())
        digest.update(arr.tobytes())
    meta = {k: v for k, v in dict(meta).items() if k != "model_version"}
    digest.update(
        json.dumps(meta, sort_keys=True, separators=(",", ":")).encode()
    )
    return digest.hexdigest()[:12]


@dataclass
class VN2Config:
    """Training configuration.

    Attributes:
        rank: Compression factor r; ``None`` selects it automatically via a
            rank sweep (the paper picked 25 for CitySee, 10 for the
            testbed).
        rank_candidates: Ranks tried when ``rank is None``.
        filter_exceptions: Run the ε-based exception filter before NMF.
            The paper skips it for the small testbed trace ("the normal
            statuses are not large enough to conceal the representation"),
            so testbed experiments set this to False.
        exception_threshold: The ``ε/max(ε)`` ratio (paper: 0.01).
        retention: Algorithm 2 mass retention for sparsifying W.
        nmf_iterations: Maximum multiplicative-update sweeps.
        nmf_init: ``"nndsvd"`` (deterministic) or ``"random"`` (paper).
        seed: Seed for random NMF initialisation.
        normalizer_pad: Range padding when fitting the min-max normalizer.
        min_weight_fraction: Causes below this fraction of the strongest
            cause are dropped from ranked diagnosis output.
    """

    rank: Optional[int] = None
    rank_candidates: Sequence[int] = tuple(range(5, 41, 5))
    filter_exceptions: bool = True
    exception_threshold: float = 0.01
    retention: float = 0.9
    nmf_iterations: int = 300
    nmf_init: str = "nndsvd"
    seed: int = 0
    normalizer_pad: float = 0.05
    min_weight_fraction: float = 0.1

    def __post_init__(self) -> None:
        if len(tuple(self.rank_candidates)) == 0:
            raise ValueError(
                "rank_candidates must be non-empty, got "
                f"{self.rank_candidates!r}"
            )
        if self.rank is not None and self.rank < 1:
            raise ValueError(
                f"rank must be a positive integer or None, got {self.rank!r}"
            )
        if not 0.0 < self.retention <= 1.0:
            raise ValueError(
                f"retention must be in (0, 1], got {self.retention!r}"
            )
        if not 0.0 < self.exception_threshold < 1.0:
            raise ValueError(
                "exception_threshold must be in (0, 1), got "
                f"{self.exception_threshold!r}"
            )


@dataclass
class RankedCause:
    """One root cause in a diagnosis, with quantified influence."""

    index: int
    strength: float
    label: RootCauseLabel


@dataclass
class DiagnosisReport:
    """Outcome of diagnosing one network state.

    Attributes:
        weights: Full length-r NNLS weight vector.
        ranked: Significant causes, strongest first.
        residual: ``‖s - wΨ‖`` in normalized units.
        relative_residual: Residual over the state's norm (0 = perfect
            reconstruction; near 1 = the model cannot explain this state).
    """

    weights: np.ndarray
    ranked: List[RankedCause]
    residual: float
    relative_residual: float

    @property
    def primary(self) -> Optional[RankedCause]:
        """The strongest cause, if any is significant."""
        return self.ranked[0] if self.ranked else None

    def summary(self) -> str:
        """One-line human-readable digest."""
        if not self.ranked:
            return "no significant root cause (state is near normal)"
        parts = [
            f"Ψ{c.index + 1} ({c.label.primary_hazard or c.label.family}, "
            f"w={c.strength:.3f})"
            for c in self.ranked
        ]
        return "; ".join(parts)


class VN2:
    """The measurement-and-analysis tool (paper Sections III-IV)."""

    def __init__(self, config: Optional[VN2Config] = None):
        self.config = config or VN2Config()
        # fitted state (populated by fit / fit_states)
        self.states_: Optional[StateMatrix] = None
        self.exceptions_: Optional[ExceptionSet] = None
        self.normalizer_: Optional[MinMaxNormalizer] = None
        self.nmf_: Optional[NMFResult] = None
        self.sparsify_: Optional[SparsifyResult] = None
        self.rank_sweep_: Optional[RankSweepResult] = None
        self.rank_: Optional[int] = None
        self.labels_: Optional[List[RootCauseLabel]] = None
        self._interpreter = RootCauseInterpreter()
        # online exception-scoring statistics (set by fit_states)
        self._train_mean: Optional[np.ndarray] = None
        self._train_std: Optional[np.ndarray] = None
        self._train_max_eps: float = 0.0
        # content-hash version of the fitted payload (lazy; see
        # ``model_version``); invalidated by anything that refits.
        self._model_version: Optional[str] = None
        #: Per-stage wall-clock seconds of the latest fit / batch call
        #: (keys: states, exceptions, nmf, sparsify, nnls).
        self.timings_: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------

    def fit(self, trace: Union[Trace, TraceFrame]) -> "VN2":
        """Train from a trace or frame (differencing performed internally).

        A :class:`~repro.traces.frame.TraceFrame` is the fast path; a
        legacy :class:`Trace` is columnarized once at this boundary.
        """
        with span("fit"):
            with span("fit.states") as sp:
                states = build_states(trace)
            self.fit_states(states)
            self.timings_ = {"states": sp.wall_s, **self.timings_}
        return self

    def fit_states(self, states: StateMatrix) -> "VN2":
        """Train from pre-built network states.

        Every stage runs under a :func:`repro.obs.span` (``fit.exceptions``
        … ``fit.interpret``) — ``vn2 profile train`` renders them as a
        tree — and the :attr:`timings_` dict keeps its seed-era keys
        (``states``/``exceptions``/``nmf``/``sparsify``) derived from the
        same measurements.
        """
        if len(states) < 2:
            raise ValueError(
                f"need at least 2 states to train, got {len(states)}"
            )
        self.states_ = states
        self.timings_ = {}
        self._model_version = None

        # Deviation statistics for online exception scoring: mean/std of
        # every metric over the training states and the largest training
        # deviation, so ``exception_score`` reproduces the paper's
        # ``ε/max(ε)`` ratio on states arriving after training.
        values = states.values
        self._train_mean = values.mean(axis=0)
        std = values.std(axis=0)
        self._train_std = np.where(std < 1e-12, 1.0, std)
        z = (values - self._train_mean) / self._train_std
        epsilon = (z * z).sum(axis=1)
        self._train_max_eps = float(np.max(epsilon))

        with span("fit.exceptions", n_states=len(states)) as sp:
            if self.config.filter_exceptions:
                # epsilon is exactly deviation_scores(values); hand it over
                # so the detector skips its own identical pass.
                self.exceptions_ = detect_exceptions(
                    states,
                    threshold_ratio=self.config.exception_threshold,
                    epsilon=epsilon,
                )
                training = self.exceptions_.states
            else:
                self.exceptions_ = None
                training = states
        self.timings_["exceptions"] = sp.wall_s
        if len(training) < 2:
            raise ValueError(
                "exception filter left fewer than 2 states; lower the "
                "threshold or disable filter_exceptions"
            )

        with span("fit.normalize"):
            self.normalizer_ = MinMaxNormalizer.fit(
                training.values, pad_fraction=self.config.normalizer_pad
            )
            E = self.normalizer_.transform(training.values)

        nmf_seconds = 0.0
        rank = self.config.rank
        if rank is None:
            candidates = [
                r for r in self.config.rank_candidates if r <= min(E.shape)
            ]
            if not candidates:
                candidates = [min(E.shape)]
            with span("fit.rank_sweep", candidates=candidates) as sp:
                self.rank_sweep_ = rank_sweep(
                    E,
                    candidates,
                    retention=self.config.retention,
                    n_iter=self.config.nmf_iterations,
                    init=self.config.nmf_init,
                    rng=np.random.default_rng(self.config.seed),
                )
                rank = choose_rank(self.rank_sweep_)
            nmf_seconds += sp.wall_s
        rank = int(min(rank, min(E.shape)))
        self.rank_ = rank

        with span("fit.nmf", rank=rank, shape=list(E.shape)) as sp:
            self.nmf_ = nmf(
                E,
                rank,
                n_iter=self.config.nmf_iterations,
                init=self.config.nmf_init,
                rng=np.random.default_rng(self.config.seed),
            )
        nmf_seconds += sp.wall_s
        # Seed-compatible key: rank sweep and final factorization together,
        # exactly what the old ad-hoc stopwatch covered.
        self.timings_["nmf"] = nmf_seconds

        with span("fit.sparsify") as sp:
            self.sparsify_ = sparsify_weights(
                self.nmf_.W, retention=self.config.retention
            )
        self.timings_["sparsify"] = sp.wall_s
        # Usage-based baseline detection mirrors the paper's testbed
        # reasoning ("Ψ7 is used much more than any other feature, so it
        # must represent normal states") — which is only sound when the
        # training set contains the normal states, i.e. when the exception
        # filter is off.  A filtered training set is all-exceptional, and
        # its most-used row is the dominant *fault*, not normality.
        usage = (
            self.sparsify_.W_sparse.mean(axis=0)
            if not self.config.filter_exceptions
            else None
        )
        with span("fit.interpret"):
            self.labels_ = self._interpreter.interpret(
                self.psi_display(),
                energies=self._row_energies(),
                usage=usage,
            )
        registry = get_registry()
        registry.counter(
            "repro_core_fits_total", "VN2 models fitted in this process"
        ).inc()
        registry.counter(
            "repro_core_fit_states_total",
            "Network states consumed by VN2 fits",
        ).inc(len(states))
        return self

    # ------------------------------------------------------------------
    # fitted accessors
    # ------------------------------------------------------------------

    def _require_fitted(self) -> None:
        if self.nmf_ is None or self.normalizer_ is None:
            raise RuntimeError("VN2 model is not fitted yet; call fit() first")

    @property
    def psi(self) -> np.ndarray:
        """The representative matrix Ψ (r x 43), in normalized units."""
        self._require_fitted()
        return self.nmf_.Psi

    def psi_display(self) -> np.ndarray:
        """Ψ in the paper's display convention (signed, scaled to [-1, 1])."""
        self._require_fitted()
        return self.normalizer_.display(self.nmf_.Psi)

    def _row_energies(self) -> np.ndarray:
        """Unnormalized magnitude of each Ψ row about the zero-delta point."""
        self._require_fitted()
        centred = self.nmf_.Psi - self.normalizer_.rest_point()
        return np.linalg.norm(centred, axis=1)

    @property
    def labels(self) -> List[RootCauseLabel]:
        """Interpretations of every Ψ row."""
        self._require_fitted()
        return list(self.labels_ or [])

    def _payload_arrays(self) -> Dict[str, np.ndarray]:
        """The arrays :meth:`save` persists — also the hashed payload."""
        arrays = {
            "W": self.nmf_.W,
            "Psi": self.nmf_.Psi,
            "W_sparse": self.sparsify_.W_sparse,
            "lo": self.normalizer_.lo,
            "hi": self.normalizer_.hi,
        }
        if self._train_mean is not None:
            arrays["train_mean"] = self._train_mean
            arrays["train_std"] = self._train_std
            arrays["train_max_eps"] = np.array(self._train_max_eps)
        return arrays

    def _sidecar_meta(self) -> Dict[str, object]:
        """The json sidecar document (sans ``model_version``)."""
        return {
            "rank": self.rank_,
            "config": {
                "rank": self.config.rank,
                "rank_candidates": list(self.config.rank_candidates),
                "filter_exceptions": self.config.filter_exceptions,
                "exception_threshold": self.config.exception_threshold,
                "retention": self.config.retention,
                "nmf_iterations": self.config.nmf_iterations,
                "nmf_init": self.config.nmf_init,
                "seed": self.config.seed,
                "normalizer_pad": self.config.normalizer_pad,
                "min_weight_fraction": self.config.min_weight_fraction,
            },
            "normalizer": {
                "method": self.normalizer_.method,
                "robust_quantile": self.normalizer_.robust_quantile,
            },
        }

    @property
    def model_version(self) -> str:
        """Content-hash version of the fitted model (short sha256 hex).

        Covers exactly what :meth:`save` persists — the factor matrices,
        normalizer ranges, training statistics and the config sidecar — so
        two models answer diagnoses identically whenever their versions
        match.  Computed lazily and cached; any refit invalidates it.
        """
        self._require_fitted()
        if self._model_version is None:
            self._model_version = _model_fingerprint(
                self._payload_arrays(), self._sidecar_meta()
            )
        return self._model_version

    def explain(self, index: int) -> RootCauseLabel:
        """Interpretation of root-cause vector ``Ψ[index]`` (0-based)."""
        self._require_fitted()
        return self.labels_[index]

    # ------------------------------------------------------------------
    # diagnosis
    # ------------------------------------------------------------------

    def _normalize_states(self, states: np.ndarray) -> np.ndarray:
        return self.normalizer_.transform(np.atleast_2d(states))

    def exception_score(self, state: np.ndarray) -> float:
        """The paper's ``ε/max(ε)`` ratio for a new state.

        ``ε`` is the state's squared-z-score deviation from the training
        states' per-metric mean, and ``max(ε)`` the largest deviation seen
        in training.  A state scoring >= the training exception threshold
        (0.01 in the paper) would have been flagged as an exception.
        Available on models fitted in-process and on models loaded from
        saves that recorded the statistics (older saves did not).
        """
        if getattr(self, "_train_mean", None) is None:
            raise RuntimeError(
                "exception_score needs training statistics; the model was "
                "loaded from disk or not fitted"
            )
        state = np.asarray(state, dtype=float).ravel()
        z = (state - self._train_mean) / self._train_std
        eps = float((z * z).sum())
        return eps / self._train_max_eps if self._train_max_eps > 0 else 0.0

    def is_exception(self, state: np.ndarray, threshold_ratio: Optional[float] = None) -> bool:
        """True if ``state`` deviates like a training exception."""
        if threshold_ratio is None:
            threshold_ratio = self.config.exception_threshold
        return self.exception_score(state) >= threshold_ratio

    def _build_report(
        self, weights: np.ndarray, residual: float, state_norm: float
    ) -> DiagnosisReport:
        significant = active_causes(weights, self.config.min_weight_fraction)
        ranked = sorted(
            (
                RankedCause(
                    index=int(j),
                    strength=float(weights[j]),
                    label=self.labels_[int(j)],
                )
                for j in significant
            ),
            key=lambda c: c.strength,
            reverse=True,
        )
        return DiagnosisReport(
            weights=weights,
            ranked=ranked,
            residual=float(residual),
            relative_residual=residual / state_norm if state_norm > 0 else 0.0,
        )

    def diagnose(self, state: np.ndarray) -> DiagnosisReport:
        """Attribute one 43-metric state delta to root causes (Problem 3)."""
        self._require_fitted()
        state = np.asarray(state, dtype=float).ravel()
        if state.shape[0] != NUM_METRICS:
            raise ValueError(
                f"state must have {NUM_METRICS} metrics, got {state.shape[0]}"
            )
        normalized = self._normalize_states(state)[0]
        weights, residual = infer_single(self.nmf_.Psi, normalized)
        return self._build_report(
            weights, residual, float(np.linalg.norm(normalized))
        )

    def diagnose_batch(
        self, states: Union[StateMatrix, np.ndarray]
    ) -> List[DiagnosisReport]:
        """Attribute a whole batch of states in one vectorized NNLS sweep.

        Equivalent to ``[self.diagnose(s) for s in states]`` (weights agree
        to solver round-off) but solves every non-negative least-squares
        problem simultaneously via
        :func:`repro.core.inference.infer_weights_batch`.

        Returns one :class:`DiagnosisReport` per state, in order.
        """
        self._require_fitted()
        values = states.values if isinstance(states, StateMatrix) else states
        values = np.atleast_2d(np.asarray(values, dtype=float))
        if values.shape[1] != NUM_METRICS:
            raise ValueError(
                f"states must have {NUM_METRICS} metrics, got {values.shape[1]}"
            )
        normalized = self._normalize_states(values)
        with span("diagnose.nnls", n_states=values.shape[0]) as sp:
            weights, residuals = infer_weights_batch(self.nmf_.Psi, normalized)
        self.timings_["nnls"] = sp.wall_s
        norms = np.linalg.norm(normalized, axis=1)
        return [
            self._build_report(weights[i], float(residuals[i]), float(norms[i]))
            for i in range(values.shape[0])
        ]

    def _exception_scores(self, values: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`exception_score` over state rows."""
        if getattr(self, "_train_mean", None) is None:
            raise RuntimeError(
                "exception scoring needs training statistics; the model "
                "was loaded from disk or not fitted"
            )
        values = np.atleast_2d(np.asarray(values, dtype=float))
        z = (values - self._train_mean) / self._train_std
        eps = (z * z).sum(axis=1)
        if self._train_max_eps <= 0:
            return np.zeros(values.shape[0])
        return eps / self._train_max_eps

    def diagnose_exceptions(
        self,
        states: StateMatrix,
        threshold_ratio: Optional[float] = None,
    ) -> List[Tuple["StateProvenance", DiagnosisReport]]:
        """Diagnose only the exceptional states of a batch.

        The deployed loop (paper Fig 1): screen incoming states with the
        ε rule against the training statistics (one vectorized pass),
        diagnose the survivors in one batch NNLS sweep.
        Returns (provenance, report) pairs in state order.
        """
        self._require_fitted()
        if threshold_ratio is None:
            threshold_ratio = self.config.exception_threshold
        flagged = np.flatnonzero(
            self._exception_scores(states.values) >= threshold_ratio
        )
        reports = self.diagnose_batch(states.values[flagged])
        return [
            (states.provenance[int(i)], report)
            for i, report in zip(flagged, reports)
        ]

    def diagnose_stream(
        self,
        packets,
        threshold_ratio: Optional[float] = None,
        positions: Optional[Dict[int, Tuple[float, float]]] = None,
        max_epoch_gap: Optional[int] = None,
        min_strength: float = 0.2,
        retention: float = 0.9,
        time_gap_s: float = 600.0,
        radius_m: float = 60.0,
    ):
        """Diagnose a packet stream incrementally (generator).

        The online face of the engine: packets go through the streaming
        state builder, the ε exception screen, one per-state NNLS solve
        and the incident tracker, yielding one
        :class:`~repro.core.streaming.StreamUpdate` per completed state as
        its completing packet arrives — memory stays bounded by the node
        population, never the trace length.

        ``packets`` is anything :func:`repro.core.streaming.iter_packets`
        accepts: a :class:`~repro.traces.frame.TraceFrame` / ``Trace``
        (iterated in arrival order), an iterable of
        :class:`~repro.traces.records.SnapshotRow`, or raw
        ``(node_id, epoch, generated_at, values)`` tuples.

        After the source is exhausted a final update (``state=None``)
        carrying the flush-close incident events is yielded, so every
        incident the stream opened is eventually closed.

        Keyword arguments mirror
        :class:`~repro.core.streaming.StreamingDiagnosisSession`; for a
        long-lived feed (e.g. tailing a file) construct the session
        directly to control flushing yourself.
        """
        from repro.core.streaming import StreamingDiagnosisSession, StreamUpdate

        session = StreamingDiagnosisSession(
            self,
            positions=positions,
            threshold_ratio=threshold_ratio,
            max_epoch_gap=max_epoch_gap,
            min_strength=min_strength,
            retention=retention,
            time_gap_s=time_gap_s,
            radius_m=radius_m,
        )
        for update in session.process(packets):
            yield update
        closing = session.finish()
        if closing:
            yield StreamUpdate(
                state=None,
                score=None,
                is_exception=False,
                report=None,
                observations=[],
                events=closing,
            )

    def correlation_strengths(self, states: Union[StateMatrix, np.ndarray]) -> np.ndarray:
        """NNLS weights for a batch of states: (n, r) matrix.

        This is what the paper's correlation-scatter figures (3c, 5b, 6b)
        plot: which Ψ rows each exception state activates.
        """
        self._require_fitted()
        values = states.values if isinstance(states, StateMatrix) else states
        normalized = self._normalize_states(values)
        with span("diagnose.nnls", n_states=normalized.shape[0]) as sp:
            weights, _residuals = infer_weights_batch(self.nmf_.Psi, normalized)
        self.timings_["nnls"] = sp.wall_s
        return weights

    # ------------------------------------------------------------------
    # incremental updates
    # ------------------------------------------------------------------

    def refit_with(
        self,
        new_states: StateMatrix,
        warm_iterations: int = 60,
        tol: float = 0.0,
    ) -> "VN2":
        """Update the model with freshly collected states (warm start).

        The combined state set is re-filtered and re-normalized, and NMF
        resumes from the current Ψ: the existing root-cause vectors seed
        the factorization (W for the new exception set is obtained by
        NNLS), then a short run of multiplicative updates adapts both
        factors.  This keeps root-cause identities stable across updates
        while needing far fewer sweeps than a cold refit — the operational
        mode of a long-running deployment ("retrain nightly").

        One entry point over :func:`repro.core.lifecycle.incremental_refit`
        (which :class:`~repro.core.lifecycle.OnlineVN2Updater` also drives);
        ``tol > 0`` enables relative-improvement early stopping of the warm
        multiplicative sweeps (0 keeps the historical fixed-budget run).

        The compression factor r is kept; call :meth:`fit_states` for a
        full retrain with rank re-selection.
        """
        from repro.core.lifecycle import incremental_refit

        return incremental_refit(
            self, new_states, warm_iterations=warm_iterations, tol=tol
        )

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------

    def save(self, path: Union[str, Path]) -> None:
        """Persist the fitted model (npz next to a small json sidecar).

        Besides the factor matrices and normalizer ranges, the training
        deviation statistics (mean/std/max ε) are stored so a loaded
        model can still screen incoming states — the ``vn2 watch`` /
        :meth:`diagnose_stream` deployment path.  The sidecar records the
        payload's :attr:`model_version` content hash; :meth:`load`
        verifies it, so tampered or corrupted files fail loudly.
        """
        self._require_fitted()
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        arrays = self._payload_arrays()
        np.savez_compressed(path.with_suffix(".npz"), **arrays)
        sidecar = self._sidecar_meta()
        sidecar["model_version"] = self.model_version
        path.with_suffix(".json").write_text(json.dumps(sidecar, indent=2))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "VN2":
        """Load a model saved with :meth:`save` (older saves still load,
        minus whatever they did not record).

        Raises:
            ModelIntegrityError: The sidecar records a ``model_version``
                and the payload on disk no longer hashes to it.
        """
        path = Path(path)
        sidecar = json.loads(path.with_suffix(".json").read_text())
        arrays = np.load(path.with_suffix(".npz"))
        computed = _model_fingerprint(
            {name: arrays[name] for name in arrays.files}, sidecar
        )
        recorded = sidecar.get("model_version")
        if recorded is not None and recorded != computed:
            raise ModelIntegrityError(
                f"model payload at {path} hashes to {computed} but its "
                f"sidecar records model_version {recorded}; the files were "
                "modified after saving (or corrupted)"
            )
        config_kwargs = dict(sidecar["config"])
        if "rank_candidates" in config_kwargs:
            config_kwargs["rank_candidates"] = tuple(
                config_kwargs["rank_candidates"]
            )
        tool = cls(VN2Config(**config_kwargs))
        tool.rank_ = sidecar["rank"]
        norm_meta = sidecar.get("normalizer", {})
        tool.normalizer_ = MinMaxNormalizer(
            lo=arrays["lo"],
            hi=arrays["hi"],
            method=norm_meta.get("method", "robust"),
            robust_quantile=norm_meta.get("robust_quantile", 0.98),
        )
        if "train_mean" in arrays:
            tool._train_mean = arrays["train_mean"]
            tool._train_std = arrays["train_std"]
            tool._train_max_eps = float(arrays["train_max_eps"])
        tool.nmf_ = NMFResult(
            W=arrays["W"],
            Psi=arrays["Psi"],
            loss_history=[],
            n_iter=0,
            converged=True,
        )
        tool.sparsify_ = SparsifyResult(
            W_sparse=arrays["W_sparse"],
            mask=arrays["W_sparse"] > 0,
            kept_fraction=float((arrays["W_sparse"] > 0).mean()),
            retained_mass=1.0,
        )
        usage = (
            tool.sparsify_.W_sparse.mean(axis=0)
            if not tool.config.filter_exceptions
            else None
        )
        tool.labels_ = tool._interpreter.interpret(
            tool.psi_display(),
            energies=tool._row_energies(),
            usage=usage,
        )
        tool._model_version = computed
        return tool
