"""Non-negative matrix factorization: the paper's Algorithm 1.

Multiplicative updates for the Euclidean (Frobenius) objective, exactly the
Lee-Seung rules the paper cites ([17]):

    Ψ <- Ψ * (WᵀV) / (WᵀWΨ)        W <- W * (VΨᵀ) / (WΨΨᵀ)

Theorem 1 (Lee-Seung) guarantees ``‖V - WΨ‖`` is non-increasing under
these updates — :func:`nmf` tracks the loss every iteration and the test
suite asserts monotonicity.

Lee-Seung's *other* objective — generalized Kullback-Leibler divergence —
is also implemented (``objective="kl"``):

    Ψ <- Ψ * (Wᵀ(V/WΨ)) / (Wᵀ1)    W <- W * ((V/WΨ)Ψᵀ) / (1Ψᵀ)

The divergence objective weights small entries relatively more, which can
matter for sparse counter columns; the ablation bench compares the two on
real exception data.

Written from scratch on numpy; no sklearn.  Two initialisations are
provided: scaled ``random`` (the paper's choice in Algorithm 1 step 1) and
``nndsvd`` (SVD-seeded, deterministic, usually converging in far fewer
iterations — used by the ablation benches).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.obs import get_registry

_EPS = 1e-10


@dataclass
class NMFResult:
    """Outcome of a factorization ``V ≈ W @ Psi``.

    Attributes:
        W: (n, r) correlation strengths.
        Psi: (r, m) representative matrix (rows = root-cause vectors).
        loss_history: Frobenius loss after each iteration.
        n_iter: Iterations actually performed.
        converged: True if the relative-improvement tolerance was hit.
    """

    W: np.ndarray
    Psi: np.ndarray
    loss_history: List[float]
    n_iter: int
    converged: bool

    @property
    def rank(self) -> int:
        return self.Psi.shape[0]

    @property
    def loss(self) -> float:
        """Final Frobenius loss ``‖V - W Psi‖_F`` (Definition 1's α)."""
        return self.loss_history[-1] if self.loss_history else float("nan")

    def reconstruct(self) -> np.ndarray:
        """The rank-r approximation ``W @ Psi``."""
        return self.W @ self.Psi


def _validate_input(V: np.ndarray, r: int) -> np.ndarray:
    V = np.asarray(V, dtype=float)
    if V.ndim != 2:
        raise ValueError(f"V must be 2-D, got shape {V.shape}")
    if V.shape[0] == 0 or V.shape[1] == 0:
        raise ValueError("V must be non-empty")
    if np.any(V < 0):
        raise ValueError(
            "NMF input must be non-negative; normalize signed deltas first "
            "(see repro.core.normalization.MinMaxNormalizer)"
        )
    if not np.all(np.isfinite(V)):
        raise ValueError("V contains NaN or infinite entries")
    if not (1 <= r <= min(V.shape)):
        raise ValueError(
            f"rank r must be in [1, min(n, m)] = [1, {min(V.shape)}], got {r}"
        )
    return V


def _init_random(
    V: np.ndarray, r: int, rng: np.random.Generator
) -> "tuple[np.ndarray, np.ndarray]":
    """Algorithm 1 step 1: random positive factors, scaled to V's energy."""
    n, m = V.shape
    scale = np.sqrt(max(V.mean(), _EPS) / r)
    W = rng.uniform(0.1, 1.0, size=(n, r)) * scale
    Psi = rng.uniform(0.1, 1.0, size=(r, m)) * scale
    return W, Psi


def _init_nndsvd(V: np.ndarray, r: int) -> "tuple[np.ndarray, np.ndarray]":
    """Boutsidis-Gallopoulos NNDSVD: deterministic SVD-based seeding."""
    U, S, Vt = np.linalg.svd(V, full_matrices=False)
    n, m = V.shape
    W = np.zeros((n, r))
    Psi = np.zeros((r, m))
    # Leading factor: the sign-corrected first singular triplet.
    W[:, 0] = np.sqrt(S[0]) * np.abs(U[:, 0])
    Psi[0, :] = np.sqrt(S[0]) * np.abs(Vt[0, :])
    for j in range(1, r):
        u, v = U[:, j], Vt[j, :]
        u_pos, u_neg = np.maximum(u, 0), np.maximum(-u, 0)
        v_pos, v_neg = np.maximum(v, 0), np.maximum(-v, 0)
        pos_norm = np.linalg.norm(u_pos) * np.linalg.norm(v_pos)
        neg_norm = np.linalg.norm(u_neg) * np.linalg.norm(v_neg)
        if pos_norm >= neg_norm:
            uu = u_pos / max(np.linalg.norm(u_pos), _EPS)
            vv = v_pos / max(np.linalg.norm(v_pos), _EPS)
            sigma = pos_norm
        else:
            uu = u_neg / max(np.linalg.norm(u_neg), _EPS)
            vv = v_neg / max(np.linalg.norm(v_neg), _EPS)
            sigma = neg_norm
        W[:, j] = np.sqrt(S[j] * sigma) * uu
        Psi[j, :] = np.sqrt(S[j] * sigma) * vv
    # Zeros stall multiplicative updates; lift them to a small floor.
    mean = max(V.mean(), _EPS)
    W[W < _EPS] = mean * 0.01
    Psi[Psi < _EPS] = mean * 0.01
    return W, Psi


def frobenius_loss(V: np.ndarray, W: np.ndarray, Psi: np.ndarray) -> float:
    """``‖V - W Psi‖_F`` — the paper's approximation accuracy α."""
    return float(np.linalg.norm(V - W @ Psi))


def kl_divergence(V: np.ndarray, W: np.ndarray, Psi: np.ndarray) -> float:
    """Generalized KL divergence ``D(V ‖ WΨ)`` (Lee-Seung's second
    objective): ``Σ V log(V/WΨ) - V + WΨ``, with 0·log 0 := 0."""
    approx = W @ Psi + _EPS
    V = np.asarray(V, dtype=float)
    log_term = np.where(V > 0, V * np.log((V + _EPS) / approx), 0.0)
    return float((log_term - V + approx).sum())


def nmf_best_of(
    V: np.ndarray,
    r: int,
    restarts: int = 5,
    seed: int = 0,
    **kwargs,
) -> NMFResult:
    """Best-of-N random-restart NMF (lowest final loss wins).

    Multiplicative updates converge to local optima; on data with strongly
    correlated planted components the restart with the lowest loss also
    recovers the components best, so a handful of restarts is the cheap
    way to buy quality.  ``kwargs`` are forwarded to :func:`nmf` (init is
    forced to ``random``).
    """
    if restarts < 1:
        raise ValueError("need at least one restart")
    kwargs.pop("init", None)
    kwargs.pop("rng", None)
    best: Optional[NMFResult] = None
    for k in range(restarts):
        result = nmf(
            V, r, init="random", rng=np.random.default_rng(seed + k), **kwargs
        )
        if best is None or result.loss < best.loss:
            best = result
    return best


def nmf(
    V: np.ndarray,
    r: int,
    n_iter: int = 300,
    tol: float = 1e-5,
    init: str = "random",
    rng: Optional[np.random.Generator] = None,
    track_loss: bool = True,
    objective: str = "frobenius",
) -> NMFResult:
    """Factorize ``V ≈ W Psi`` with multiplicative updates (Algorithm 1).

    Args:
        V: (n, m) non-negative data matrix (exception states x metrics).
        r: Compression factor — the number of root-cause vectors.
        n_iter: Maximum update sweeps.
        tol: Stop when the relative loss improvement over one sweep falls
            below this.
        init: ``"random"`` (paper) or ``"nndsvd"`` (deterministic).
        rng: Random generator for ``init="random"``; a fixed default seed
            is used when omitted, keeping results reproducible.
        track_loss: Record the loss each sweep (small extra cost).
        objective: ``"frobenius"`` (the paper's Algorithm 1) or ``"kl"``
            (Lee-Seung's generalized KL divergence).

    Returns:
        An :class:`NMFResult`; ``result.Psi`` is the representative matrix.
        ``loss_history`` tracks the chosen objective.
    """
    V = _validate_input(V, r)
    if objective not in ("frobenius", "kl"):
        raise ValueError(
            f"unknown objective {objective!r}; use 'frobenius' or 'kl'"
        )
    if init == "random":
        if rng is None:
            rng = np.random.default_rng(0)
        W, Psi = _init_random(V, r, rng)
    elif init == "nndsvd":
        W, Psi = _init_nndsvd(V, r)
    else:
        raise ValueError(f"unknown init {init!r}; use 'random' or 'nndsvd'")

    loss_of = frobenius_loss if objective == "frobenius" else kl_divergence

    loss_history: List[float] = []
    previous_loss = loss_of(V, W, Psi)
    v_energy = float(np.einsum("ij,ij->", V, V))
    converged = False
    iterations = 0
    if objective == "frobenius":
        # At the paper's sizes (a few hundred exceptions x 43 metrics)
        # each sweep is numpy-call-overhead-bound, not flop-bound: scratch
        # arrays are preallocated and written with ``out=``, and ``WᵀW``
        # is cached — the Ψ update and the loss expansion share it.
        n, m = V.shape
        WtW = W.T @ W
        WtV = np.empty((r, m))
        denom_psi = np.empty((r, m))
        cross = np.empty((n, r))
        gram = np.empty((r, r))
        denom_w = np.empty((n, r))
    for iterations in range(1, n_iter + 1):
        if objective == "frobenius":
            # Ψ update (Algorithm 1, step 4)
            np.matmul(W.T, V, out=WtV)
            np.matmul(WtW, Psi, out=denom_psi)
            denom_psi += _EPS
            WtV /= denom_psi
            Psi *= WtV
            # W update (Algorithm 1, step 9)
            np.matmul(V, Psi.T, out=cross)
            np.matmul(Psi, Psi.T, out=gram)
            np.matmul(W, gram, out=denom_w)
            denom_w += _EPS
            np.divide(cross, denom_w, out=denom_w)
            W *= denom_w
            np.matmul(W.T, W, out=WtW)
        else:
            # KL updates: Ψ <- Ψ * (Wᵀ(V/WΨ)) / (Wᵀ1)
            ratio = V / (W @ Psi + _EPS)
            Psi *= (W.T @ ratio) / (W.sum(axis=0)[:, None] + _EPS)
            ratio = V / (W @ Psi + _EPS)
            W *= (ratio @ Psi.T) / (Psi.sum(axis=1)[None, :] + _EPS)

        if track_loss or tol > 0:
            if objective == "frobenius":
                # ``‖V - WΨ‖²`` expands to ``‖V‖² - 2 tr(WᵀVΨᵀ) +
                # tr(WᵀW · ΨΨᵀ)``; both traces reuse matrices the W
                # update already produced, so tracking costs two dot
                # products instead of a full O(nrm) reconstruction.
                fit_term = float(np.dot(cross.ravel(), W.ravel()))
                norm_term = float(np.dot(WtW.ravel(), gram.ravel()))
                residual_sq = v_energy - 2.0 * fit_term + norm_term
                if residual_sq > 1e-8 * max(v_energy, 1.0):
                    loss = float(np.sqrt(residual_sq))
                else:
                    # A near-zero residual sits below the expansion's
                    # cancellation noise; reconstruct exactly there.
                    loss = loss_of(V, W, Psi)
            else:
                loss = loss_of(V, W, Psi)
            if track_loss:
                loss_history.append(loss)
            if previous_loss > 0 and (previous_loss - loss) / max(previous_loss, _EPS) < tol:
                converged = True
                previous_loss = loss
                break
            previous_loss = loss
    if not loss_history:
        loss_history = [previous_loss]
    registry = get_registry()
    if registry.enabled:
        registry.counter(
            "repro_core_nmf_runs_total", "NMF factorizations performed"
        ).inc()
        registry.counter(
            "repro_core_nmf_iterations_total",
            "Multiplicative-update iterations across all NMF runs",
        ).inc(iterations)
    return NMFResult(
        W=W,
        Psi=Psi,
        loss_history=loss_history,
        n_iter=iterations,
        converged=converged,
    )
