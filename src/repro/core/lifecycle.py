"""Online model lifecycle: incremental refits and drift-triggered updates.

A long-running deployment cannot afford a cold ``VN2.fit`` every time the
network drifts, and a *serving* deployment cannot afford the model it is
diagnosing with to mutate under its feet.  This module owns both halves:

* :func:`incremental_refit` — the warm-started update core.  It absorbs a
  batch of new states into a fitted :class:`~repro.core.pipeline.VN2` by
  re-screening/re-normalizing the combined state set and resuming NMF
  from the current Ψ (old W rows carried over where the training rows
  line up, new rows NNLS-seeded), so root-cause identities stay aligned
  across updates at a fraction of a cold refit's sweeps.
  ``VN2.refit_with`` is a thin delegate over this function.
* :class:`OnlineVN2Updater` — the lifecycle driver.  It treats the
  current model as an immutable fitted artifact: ``absorb`` clones it,
  refits the clone and returns the clone, leaving the original untouched
  for whoever is still serving it (the sink swaps atomically on rotation).
  It also keeps a bounded window of relative residuals from recent
  diagnoses — the *drift score* — and exposes ``should_refit`` as the
  refit trigger.

Every model carries a content-hash ``model_version``
(:attr:`~repro.core.pipeline.VN2.model_version`); a refit invalidates it,
so the updated clone gets a fresh version and the serving layers can tell
the two apart.
"""

from __future__ import annotations

import copy
from collections import deque
from typing import Deque, Optional

import numpy as np

from repro.obs import get_registry, span
from repro.core.exceptions import detect_exceptions
from repro.core.inference import infer_weights
from repro.core.nmf import NMFResult, _EPS, frobenius_loss
from repro.core.normalization import MinMaxNormalizer
from repro.core.pipeline import VN2, DiagnosisReport
from repro.core.sparsify import sparsify_weights
from repro.core.states import StateMatrix


def incremental_refit(
    tool: VN2,
    new_states: StateMatrix,
    warm_iterations: int = 60,
    tol: float = 0.0,
) -> VN2:
    """Absorb ``new_states`` into ``tool`` with warm-started NMF (in place).

    The combined state set is re-filtered and re-normalized, W is
    re-seeded by NNLS against the current Ψ, and both factors adapt with
    at most ``warm_iterations`` multiplicative sweeps.  ``tol > 0`` stops
    the sweeps early once one sweep's relative loss improvement drops
    below it — the lever that makes frequent online absorbs cheap; the
    default 0 keeps the historical fixed-budget behaviour bit for bit.

    Mutates and returns ``tool``; callers needing the serving copy kept
    intact should go through :meth:`OnlineVN2Updater.absorb`, which
    refits a clone.

    Models restored with :meth:`VN2.load` carry no training states
    (``states_ is None`` — the save format keeps only the factors); for
    those the refit runs against ``new_states`` alone, still warm-started
    from the loaded Ψ so root-cause identities carry over.
    """
    tool._require_fitted()
    if len(new_states) == 0:
        raise ValueError("incremental_refit needs at least one new state")
    with span(
        "lifecycle.refit",
        n_new_states=len(new_states),
        warm_iterations=warm_iterations,
    ):
        previous_W = tool.nmf_.W
        n_old = 0 if tool.states_ is None else len(tool.states_)
        if tool.states_ is None:
            combined = new_states
        else:
            combined = StateMatrix(
                values=np.vstack([tool.states_.values, new_states.values]),
                provenance=[*tool.states_.provenance, *new_states.provenance],
            )
        tool.states_ = combined
        values = combined.values
        tool._train_mean = values.mean(axis=0)
        std = values.std(axis=0)
        tool._train_std = np.where(std < 1e-12, 1.0, std)
        z = (values - tool._train_mean) / tool._train_std
        tool._train_max_eps = float(np.max((z * z).sum(axis=1)))

        if tool.config.filter_exceptions:
            tool.exceptions_ = detect_exceptions(
                combined, threshold_ratio=tool.config.exception_threshold
            )
            training = tool.exceptions_.states
        else:
            tool.exceptions_ = None
            training = combined

        tool.normalizer_ = MinMaxNormalizer.fit(
            training.values, pad_fraction=tool.config.normalizer_pad
        )
        E = tool.normalizer_.transform(training.values)

        # Warm start: re-seed W against the current Ψ, then a short run
        # of multiplicative updates on both factors.  Without the ε
        # filter the training rows are exactly [old states; new states],
        # so the old rows keep their previous weights as the seed (they
        # are already near-optimal against the carried-over Ψ; the
        # sweeps below re-adapt them to the refreshed normalization) and
        # only the new rows pay an NNLS solve.  With the filter on the
        # exception set is re-screened, so there is no row alignment to
        # exploit and the whole training set is NNLS-seeded.
        Psi = np.maximum(tool.nmf_.Psi.copy(), 1e-6)
        if (
            not tool.config.filter_exceptions
            and n_old
            and previous_W.shape == (n_old, Psi.shape[0])
        ):
            W_new, _residuals = infer_weights(Psi, E[n_old:])
            W = np.vstack([previous_W, W_new])
        else:
            W, _residuals = infer_weights(Psi, E)
        W = np.maximum(W, 1e-6)
        loss_history = []
        previous = None
        for _ in range(warm_iterations):
            Psi *= (W.T @ E) / (W.T @ W @ Psi + _EPS)
            W *= (E @ Psi.T) / (W @ (Psi @ Psi.T) + _EPS)
            loss = frobenius_loss(E, W, Psi)
            loss_history.append(loss)
            if (
                tol > 0.0
                and previous is not None
                and previous - loss <= tol * previous
            ):
                break
            previous = loss
        tool.nmf_ = NMFResult(
            W=W,
            Psi=Psi,
            loss_history=loss_history,
            n_iter=len(loss_history),
            converged=False,
        )
        tool.sparsify_ = sparsify_weights(W, retention=tool.config.retention)
        usage = (
            tool.sparsify_.W_sparse.mean(axis=0)
            if not tool.config.filter_exceptions
            else None
        )
        tool.labels_ = tool._interpreter.interpret(
            tool.psi_display(),
            energies=tool._row_energies(),
            usage=usage,
        )
    tool._model_version = None
    registry = get_registry()
    registry.counter(
        "repro_core_refits_total", "Incremental VN2 refits performed"
    ).inc()
    registry.counter(
        "repro_core_refit_states_total",
        "New states absorbed by incremental refits",
    ).inc(len(new_states))
    return tool


class OnlineVN2Updater:
    """Drift tracking and clone-and-refit updates over a fitted model.

    The updater never mutates the model it was handed: :meth:`absorb`
    deep-copies the current model, runs :func:`incremental_refit` on the
    copy and makes the copy current.  A sink serving ``updater.model``
    therefore keeps answering from a consistent artifact until it chooses
    to rotate to the returned one.

    Args:
        tool: The fitted (or loaded) starting model.
        warm_iterations: Sweep cap per absorb.
        tol: Relative-improvement early stop for the warm sweeps (unlike
            ``refit_with`` this defaults *on* — an online updater exists
            to make absorbs cheap).
        drift_threshold: ``should_refit`` fires at this drift score.
        drift_window: Residual samples retained for the drift score.
        min_samples: Drift score reads 0 until this many samples arrive
            (a handful of bad reconstructions is noise, not drift).
    """

    def __init__(
        self,
        tool: VN2,
        warm_iterations: int = 60,
        tol: float = 1e-4,
        drift_threshold: float = 0.5,
        drift_window: int = 256,
        min_samples: int = 32,
    ):
        tool._require_fitted()
        if drift_window < 1:
            raise ValueError(f"drift_window must be >= 1, got {drift_window}")
        self.tool = tool
        self.warm_iterations = warm_iterations
        self.tol = tol
        self.drift_threshold = drift_threshold
        self.min_samples = min_samples
        self._residuals: Deque[float] = deque(maxlen=drift_window)
        self.n_absorbed = 0  #: states absorbed over this updater's lifetime

    @property
    def model(self) -> VN2:
        """The current (latest absorbed) model artifact."""
        return self.tool

    @property
    def model_version(self) -> str:
        return self.tool.model_version

    # -- drift ----------------------------------------------------------

    def note_report(self, report: DiagnosisReport) -> None:
        """Feed one diagnosis into the drift window."""
        self.note_residual(report.relative_residual)

    def note_residual(self, relative_residual: float) -> None:
        """Feed one relative reconstruction residual into the drift window.

        Relative residuals live in [0, 1]: near 0 the model explains the
        state, near 1 it cannot — a window full of high residuals means
        the network has drifted away from what Ψ spans.
        """
        self._residuals.append(float(relative_residual))

    @property
    def drift_score(self) -> float:
        """Mean relative residual over the window (0 until warmed up)."""
        if len(self._residuals) < self.min_samples:
            return 0.0
        return float(np.mean(self._residuals))

    def should_refit(self) -> bool:
        """True when the drift score has crossed ``drift_threshold``."""
        return self.drift_score >= self.drift_threshold

    # -- updates --------------------------------------------------------

    def absorb(self, new_states: StateMatrix) -> VN2:
        """Refit a clone of the current model with ``new_states``.

        Returns the refitted clone (also the new :attr:`model`); the
        previous model object is left untouched for concurrent readers.
        Resets the drift window — the new model gets a clean slate.
        """
        with span("lifecycle.absorb", n_states=len(new_states)):
            updated = copy.deepcopy(self.tool)
            incremental_refit(
                updated,
                new_states,
                warm_iterations=self.warm_iterations,
                tol=self.tol,
            )
        get_registry().counter(
            "repro_core_absorbs_total",
            "OnlineVN2Updater clone-and-refit updates",
        ).inc()
        self.tool = updated
        self.n_absorbed += len(new_states)
        self._residuals.clear()
        return updated
