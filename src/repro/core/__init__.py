"""The VN2 algorithm: the paper's primary contribution.

Data flow (paper Sections III-IV):

1. :mod:`repro.core.states` — difference successive snapshots into
   *network state* vectors ``S = P_i - P_{i-1}``.
2. :mod:`repro.core.exceptions` — keep only *exception* states, found by
   deviation from the mean state (``ε_u / max(ε) >= 0.01``).
3. :mod:`repro.core.normalization` — min-max map the exception matrix into
   [0, 1] so NMF is well-posed on signed deltas.
4. :mod:`repro.core.nmf` — factorize ``E ≈ W Ψ`` (Algorithm 1).
5. :mod:`repro.core.sparsify` — sparsify ``W`` keeping 90 % of its mass
   (Algorithm 2).
6. :mod:`repro.core.rank_selection` — choose the compression factor ``r``
   from the original-vs-sparse accuracy curves (Fig 3b).
7. :mod:`repro.core.inference` — attribute a new state to root causes by
   NNLS (Problem 3).
8. :mod:`repro.core.interpretation` — explain each Ψ row via the Table I
   hazard knowledge base.

:class:`repro.core.pipeline.VN2` wires all of it behind one facade.
"""

from repro.core.states import (
    StateMatrix,
    StateProvenance,
    StreamedState,
    StreamingStateBuilder,
    build_states,
    build_states_python,
    stack_states,
)
from repro.core.exceptions import (
    ExceptionSet,
    StreamingExceptionDetector,
    detect_exceptions,
)
from repro.core.normalization import MinMaxNormalizer
from repro.core.nmf import NMFResult, nmf, nmf_best_of, kl_divergence, frobenius_loss
from repro.core.sparsify import sparsify_weights
from repro.core.rank_selection import RankSweepResult, rank_sweep, choose_rank
from repro.core.inference import (
    NNLSSolverCache,
    infer_single,
    infer_weights,
    infer_weights_batch,
)
from repro.core.interpretation import RootCauseInterpreter, RootCauseLabel
from repro.core.pipeline import (
    VN2,
    VN2Config,
    DiagnosisReport,
    ModelIntegrityError,
)
from repro.core.lifecycle import OnlineVN2Updater, incremental_refit
from repro.core.incidents import (
    Incident,
    IncidentAggregator,
    IncidentEvent,
    IncidentTracker,
    Observation,
    incidents_from_trace,
)
from repro.core.streaming import (
    StreamingDiagnosisSession,
    StreamUpdate,
    WarmStartCache,
    iter_packets,
)

__all__ = [
    "StateMatrix",
    "StateProvenance",
    "StreamedState",
    "StreamingStateBuilder",
    "build_states",
    "build_states_python",
    "stack_states",
    "ExceptionSet",
    "StreamingExceptionDetector",
    "detect_exceptions",
    "MinMaxNormalizer",
    "NMFResult",
    "nmf",
    "nmf_best_of",
    "kl_divergence",
    "frobenius_loss",
    "sparsify_weights",
    "RankSweepResult",
    "rank_sweep",
    "choose_rank",
    "NNLSSolverCache",
    "infer_weights",
    "infer_weights_batch",
    "infer_single",
    "RootCauseInterpreter",
    "RootCauseLabel",
    "VN2",
    "VN2Config",
    "DiagnosisReport",
    "ModelIntegrityError",
    "OnlineVN2Updater",
    "incremental_refit",
    "Incident",
    "IncidentAggregator",
    "IncidentEvent",
    "IncidentTracker",
    "Observation",
    "incidents_from_trace",
    "StreamingDiagnosisSession",
    "StreamUpdate",
    "WarmStartCache",
    "iter_packets",
]
