"""Choosing the compression factor r (the paper's Fig 3b analysis).

Two opposing forces (paper Section IV-B):

* the approximation accuracy ``α = ‖E - WΨ‖`` grows quickly once r drops
  below the intrinsic complexity of the exception set ("the compression
  difference increases quickly when r < 15");
* with a *sparse* W̄, large r hurts — the mass spreads over more entries,
  more gets cut, and ``‖E - W̄Ψ‖`` diverges from the dense curve ("when r
  is larger than 30, the sparse matrix holds more difference").

:func:`rank_sweep` computes both curves; :func:`choose_rank` picks the
smallest r whose dense accuracy is close to the asymptote while the
sparse-dense gap is still small — reproducing the paper's choice of r=25
for CitySee and r=10 for the testbed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.nmf import frobenius_loss, nmf
from repro.core.sparsify import sparsify_weights


@dataclass
class RankPoint:
    """Sweep measurements at one rank."""

    r: int
    accuracy_original: float  # ‖E − WΨ‖
    accuracy_sparse: float  # ‖E − W̄Ψ‖
    n_iter: int


@dataclass
class RankSweepResult:
    """All sweep points plus the data norm for relative comparisons."""

    points: List[RankPoint]
    data_norm: float

    @property
    def ranks(self) -> List[int]:
        return [p.r for p in self.points]

    def as_arrays(self) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """(ranks, dense accuracy, sparse accuracy) arrays, rank-ascending."""
        pts = sorted(self.points, key=lambda p: p.r)
        return (
            np.array([p.r for p in pts]),
            np.array([p.accuracy_original for p in pts]),
            np.array([p.accuracy_sparse for p in pts]),
        )


def rank_sweep(
    E: np.ndarray,
    ranks: Sequence[int],
    retention: float = 0.9,
    n_iter: int = 200,
    init: str = "nndsvd",
    rng: Optional[np.random.Generator] = None,
) -> RankSweepResult:
    """Fit NMF at every rank and record dense/sparse accuracy (Fig 3b).

    Args:
        E: Non-negative exception matrix (already normalized).
        ranks: Candidate compression factors.
        retention: Algorithm 2 mass retention for the sparse curve.
        n_iter: NMF iterations per rank.
        init: NMF initialisation (``nndsvd`` keeps the sweep deterministic).
        rng: Only used with ``init="random"``.
    """
    E = np.asarray(E, dtype=float)
    points: List[RankPoint] = []
    max_rank = min(E.shape)
    for r in ranks:
        if not (1 <= r <= max_rank):
            continue
        result = nmf(E, r, n_iter=n_iter, init=init, rng=rng)
        sparse = sparsify_weights(result.W, retention=retention)
        points.append(
            RankPoint(
                r=r,
                accuracy_original=result.loss,
                accuracy_sparse=frobenius_loss(E, sparse.W_sparse, result.Psi),
                n_iter=result.n_iter,
            )
        )
    if not points:
        raise ValueError(
            f"no valid ranks in {list(ranks)} for matrix of shape {E.shape}"
        )
    return RankSweepResult(points=points, data_norm=float(np.linalg.norm(E)))


def choose_rank(sweep: RankSweepResult) -> int:
    """Pick r at the elbow of the accuracy curves (the paper's Fig 3b).

    The paper balances two observations: accuracy degrades quickly once r
    is too small, and the sparse matrix diverges once r is too large.  The
    selector finds the elbow of the *dense* curve (the point with maximum
    distance below the chord joining the sweep's endpoints) and then, to
    honour the second observation, backs off to a smaller candidate if the
    sparse-dense gap at the elbow exceeds the gap at that candidate by
    more than 25 %.
    """
    ranks, dense, sparse = sweep.as_arrays()
    if len(ranks) == 1:
        return int(ranks[0])

    # Elbow of the dense curve by max distance below the first-last chord.
    x0, y0 = float(ranks[0]), float(dense[0])
    x1, y1 = float(ranks[-1]), float(dense[-1])
    span = max(x1 - x0, 1e-12)
    chord = y0 + (ranks - x0) * (y1 - y0) / span
    distances = chord - dense
    elbow_pos = int(np.argmax(distances))

    # Second observation: avoid ranks where sparsification visibly hurts.
    gaps = sparse - dense
    best = elbow_pos
    for pos in range(elbow_pos - 1, -1, -1):
        if gaps[best] > gaps[pos] * 1.25 and distances[pos] >= 0.6 * distances[elbow_pos]:
            best = pos
    return int(ranks[best])
