"""The chaos scenario DSL: declarative, composable, dict-serializable.

A :class:`ChaosScenario` is a complete description of one messy,
field-realistic simulator run: a :class:`~repro.traces.citysee.CitySeeProfile`
for scale/shape, optional CitySee background/episode fault mixes, any
number of explicit fault primitives from :mod:`repro.simnet.faults` (the
paper's seven hazards plus the chaos extensions), and extra gateway
sinks.  Scenarios are frozen dataclasses that round-trip losslessly
through plain dicts (:meth:`ChaosScenario.to_dict` /
:meth:`ChaosScenario.from_dict`) — no YAML/JSON dependency, and the
canonical JSON form doubles as the trace-cache key.

Every ground-truth fault *kind* a scenario can emit belongs to exactly one
**fault family** (:data:`FAULT_FAMILIES`); the scorecard in
:mod:`repro.analysis.scorecard` reports diagnosis accuracy per family.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.simnet.faults import (
    BatteryBrownout,
    BatteryDrain,
    ClockSkew,
    CorrelatedInterference,
    DutyCycle,
    FirmwareSkew,
    ForcedLoop,
    GatewayFailure,
    Interference,
    LinkDegradation,
    NodeFailure,
    NodeMove,
    NodeReboot,
    TrafficBurst,
)
from repro.traces.citysee import CitySeeProfile

#: Spec tag -> fault primitive class.  The tag is the ``type`` field of a
#: fault's dict form.
FAULT_REGISTRY: Dict[str, type] = {
    "node_failure": NodeFailure,
    "node_reboot": NodeReboot,
    "link_degradation": LinkDegradation,
    "interference": Interference,
    "forced_loop": ForcedLoop,
    "traffic_burst": TrafficBurst,
    "battery_drain": BatteryDrain,
    "correlated_interference": CorrelatedInterference,
    "battery_brownout": BatteryBrownout,
    "clock_skew": ClockSkew,
    "firmware_skew": FirmwareSkew,
    "duty_cycle": DutyCycle,
    "node_move": NodeMove,
    "gateway_failure": GatewayFailure,
}

_TYPE_OF_CLASS: Dict[type, str] = {cls: tag for tag, cls in FAULT_REGISTRY.items()}

#: Spec tag -> ground-truth kind(s) the primitive records.
FAULT_KINDS: Dict[str, Tuple[str, ...]] = {
    "node_failure": ("node_failure",),
    "node_reboot": ("node_reboot",),
    "link_degradation": ("link_degradation",),
    "interference": ("interference",),
    "forced_loop": ("routing_loop",),
    "traffic_burst": ("traffic_burst",),
    "battery_drain": ("battery_drain",),
    "correlated_interference": ("correlated_interference",),
    "battery_brownout": ("battery_brownout",),
    "clock_skew": ("clock_skew",),
    "firmware_skew": ("firmware_skew",),
    "duty_cycle": ("duty_cycle",),
    "node_move": ("node_move",),
    "gateway_failure": ("gateway_failover",),
}

#: Ground-truth fault kind -> fault family.  Families partition every kind
#: the simulator can record (including the emergent ``battery_death``), so
#: the scorecard's per-family rows cover the whole ground-truth log.
FAULT_FAMILIES: Dict[str, str] = {
    "interference": "rf",
    "correlated_interference": "rf",
    "link_degradation": "link",
    "node_move": "link",
    "routing_loop": "routing",
    "traffic_burst": "traffic",
    "node_failure": "churn",
    "node_reboot": "churn",
    "gateway_failover": "churn",
    "duty_cycle": "churn",
    "battery_drain": "energy",
    "battery_death": "energy",
    "battery_brownout": "energy",
    "clock_skew": "timing",
    "firmware_skew": "reporting",
}

#: All fault families, sorted.
FAMILIES: Tuple[str, ...] = tuple(sorted(set(FAULT_FAMILIES.values())))

#: Ground-truth kinds of the CitySee background mix
#: (:func:`repro.traces.citysee._build_background_faults`).
BACKGROUND_KINDS: Tuple[str, ...] = (
    "node_reboot",
    "interference",
    "routing_loop",
    "link_degradation",
    "traffic_burst",
    "battery_drain",
)

#: Additional kinds of the concentrated CitySee degradation episode.
EPISODE_KINDS: Tuple[str, ...] = ("interference", "routing_loop", "node_failure")


def _tuplify(value):
    """Recursively turn lists into tuples (JSON round-trip -> dataclass)."""
    if isinstance(value, list):
        return tuple(_tuplify(v) for v in value)
    return value


def _listify(value):
    """Recursively turn tuples into lists (dataclass -> JSON-ready dict)."""
    if isinstance(value, tuple):
        return [_listify(v) for v in value]
    return value


def fault_to_dict(fault) -> Dict[str, object]:
    """One fault primitive as a JSON-ready dict with a ``type`` tag."""
    cls = type(fault)
    tag = _TYPE_OF_CLASS.get(cls)
    if tag is None:
        raise TypeError(f"{cls.__name__} is not a registered fault primitive")
    payload: Dict[str, object] = {"type": tag}
    for field in dataclasses.fields(fault):
        payload[field.name] = _listify(getattr(fault, field.name))
    return payload


def fault_from_dict(payload: Dict[str, object]):
    """Inverse of :func:`fault_to_dict`; raises ``ValueError`` on junk."""
    data = dict(payload)
    tag = data.pop("type", None)
    if tag not in FAULT_REGISTRY:
        raise ValueError(f"unknown fault type {tag!r}")
    cls = FAULT_REGISTRY[tag]
    kwargs = {key: _tuplify(value) for key, value in data.items()}
    try:
        return cls(**kwargs)
    except TypeError as exc:
        raise ValueError(f"bad {tag} spec: {exc}") from None


@dataclass(frozen=True)
class ChaosScenario:
    """One composed chaos run: profile + fault layers + deployment shape.

    Attributes:
        name: Scenario name (used in cache paths and reports).
        profile: Scale/shape/seed parameters, including the background
            fault intensities when ``background`` is on.
        background: Layer the CitySee Poisson background mix over the run.
        episode: Layer the concentrated CitySee degradation episode.
        episode_days: Episode window in profile days (when ``episode``).
        faults: Explicit fault primitives, installed after any background.
        gateway_ids: Extra sink nodes (multi-gateway deployments).
    """

    name: str
    profile: CitySeeProfile
    background: bool = True
    episode: bool = False
    episode_days: Tuple[float, float] = (6.0, 8.0)
    faults: Tuple[object, ...] = ()
    gateway_ids: Tuple[int, ...] = ()

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready dict; :meth:`from_dict` inverts it exactly."""
        return {
            "name": self.name,
            "profile": {
                key: _listify(value)
                for key, value in dataclasses.asdict(self.profile).items()
            },
            "background": self.background,
            "episode": self.episode,
            "episode_days": list(self.episode_days),
            "faults": [fault_to_dict(f) for f in self.faults],
            "gateway_ids": list(self.gateway_ids),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ChaosScenario":
        """Build a scenario from its dict form (tuples restored)."""
        data = dict(payload)
        profile_data = {
            key: _tuplify(value) for key, value in dict(data["profile"]).items()
        }
        return cls(
            name=str(data["name"]),
            profile=CitySeeProfile(**profile_data),
            background=bool(data.get("background", True)),
            episode=bool(data.get("episode", False)),
            episode_days=tuple(data.get("episode_days", (6.0, 8.0))),
            faults=tuple(
                fault_from_dict(f) for f in data.get("faults", ())
            ),
            gateway_ids=tuple(int(g) for g in data.get("gateway_ids", ())),
        )

    def canonical_json(self) -> str:
        """Sorted-key JSON form — the scenario's identity string."""
        return json.dumps(self.to_dict(), sort_keys=True)

    def cache_key(self) -> str:
        """16-hex-digit cache key, a pure function of the scenario."""
        payload = json.dumps(
            {"scenario": self.to_dict(), "v": 1}, sort_keys=True
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    # -- introspection ---------------------------------------------------

    def fault_kinds(self) -> Tuple[str, ...]:
        """Sorted ground-truth kinds this scenario can emit."""
        kinds = set()
        if self.background:
            kinds.update(BACKGROUND_KINDS)
        if self.episode:
            kinds.update(EPISODE_KINDS)
        for fault in self.faults:
            kinds.update(FAULT_KINDS[_TYPE_OF_CLASS[type(fault)]])
        return tuple(sorted(kinds))

    def families(self) -> Tuple[str, ...]:
        """Sorted fault families this scenario stresses."""
        return tuple(sorted({FAULT_FAMILIES[k] for k in self.fault_kinds()}))

    def describe(self) -> str:
        """Short human-readable summary (runner job labels)."""
        return (
            f"chaos[{self.name}, {self.profile.n_nodes}n x "
            f"{self.profile.days:g}d, seed={self.profile.seed}]"
        )


def validate_scenario(scenario: ChaosScenario) -> List[str]:
    """Static sanity problems of a scenario (empty list = fine).

    Checks the cheap invariants that do not need a built network: fault
    windows inside the run, known metric names, gateway references.  The
    injector's conflict check (same-node same-tick lifecycle clashes) runs
    at install time on the concrete schedule.
    """
    problems: List[str] = []
    duration = scenario.profile.duration_s()
    for fault in scenario.faults:
        tag = _TYPE_OF_CLASS[type(fault)]
        start = getattr(fault, "start", getattr(fault, "at", None))
        if start is not None and not 0.0 <= float(start) <= duration:
            problems.append(
                f"{tag} starts at {start:g}, outside the {duration:g}s run"
            )
        end = getattr(fault, "end", None)
        if end is not None and start is not None and end <= start:
            problems.append(f"{tag} window [{start:g}, {end:g}) is empty")
        if isinstance(fault, GatewayFailure) and fault.gateway_id not in (
            0,  # the primary sink (random_geometric_topology pins it at 0)
            *scenario.gateway_ids,
        ):
            problems.append(
                f"gateway_failure targets node {fault.gateway_id}, which is "
                "neither the sink nor in scenario.gateway_ids"
            )
    return problems
