"""Run a :class:`~repro.chaos.dsl.ChaosScenario` to a trace frame.

The build sequence is deliberately a superset of
:func:`repro.traces.citysee.generate_citysee_frame`, consuming the *same*
named RNG streams (``"topology"`` for placement, ``"citysee.faults"`` for
the background/episode mixes) in the same order.  A scenario with
``background=True`` and no extra layers therefore produces **bit-identical
columns and ground truth** to the plain CitySee generator at the same
profile — the ``citysee-mix`` preset really is the paper's baseline, not
an approximation of it.  Extra fault primitives are resolved at DSL-build
time (they carry explicit node ids, centers and windows, no install-time
randomness), so layering them on cannot perturb the background draw
sequence either.

Frames are cached like CitySee traces: an NPZ (preferred) plus a diff-able
JSONL per scenario, keyed by the scenario's canonical JSON.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Tuple

from repro.chaos.dsl import ChaosScenario, validate_scenario
from repro.simnet.faults import FaultInjector
from repro.simnet.network import Network, NetworkConfig
from repro.simnet.radio import RadioParams
from repro.simnet.rng import RngRegistry
from repro.simnet.topology import random_geometric_topology
from repro.traces.citysee import (
    _build_background_faults,
    _build_episode_faults,
    default_cache_dir,
)
from repro.traces.frame import TraceFrame, frame_from_network
from repro.traces.io import (
    load_frame_jsonl,
    load_frame_npz,
    save_frame_jsonl,
    save_frame_npz,
)


def chaos_cache_paths(
    scenario: ChaosScenario, cache_dir: Optional[Path] = None
) -> Tuple[Path, Path]:
    """(npz, jsonl) cache paths for one chaos run.

    Pure function of the scenario — runner workers and serial calls share
    one cache namespace, exactly like the CitySee generator.
    """
    directory = cache_dir or default_cache_dir()
    stem = f"chaos-{scenario.name}-{scenario.cache_key()}"
    return directory / f"{stem}.npz", directory / f"{stem}.jsonl"


def build_chaos_network(scenario: ChaosScenario) -> Network:
    """Topology + network for a scenario, fault-free and not yet run.

    Shares the CitySee generator's recipe (same streams, same config
    derivation) with the scenario's gateways added.
    """
    profile = scenario.profile
    rngs = RngRegistry(profile.seed)
    topology = random_geometric_topology(
        n_nodes=profile.n_nodes,
        area=profile.area,
        comm_radius=profile.comm_radius_m,
        rng=rngs.stream("topology"),
    )
    config = NetworkConfig(
        report_period_s=profile.report_period_s,
        day_seconds=profile.day_seconds,
        seed=profile.seed,
        max_range_m=profile.comm_radius_m * 1.25,
        beacon_max_s=min(480.0, profile.report_period_s),
        radio=RadioParams(path_loss_exponent=profile.path_loss_exponent),
        gateway_ids=scenario.gateway_ids,
    )
    return Network(topology, config)


def generate_chaos_frame(
    scenario: ChaosScenario,
    use_cache: bool = True,
    cache_dir: Optional[Path] = None,
) -> TraceFrame:
    """Generate (or load from cache) one chaos scenario run, as a frame.

    The frame's metadata carries the full scenario dict under
    ``"scenario"``, so a cached trace is self-describing: the scorecard
    can recover the fault families and the warmup boundary without the
    original spec object.

    Raises:
        ValueError: If :func:`~repro.chaos.dsl.validate_scenario` finds
            static problems with the scenario.
    """
    problems = validate_scenario(scenario)
    if problems:
        raise ValueError(
            f"invalid scenario {scenario.name!r}: " + "; ".join(problems)
        )

    npz_path: Optional[Path] = None
    jsonl_path: Optional[Path] = None
    if use_cache:
        npz_path, jsonl_path = chaos_cache_paths(scenario, cache_dir)
        if npz_path.exists():
            return load_frame_npz(npz_path)
        if jsonl_path.exists():
            frame = load_frame_jsonl(jsonl_path)
            save_frame_npz(frame, npz_path)
            return frame

    profile = scenario.profile
    network = build_chaos_network(scenario)
    topology = network.topology

    warmup = min(0.25 * profile.day_seconds, 3600.0)
    end = profile.duration_s()
    faults: List[object] = []
    if scenario.background or scenario.episode:
        # Same stream name and build order as generate_citysee_frame: with
        # background on and no extra layers the schedule is bit-identical.
        fault_rng = network.rngs.stream("citysee.faults")
        if scenario.background:
            faults.extend(
                _build_background_faults(profile, topology, fault_rng, warmup, end)
            )
        if scenario.episode:
            ep_start = scenario.episode_days[0] * profile.day_seconds
            ep_end = scenario.episode_days[1] * profile.day_seconds
            faults.extend(
                _build_episode_faults(profile, topology, fault_rng, ep_start, ep_end)
            )
    faults.extend(scenario.faults)
    FaultInjector(faults).install(network)
    network.run(end)

    frame = frame_from_network(
        network,
        metadata={
            "kind": "chaos",
            "scenario": scenario.to_dict(),
            "warmup_s": warmup,
            "positions": {
                str(nid): list(pos) for nid, pos in topology.positions.items()
            },
        },
    )
    if npz_path is not None:
        save_frame_npz(frame, npz_path)
        save_frame_jsonl(frame, jsonl_path)
    return frame
