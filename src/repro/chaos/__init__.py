"""Chaos scenario engine: composable fault DSL, presets, and runtime.

Public surface:

* :class:`~repro.chaos.dsl.ChaosScenario` — declarative, dict-serializable
  scenario spec (profile + fault layers + deployment shape).
* :data:`~repro.chaos.presets.PRESETS` / :func:`~repro.chaos.presets.build_preset`
  — the named preset library.
* :func:`~repro.chaos.runtime.generate_chaos_frame` — run a scenario to a
  cached :class:`~repro.traces.frame.TraceFrame`.
"""

from repro.chaos.dsl import (
    BACKGROUND_KINDS,
    EPISODE_KINDS,
    FAMILIES,
    FAULT_FAMILIES,
    FAULT_KINDS,
    FAULT_REGISTRY,
    ChaosScenario,
    fault_from_dict,
    fault_to_dict,
    validate_scenario,
)
from repro.chaos.presets import (
    PRESET_NAMES,
    PRESETS,
    SCALES,
    PresetInfo,
    build_preset,
    profile_for_scale,
)
from repro.chaos.runtime import (
    build_chaos_network,
    chaos_cache_paths,
    generate_chaos_frame,
)

__all__ = [
    "BACKGROUND_KINDS",
    "EPISODE_KINDS",
    "FAMILIES",
    "FAULT_FAMILIES",
    "FAULT_KINDS",
    "FAULT_REGISTRY",
    "ChaosScenario",
    "PresetInfo",
    "PRESETS",
    "PRESET_NAMES",
    "SCALES",
    "build_chaos_network",
    "build_preset",
    "chaos_cache_paths",
    "fault_from_dict",
    "fault_to_dict",
    "generate_chaos_frame",
    "profile_for_scale",
    "validate_scenario",
]
