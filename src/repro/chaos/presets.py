"""Named chaos presets: ~7 curated scenarios, one per stressed fault mix.

Each preset is a deterministic *builder*: given a seed and a scale it
regenerates the run's topology (the same way the runtime will — identical
named RNG streams) and places its faults with a preset-private derived
stream, so the resulting :class:`~repro.chaos.dsl.ChaosScenario` is a pure
function of ``(name, seed, scale)``.  All randomness is resolved here, at
build time: the scenario that comes out carries only explicit node ids,
centers and windows, serializes to a plain dict, and replays bit-identically
through the process-pool runner.

========================  ==============================================
Preset                    Stresses
========================  ==============================================
citysee-mix               The paper's baseline background mix (Table 1).
correlated-bursts         Synchronized multi-disk interference (rf).
brownout-wave             Battery sag/recover curves (energy).
clock-storm               Per-node crystal drift (timing).
firmware-split            Metric-subset reporting + rf noise (reporting).
flaky-field               Duty-cycled and relocating nodes (churn, link).
gateway-blackout          Multi-gateway deployment, gateway dies (churn).
========================  ==============================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Tuple

import numpy as np

from repro.chaos.dsl import ChaosScenario
from repro.simnet.faults import (
    BatteryBrownout,
    ClockSkew,
    CorrelatedInterference,
    DutyCycle,
    FirmwareSkew,
    GatewayFailure,
    Interference,
    NodeMove,
)
from repro.simnet.rng import RngRegistry, derive_seed
from repro.simnet.topology import Topology, random_geometric_topology
from repro.traces.citysee import CitySeeProfile

#: Profile scales a preset can be built at.
SCALES: Tuple[str, ...] = ("tiny", "small", "medium", "full")

#: Reduced metric catalog of the "old firmware" in firmware-split: the
#: C1 sensing/routing block, a truncated 3-entry neighbor table, and the
#: five counters early CitySee firmware exposed.
FIRMWARE_V1_METRICS: Tuple[str, ...] = (
    "temperature", "humidity", "light", "co2", "voltage",
    "path_etx", "path_length",
    "neighbor_num", "rssi_1", "rssi_2", "rssi_3", "etx_1", "etx_2", "etx_3",
    "parent_change_counter", "transmit_counter", "retransmit_counter",
    "mac_backoff_counter", "radio_on_time",
)


def profile_for_scale(scale: str, seed: int) -> CitySeeProfile:
    """The CitySee profile preset of the given scale, reseeded."""
    if scale not in SCALES:
        raise ValueError(f"unknown scale {scale!r}; pick one of {SCALES}")
    return getattr(CitySeeProfile, scale)(seed=seed)


def _topology_for(profile: CitySeeProfile) -> Topology:
    """The exact topology the runtime will build for ``profile``."""
    rngs = RngRegistry(profile.seed)
    return random_geometric_topology(
        n_nodes=profile.n_nodes,
        area=profile.area,
        comm_radius=profile.comm_radius_m,
        rng=rngs.stream("topology"),
    )


def _preset_rng(name: str, seed: int) -> np.random.Generator:
    """Preset-private stream: independent of every simulator stream."""
    return np.random.default_rng(derive_seed(seed, f"chaos.preset.{name}"))


def _pick_nodes(
    rng: np.random.Generator, topology: Topology, count: int
) -> List[int]:
    sensor_ids = topology.sensor_ids
    count = min(count, len(sensor_ids))
    return sorted(int(n) for n in rng.choice(sensor_ids, size=count, replace=False))


def _build_citysee_mix(seed: int, scale: str) -> ChaosScenario:
    return ChaosScenario(
        name="citysee-mix",
        profile=profile_for_scale(scale, seed),
        background=True,
    )


def _build_correlated_bursts(seed: int, scale: str) -> ChaosScenario:
    profile = profile_for_scale(scale, seed)
    rng = _preset_rng("correlated-bursts", seed)
    width, height = profile.area
    duration = profile.duration_s()
    warmup = min(0.25 * profile.day_seconds, 3600.0)
    centers = tuple(
        (float(rng.uniform(0.15 * width, 0.85 * width)),
         float(rng.uniform(0.15 * height, 0.85 * height)))
        for _ in range(3)
    )
    span = duration - warmup
    bursts = tuple(
        (warmup + (0.1 + 0.3 * k) * span, warmup + (0.1 + 0.3 * k + 0.09) * span)
        for k in range(3)
    )
    return ChaosScenario(
        name="correlated-bursts",
        profile=profile,
        background=False,
        faults=(
            CorrelatedInterference(
                centers=centers,
                radius=0.22 * max(width, height),
                bursts=bursts,
                delta_db=16.0,
            ),
        ),
    )


def _build_brownout_wave(seed: int, scale: str) -> ChaosScenario:
    profile = profile_for_scale(scale, seed)
    rng = _preset_rng("brownout-wave", seed)
    topology = _topology_for(profile)
    duration = profile.duration_s()
    warmup = min(0.25 * profile.day_seconds, 3600.0)
    nodes = _pick_nodes(rng, topology, max(3, profile.n_nodes // 8))
    span = duration - warmup
    stagger = 0.5 * span / max(1, len(nodes))
    faults = tuple(
        BatteryBrownout(
            node_id=node_id,
            start=warmup + i * stagger,
            end=warmup + i * stagger + 0.35 * span,
            sag_v=0.15,
            multiplier=40.0,
            sags=2,
        )
        for i, node_id in enumerate(nodes)
    )
    return ChaosScenario(
        name="brownout-wave", profile=profile, background=False, faults=faults
    )


def _build_clock_storm(seed: int, scale: str) -> ChaosScenario:
    profile = profile_for_scale(scale, seed)
    rng = _preset_rng("clock-storm", seed)
    topology = _topology_for(profile)
    duration = profile.duration_s()
    nodes = _pick_nodes(rng, topology, max(4, profile.n_nodes // 6))
    faults = tuple(
        ClockSkew(
            node_id=node_id,
            start=0.3 * duration,
            end=0.85 * duration,
            # Alternate slow (+35% period) and fast (-30%) nodes.
            extra_ppm=350000.0 if i % 2 == 0 else -300000.0,
        )
        for i, node_id in enumerate(nodes)
    )
    return ChaosScenario(
        name="clock-storm", profile=profile, background=False, faults=faults
    )


def _build_firmware_split(seed: int, scale: str) -> ChaosScenario:
    profile = profile_for_scale(scale, seed)
    rng = _preset_rng("firmware-split", seed)
    topology = _topology_for(profile)
    width, height = profile.area
    duration = profile.duration_s()
    warmup = min(0.25 * profile.day_seconds, 3600.0)
    old_firmware = _pick_nodes(rng, topology, max(4, profile.n_nodes // 3))
    faults = (
        FirmwareSkew(
            node_ids=tuple(old_firmware),
            metrics=FIRMWARE_V1_METRICS,
            start=warmup + 0.1 * (duration - warmup),
            end=0.85 * duration,
        ),
        # RF trouble *during* the skew window: can the pipeline still see
        # interference around nodes reporting a reduced catalog?
        Interference(
            center=(width * 0.5, height * 0.5),
            radius=0.3 * max(width, height),
            start=0.5 * duration,
            end=0.62 * duration,
            delta_db=16.0,
        ),
    )
    return ChaosScenario(
        name="firmware-split", profile=profile, background=False, faults=faults
    )


def _build_flaky_field(seed: int, scale: str) -> ChaosScenario:
    profile = profile_for_scale(scale, seed)
    rng = _preset_rng("flaky-field", seed)
    topology = _topology_for(profile)
    width, height = profile.area
    duration = profile.duration_s()
    nodes = _pick_nodes(rng, topology, max(4, profile.n_nodes // 8) + 2)
    movers, cycled = nodes[:2], nodes[2:]
    faults: List[object] = [
        DutyCycle(
            node_id=node_id,
            start=0.3 * duration,
            end=0.9 * duration,
            period_s=6.0 * profile.report_period_s,
            on_fraction=0.5,
        )
        for node_id in cycled
    ]
    for node_id in movers:
        faults.append(
            NodeMove(
                node_id=node_id,
                at=0.5 * duration,
                to=(
                    float(rng.uniform(0.1 * width, 0.9 * width)),
                    float(rng.uniform(0.1 * height, 0.9 * height)),
                ),
            )
        )
    return ChaosScenario(
        name="flaky-field",
        profile=profile,
        background=False,
        faults=tuple(faults),
    )


def _build_gateway_blackout(seed: int, scale: str) -> ChaosScenario:
    profile = profile_for_scale(scale, seed)
    topology = _topology_for(profile)
    duration = profile.duration_s()
    # The second gateway sits at the east edge — the far side from the
    # sink-at-the-west-gateway CitySee layout — so it owns a real subtree.
    gateway = max(topology.sensor_ids, key=lambda n: topology.positions[n][0])
    return ChaosScenario(
        name="gateway-blackout",
        profile=profile,
        background=False,
        gateway_ids=(gateway,),
        faults=(
            GatewayFailure(
                gateway_id=gateway,
                at=0.5 * duration,
                recover_at=0.8 * duration,
            ),
        ),
    )


@dataclass(frozen=True)
class PresetInfo:
    """One registered preset: builder plus scorecard gating floors."""

    name: str
    description: str
    builder: Callable[[int, str], ChaosScenario]
    #: Fault family -> minimum episode detection rate (the CI gate).
    #: Conservative floors: roughly half the rates measured at the tiny
    #: scale, so seed jitter does not flake the gate.
    gate_floors: Mapping[str, float] = field(default_factory=dict)

    def build(self, seed: int = 2011, scale: str = "small") -> ChaosScenario:
        scenario = self.builder(seed, scale)
        assert scenario.name == self.name
        return scenario


PRESETS: Dict[str, PresetInfo] = {
    info.name: info
    for info in (
        PresetInfo(
            name="citysee-mix",
            description="Paper-baseline CitySee background fault mix",
            builder=_build_citysee_mix,
            # The background mix is Poisson: gate only the families whose
            # episode counts are robust across seeds (routing loops are not).
            gate_floors={"rf": 0.5, "churn": 0.5},
        ),
        PresetInfo(
            name="correlated-bursts",
            description="Three noise disks flaring in synchronized bursts",
            builder=_build_correlated_bursts,
            gate_floors={"rf": 0.5},
        ),
        PresetInfo(
            name="brownout-wave",
            description="Staggered battery sag->recover->sag curves",
            builder=_build_brownout_wave,
            gate_floors={"energy": 0.3},
        ),
        PresetInfo(
            name="clock-storm",
            description="Fast and slow crystal drift on a node cohort",
            builder=_build_clock_storm,
            gate_floors={"timing": 0.2},
        ),
        PresetInfo(
            name="firmware-split",
            description="A third of the nodes report a metric subset",
            builder=_build_firmware_split,
            gate_floors={"reporting": 0.3, "rf": 0.3},
        ),
        PresetInfo(
            name="flaky-field",
            description="Duty-cycled sleepers plus relocating nodes",
            builder=_build_flaky_field,
            gate_floors={"churn": 0.3},
        ),
        PresetInfo(
            name="gateway-blackout",
            description="Second gateway dies mid-run, subtree fails over",
            builder=_build_gateway_blackout,
            gate_floors={"churn": 0.5},
        ),
    )
}

PRESET_NAMES: Tuple[str, ...] = tuple(PRESETS)


def build_preset(
    name: str, seed: int = 2011, scale: str = "small"
) -> ChaosScenario:
    """Build one named preset scenario (deterministic in all arguments)."""
    try:
        info = PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown preset {name!r}; available: {', '.join(PRESETS)}"
        ) from None
    return info.build(seed=seed, scale=scale)
