"""VN2: visibility of network performance in large-scale sensor networks.

Reproduction of "Enhancing Visibility of Network Performance in Large-scale
Sensor Networks" (ICDCS 2014).  The package bundles:

``repro.simnet``
    A discrete-event wireless-sensor-network simulator (CTP-like collection
    tree, CSMA MAC, RSSI/noise radio model, hardware model, fault injection)
    used as the substrate that produces metric traces.

``repro.metrics``
    The 43-metric catalog, the C1/C2/C3 report packets and the sink-side
    collector.

``repro.traces``
    Trace containers, JSONL/CSV IO and the synthetic CitySee / testbed
    trace generators.

``repro.core``
    The VN2 algorithm itself: state construction, exception detection,
    non-negative matrix factorization, sparsification, rank selection,
    NNLS inference and root-cause interpretation.

``repro.baselines``
    Sympathy-style decision-tree diagnosis, Agnostic-Diagnosis-style
    correlation graphs and a PCA detector, for comparison.

``repro.analysis``
    One experiment harness per table/figure of the paper.

``repro.service``
    The deployed sink: an asyncio TCP/HTTP diagnosis server with one
    streaming-session shard per deployment, explicit backpressure, a
    sync/async client SDK and a trace load generator.

Top-level conveniences (``repro.VN2`` etc.) are provided lazily so that
importing :mod:`repro` stays cheap and subpackages can be used standalone.
"""

from typing import TYPE_CHECKING


def _detect_version() -> str:
    """Single-source the version from installed package metadata.

    ``pyproject.toml`` is authoritative; the fallback below only serves
    source-tree runs (``PYTHONPATH=src``) where the distribution is not
    installed, and must be kept in sync with it.
    """
    try:
        from importlib.metadata import PackageNotFoundError, version
    except ImportError:  # pragma: no cover - py<3.8 unsupported
        return "1.0.0"
    try:
        return version("repro")
    except PackageNotFoundError:
        return "1.0.0"


__version__ = _detect_version()

# name -> (module, attribute) for lazy top-level re-exports
_LAZY_EXPORTS = {
    "VN2": ("repro.core.pipeline", "VN2"),
    "VN2Config": ("repro.core.pipeline", "VN2Config"),
    "DiagnosisReport": ("repro.core.pipeline", "DiagnosisReport"),
    "ModelIntegrityError": ("repro.core.pipeline", "ModelIntegrityError"),
    "OnlineVN2Updater": ("repro.core.lifecycle", "OnlineVN2Updater"),
    "incremental_refit": ("repro.core.lifecycle", "incremental_refit"),
    "NMFResult": ("repro.core.nmf", "NMFResult"),
    "nmf": ("repro.core.nmf", "nmf"),
    "TraceFrame": ("repro.traces.frame", "TraceFrame"),
    "Trace": ("repro.traces.records", "Trace"),
    "as_frame": ("repro.traces.frame", "as_frame"),
    "build_states": ("repro.core.states", "build_states"),
    "StateMatrix": ("repro.core.states", "StateMatrix"),
    "StreamingStateBuilder": ("repro.core.states", "StreamingStateBuilder"),
    "StreamingDiagnosisSession": (
        "repro.core.streaming",
        "StreamingDiagnosisSession",
    ),
    "IncidentTracker": ("repro.core.incidents", "IncidentTracker"),
    "DiagnosisService": ("repro.service.server", "DiagnosisService"),
    "ServiceConfig": ("repro.service.server", "ServiceConfig"),
    "ServiceClient": ("repro.service.client", "ServiceClient"),
    "infer_weights_batch": ("repro.core.inference", "infer_weights_batch"),
    "METRICS": ("repro.metrics.catalog", "METRICS"),
    "METRIC_NAMES": ("repro.metrics.catalog", "METRIC_NAMES"),
    "NUM_METRICS": ("repro.metrics.catalog", "NUM_METRICS"),
}

__all__ = ["__version__", *_LAZY_EXPORTS]

if TYPE_CHECKING:  # pragma: no cover - static typing only
    from repro.core.incidents import IncidentTracker
    from repro.core.inference import infer_weights_batch
    from repro.core.nmf import NMFResult, nmf
    from repro.core.lifecycle import OnlineVN2Updater, incremental_refit
    from repro.core.pipeline import (
        VN2,
        DiagnosisReport,
        ModelIntegrityError,
        VN2Config,
    )
    from repro.core.states import StateMatrix, StreamingStateBuilder, build_states
    from repro.core.streaming import StreamingDiagnosisSession
    from repro.service.client import ServiceClient
    from repro.service.server import DiagnosisService, ServiceConfig
    from repro.metrics.catalog import METRICS, METRIC_NAMES, NUM_METRICS
    from repro.traces.frame import TraceFrame, as_frame
    from repro.traces.records import Trace


def __getattr__(name: str):
    """PEP 562 lazy attribute access for the re-exports above."""
    try:
        module_name, attr = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, attr)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY_EXPORTS))
