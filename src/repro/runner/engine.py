"""Process-pool scenario engine.

Every experiment in the reproduction is built from *independent*
simulator runs — seed sweeps, CitySee training/episode pairs, the two
testbed scenarios, ablation grids.  Each run is a pure function of its
:mod:`job spec <repro.runner.jobs>` (all randomness flows through
:class:`repro.simnet.rng.RngRegistry` from the job's seed), so a grid of
jobs can be sharded across a ``ProcessPoolExecutor`` with **bit-identical
output**: ``run_jobs(jobs, n_workers=4)`` returns exactly the frames
``run_jobs(jobs, n_workers=1)`` would, column for column.

Workers *spool* their frames into the shared NPZ trace cache (atomic
rename on write — see :mod:`repro.traces.io`) and send back only the
cache path, so large frames are never pickled through the result pipe and
a warm cache entry is never recomputed.  With caching disabled the frame
itself is returned.  Per-job wall-clock, worker pid and any worker-side
traceback are captured on the :class:`JobResult`.
"""

from __future__ import annotations

import json
import os
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.obs import Tracer, get_tracer, set_tracer
from repro.runner.jobs import ChaosJob, CitySeeJob, JobSpec, TestbedJob, job_cache_path
from repro.runner.pool import attach_span_trees
from repro.traces.frame import TraceFrame
from repro.traces.io import load_frame_npz


class RunnerError(RuntimeError):
    """At least one job of a run failed; carries the per-job tracebacks."""


def execute_job(
    job: JobSpec,
    use_cache: bool = True,
    cache_dir: Optional[Path] = None,
) -> TraceFrame:
    """Run one job to a frame, in the current process.

    This is the single dispatch point the pool workers and the serial
    (``n_workers=1``) path share — both produce the same frame because the
    generators derive every random stream from the job's own seed.
    """
    if isinstance(job, CitySeeJob):
        from repro.traces.citysee import generate_citysee_frame

        return generate_citysee_frame(
            job.profile,
            episode=job.episode,
            episode_days=job.episode_days,
            use_cache=use_cache,
            cache_dir=cache_dir,
        )
    if isinstance(job, TestbedJob):
        from repro.traces.testbed import generate_testbed_frame

        return generate_testbed_frame(
            scenario=job.scenario,
            seed=job.seed,
            duration_s=job.duration_s,
            warmup_s=job.warmup_s,
            report_period_s=job.report_period_s,
            rows=job.rows,
            cols=job.cols,
            spacing_m=job.spacing_m,
            use_cache=use_cache,
            cache_dir=cache_dir,
        )
    if isinstance(job, ChaosJob):
        from repro.chaos.runtime import generate_chaos_frame

        return generate_chaos_frame(
            job.scenario, use_cache=use_cache, cache_dir=cache_dir
        )
    raise TypeError(f"unknown job spec {type(job).__name__}")


@dataclass
class JobResult:
    """Outcome of one job: where its frame is, how long it took, and by whom."""

    job: JobSpec
    index: int
    seconds: float = 0.0
    pid: int = 0
    path: Optional[str] = None  # spooled NPZ cache entry, when cached
    error: Optional[str] = None  # worker-side traceback, when failed
    #: Serialized ``runner.job`` span tree from the worker (only captured
    #: when the submitting process had tracing on; see :func:`run_jobs`).
    spans: Optional[dict] = None
    _frame: Optional[TraceFrame] = field(default=None, repr=False)

    @property
    def ok(self) -> bool:
        return self.error is None

    def frame(self) -> TraceFrame:
        """The job's trace frame (loaded lazily from the spooled NPZ)."""
        if self.error is not None:
            raise RunnerError(
                f"job {self.index} ({self.job.describe()}) failed:\n{self.error}"
            )
        if self._frame is None:
            assert self.path is not None
            self._frame = load_frame_npz(self.path)
        return self._frame


@dataclass
class RunReport:
    """All job results of one :func:`run_jobs` call, in submission order."""

    results: List[JobResult]
    n_workers: int
    total_seconds: float

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    def errors(self) -> List[JobResult]:
        return [r for r in self.results if not r.ok]

    def frames(self) -> List[TraceFrame]:
        """Every job's frame, in submission order; raises if any failed."""
        failed = self.errors()
        if failed:
            details = "\n---\n".join(
                f"{r.job.describe()}:\n{r.error}" for r in failed
            )
            raise RunnerError(
                f"{len(failed)}/{len(self.results)} jobs failed:\n{details}"
            )
        return [r.frame() for r in self.results]

    def timings(self) -> Dict[str, object]:
        """JSON-ready per-job timing record (the CI build artifact)."""
        return {
            "n_workers": self.n_workers,
            "total_seconds": self.total_seconds,
            "jobs": [
                {
                    "index": r.index,
                    "job": r.job.describe(),
                    "seconds": r.seconds,
                    "pid": r.pid,
                    "ok": r.ok,
                }
                for r in self.results
            ],
        }

    def write_timings(self, path) -> None:
        Path(path).parent.mkdir(parents=True, exist_ok=True)
        Path(path).write_text(json.dumps(self.timings(), indent=2) + "\n")

    def to_text(self) -> str:
        lines = [
            f"{len(self.results)} jobs, {self.n_workers} workers, "
            f"{self.total_seconds:.2f}s wall"
        ]
        for r in self.results:
            status = "ok" if r.ok else "FAILED"
            lines.append(
                f"  [{r.index}] {r.job.describe():<44s} "
                f"{r.seconds:7.2f}s  pid={r.pid}  {status}"
            )
        return "\n".join(lines)


def _run_one(
    index: int,
    job: JobSpec,
    use_cache: bool,
    cache_dir: Optional[str],
    spool: bool,
    trace_spans: bool = False,
) -> JobResult:
    """Worker body: execute one job, time it, capture any failure.

    Top-level (picklable) so it serves both the pool workers and the
    inline serial path.  When spooling, the frame stays on disk and only
    the cache path crosses the process boundary.  With ``trace_spans``
    the job runs under a worker-local :class:`~repro.obs.Tracer` and the
    finished ``runner.job`` tree is serialized onto ``result.spans`` —
    the submitting process grafts it back into its own tracer.
    """
    directory = Path(cache_dir) if cache_dir else None
    result = JobResult(job=job, index=index, pid=os.getpid())
    tracer = Tracer(enabled=True) if trace_spans else None
    previous = set_tracer(tracer) if tracer is not None else None
    start = time.perf_counter()
    try:
        if tracer is not None:
            with tracer.span(
                "runner.job", job=job.describe(), index=index, pid=os.getpid()
            ):
                frame = execute_job(job, use_cache=use_cache, cache_dir=directory)
        else:
            frame = execute_job(job, use_cache=use_cache, cache_dir=directory)
        if use_cache:
            result.path = str(job_cache_path(job, directory))
            if not spool:
                result._frame = frame
        else:
            result._frame = frame
    except Exception:
        result.error = traceback.format_exc()
    finally:
        if previous is not None:
            set_tracer(previous)
    result.seconds = time.perf_counter() - start
    if tracer is not None and tracer.roots:
        result.spans = tracer.roots[0].to_dict()
    return result


def run_jobs(
    jobs: Sequence[JobSpec],
    n_workers: int = 1,
    use_cache: bool = True,
    cache_dir: Optional[Path] = None,
) -> RunReport:
    """Execute a grid of independent scenario jobs, possibly in parallel.

    Args:
        jobs: Job specs; results come back in the same order.
        n_workers: ``<= 1`` runs inline (no pool, no subprocesses);
            ``> 1`` shards across a ``ProcessPoolExecutor``.  Output is
            bit-identical either way.
        use_cache: Reuse/spool NPZ cache entries (recommended — workers
            then return paths instead of pickling frames).
        cache_dir: Cache location; defaults to the generators' default.

    Returns:
        A :class:`RunReport`; failed jobs carry their traceback in
        ``result.error`` instead of raising, so one crashed worker does
        not discard its siblings' finished runs.
    """
    jobs = list(jobs)
    cache_dir_str = str(cache_dir) if cache_dir is not None else None
    tracer = get_tracer()
    trace_spans = tracer.enabled
    start = time.perf_counter()

    if n_workers <= 1 or len(jobs) <= 1:
        results = [
            _run_one(
                i, job, use_cache, cache_dir_str, spool=False,
                trace_spans=trace_spans,
            )
            for i, job in enumerate(jobs)
        ]
        _attach_job_spans(tracer, results)
        return RunReport(
            results=results,
            n_workers=1,
            total_seconds=time.perf_counter() - start,
        )

    results: List[Optional[JobResult]] = [None] * len(jobs)
    max_workers = min(n_workers, len(jobs))
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        future_index = {
            pool.submit(
                _run_one, i, job, use_cache, cache_dir_str, True, trace_spans
            ): i
            for i, job in enumerate(jobs)
        }
        pending = set(future_index)
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                i = future_index[future]
                try:
                    results[i] = future.result()
                except Exception as exc:  # pool breakage, e.g. worker SIGKILL
                    results[i] = JobResult(
                        job=jobs[i],
                        index=i,
                        error=(
                            "worker crashed before returning a result: "
                            f"{exc!r}"
                        ),
                    )
    kept = [r for r in results if r is not None]
    _attach_job_spans(tracer, kept)
    return RunReport(
        results=kept,
        n_workers=max_workers,
        total_seconds=time.perf_counter() - start,
    )


def _attach_job_spans(tracer, results: Sequence[JobResult]) -> None:
    """Graft worker-captured ``runner.job`` trees into the local tracer.

    Submission order, so the profile tree is deterministic regardless of
    completion order.  The mechanics live in
    :func:`repro.runner.pool.attach_span_trees`, shared with the sink
    service's cluster backend.
    """
    attach_span_trees(tracer, [(r.index, r.spans) for r in results])
