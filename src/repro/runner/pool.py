"""Long-lived worker-process pool: the reusable lifecycle core.

:mod:`repro.runner.engine` shards *finite job grids* over a
``ProcessPoolExecutor``; the sink service needs the other shape of
parallelism — a fixed set of **long-lived, stateful** workers that hold
streaming sessions, exchange messages with the parent for their whole
lifetime, and whose death must be *observed* (so shards can be handed
off) rather than merely retried.  This module is the shared core both
sides build on:

* :class:`WorkerHandle` — one child process plus a duplex pipe, with a
  dedicated writer thread (sends never block the caller) and a reader
  thread that pumps every inbound message into a callback and reports
  pipe EOF as a synthetic ``worker_lost`` message.
* :class:`ProcessPool` — spawn/monitor/stop a set of handles running one
  top-level target function ``target(conn, worker_id, *args)``.
* :func:`attach_span_trees` — graft serialized worker span trees into a
  local tracer in a deterministic order (extracted from the engine's
  private helper so the service's cluster rollup reuses it).

Messages are plain picklable objects (dicts with numpy arrays are fine);
framing, ordering and backpressure semantics are the caller's contract.
The pipe is FIFO in both directions, which is what the service's
per-deployment ordering guarantee rests on.
"""

from __future__ import annotations

import multiprocessing as mp
import queue
import threading
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "ProcessPool",
    "WorkerHandle",
    "WORKER_LOST",
    "attach_span_trees",
]

#: Synthetic message type injected by the reader thread when a worker's
#: pipe hits EOF (process death or clean exit).  Callers that care about
#: worker death (the service backend does) watch for it.
WORKER_LOST = "worker_lost"

_SEND_STOP = object()


def _child_entry(target, conn, close_first, worker_id, *args):
    """Child-process shim: drop inherited parent-side pipe ends, then run.

    Under the default fork start method every child inherits the parent
    side of its *own* pipe plus those of earlier-started siblings.  Left
    open, they keep each pipe's write end alive in some process forever,
    so no worker ever observes EOF after a front-door crash — the whole
    pool would orphan.  Closing them first makes parent death an EOF
    every child sees.
    """
    for stale in close_first:
        try:
            stale.close()
        except OSError:
            pass
    target(conn, worker_id, *args)


class WorkerHandle:
    """One long-lived worker process and its message plumbing.

    Args:
        worker_id: Stable identifier (the pool uses ``"w0"``, ``"w1"``…).
        process: The (not yet started) ``multiprocessing.Process``.
        conn: Parent end of the duplex pipe.
        on_message: ``fn(worker_id, message)`` invoked *on the reader
            thread* for every inbound message; the caller is responsible
            for hopping onto its own event loop/queue.  After pipe EOF it
            is invoked once more with ``{"type": WORKER_LOST}``.
    """

    def __init__(
        self,
        worker_id: str,
        process: mp.Process,
        conn,
        on_message: Callable[[str, dict], None],
    ):
        self.worker_id = worker_id
        self.process = process
        self.conn = conn
        self._on_message = on_message
        self._outbox: "queue.Queue" = queue.Queue()
        self._reader: Optional[threading.Thread] = None
        self._writer: Optional[threading.Thread] = None
        self._lost = threading.Event()

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        self.process.start()
        self._reader = threading.Thread(
            target=self._read_loop, name=f"pool-read-{self.worker_id}",
            daemon=True,
        )
        self._writer = threading.Thread(
            target=self._write_loop, name=f"pool-write-{self.worker_id}",
            daemon=True,
        )
        self._reader.start()
        self._writer.start()

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid

    @property
    def alive(self) -> bool:
        return self.process.is_alive() and not self._lost.is_set()

    def send(self, message: Any) -> None:
        """Queue one message to the worker (never blocks; messages to a
        dead worker are silently discarded — the ``worker_lost`` callback
        is the authoritative death signal)."""
        self._outbox.put(message)

    def stop(self, timeout: float = 10.0) -> None:
        """Stop the writer, join the process (terminate on timeout)."""
        self._outbox.put(_SEND_STOP)
        if self.process.is_alive():
            self.process.join(timeout=timeout)
            if self.process.is_alive():
                self.process.terminate()
                self.process.join(timeout=5.0)
        try:
            self.conn.close()
        except OSError:
            pass
        if self._writer is not None:
            self._writer.join(timeout=5.0)
        if self._reader is not None:
            self._reader.join(timeout=5.0)

    def kill(self) -> None:
        """SIGKILL the worker (chaos/testing hook)."""
        if self.process.is_alive():
            self.process.kill()

    # -- pump threads --------------------------------------------------

    def _read_loop(self) -> None:
        while True:
            try:
                message = self.conn.recv()
            except (EOFError, OSError):
                break
            try:
                self._on_message(self.worker_id, message)
            except Exception:  # a broken callback must not kill the pump
                pass
        self._lost.set()
        try:
            self._on_message(self.worker_id, {"type": WORKER_LOST})
        except Exception:
            pass

    def _write_loop(self) -> None:
        while True:
            message = self._outbox.get()
            if message is _SEND_STOP:
                return
            if self._lost.is_set():
                continue  # drain silently; death already reported
            try:
                self.conn.send(message)
            except (BrokenPipeError, OSError, ValueError):
                # Reader-side EOF is the single death signal; just stop
                # trying to write.
                self._lost.set()


class ProcessPool:
    """A fixed set of long-lived workers running one target function.

    Args:
        target: Top-level (picklable) function run in each child as
            ``target(conn, worker_id, *args)``.  It owns the child's
            message loop and should exit when its protocol says so.
        n_workers: Number of workers (ids ``w0``…``w{n-1}``).
        args: Extra positional arguments passed to every worker.  With
            the default (fork on Linux) start method large objects ride
            the fork; under spawn they are pickled.
        on_message: See :class:`WorkerHandle`.
        context: Optional ``multiprocessing`` context; defaults to the
            platform default (fork on Linux — the same choice the
            scenario engine's ``ProcessPoolExecutor`` makes).
    """

    def __init__(
        self,
        target: Callable,
        n_workers: int,
        args: Sequence[Any] = (),
        on_message: Optional[Callable[[str, dict], None]] = None,
        context: Optional[mp.context.BaseContext] = None,
    ):
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self._target = target
        self._args = tuple(args)
        self._on_message = on_message or (lambda wid, msg: None)
        self._ctx = context or mp.get_context()
        self.workers: Dict[str, WorkerHandle] = {}
        self._n = n_workers

    def start(self) -> None:
        """Spawn every worker and start its message pumps."""
        for i in range(self._n):
            worker_id = f"w{i}"
            parent_conn, child_conn = self._ctx.Pipe(duplex=True)
            # Parent-side ends this child must not keep open: earlier
            # siblings' and its own (see _child_entry).
            close_first = [h.conn for h in self.workers.values()]
            close_first.append(parent_conn)
            process = self._ctx.Process(
                target=_child_entry,
                args=(self._target, child_conn, close_first, worker_id)
                + self._args,
                name=f"repro-worker-{worker_id}",
                daemon=True,
            )
            handle = WorkerHandle(
                worker_id, process, parent_conn, self._on_message
            )
            self.workers[worker_id] = handle
            handle.start()
            # The parent keeps only its own end open so a child exit
            # yields a clean EOF on the reader.
            child_conn.close()

    # -- messaging -----------------------------------------------------

    def send(self, worker_id: str, message: Any) -> None:
        self.workers[worker_id].send(message)

    def broadcast(self, message: Any) -> None:
        for handle in self.workers.values():
            if handle.alive:
                handle.send(message)

    # -- introspection -------------------------------------------------

    def alive_ids(self) -> List[str]:
        return [wid for wid, h in self.workers.items() if h.alive]

    def pids(self) -> Dict[str, Optional[int]]:
        return {wid: h.pid for wid, h in self.workers.items()}

    # -- lifecycle -----------------------------------------------------

    def kill(self, worker_id: str) -> None:
        self.workers[worker_id].kill()

    def stop(self, timeout: float = 10.0) -> None:
        for handle in self.workers.values():
            handle.stop(timeout=timeout)

    def terminate(self) -> None:
        """Hard stop: SIGTERM every worker, then join via :meth:`stop`."""
        for handle in self.workers.values():
            if handle.process.is_alive():
                handle.process.terminate()
        self.stop(timeout=5.0)


def attach_span_trees(tracer, trees: Sequence[Tuple[Any, Optional[dict]]]) -> None:
    """Graft serialized worker span trees into ``tracer``.

    Args:
        tracer: The local :class:`~repro.obs.Tracer` (no-op if disabled).
        trees: ``(sort_key, tree_dict_or_None)`` pairs; attached in
            ``sort_key`` order so the merged profile is deterministic
            regardless of worker completion order.
    """
    if not tracer.enabled:
        return
    for _key, tree in sorted(trees, key=lambda kv: kv[0]):
        if tree:
            tracer.attach(tree)
