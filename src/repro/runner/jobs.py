"""Job specifications for the scenario engine.

A *job* is the full description of one independent simulator run —
everything :func:`repro.runner.engine.execute_job` needs to reproduce the
run bit-for-bit, in this process or in a pool worker.  Job specs are
frozen dataclasses so they are hashable, picklable and directly reusable
as cache keys: the engine spools each finished job into the same NPZ
cache entry a serial call with the same parameters would use.

Seed sweeps are expanded with :func:`sweep_seeds`, which derives one
deterministic child seed per index from the base seed through the same
SHA-256 scheme :class:`repro.simnet.rng.RngRegistry` uses for its
streams.  Sweep membership is therefore a pure function of
``(base_seed, n)`` — identical whether the jobs later run serially or
across a process pool.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from repro.chaos.dsl import ChaosScenario
from repro.chaos.runtime import chaos_cache_paths
from repro.simnet.rng import derive_seed
from repro.traces.citysee import CitySeeProfile, citysee_cache_paths
from repro.traces.testbed import TestbedScenario, testbed_cache_paths


@dataclass(frozen=True)
class CitySeeJob:
    """One CitySee-profile simulator run (Section V-B shape)."""

    profile: CitySeeProfile
    episode: bool = False
    episode_days: Tuple[float, float] = (6.0, 8.0)

    def describe(self) -> str:
        tag = "episode" if self.episode else "training"
        return (
            f"citysee[{self.profile.n_nodes}n x {self.profile.days:g}d, "
            f"seed={self.profile.seed}, {tag}]"
        )


@dataclass(frozen=True)
class TestbedJob:
    """One 9x5 testbed run (Section V-A shape)."""

    __test__ = False  # a job spec, not a pytest "Test*" class

    scenario: TestbedScenario = TestbedScenario.EXPANSIVE
    seed: int = 7
    duration_s: float = 7200.0
    warmup_s: float = 1200.0
    report_period_s: float = 180.0
    rows: int = 9
    cols: int = 5
    spacing_m: float = 8.0

    def describe(self) -> str:
        return (
            f"testbed[{self.scenario.value}, seed={self.seed}, "
            f"{self.duration_s:g}s]"
        )


@dataclass(frozen=True)
class ChaosJob:
    """One chaos-scenario run (:mod:`repro.chaos`).

    The scenario spec is carried whole: it is a frozen dataclass of frozen
    parts (profile, fault primitives, tuples), so the job stays hashable
    and picklable, and its canonical JSON keys the cache entry.
    """

    scenario: ChaosScenario

    def describe(self) -> str:
        return self.scenario.describe()


JobSpec = Union[CitySeeJob, TestbedJob, ChaosJob]


def job_cache_path(job: JobSpec, cache_dir: Optional[Path] = None) -> Path:
    """The NPZ cache entry ``job`` reads and writes.

    Reuses the generators' own keying, so runner workers and serial
    library calls share one cache namespace and never recompute a run the
    other already spooled.
    """
    if isinstance(job, CitySeeJob):
        npz_path, _jsonl = citysee_cache_paths(
            job.profile, job.episode, job.episode_days, cache_dir
        )
        return npz_path
    if isinstance(job, TestbedJob):
        return testbed_cache_paths(
            job.scenario, job.seed, job.duration_s, job.warmup_s,
            job.report_period_s, job.rows, job.cols, job.spacing_m,
            cache_dir,
        )
    if isinstance(job, ChaosJob):
        npz_path, _jsonl = chaos_cache_paths(job.scenario, cache_dir)
        return npz_path
    raise TypeError(f"unknown job spec {type(job).__name__}")


# ----------------------------------------------------------------------
# grid expansion helpers
# ----------------------------------------------------------------------


def sweep_seeds(base_seed: int, n: int, namespace: str = "sweep") -> List[int]:
    """``n`` deterministic, distinct child seeds derived from ``base_seed``."""
    return [derive_seed(base_seed, f"{namespace}.{i}") for i in range(n)]


def citysee_seed_sweep(
    profile: CitySeeProfile,
    n_seeds: int,
    episode: bool = False,
    episode_days: Tuple[float, float] = (6.0, 8.0),
    namespace: str = "sweep",
) -> List[CitySeeJob]:
    """One job per derived seed, all sharing ``profile``'s shape."""
    return [
        CitySeeJob(
            dataclasses.replace(profile, seed=seed),
            episode=episode,
            episode_days=episode_days,
        )
        for seed in sweep_seeds(profile.seed, n_seeds, namespace)
    ]


def citysee_study_jobs(
    profile: CitySeeProfile,
    episode_days: Tuple[float, float] = (6.0, 8.0),
    episode_total_days: float = 14.0,
) -> List[CitySeeJob]:
    """The Fig 6 pair: the training run and the 14-day episode run."""
    return [
        CitySeeJob(profile, episode=False),
        CitySeeJob(
            dataclasses.replace(profile, days=episode_total_days),
            episode=True,
            episode_days=episode_days,
        ),
    ]


def chaos_preset_jobs(
    names: Optional[Sequence[str]] = None,
    seed: int = 2011,
    scale: str = "tiny",
) -> List[ChaosJob]:
    """One job per named chaos preset (default: the whole library)."""
    from repro.chaos.presets import PRESET_NAMES, build_preset

    return [
        ChaosJob(build_preset(name, seed=seed, scale=scale))
        for name in (names if names is not None else PRESET_NAMES)
    ]


def testbed_scenario_jobs(
    scenarios: Sequence[TestbedScenario],
    seed: int = 7,
    **params: float,
) -> List[TestbedJob]:
    """One job per testbed scenario at a shared seed."""
    return [TestbedJob(scenario=s, seed=seed, **params) for s in scenarios]
