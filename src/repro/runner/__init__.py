"""Parallel scenario engine: shard independent simulator runs over processes.

Public surface::

    from repro.runner import CitySeeJob, TestbedJob, run_jobs

    report = run_jobs(jobs, n_workers=4)   # bit-identical to n_workers=1
    frames = report.frames()               # submission order
    print(report.to_text())                # per-job timings / pids
"""

from repro.runner.engine import (
    JobResult,
    RunnerError,
    RunReport,
    execute_job,
    run_jobs,
)
from repro.runner.pool import (
    ProcessPool,
    WorkerHandle,
    attach_span_trees,
)
from repro.runner.jobs import (
    ChaosJob,
    CitySeeJob,
    JobSpec,
    TestbedJob,
    chaos_preset_jobs,
    citysee_seed_sweep,
    citysee_study_jobs,
    job_cache_path,
    sweep_seeds,
    testbed_scenario_jobs,
)

__all__ = [
    "ChaosJob",
    "CitySeeJob",
    "JobResult",
    "JobSpec",
    "ProcessPool",
    "RunReport",
    "RunnerError",
    "TestbedJob",
    "WorkerHandle",
    "attach_span_trees",
    "chaos_preset_jobs",
    "citysee_seed_sweep",
    "citysee_study_jobs",
    "execute_job",
    "job_cache_path",
    "run_jobs",
    "sweep_seeds",
    "testbed_scenario_jobs",
]
