"""Node placement and topologies.

Two generators matter for the reproduction:

* :func:`grid_topology` — the paper's 9x5 TelosB testbed grid (45 nodes),
* :func:`random_geometric_topology` — a CitySee-like urban deployment
  (286 nodes by default) with the sink near one edge, as in the real
  network where the sink sat at the gateway.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

Position = Tuple[float, float]


@dataclass
class Topology:
    """Immutable node layout.

    Attributes:
        positions: node id -> (x, y) in meters.
        sink_id: id of the sink (data-collection) node.
    """

    positions: Dict[int, Position]
    sink_id: int

    def __post_init__(self) -> None:
        if self.sink_id not in self.positions:
            raise ValueError(f"sink id {self.sink_id} not in topology")

    @property
    def node_ids(self) -> List[int]:
        """All node ids in ascending order (includes the sink)."""
        return sorted(self.positions)

    @property
    def sensor_ids(self) -> List[int]:
        """All non-sink node ids in ascending order."""
        return [n for n in self.node_ids if n != self.sink_id]

    def __len__(self) -> int:
        return len(self.positions)

    def distance(self, a: int, b: int) -> float:
        """Euclidean distance between nodes ``a`` and ``b`` in meters."""
        xa, ya = self.positions[a]
        xb, yb = self.positions[b]
        return math.hypot(xa - xb, ya - yb)

    def neighbors_within(self, node_id: int, radius: float) -> List[int]:
        """Ids of other nodes within ``radius`` meters of ``node_id``."""
        return [
            other
            for other in self.node_ids
            if other != node_id and self.distance(node_id, other) <= radius
        ]

    def is_connected(self, radius: float) -> bool:
        """True if the radius-``radius`` disk graph is connected."""
        ids = self.node_ids
        if not ids:
            return True
        seen = {ids[0]}
        frontier = [ids[0]]
        while frontier:
            current = frontier.pop()
            for other in self.neighbors_within(current, radius):
                if other not in seen:
                    seen.add(other)
                    frontier.append(other)
        return len(seen) == len(ids)


def grid_topology(
    rows: int = 9,
    cols: int = 5,
    spacing: float = 10.0,
    jitter: float = 0.0,
    rng: Optional[np.random.Generator] = None,
    sink_id: int = 0,
) -> Topology:
    """A rows x cols grid with the sink at the (0, 0) corner.

    The paper's testbed is 45 TelosB nodes in a 9x5 matrix area.  ``jitter``
    adds uniform placement noise (fraction of spacing) so links are not all
    identical.
    """
    if rows < 1 or cols < 1:
        raise ValueError("grid needs at least one row and one column")
    if jitter and rng is None:
        raise ValueError("jitter requires an rng")
    positions: Dict[int, Position] = {}
    node_id = 0
    for r in range(rows):
        for c in range(cols):
            x = c * spacing
            y = r * spacing
            if jitter:
                x += float(rng.uniform(-jitter, jitter)) * spacing
                y += float(rng.uniform(-jitter, jitter)) * spacing
            positions[node_id] = (x, y)
            node_id += 1
    return Topology(positions=positions, sink_id=sink_id)


def random_geometric_topology(
    n_nodes: int = 286,
    area: Tuple[float, float] = (1000.0, 600.0),
    comm_radius: float = 120.0,
    rng: Optional[np.random.Generator] = None,
    sink_id: int = 0,
    max_tries: int = 200,
) -> Topology:
    """A connected random-geometric layout (CitySee-like deployment).

    Nodes are placed uniformly in ``area``; the sink is pinned near the
    west edge at mid-height (the CitySee gateway position).  Placement is
    re-sampled until the ``comm_radius`` disk graph is connected, so the
    collection tree can always form.

    Raises:
        RuntimeError: If no connected placement is found in ``max_tries``.
    """
    if rng is None:
        raise ValueError("random_geometric_topology requires an rng")
    if n_nodes < 2:
        raise ValueError("need at least a sink and one sensor")
    width, height = area
    for _ in range(max_tries):
        positions: Dict[int, Position] = {
            sink_id: (width * 0.02, height * 0.5)
        }
        next_id = 0
        while len(positions) < n_nodes:
            if next_id == sink_id:
                next_id += 1
                continue
            positions[next_id] = (
                float(rng.uniform(0.0, width)),
                float(rng.uniform(0.0, height)),
            )
            next_id += 1
        topology = Topology(positions=positions, sink_id=sink_id)
        if topology.is_connected(comm_radius):
            return topology
    raise RuntimeError(
        f"could not generate a connected topology with n={n_nodes}, "
        f"area={area}, radius={comm_radius} after {max_tries} tries; "
        "increase comm_radius or decrease area"
    )
