"""Network assembly: nodes + medium + MAC arbitration + sink collection.

:class:`Network` wires the substrate together and implements the two radio
primitives the nodes use:

* :meth:`transmit_data` — a unicast data frame with CSMA, PRR-drawn frame
  loss, receiver-side processing and an ACK on the reverse link;
* :meth:`broadcast_beacon` — a routing beacon delivered independently to
  every in-range neighbor.

It also owns delivery statistics (for PRR analysis) and the ground-truth
event log the evaluation harnesses compare diagnoses against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple


from repro.metrics.collector import SinkCollector
from repro.simnet.ctp.forwarding import DataFrame, TxResult
from repro.simnet.environment import Environment
from repro.simnet.hardware import ClockParams, EnergyParams
from repro.simnet.kernel import Simulator
from repro.simnet.link import Medium
from repro.simnet.mac import ChannelActivity, CsmaMac, MacParams
from repro.simnet.node import Node
from repro.simnet.radio import RadioParams
from repro.simnet.rng import RngRegistry
from repro.simnet.topology import Topology

#: Airtime of one data frame + ACK turnaround (CC2420, ~133 bytes max).
FRAME_AIRTIME_S = 0.004
ACK_AIRTIME_S = 0.001


@dataclass
class NetworkConfig:
    """All tunables of a simulation run.

    Defaults match the CitySee-style deployment (10-minute reports); the
    testbed generator overrides ``report_period_s`` to 180 s as in the
    paper's experiments.
    """

    report_period_s: float = 600.0
    beacon_min_s: float = 30.0
    beacon_max_s: float = 480.0
    maintenance_period_s: float = 60.0
    queue_capacity: int = 12
    neighbor_timeout_s: float = 1800.0
    tx_spacing_s: float = 0.05
    retry_delay_s: float = 0.15
    no_parent_retry_s: float = 10.0
    max_range_m: float = 150.0
    day_seconds: float = 86400.0
    seed: int = 0
    #: Extra sink nodes beyond ``topology.sink_id`` (multi-gateway
    #: deployments).  Every gateway delivers into the same shared
    #: :class:`~repro.metrics.collector.SinkCollector`, and CTP failover
    #: between gateways is emergent: sinks advertise path-ETX 0, so when
    #: one gateway dies its subtree re-routes to the next-cheapest one.
    gateway_ids: Tuple[int, ...] = ()
    radio: RadioParams = field(default_factory=RadioParams)
    mac: MacParams = field(default_factory=MacParams)
    energy: EnergyParams = field(default_factory=EnergyParams)
    clock: ClockParams = field(default_factory=ClockParams)


@dataclass
class NetworkStats:
    """Aggregate delivery statistics."""

    packets_generated: int = 0
    data_tx_attempts: int = 0
    data_tx_acked: int = 0
    beacons_sent: int = 0


@dataclass
class GroundTruthEvent:
    """One injected (or emergent) fault episode, for evaluation."""

    kind: str
    node_ids: Tuple[int, ...]
    start: float
    end: float


class Network:
    """A running sensor network simulation."""

    def __init__(self, topology: Topology, config: Optional[NetworkConfig] = None):
        self.topology = topology
        self.config = config or NetworkConfig()
        self.sim = Simulator()
        self.rngs = RngRegistry(self.config.seed)
        self.environment = Environment(
            rng=self.rngs.stream("environment"),
            day_seconds=self.config.day_seconds,
        )
        self.medium = Medium(
            topology=topology,
            environment=self.environment,
            params=self.config.radio,
            rng=self.rngs.stream("radio"),
            max_range=self.config.max_range_m,
        )
        self.mac = CsmaMac(self.config.mac, self.rngs.stream("mac"))
        self._loss_rng = self.rngs.stream("loss")
        self.collector = SinkCollector()
        self.stats = NetworkStats()
        self.ground_truth: List[GroundTruthEvent] = []

        self._activity: Dict[int, ChannelActivity] = {
            nid: ChannelActivity(self.config.mac.activity_decay_s)
            for nid in topology.node_ids
        }
        # Cache neighbor lists once: O(1) activity bumps per transmission.
        self._neighbor_cache: Dict[int, List[int]] = {
            nid: self.medium.neighbors(nid) for nid in topology.node_ids
        }

        unknown_gateways = set(self.config.gateway_ids) - set(topology.node_ids)
        if unknown_gateways:
            raise ValueError(
                f"gateway_ids {sorted(unknown_gateways)} not in topology"
            )
        sink_ids = {topology.sink_id, *self.config.gateway_ids}
        self.nodes: Dict[int, Node] = {}
        for node_id in topology.node_ids:
            self.nodes[node_id] = Node(node_id, self, is_sink=node_id in sink_ids)

        self._started = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def sink(self) -> Node:
        """The primary sink node."""
        return self.nodes[self.topology.sink_id]

    @property
    def sink_ids(self) -> List[int]:
        """All sink/gateway node ids, ascending (primary sink included)."""
        return sorted({self.topology.sink_id, *self.config.gateway_ids})

    def start(self) -> None:
        """Arm every node's timers (idempotent)."""
        if self._started:
            return
        self._started = True
        for node in self.nodes.values():
            node.start()

    def run(self, duration: float) -> None:
        """Start (if needed) and advance the simulation by ``duration`` s."""
        self.start()
        self.sim.run(duration)

    def run_until(self, end_time: float) -> None:
        """Start (if needed) and advance the simulation to ``end_time``."""
        self.start()
        self.sim.run_until(end_time)

    def record_ground_truth(
        self, kind: str, node_ids: Tuple[int, ...], start: float, end: float
    ) -> None:
        """Append an event to the ground-truth log."""
        self.ground_truth.append(GroundTruthEvent(kind, node_ids, start, end))

    def move_node(self, node_id: int, position: Tuple[float, float]) -> None:
        """Relocate a node (mobile deployments): links and caches follow.

        The medium rebuilds every link touching the node (new distances,
        freshly drawn shadowing for newly in-range pairs) and the
        neighbor/activity caches are refreshed.  Deterministic: the event
        loop is single-threaded and shadowing draws come off the medium's
        own named stream in sorted-peer order.
        """
        if node_id not in self.nodes:
            raise KeyError(f"unknown node {node_id}")
        self.topology.positions[node_id] = (float(position[0]), float(position[1]))
        self.medium.rebuild_links_for(node_id)
        self.nodes[node_id].sensors.set_position(self.topology.positions[node_id])
        self._neighbor_cache = {
            nid: self.medium.neighbors(nid) for nid in self.topology.node_ids
        }

    # ------------------------------------------------------------------
    # radio primitives
    # ------------------------------------------------------------------

    def _noise_rise_at(self, node_id: int, now: float) -> float:
        pos = self.topology.positions[node_id]
        return (
            self.environment.noise_floor(now, pos)
            - self.environment.base_noise_floor
        )

    def _bump_activity_around(self, node_id: int, now: float) -> None:
        amount = self.config.mac.activity_per_frame
        for neighbor_id in self._neighbor_cache[node_id]:
            self._activity[neighbor_id].bump(now, amount)

    def transmit_data(
        self,
        sender: Node,
        receiver_id: int,
        frame: DataFrame,
        callback: Callable[[int, TxResult], None],
    ) -> None:
        """One unicast attempt sender -> receiver with CSMA, loss and ACK.

        All randomness is drawn immediately; the outcome is delivered to
        ``callback(receiver_id, result)`` after the computed channel delay,
        so each attempt costs a single scheduled event.
        """
        now = self.sim.now()
        attempt = self.mac.attempt(
            self._activity[sender.node_id].level(now),
            self._noise_rise_at(sender.node_id, now),
        )
        sender.counters.mac_backoff_counter += attempt.backoffs
        if not attempt.acquired:
            self.sim.schedule(
                attempt.delay_s, lambda: callback(receiver_id, TxResult.CHANNEL_FAIL)
            )
            return

        self.stats.data_tx_attempts += 1
        sender.counters.transmit_counter += 1
        sender.hardware.on_transmit()
        self._bump_activity_around(sender.node_id, now)

        result = self._resolve_delivery(sender, receiver_id, frame, now)
        if result is TxResult.ACKED:
            self.stats.data_tx_acked += 1
        total_delay = attempt.delay_s + FRAME_AIRTIME_S + ACK_AIRTIME_S
        self.sim.schedule(total_delay, lambda: callback(receiver_id, result))

    def _resolve_delivery(
        self, sender: Node, receiver_id: int, frame: DataFrame, now: float
    ) -> TxResult:
        receiver = self.nodes.get(receiver_id)
        if receiver is None or not receiver.alive:
            return TxResult.NOACK_LOST
        p_data = self.medium.frame_success_probability(
            sender.node_id, receiver_id, now
        )
        if self._loss_rng.random() >= p_data:
            return TxResult.NOACK_LOST

        receiver.hardware.on_receive()
        verdict = receiver.forwarding.on_frame_received(frame)
        if verdict.loop_detected:
            receiver.routing.on_loop_detected()
        if verdict.delivered_at_sink:
            self.collector.deliver(frame.report, received_at=now)
        if verdict.accepted and not receiver.is_sink:
            receiver.schedule_service()
        if not verdict.send_ack:
            return TxResult.NOACK_OVERFLOW

        receiver.counters.ack_counter += 1
        receiver.hardware.on_transmit()
        p_ack = self.medium.frame_success_probability(
            receiver_id, sender.node_id, now
        )
        if self._loss_rng.random() >= p_ack:
            return TxResult.NOACK_ACK_LOST
        return TxResult.ACKED

    def broadcast_beacon(self, sender: Node) -> None:
        """Broadcast a routing beacon to every in-range, living neighbor."""
        now = self.sim.now()
        beacon = sender.routing.make_beacon()
        self.stats.beacons_sent += 1
        sender.hardware.on_transmit()
        self._bump_activity_around(sender.node_id, now)
        for neighbor_id in self._neighbor_cache[sender.node_id]:
            receiver = self.nodes[neighbor_id]
            if not receiver.alive:
                continue
            p = self.medium.frame_success_probability(
                sender.node_id, neighbor_id, now
            )
            if self._loss_rng.random() < p:
                rssi = self.medium.rssi(sender.node_id, neighbor_id, now)
                receiver.on_beacon_received(beacon, rssi)

    # ------------------------------------------------------------------
    # derived statistics
    # ------------------------------------------------------------------

    def delivery_ratio(self) -> float:
        """Fraction of generated report packets that reached the sink."""
        if self.stats.packets_generated == 0:
            return 0.0
        return self.collector.packets_received / self.stats.packets_generated

    def alive_node_count(self) -> int:
        """Number of living nodes (including the sink if alive)."""
        return sum(1 for n in self.nodes.values() if n.alive)
