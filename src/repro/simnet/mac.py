"""CSMA/CA medium access with congestion backoff.

The model follows CC2420's unslotted CSMA: before each frame the radio
performs a clear-channel assessment (CCA); if the channel is busy it backs
off for a random window and tries again, up to a limit.  Two things make
the channel look busy:

* nearby transmissions (tracked as an exponentially-decaying activity level
  per node, updated by the network layer), and
* interference that raises the noise floor above the CCA threshold —
  energy-detect CCA cannot distinguish a colleague's frame from a jammer.

Every backoff increments the paper's ``MacI_backoff_counter``, which is the
load-bearing metric of the contention root-cause signature (Ψ5/Ψ17).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass
class MacParams:
    """CSMA constants.

    Attributes:
        max_backoffs: CCA attempts before giving up on this transmission.
        initial_backoff_s: Mean of the first backoff window.
        congestion_backoff_s: Mean of subsequent backoff windows.
        activity_decay_s: Time constant of the channel-activity EWMA.
        activity_per_frame: Activity added to neighbors per transmitted frame.
        busy_floor: Channel-busy probability on an idle channel.
        noise_busy_threshold_db: Noise rise (above base floor) at which
            energy-detect CCA starts reporting a busy channel.
        noise_busy_slope: Busy-probability gained per dB of noise rise
            beyond the threshold.
    """

    max_backoffs: int = 8
    initial_backoff_s: float = 0.005
    congestion_backoff_s: float = 0.010
    activity_decay_s: float = 2.0
    activity_per_frame: float = 0.35
    busy_floor: float = 0.02
    noise_busy_threshold_db: float = 3.0
    noise_busy_slope: float = 0.06


@dataclass
class MacAttempt:
    """Outcome of one channel-access attempt.

    Attributes:
        acquired: True if the channel was won within ``max_backoffs``.
        backoffs: Number of backoffs taken (each one counts toward
            ``mac_backoff_counter``).
        delay_s: Total time spent backing off before the verdict.
    """

    acquired: bool
    backoffs: int
    delay_s: float


class ChannelActivity:
    """Exponentially-decaying local channel-activity level for one node."""

    __slots__ = ("_level", "_time", "_decay_s")

    def __init__(self, decay_s: float):
        self._level = 0.0
        self._time = 0.0
        self._decay_s = decay_s

    def _advance(self, now: float) -> None:
        dt = now - self._time
        if dt > 0:
            self._level *= math.exp(-dt / self._decay_s)
            self._time = now

    def bump(self, now: float, amount: float) -> None:
        """Record nearby transmission activity at time ``now``."""
        self._advance(now)
        self._level += amount

    def level(self, now: float) -> float:
        """Current decayed activity level."""
        self._advance(now)
        return self._level


class CsmaMac:
    """Stateless CSMA sampler; activity levels live per node."""

    def __init__(self, params: MacParams, rng: np.random.Generator):
        self.params = params
        self._rng = rng

    def busy_probability(self, activity_level: float, noise_rise_db: float) -> float:
        """Probability a CCA reports busy, from local load and noise rise."""
        p = self.params
        load_term = 1.0 - math.exp(-activity_level)
        noise_term = 0.0
        if noise_rise_db > p.noise_busy_threshold_db:
            noise_term = p.noise_busy_slope * (
                noise_rise_db - p.noise_busy_threshold_db
            )
        busy = p.busy_floor + (1.0 - p.busy_floor) * min(
            1.0, load_term + noise_term
        )
        return min(0.995, busy)

    def attempt(self, activity_level: float, noise_rise_db: float) -> MacAttempt:
        """Run the CSMA loop once and report the outcome."""
        p = self.params
        busy = self.busy_probability(activity_level, noise_rise_db)
        backoffs = 0
        delay = 0.0
        while backoffs < p.max_backoffs:
            if self._rng.random() >= busy:
                return MacAttempt(acquired=True, backoffs=backoffs, delay_s=delay)
            backoffs += 1
            window = p.initial_backoff_s if backoffs == 1 else p.congestion_backoff_s
            delay += float(self._rng.uniform(0.5, 1.5)) * window
        return MacAttempt(acquired=False, backoffs=backoffs, delay_s=delay)
