"""Named, seeded random-number streams.

Every stochastic component of the simulator draws from its own named stream
derived from the master seed.  This keeps runs reproducible and — more
importantly for experiments — makes components *independently* reproducible:
changing how one component consumes randomness does not perturb the draws
seen by another.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np


def _stream_seed(master_seed: int, name: str) -> np.random.SeedSequence:
    """Derive a child seed sequence from ``master_seed`` and a stream name.

    The name is hashed with SHA-256 so that stream identity depends only on
    the string, never on registration order.
    """
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    name_key = int.from_bytes(digest[:8], "big")
    return np.random.SeedSequence(entropy=master_seed, spawn_key=(name_key,))


def derive_seed(master_seed: int, name: str) -> int:
    """A deterministic 63-bit child *master* seed for ``(master_seed, name)``.

    Where :func:`_stream_seed` derives one generator inside a simulation,
    this derives the master seed of a whole *sibling* simulation — the
    scenario runner uses it to expand seed sweeps (``job.0``, ``job.1``,
    ...) so that a sweep's membership is a pure function of the base seed,
    identical whether jobs run serially or across a process pool.
    """
    digest = hashlib.sha256(
        f"{int(master_seed)}:{name}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big") >> 1


class RngRegistry:
    """Factory for named :class:`numpy.random.Generator` streams.

    >>> rngs = RngRegistry(seed=7)
    >>> a = rngs.stream("radio")
    >>> b = rngs.stream("radio")
    >>> a is b
    True
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        generator = self._streams.get(name)
        if generator is None:
            generator = np.random.default_rng(_stream_seed(self.seed, name))
            self._streams[name] = generator
        return generator

    def reset(self, name: str) -> np.random.Generator:
        """Re-create the stream for ``name`` from its original seed."""
        generator = np.random.default_rng(_stream_seed(self.seed, name))
        self._streams[name] = generator
        return generator

    def derive(self, name: str) -> int:
        """Child master seed for ``name`` (see :func:`derive_seed`)."""
        return derive_seed(self.seed, name)
