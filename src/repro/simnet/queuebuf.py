"""Bounded FIFO packet queue (the CTP forwarding queue).

TinyOS's CTP forwarder keeps a small message pool (12 entries on TelosB);
when it is full, arriving packets are dropped and the paper's
``Overflow_drop_counter`` increments.  The queue here is a plain bounded
deque with an explicit rejection result so callers can count overflows.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generic, Iterator, Optional, TypeVar

T = TypeVar("T")


class PacketQueue(Generic[T]):
    """Bounded FIFO with explicit overflow signalling."""

    def __init__(self, capacity: int = 12):
        if capacity < 1:
            raise ValueError("queue capacity must be >= 1")
        self.capacity = capacity
        self._items: Deque[T] = deque()
        self.total_enqueued = 0
        self.total_rejected = 0

    def push(self, item: T) -> bool:
        """Append ``item``; returns False (and counts a rejection) if full."""
        if len(self._items) >= self.capacity:
            self.total_rejected += 1
            return False
        self._items.append(item)
        self.total_enqueued += 1
        return True

    def pop(self) -> T:
        """Remove and return the head; raises IndexError when empty."""
        return self._items.popleft()

    def peek(self) -> Optional[T]:
        """The head without removing it, or ``None`` when empty."""
        return self._items[0] if self._items else None

    def requeue_head(self, item: T) -> None:
        """Put an in-flight head item back at the front (retry later)."""
        self._items.appendleft(item)

    def clear(self) -> None:
        """Drop everything (node reboot)."""
        self._items.clear()

    def is_full(self) -> bool:
        return len(self._items) >= self.capacity

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[T]:
        return iter(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)
