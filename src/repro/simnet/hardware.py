"""Node hardware: battery/voltage, temperature-dependent clock, radio energy.

The hardware model supplies three things the metric layer reports:

* ``voltage`` — battery voltage, declining with consumed energy.  The paper
  notes a TelosB node stops working below 2.8 V; :meth:`Battery.is_dead`
  encodes that cutoff.
* clock skew — TelosB's crystal drifts quadratically with temperature,
  which modulates the reporting period (Table I: clock instability makes a
  node send too fast or too slow).
* ``radio_on_time`` — cumulative seconds of radio activity, the energy
  proxy the paper's ``Radio_on_time`` metric reports.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class EnergyParams:
    """Energy accounting constants (loosely TelosB/CC2420-scaled).

    The absolute scale is tuned so a default node survives multi-week runs
    while heavy activity (loops, contention) produces a visible voltage sag
    within hours — the behaviour VN2's Ψ2 "energy drain" signature needs.
    """

    battery_capacity_j: float = 20000.0
    tx_energy_j: float = 0.004
    rx_energy_j: float = 0.003
    idle_power_w: float = 0.00015
    tx_duration_s: float = 0.004
    rx_duration_s: float = 0.004
    listen_duty_cycle: float = 0.05


@dataclass
class ClockParams:
    """Crystal-drift constants.

    Drift is ``base_ppm + curvature_ppm * (T - turnover_c)^2`` parts per
    million — the standard tuning-fork crystal model.
    """

    base_ppm: float = 10.0
    curvature_ppm: float = 0.035
    turnover_c: float = 25.0


class Battery:
    """Battery with voltage derived from remaining charge.

    Voltage follows a mildly non-linear discharge curve from
    ``v_full`` (3.0 V, fresh AAs) to ``v_empty`` (2.6 V); the node is dead
    below ``v_cutoff`` (2.8 V per the paper).
    """

    V_FULL = 3.0
    V_EMPTY = 2.6
    V_CUTOFF = 2.8

    def __init__(self, params: EnergyParams, rng: np.random.Generator,
                 initial_fraction: float = 1.0):
        self.params = params
        self._rng = rng
        self.capacity_j = params.battery_capacity_j
        self.used_j = (1.0 - initial_fraction) * self.capacity_j
        self.drain_multiplier = 1.0
        #: Load-induced supply droop (V), injected by brown-out faults.
        #: Unlike depletion it is reversible, and it is deliberately kept out
        #: of :meth:`is_dead` so a sagging node limps instead of dying — the
        #: *reported* voltage dips, which is what the Ψ "low voltage"
        #: signature keys on.
        self.brownout_v = 0.0

    def consume(self, joules: float) -> None:
        """Drain ``joules`` (scaled by any fault-injected drain multiplier)."""
        self.used_j += joules * self.drain_multiplier

    def depletion(self) -> float:
        """Fraction of capacity consumed, clamped to [0, 1]."""
        return min(1.0, max(0.0, self.used_j / self.capacity_j))

    def voltage(self) -> float:
        """Current voltage (V), with small measurement noise."""
        d = self.depletion()
        # Slightly convex discharge: flat at first, sagging near empty.
        v = self.V_FULL - (self.V_FULL - self.V_EMPTY) * (d ** 1.5)
        return v - self.brownout_v + float(self._rng.normal(0.0, 0.004))

    def is_dead(self) -> bool:
        """True once the voltage (noise-free) is below the 2.8 V cutoff."""
        d = self.depletion()
        v = self.V_FULL - (self.V_FULL - self.V_EMPTY) * (d ** 1.5)
        return v < self.V_CUTOFF

    def recharge(self) -> None:
        """Reset to a full battery (battery swap on reboot)."""
        self.used_j = 0.0
        self.drain_multiplier = 1.0
        self.brownout_v = 0.0


class Hardware:
    """Per-node hardware aggregate: battery, clock skew, radio-on time."""

    def __init__(
        self,
        energy: EnergyParams,
        clock: ClockParams,
        rng: np.random.Generator,
        initial_battery_fraction: float = 1.0,
    ):
        self.energy_params = energy
        self.clock_params = clock
        self.battery = Battery(energy, rng, initial_battery_fraction)
        self.radio_on_time = 0.0
        self._last_idle_accrual = 0.0
        #: Fault-injected extra drift (ppm).  Lives on the *hardware*, not on
        #: :class:`ClockParams` — the params object is shared by every node
        #: of a network, so a per-node clock-skew fault must not touch it.
        self.skew_extra_ppm = 0.0

    # -- energy events ---------------------------------------------------

    def on_transmit(self) -> None:
        """Account one frame transmission."""
        self.battery.consume(self.energy_params.tx_energy_j)
        self.radio_on_time += self.energy_params.tx_duration_s

    def on_receive(self) -> None:
        """Account one frame reception."""
        self.battery.consume(self.energy_params.rx_energy_j)
        self.radio_on_time += self.energy_params.rx_duration_s

    def accrue_idle(self, now: float) -> None:
        """Account idle listening between ``_last_idle_accrual`` and now."""
        dt = now - self._last_idle_accrual
        if dt <= 0:
            return
        self._last_idle_accrual = now
        self.battery.consume(self.energy_params.idle_power_w * dt)
        self.radio_on_time += dt * self.energy_params.listen_duty_cycle

    # -- clock -----------------------------------------------------------

    def clock_skew(self, temperature_c: float) -> float:
        """Multiplicative period skew at the given die temperature.

        Returns a factor near 1.0; e.g. 1.0001 means timers fire 100 ppm
        late.
        """
        p = self.clock_params
        drift_ppm = p.base_ppm + p.curvature_ppm * (temperature_c - p.turnover_c) ** 2
        # Floor far below any physical drift: keeps the report period
        # positive even under absurd fault-injected negative offsets.
        return max(0.05, 1.0 + (drift_ppm + self.skew_extra_ppm) * 1e-6)

    # -- lifecycle -------------------------------------------------------

    def reboot(self, now: float, fresh_battery: bool = False) -> None:
        """Reset volatile hardware state (radio-on time restarts at zero)."""
        self.radio_on_time = 0.0
        self._last_idle_accrual = now
        self.skew_extra_ppm = 0.0
        if fresh_battery:
            self.battery.recharge()

    def resume_idle(self, now: float) -> None:
        """Restart idle accounting at ``now`` (radio was off while asleep)."""
        self._last_idle_accrual = now
