"""A sensor node: hardware + sensors + CTP stack + metric snapshots.

The node glues the substrate together and owns the three timers a TinyOS
mote would run:

* the **report timer** (every ``report_period_s`` x clock-skew) takes a
  43-metric snapshot and submits it as C1/C2/C3 packets — clock skew is
  temperature-dependent, so hot/cold nodes genuinely send too fast or too
  slow (Table I's first row);
* the **beacon timer** (trickle) broadcasts routing beacons;
* the **maintenance timer** ages the neighbor table, accrues idle energy,
  and notices battery death.

Transmissions are asynchronous: the node hands the head frame to the
network and continues when the completion callback fires.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Tuple

import numpy as np

from repro.metrics.catalog import MAX_NEIGHBORS, METRIC_INDEX, NUM_METRICS
from repro.metrics.packets import snapshot_to_packets
from repro.simnet.counters import CounterSet
from repro.simnet.ctp.beacons import TrickleTimer
from repro.simnet.ctp.etx import MAX_ETX, LinkEstimator
from repro.simnet.ctp.forwarding import ForwardingEngine, TxResult
from repro.simnet.ctp.routing import Beacon, RoutingEngine
from repro.simnet.hardware import Hardware
from repro.simnet.sensors import SensorSuite

if TYPE_CHECKING:  # pragma: no cover
    from repro.simnet.network import Network

EMPTY_RSSI_SLOT = -100.0
"""Reported RSSI for an empty neighbor-table slot (below any real signal)."""

EMPTY_ETX_SLOT = MAX_ETX
"""Reported link-ETX for an empty neighbor-table slot."""


class Node:
    """One sensor node (or the sink) in the simulated network."""

    def __init__(
        self,
        node_id: int,
        network: "Network",
        is_sink: bool = False,
    ):
        self.node_id = node_id
        self.network = network
        self.is_sink = is_sink
        config = network.config
        sim_rng = network.rngs

        self.counters = CounterSet()
        self.hardware = Hardware(
            energy=config.energy,
            clock=config.clock,
            rng=sim_rng.stream(f"hardware.{node_id}"),
            initial_battery_fraction=1.0,
        )
        self.sensors = SensorSuite(
            environment=network.environment,
            hardware=self.hardware,
            position=network.topology.positions[node_id],
            rng=sim_rng.stream(f"sensors.{node_id}"),
        )
        self.estimator = LinkEstimator(
            table_size=MAX_NEIGHBORS,
            entry_timeout_s=config.neighbor_timeout_s,
        )
        self.routing = RoutingEngine(
            node_id=node_id,
            estimator=self.estimator,
            counters=self.counters,
            is_sink=is_sink,
        )
        self.forwarding = ForwardingEngine(
            node_id=node_id,
            counters=self.counters,
            is_sink=is_sink,
            queue_capacity=config.queue_capacity,
        )
        self.trickle = TrickleTimer(
            min_interval_s=config.beacon_min_s,
            max_interval_s=config.beacon_max_s,
            rng=sim_rng.stream(f"trickle.{node_id}"),
        )

        self.alive = True
        self.epoch = 0
        self._busy = False
        self._service_scheduled = False
        self._started = False
        self._gen = 0
        self._sleeping = False
        #: Firmware reporting subset: metric names this node's firmware
        #: packs into its report packets (``None`` = the full 43-metric
        #: catalog).  Old-firmware nodes still emit all three packet
        #: classes, just with fewer fields; the sink fills the gaps
        #: (see :func:`repro.metrics.packets.merge_packets`).
        self.report_metrics: Optional[Tuple[str, ...]] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Arm the node's timers (called once by the network)."""
        if self._started:
            return
        self._started = True
        config = self.network.config
        self._arm_timers(
            beacon_delay=(0.0, config.beacon_min_s),
            report_delay=(0.0, config.report_period_s),
            maintenance_delay=(0.0, config.maintenance_period_s),
        )

    def _arm_timers(self, beacon_delay, report_delay, maintenance_delay) -> None:
        """(Re)start the timer chains under a fresh generation number.

        Timer callbacks carry the generation they were armed under; after a
        reboot the generation advances and stale callbacks become no-ops, so
        a reboot never leaves two live timer chains.
        """
        self._gen += 1
        gen = self._gen
        sim = self.network.sim
        rng = self.network.rngs.stream(f"timers.{self.node_id}")
        sim.schedule(
            float(rng.uniform(*beacon_delay)), lambda: self._beacon_tick(gen)
        )
        if not self.is_sink:
            sim.schedule(
                float(rng.uniform(*report_delay)), lambda: self._report_tick(gen)
            )
        sim.schedule(
            float(rng.uniform(*maintenance_delay)),
            lambda: self._maintenance_tick(gen),
        )

    def die(self) -> None:
        """Hard failure: the node goes silent (radio off, timers inert)."""
        self.alive = False
        self._busy = False
        self._sleeping = False
        self._gen += 1  # invalidate any armed timers

    def sleep(self) -> None:
        """Duty-cycle off: radio off and timers inert, but state *kept*.

        Unlike :meth:`die`/:meth:`reboot`, counters, neighbor tables and the
        send queue survive — a duty-cycled node resumes where it left off,
        so its deltas stay sane (no reboot-style counter cliffs).
        """
        if not self.alive:
            return
        self.alive = False
        self._busy = False
        self._service_scheduled = False
        self._sleeping = True
        self._gen += 1  # invalidate any armed timers

    def wake(self) -> None:
        """Resume from :meth:`sleep`; a no-op unless actually sleeping.

        A node that *died* while scheduled to wake (battery death, a
        concurrent failure fault) stays down — only duty-cycle sleep is
        reversible here.
        """
        if not self._sleeping:
            return
        now = self.network.sim.now()
        self._sleeping = False
        self.alive = True
        self.hardware.resume_idle(now)  # radio was off: no idle burn accrues
        config = self.network.config
        self._arm_timers(
            beacon_delay=(0.1, 2.0),
            report_delay=(0.5, max(1.0, config.report_period_s * 0.25)),
            maintenance_delay=(0.5, config.maintenance_period_s),
        )
        self.schedule_service()

    def reboot(self, fresh_battery: bool = True) -> None:
        """Restart the node: counters, tables and queues reset to zero."""
        now = self.network.sim.now()
        self.alive = True
        self._sleeping = False
        self.counters.reset()
        self.hardware.reboot(now, fresh_battery=fresh_battery)
        self.estimator.clear()
        self.routing.clear()
        self.forwarding.clear()
        self.trickle.reset()
        self._busy = False
        self._service_scheduled = False
        config = self.network.config
        self._arm_timers(
            beacon_delay=(0.5, 3.0),
            report_delay=(1.0, max(1.5, config.report_period_s * 0.5)),
            maintenance_delay=(1.0, config.maintenance_period_s),
        )

    # ------------------------------------------------------------------
    # metric snapshot
    # ------------------------------------------------------------------

    def build_snapshot(self, now: float) -> np.ndarray:
        """The node's current 43-metric vector, in catalog order."""
        vec = np.zeros(NUM_METRICS, dtype=float)
        readings = self.sensors.read(now)
        vec[METRIC_INDEX["temperature"]] = readings.temperature
        vec[METRIC_INDEX["humidity"]] = readings.humidity
        vec[METRIC_INDEX["light"]] = readings.light
        vec[METRIC_INDEX["co2"]] = readings.co2
        vec[METRIC_INDEX["voltage"]] = readings.voltage
        vec[METRIC_INDEX["path_etx"]] = min(self.routing.path_etx(), MAX_ETX)
        vec[METRIC_INDEX["path_length"]] = float(self.routing.path_length())

        entries = self.estimator.sorted_entries()[:MAX_NEIGHBORS]
        vec[METRIC_INDEX["neighbor_num"]] = float(len(self.estimator.entries))
        for slot in range(MAX_NEIGHBORS):
            if slot < len(entries):
                vec[METRIC_INDEX[f"rssi_{slot + 1}"]] = entries[slot].rssi_ewma
                vec[METRIC_INDEX[f"etx_{slot + 1}"]] = entries[slot].link_etx()
            else:
                vec[METRIC_INDEX[f"rssi_{slot + 1}"]] = EMPTY_RSSI_SLOT
                vec[METRIC_INDEX[f"etx_{slot + 1}"]] = EMPTY_ETX_SLOT

        for name, value in self.counters.as_dict().items():
            vec[METRIC_INDEX[name]] = value
        vec[METRIC_INDEX["radio_on_time"]] = self.hardware.radio_on_time
        return vec

    # ------------------------------------------------------------------
    # timers
    # ------------------------------------------------------------------

    def _report_tick(self, gen: int) -> None:
        if gen != self._gen or not self.alive or self.is_sink:
            return
        sim = self.network.sim
        now = sim.now()
        snapshot = self.build_snapshot(now)
        packets = snapshot_to_packets(
            self.node_id, self.epoch, now, snapshot, metrics=self.report_metrics
        )
        self.epoch += 1
        self.network.stats.packets_generated += len(packets)
        for packet in packets:
            self.forwarding.submit_self_report(packet, now)
        self.schedule_service()
        # Temperature-dependent clock skew modulates the period.
        skew = self.hardware.clock_skew(self.sensors.ambient_temperature(now))
        sim.schedule(
            self.network.config.report_period_s * skew,
            lambda: self._report_tick(gen),
        )

    def _beacon_tick(self, gen: int) -> None:
        if gen != self._gen or not self.alive:
            return
        sim = self.network.sim
        if self.routing.consume_route_changed() or self.estimator.consume_new_neighbor_flag():
            self.trickle.reset()
        self.counters.beacon_counter += 1
        self.network.broadcast_beacon(self)
        sim.schedule(self.trickle.next_delay(), lambda: self._beacon_tick(gen))

    def _maintenance_tick(self, gen: int) -> None:
        if gen != self._gen or not self.alive:
            return
        sim = self.network.sim
        now = sim.now()
        self.hardware.accrue_idle(now)
        removed = self.estimator.age_out(now)
        if self.routing.parent in removed:
            self.routing.on_parent_lost()
        self.estimator.on_beacon_period(now)
        self.routing.update_route(now)
        if self.hardware.battery.is_dead():
            self.network.record_ground_truth(
                "battery_death", (self.node_id,), now, now
            )
            self.die()
            return
        sim.schedule(
            self.network.config.maintenance_period_s,
            lambda: self._maintenance_tick(gen),
        )

    # ------------------------------------------------------------------
    # forwarding service loop
    # ------------------------------------------------------------------

    def schedule_service(self, delay: float = 0.0) -> None:
        """Ask for the queue to be serviced after ``delay`` seconds."""
        if self._service_scheduled or self._busy or not self.alive or self.is_sink:
            return
        self._service_scheduled = True
        self.network.sim.schedule(delay, self._service_queue)

    def _service_queue(self) -> None:
        self._service_scheduled = False
        if not self.alive or self._busy or self.is_sink:
            return
        frame = self.forwarding.head()
        if frame is None:
            return
        now = self.network.sim.now()
        if frame.thl <= 0:
            self.forwarding.drop_expired_head()
            self.schedule_service()
            return
        parent = self.routing.current_parent(now)
        if parent is None:
            self.counters.no_parent_counter += 1
            self.routing.update_route(now)
            self.schedule_service(self.network.config.no_parent_retry_s)
            return
        self._busy = True
        gen = self._gen
        self.network.transmit_data(
            self, parent, frame,
            lambda parent_id, result: self._on_tx_done(parent_id, result, gen),
        )

    def _on_tx_done(self, parent_id: int, result: TxResult, gen: int) -> None:
        if gen != self._gen:
            # The node died or rebooted while this frame was on the air:
            # its queue (and _busy) were reset, so the outcome is moot.
            return
        self._busy = False
        if not self.alive:
            return
        config = self.network.config
        now = self.network.sim.now()
        if result is TxResult.ACKED:
            self.forwarding.complete_head()
            self.estimator.on_data_attempt(parent_id, acked=True)
            self.schedule_service(config.tx_spacing_s)
            return
        if result is TxResult.CHANNEL_FAIL:
            self.counters.retransmit_counter += 1
            if self.forwarding.retry_head():
                self.schedule_service(config.retry_delay_s * 2.0)
            else:
                self.schedule_service(config.tx_spacing_s)
            return
        # All NOACK_* variants look identical to the sender.
        self.counters.noack_retransmit_counter += 1
        self.counters.retransmit_counter += 1
        self.estimator.on_data_attempt(parent_id, acked=False)
        self.routing.update_route(now)
        if self.forwarding.retry_head():
            self.schedule_service(config.retry_delay_s)
        else:
            self.schedule_service(config.tx_spacing_s)

    # ------------------------------------------------------------------
    # radio events (called by the network)
    # ------------------------------------------------------------------

    def on_beacon_received(self, beacon: Beacon, rssi: float) -> None:
        """Handle a decoded routing beacon."""
        if not self.alive:
            return
        now = self.network.sim.now()
        self.hardware.on_receive()
        self.estimator.on_beacon(
            beacon.src, rssi, beacon.path_etx, now,
            advertised_path_length=beacon.path_length,
        )
        self.routing.update_route(now)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        role = "sink" if self.is_sink else "node"
        state = "up" if self.alive else "down"
        return f"<{role} {self.node_id} {state} q={len(self.forwarding.queue)}>"
