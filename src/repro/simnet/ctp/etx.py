"""Link estimation: per-neighbor RSSI and ETX.

Follows the hybrid strategy of TinyOS's 4-bit link estimator: beacon
receptions give an *ingoing* quality estimate for every neighbor (even ones
we never send to), while data transmissions give a much sharper
attempts-per-ACK estimate for the neighbors we actually use.  The data
estimate dominates once available.

Entries age out when no beacon has been heard for several beacon periods —
this is what makes ``neighbor_num`` fall after a neighbor dies, and what
frees a child to select a new parent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

MAX_ETX = 50.0
"""Cap for ETX estimates (effectively 'unusable link')."""


@dataclass
class NeighborEntry:
    """Estimator state for one neighbor."""

    neighbor_id: int
    rssi_ewma: float = -90.0
    last_heard: float = 0.0
    #: Neighbor's advertised path ETX from its most recent beacon.
    advertised_path_etx: float = MAX_ETX
    #: Neighbor's advertised hop count from its most recent beacon.
    advertised_path_length: int = 0
    # beacon-driven ingoing quality (EWMA of reception indicator)
    beacon_quality: float = 0.0
    # data-driven estimate
    data_attempts: int = 0
    data_acks: int = 0

    def link_etx(self) -> float:
        """Current link-ETX estimate (>= 1.0, capped at MAX_ETX)."""
        if self.data_attempts >= 4 and self.data_acks > 0:
            etx = self.data_attempts / self.data_acks
            return min(MAX_ETX, max(1.0, etx))
        if self.beacon_quality > 0.02:
            # ETX ~ 1/q_in^2: assume the reverse link resembles the forward.
            etx = 1.0 / (self.beacon_quality * self.beacon_quality)
            return min(MAX_ETX, max(1.0, etx))
        return MAX_ETX


class LinkEstimator:
    """Per-node neighbor table with RSSI/ETX estimation and aging.

    Args:
        table_size: Maximum entries kept (the C2 packet carries 10).
        rssi_alpha: EWMA weight for new RSSI samples.
        beacon_alpha: EWMA weight for beacon reception indicators.
        entry_timeout_s: Entries not refreshed within this window age out.
        data_window: Data attempt/ACK counters are halved once attempts
            reach this value, so the estimate tracks recent behaviour.
    """

    def __init__(
        self,
        table_size: int = 10,
        rssi_alpha: float = 0.25,
        beacon_alpha: float = 0.2,
        entry_timeout_s: float = 1800.0,
        data_window: int = 32,
    ):
        self.table_size = table_size
        self.rssi_alpha = rssi_alpha
        self.beacon_alpha = beacon_alpha
        self.entry_timeout_s = entry_timeout_s
        self.data_window = data_window
        self.entries: Dict[int, NeighborEntry] = {}
        #: Set when a brand-new neighbor was inserted since the last check
        #: (drives beacon-timer resets on topology change).
        self.new_neighbor_seen = False

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------

    def on_beacon(
        self,
        neighbor_id: int,
        rssi: float,
        advertised_path_etx: float,
        now: float,
        advertised_path_length: int = 0,
    ) -> None:
        """Process a received beacon from ``neighbor_id``."""
        entry = self.entries.get(neighbor_id)
        if entry is None:
            entry = self._insert(neighbor_id, rssi, now)
            if entry is None:
                return
        entry.rssi_ewma += self.rssi_alpha * (rssi - entry.rssi_ewma)
        entry.beacon_quality += self.beacon_alpha * (1.0 - entry.beacon_quality)
        entry.advertised_path_etx = advertised_path_etx
        entry.advertised_path_length = advertised_path_length
        entry.last_heard = now

    def on_beacon_period(self, now: float) -> None:
        """Decay beacon quality for neighbors we did *not* hear this period."""
        for entry in self.entries.values():
            if entry.last_heard < now:
                entry.beacon_quality *= 1.0 - self.beacon_alpha

    def on_data_attempt(self, neighbor_id: int, acked: bool) -> None:
        """Record a unicast data attempt (and its ACK outcome) to a neighbor."""
        entry = self.entries.get(neighbor_id)
        if entry is None:
            return
        entry.data_attempts += 1
        if acked:
            entry.data_acks += 1
        if entry.data_attempts >= self.data_window:
            entry.data_attempts //= 2
            entry.data_acks //= 2

    def _insert(self, neighbor_id: int, rssi: float, now: float) -> Optional[NeighborEntry]:
        """Insert a new neighbor, evicting the worst entry if the table is full."""
        if len(self.entries) >= self.table_size:
            evictable = max(
                self.entries.values(), key=lambda e: e.link_etx()
            )
            # Only evict if the newcomer is plausibly better (stronger RSSI
            # than the worst entry) — avoids thrash from marginal neighbors.
            if evictable.link_etx() < MAX_ETX and rssi <= evictable.rssi_ewma:
                return None
            del self.entries[evictable.neighbor_id]
        entry = NeighborEntry(neighbor_id=neighbor_id, rssi_ewma=rssi, last_heard=now)
        self.entries[neighbor_id] = entry
        self.new_neighbor_seen = True
        return entry

    def age_out(self, now: float) -> List[int]:
        """Remove entries not heard within the timeout; returns removed ids."""
        stale = [
            nid
            for nid, entry in self.entries.items()
            if now - entry.last_heard > self.entry_timeout_s
        ]
        for nid in stale:
            del self.entries[nid]
        return stale

    def clear(self) -> None:
        """Forget everything (node reboot)."""
        self.entries.clear()
        self.new_neighbor_seen = False

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def neighbor_ids(self) -> List[int]:
        """Ids of all table entries."""
        return list(self.entries)

    def entry(self, neighbor_id: int) -> Optional[NeighborEntry]:
        return self.entries.get(neighbor_id)

    def sorted_entries(self) -> List[NeighborEntry]:
        """Entries best-first (by link ETX, then RSSI)."""
        return sorted(
            self.entries.values(),
            key=lambda e: (e.link_etx(), -e.rssi_ewma),
        )

    def consume_new_neighbor_flag(self) -> bool:
        """Return-and-clear the 'new neighbor inserted' flag."""
        flag = self.new_neighbor_seen
        self.new_neighbor_seen = False
        return flag
