"""Routing engine: parent selection over the link estimator's table.

CTP semantics:

* Route cost is ``neighbor's advertised path-ETX + link-ETX to it``; the
  node advertises its own cost in beacons.
* Parent switches need a hysteresis margin (``switch_threshold``) so
  marginal fluctuations don't churn the tree — but when the current parent
  disappears or its cost diverges, the node re-parents immediately and
  ``parent_change_counter`` increments.
* Loop avoidance: a neighbor is not eligible if its advertised cost is not
  smaller than the node's own current cost (no routing "uphill").

The engine also supports a *forced parent* override used by the fault
injector to create genuine routing loops (two nodes forced to adopt each
other), the scenario behind the paper's Ψ6/Ψ16 loop signature.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.simnet.counters import CounterSet
from repro.simnet.ctp.etx import MAX_ETX, LinkEstimator


@dataclass(frozen=True)
class Beacon:
    """A routing beacon: the sender's identity and advertised route cost."""

    src: int
    path_etx: float
    path_length: int


class RoutingEngine:
    """Parent selection for one node."""

    def __init__(
        self,
        node_id: int,
        estimator: LinkEstimator,
        counters: CounterSet,
        is_sink: bool = False,
        switch_threshold: float = 1.5,
    ):
        self.node_id = node_id
        self.estimator = estimator
        self.counters = counters
        self.is_sink = is_sink
        self.switch_threshold = switch_threshold
        self.parent: Optional[int] = None
        #: Advertised hop count of the current parent (from its beacon).
        self._parent_path_length: int = 0
        # fault-injected override
        self._forced_parent: Optional[int] = None
        self._forced_until: float = 0.0
        #: Set when the parent changed since last consumed (beacon reset).
        self.route_changed = False

    # ------------------------------------------------------------------
    # cost queries
    # ------------------------------------------------------------------

    def _cost_via(self, neighbor_id: int) -> float:
        entry = self.estimator.entry(neighbor_id)
        if entry is None:
            return MAX_ETX
        cost = entry.advertised_path_etx + entry.link_etx()
        return min(MAX_ETX, cost)

    def path_etx(self) -> float:
        """The node's current route cost to the sink (0 at the sink)."""
        if self.is_sink:
            return 0.0
        if self.parent is None:
            return MAX_ETX
        return self._cost_via(self.parent)

    def path_length(self) -> int:
        """Estimated hop count to the sink (0 at the sink)."""
        if self.is_sink:
            return 0
        if self.parent is None:
            return 0
        entry = self.estimator.entry(self.parent)
        if entry is not None:
            return entry.advertised_path_length + 1
        return self._parent_path_length + 1

    def make_beacon(self) -> Beacon:
        """The beacon this node would broadcast right now."""
        return Beacon(
            src=self.node_id,
            path_etx=self.path_etx(),
            path_length=self.path_length(),
        )

    def current_parent(self, now: float) -> Optional[int]:
        """The active parent (honouring any live forced override)."""
        if self.is_sink:
            return None
        if self._forced_parent is not None and now < self._forced_until:
            return self._forced_parent
        return self.parent

    # ------------------------------------------------------------------
    # route maintenance
    # ------------------------------------------------------------------

    def update_route(self, now: float) -> None:
        """Re-evaluate the parent choice against the estimator table."""
        if self.is_sink:
            return
        if self._forced_parent is not None and now >= self._forced_until:
            self._forced_parent = None

        own_cost = self.path_etx()
        best_id: Optional[int] = None
        best_cost = MAX_ETX
        for entry in self.estimator.entries.values():
            if entry.advertised_path_etx >= MAX_ETX:
                continue
            # Loop avoidance: never route through a neighbor whose own cost
            # is not strictly below ours (it could be a descendant).
            if self.parent is not None and entry.advertised_path_etx >= own_cost:
                continue
            cost = self._cost_via(entry.neighbor_id)
            if cost < best_cost:
                best_cost = cost
                best_id = entry.neighbor_id

        if best_id is None:
            if self.parent is not None and self._cost_via(self.parent) >= MAX_ETX:
                self._set_parent(None)
            return

        if self.parent is None:
            self._set_parent(best_id)
            return

        current_cost = self._cost_via(self.parent)
        if best_id != self.parent and best_cost + self.switch_threshold < current_cost:
            self._set_parent(best_id)

    def _set_parent(self, new_parent: Optional[int]) -> None:
        old = self.parent
        self.parent = new_parent
        if new_parent is not None:
            entry = self.estimator.entry(new_parent)
            self._parent_path_length = (
                entry.advertised_path_length if entry is not None else 0
            )
        if old is not None and new_parent != old:
            self.counters.parent_change_counter += 1
            self.route_changed = True
        elif old is None and new_parent is not None:
            self.route_changed = True

    def on_parent_lost(self) -> None:
        """Called when the parent aged out of the neighbor table."""
        if self.parent is not None:
            self._set_parent(None)

    def force_parent(self, parent_id: Optional[int], until: float) -> None:
        """Fault hook: pin the parent to ``parent_id`` until ``until``."""
        self._forced_parent = parent_id
        self._forced_until = until
        self.route_changed = True

    def on_loop_detected(self) -> None:
        """React to a detected loop: beacon fast and recompute."""
        self.route_changed = True

    def consume_route_changed(self) -> bool:
        """Return-and-clear the 'route changed' flag (beacon reset)."""
        flag = self.route_changed
        self.route_changed = False
        return flag

    def clear(self) -> None:
        """Forget routing state (node reboot)."""
        self.parent = None
        self._parent_path_length = 0
        self._forced_parent = None
        self._forced_until = 0.0
        self.route_changed = False
